//! The compilation manager (§3.1.2, §4.1).
//!
//! "The compilation manager must select the machine, or machines, on which
//! each task should be run ... In fact in most cases several different
//! machines may be used to execute a particular task. In this case the
//! compilation manager prepares executable images for all possible
//! machines. The choice of which machine will actually be used will be
//! made by the runtime manager."

use std::collections::BTreeMap;

use vce_net::MachineClass;
use vce_taskgraph::{TaskGraph, TaskId};

use crate::compiler::{CompileJob, Compiler};
use crate::machinedb::MachineDb;

/// A prepared executable image.
#[derive(Debug, Clone, PartialEq)]
pub struct Binary {
    /// The program (task name).
    pub unit: String,
    /// Machine class it runs on.
    pub target: MachineClass,
    /// Size, KiB.
    pub kib: u64,
    /// Time spent compiling it, µs.
    pub compile_us: u64,
}

/// Cache of prepared binaries, keyed `(unit, target class)`.
///
/// The object-code-compatible groups of §5 mean one binary per class
/// serves every machine in the class.
#[derive(Debug, Clone, Default)]
pub struct BinaryCache {
    entries: BTreeMap<(String, MachineClass), Binary>,
    hits: u64,
    misses: u64,
}

impl BinaryCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a binary.
    pub fn get(&mut self, unit: &str, target: MachineClass) -> Option<&Binary> {
        let key = (unit.to_string(), target);
        if self.entries.contains_key(&key) {
            self.hits += 1;
            self.entries.get(&key)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Peek without counting.
    pub fn contains(&self, unit: &str, target: MachineClass) -> bool {
        self.entries.contains_key(&(unit.to_string(), target))
    }

    /// Insert a binary.
    pub fn put(&mut self, binary: Binary) {
        self.entries
            .insert((binary.unit.clone(), binary.target), binary);
    }

    /// Number of cached binaries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Per-task compilation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileReport {
    /// The task.
    pub task: TaskId,
    /// Classes binaries were produced for (preference order).
    pub targets: Vec<MachineClass>,
    /// Total compile time charged, µs (cache hits are free).
    pub compile_us: u64,
}

/// The compilation manager.
#[derive(Debug, Default)]
pub struct CompilationManager {
    compiler: Compiler,
    cache: BinaryCache,
}

impl CompilationManager {
    /// Manager with the default cost model.
    pub fn new() -> Self {
        Self {
            compiler: Compiler::default(),
            cache: BinaryCache::new(),
        }
    }

    /// Access the cache (diagnostics, anticipatory planning).
    pub fn cache(&self) -> &BinaryCache {
        &self.cache
    }

    /// Prepare binaries for one task on every feasible class (§4.1's
    /// "all possible machines"). Returns `None` if the fleet cannot host
    /// the task at all.
    pub fn prepare_task(
        &mut self,
        g: &TaskGraph,
        task: TaskId,
        db: &MachineDb,
    ) -> Option<CompileReport> {
        let spec = g.get(task)?;
        let classes = db.feasible_classes(spec);
        if classes.is_empty() {
            return None;
        }
        let mut total_us = 0;
        for &target in &classes {
            if self.cache.get(&spec.name, target).is_some() {
                continue;
            }
            let out = self
                .compiler
                .compile(&CompileJob {
                    unit: spec.name.clone(),
                    language: spec.language.expect("coding-complete task"),
                    target,
                    work_mops: spec.work_mops,
                })
                .expect("feasible_classes filtered by toolchain availability");
            total_us += out.compile_us;
            self.cache.put(Binary {
                unit: spec.name.clone(),
                target,
                kib: out.binary_kib,
                compile_us: out.compile_us,
            });
        }
        Some(CompileReport {
            task,
            targets: classes,
            compile_us: total_us,
        })
    }

    /// Prepare the whole application. Returns per-task reports; tasks the
    /// fleet cannot host are reported in the error vector.
    pub fn prepare_all(
        &mut self,
        g: &TaskGraph,
        db: &MachineDb,
    ) -> (Vec<CompileReport>, Vec<TaskId>) {
        let mut reports = Vec::new();
        let mut unhostable = Vec::new();
        for id in g.ids() {
            match self.prepare_task(g, id, db) {
                Some(r) => reports.push(r),
                None => unhostable.push(id),
            }
        }
        (reports, unhostable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vce_net::{MachineInfo, NodeId};
    use vce_taskgraph::{Language, ProblemClass, TaskSpec};

    fn fleet() -> MachineDb {
        MachineDb::new()
            .with(MachineInfo::workstation(NodeId(0), 100.0))
            .with(
                MachineInfo::workstation(NodeId(1), 2000.0)
                    .with_class(MachineClass::Simd)
                    .with_mem_mb(512),
            )
            .with(
                MachineInfo::workstation(NodeId(2), 800.0)
                    .with_class(MachineClass::Mimd)
                    .with_mem_mb(256),
            )
    }

    fn app() -> TaskGraph {
        let mut g = TaskGraph::new("app");
        let a = g.add_task(
            TaskSpec::new("collector")
                .with_class(ProblemClass::Asynchronous)
                .with_language(Language::C)
                .with_work(100.0),
        );
        let b = g.add_task(
            TaskSpec::new("predictor")
                .with_class(ProblemClass::Synchronous)
                .with_language(Language::HpFortran)
                .with_work(5000.0),
        );
        g.depends(b, a, 64);
        g
    }

    #[test]
    fn prepares_binaries_for_all_feasible_classes() {
        let db = fleet();
        let g = app();
        let mut mgr = CompilationManager::new();
        let (reports, unhostable) = mgr.prepare_all(&g, &db);
        assert!(unhostable.is_empty());
        assert_eq!(reports.len(), 2);
        // collector (ASYNC, C): workstation then MIMD.
        assert_eq!(
            reports[0].targets,
            vec![MachineClass::Workstation, MachineClass::Mimd]
        );
        // predictor (SYNC, HPF): SIMD then MIMD (no vector in fleet).
        assert_eq!(
            reports[1].targets,
            vec![MachineClass::Simd, MachineClass::Mimd]
        );
        assert_eq!(mgr.cache().len(), 4);
        for r in &reports {
            assert!(r.compile_us > 0);
        }
    }

    #[test]
    fn cache_makes_recompilation_free() {
        let db = fleet();
        let g = app();
        let mut mgr = CompilationManager::new();
        let first = mgr
            .prepare_task(&g, g.find("predictor").unwrap(), &db)
            .unwrap();
        let second = mgr
            .prepare_task(&g, g.find("predictor").unwrap(), &db)
            .unwrap();
        assert!(first.compile_us > 0);
        assert_eq!(second.compile_us, 0, "all targets cached");
        let (hits, _misses) = mgr.cache().stats();
        assert!(hits >= 2);
    }

    #[test]
    fn unhostable_task_reported() {
        // Vector-only preference with no vector machines and HPF language
        // unavailable on workstations.
        let db = MachineDb::new().with(MachineInfo::workstation(NodeId(0), 100.0));
        let mut g = TaskGraph::new("g");
        let t = g.add_task(
            TaskSpec::new("lockstep")
                .with_class(ProblemClass::Synchronous)
                .with_language(Language::HpFortran)
                .with_work(10.0),
        );
        let mut mgr = CompilationManager::new();
        let (reports, unhostable) = mgr.prepare_all(&g, &db);
        assert!(reports.is_empty());
        assert_eq!(unhostable, vec![t]);
    }

    #[test]
    fn binaries_shared_across_tasks_with_same_name() {
        // Two graphs reusing a program path hit the same cache entries —
        // the anticipatory-compilation payoff.
        let db = fleet();
        let g = app();
        let mut mgr = CompilationManager::new();
        mgr.prepare_all(&g, &db);
        let cached = mgr.cache().len();
        let g2 = app();
        let (reports, _) = mgr.prepare_all(&g2, &db);
        assert_eq!(mgr.cache().len(), cached);
        assert!(reports.iter().all(|r| r.compile_us == 0));
    }
}
