//! Anticipatory processing planner (§4.5).
//!
//! "Suppose there is a VCE application consisting of two modules where the
//! second cannot start until the first completes. If there are lots of idle
//! resources in the network they can be used to do things that may help the
//! second module run faster when it is ready to go": compile it for every
//! candidate architecture (**anticipatory compilation**) and replicate its
//! input files to candidate hosts (**anticipatory file replication**).
//!
//! The planner looks at tasks that are *not yet dispatchable* (some
//! dataflow predecessor unfinished) and lists the useful work idle
//! machines could do for them now. The execution module carries the plan
//! out; experiment U2 measures the dispatch-latency payoff.

use std::collections::BTreeSet;

use vce_net::MachineClass;
use vce_taskgraph::{TaskGraph, TaskId};

use crate::compilemgr::BinaryCache;
use crate::machinedb::MachineDb;

/// One useful piece of anticipatory work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnticipatoryAction {
    /// Compile `task`'s program for `target` before it becomes ready.
    Compile {
        /// The pending task.
        task: TaskId,
        /// Target class missing from the binary cache.
        target: MachineClass,
    },
    /// Replicate an input file to machines of `target` class.
    ReplicateFile {
        /// The pending task that will read it.
        task: TaskId,
        /// File path.
        file: String,
        /// Candidate-host class.
        target: MachineClass,
    },
}

/// Compute the anticipatory work plan.
///
/// `completed` are finished tasks; tasks with unfinished predecessors are
/// the anticipation targets. Actions are ordered by task id, compiles
/// before replications, best class first — the order the execution module
/// should fund them with idle capacity.
pub fn plan(
    g: &TaskGraph,
    db: &MachineDb,
    cache: &BinaryCache,
    completed: &BTreeSet<TaskId>,
) -> Vec<AnticipatoryAction> {
    let mut actions = Vec::new();
    for id in g.ids() {
        if completed.contains(&id) {
            continue;
        }
        let blocked = g.predecessors(id).any(|p| !completed.contains(&p));
        if !blocked {
            continue; // dispatchable now — the scheduler's job, not ours
        }
        let spec = g.get(id).expect("valid id");
        let classes = db.feasible_classes(spec);
        for &target in &classes {
            if !cache.contains(&spec.name, target) {
                actions.push(AnticipatoryAction::Compile { task: id, target });
            }
        }
        for file in &spec.input_files {
            for &target in &classes {
                actions.push(AnticipatoryAction::ReplicateFile {
                    task: id,
                    file: file.clone(),
                    target,
                });
            }
        }
    }
    actions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compilemgr::Binary;
    use vce_net::{MachineInfo, NodeId};
    use vce_taskgraph::{Language, ProblemClass, TaskSpec};

    fn db() -> MachineDb {
        MachineDb::new()
            .with(MachineInfo::workstation(NodeId(0), 100.0))
            .with(
                MachineInfo::workstation(NodeId(1), 900.0)
                    .with_class(MachineClass::Mimd)
                    .with_mem_mb(256),
            )
    }

    fn two_stage() -> (TaskGraph, TaskId, TaskId) {
        let mut g = TaskGraph::new("two");
        let first = g.add_task(
            TaskSpec::new("first")
                .with_class(ProblemClass::Asynchronous)
                .with_language(Language::C)
                .with_work(10.0),
        );
        let second = g.add_task(
            TaskSpec::new("second")
                .with_class(ProblemClass::Asynchronous)
                .with_language(Language::C)
                .with_work(10.0)
                .with_input_file("/data/grid.dat"),
        );
        g.depends(second, first, 1);
        (g, first, second)
    }

    #[test]
    fn plans_compiles_and_replication_for_blocked_task() {
        let (g, _first, second) = two_stage();
        let actions = plan(&g, &db(), &BinaryCache::new(), &BTreeSet::new());
        // `first` is dispatchable (not planned); `second` is blocked.
        assert_eq!(
            actions,
            vec![
                AnticipatoryAction::Compile {
                    task: second,
                    target: MachineClass::Workstation
                },
                AnticipatoryAction::Compile {
                    task: second,
                    target: MachineClass::Mimd
                },
                AnticipatoryAction::ReplicateFile {
                    task: second,
                    file: "/data/grid.dat".into(),
                    target: MachineClass::Workstation
                },
                AnticipatoryAction::ReplicateFile {
                    task: second,
                    file: "/data/grid.dat".into(),
                    target: MachineClass::Mimd
                },
            ]
        );
    }

    #[test]
    fn cached_binaries_drop_out_of_the_plan() {
        let (g, _, _) = two_stage();
        let mut cache = BinaryCache::new();
        cache.put(Binary {
            unit: "second".into(),
            target: MachineClass::Workstation,
            kib: 10,
            compile_us: 1,
        });
        let actions = plan(&g, &db(), &cache, &BTreeSet::new());
        assert!(!actions.contains(&AnticipatoryAction::Compile {
            task: TaskId(1),
            target: MachineClass::Workstation
        }));
        assert!(actions.contains(&AnticipatoryAction::Compile {
            task: TaskId(1),
            target: MachineClass::Mimd
        }));
    }

    #[test]
    fn nothing_to_anticipate_once_predecessors_finish() {
        let (g, first, _) = two_stage();
        let done: BTreeSet<TaskId> = [first].into_iter().collect();
        assert!(plan(&g, &db(), &BinaryCache::new(), &done).is_empty());
    }

    #[test]
    fn completed_tasks_never_planned() {
        let (g, first, second) = two_stage();
        let done: BTreeSet<TaskId> = [first, second].into_iter().collect();
        assert!(plan(&g, &db(), &BinaryCache::new(), &done).is_empty());
    }
}
