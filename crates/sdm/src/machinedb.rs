//! The machine database (§3.1.2): what the compilation and runtime
//! managers know about every machine in the VCE network.

use vce_net::{MachineClass, MachineInfo, NodeId};
use vce_taskgraph::TaskSpec;

/// The fleet registry.
#[derive(Debug, Clone, Default)]
pub struct MachineDb {
    machines: Vec<MachineInfo>,
}

impl MachineDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a machine. Panics on duplicate node ids (registration is
    /// administrator-driven).
    pub fn register(&mut self, info: MachineInfo) {
        assert!(
            self.get(info.node).is_none(),
            "node {} registered twice",
            info.node
        );
        self.machines.push(info);
    }

    /// Builder-style registration.
    pub fn with(mut self, info: MachineInfo) -> Self {
        self.register(info);
        self
    }

    /// All machines.
    pub fn machines(&self) -> &[MachineInfo] {
        &self.machines
    }

    /// Look up one machine.
    pub fn get(&self, node: NodeId) -> Option<&MachineInfo> {
        self.machines.iter().find(|m| m.node == node)
    }

    /// Machines of a class.
    pub fn by_class(&self, class: MachineClass) -> impl Iterator<Item = &MachineInfo> {
        self.machines.iter().filter(move |m| m.class == class)
    }

    /// Count per class.
    pub fn count(&self, class: MachineClass) -> usize {
        self.by_class(class).count()
    }

    /// Classes present in the fleet, in [`MachineClass::ALL`] order.
    pub fn present_classes(&self) -> Vec<MachineClass> {
        MachineClass::ALL
            .into_iter()
            .filter(|&c| self.count(c) > 0)
            .collect()
    }

    /// Machine classes a (coding-complete) task can execute on, best
    /// first: problem-class preference filtered by language availability
    /// and fleet presence.
    pub fn feasible_classes(&self, task: &TaskSpec) -> Vec<MachineClass> {
        let Some(problem) = task.class else {
            return Vec::new();
        };
        let Some(language) = task.language else {
            return Vec::new();
        };
        problem
            .machine_preferences()
            .iter()
            .copied()
            .filter(|&mc| language.available_on(mc))
            .filter(|&mc| self.count(mc) > 0)
            .collect()
    }

    /// Concrete machines a task can run on, best class first, and within a
    /// class fastest first. Applies memory and remote-hosting constraints.
    pub fn feasible_machines(&self, task: &TaskSpec) -> Vec<&MachineInfo> {
        let classes = self.feasible_classes(task);
        let mut out: Vec<&MachineInfo> = Vec::new();
        for class in classes {
            let mut tier: Vec<&MachineInfo> = self
                .by_class(class)
                .filter(|m| m.mem_mb >= task.mem_mb)
                .filter(|m| m.allows_remote || task.local_only)
                .collect();
            tier.sort_by(|a, b| {
                b.speed_mops
                    .partial_cmp(&a.speed_mops)
                    .expect("finite speeds")
                    .then(a.node.cmp(&b.node))
            });
            out.extend(tier);
        }
        out
    }

    /// Can the fleet run this task at all?
    pub fn can_host(&self, task: &TaskSpec) -> bool {
        !self.feasible_machines(task).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vce_taskgraph::{Language, ProblemClass};

    fn fleet() -> MachineDb {
        MachineDb::new()
            .with(MachineInfo::workstation(NodeId(0), 50.0))
            .with(MachineInfo::workstation(NodeId(1), 100.0))
            .with(
                MachineInfo::workstation(NodeId(2), 2000.0)
                    .with_class(MachineClass::Simd)
                    .with_mem_mb(512),
            )
            .with(
                MachineInfo::workstation(NodeId(3), 800.0)
                    .with_class(MachineClass::Mimd)
                    .with_mem_mb(256),
            )
            .with(MachineInfo::workstation(NodeId(4), 80.0).with_allows_remote(false))
    }

    fn task(class: ProblemClass, lang: Language) -> TaskSpec {
        TaskSpec::new("t")
            .with_class(class)
            .with_language(lang)
            .with_work(10.0)
    }

    #[test]
    fn class_queries() {
        let db = fleet();
        assert_eq!(db.count(MachineClass::Workstation), 3);
        assert_eq!(db.count(MachineClass::Simd), 1);
        assert_eq!(db.count(MachineClass::Vector), 0);
        assert_eq!(
            db.present_classes(),
            vec![
                MachineClass::Workstation,
                MachineClass::Simd,
                MachineClass::Mimd
            ]
        );
        assert!(db.get(NodeId(3)).is_some());
        assert!(db.get(NodeId(99)).is_none());
    }

    #[test]
    fn feasible_classes_respect_language() {
        let db = fleet();
        // HPF on a synchronous task: SIMD present, workstation excluded.
        let t = task(ProblemClass::Synchronous, Language::HpFortran);
        assert_eq!(
            db.feasible_classes(&t),
            vec![MachineClass::Simd, MachineClass::Mimd]
        );
        // HpCpp cannot target SIMD: loses the Simd tier.
        let t = task(ProblemClass::Synchronous, Language::HpCpp);
        assert_eq!(db.feasible_classes(&t), vec![MachineClass::Mimd]);
    }

    #[test]
    fn feasible_machines_sorted_best_first() {
        let db = fleet();
        let t = task(ProblemClass::Asynchronous, Language::C);
        let nodes: Vec<NodeId> = db.feasible_machines(&t).iter().map(|m| m.node).collect();
        // Workstations first (fastest first, node 4 excluded: no remote),
        // then MIMD.
        assert_eq!(nodes, vec![NodeId(1), NodeId(0), NodeId(3)]);
    }

    #[test]
    fn memory_constraint_filters() {
        let db = fleet();
        let t = task(ProblemClass::Asynchronous, Language::C).with_mem(200);
        let nodes: Vec<NodeId> = db.feasible_machines(&t).iter().map(|m| m.node).collect();
        assert_eq!(nodes, vec![NodeId(3)]); // only MIMD has ≥200MB
        assert!(db.can_host(&t));
        let t = t.with_mem(4096);
        assert!(!db.can_host(&t));
    }

    #[test]
    fn unannotated_task_has_no_feasible_machines() {
        let db = fleet();
        assert!(db.feasible_machines(&TaskSpec::new("bare")).is_empty());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let _ = fleet().with(MachineInfo::workstation(NodeId(0), 1.0));
    }
}
