//! Problem specification layer: build the initial task graph — notably
//! from an application-description script, the §5 prototype's input.

use vce_script::{Evaluated, LocalRun, PlacementRequest, TargetClass};
use vce_taskgraph::{ArcKind, ProblemClass, TaskGraph, TaskSpec};

/// Default work estimate for script-described programs (Mops). Scripts
/// carry no cost annotations; the coding level or the user refines this.
pub const DEFAULT_SCRIPT_WORK_MOPS: f64 = 1_000.0;

/// Convert an evaluated script into an initial task graph.
///
/// * Each remote request becomes a task carrying the requested instance
///   *range* (`ASYNC 5-` ⇒ 1..=5): the runtime runs as many replicas as
///   the group leader grants.
/// * `ASYNC`/`SYNC`/`LSYNC` targets pre-fill the design-stage class; pure
///   machine targets (`WORKSTATION 1 ...`) map to the class that prefers
///   that hardware.
/// * `LOCAL` programs become local-pinned tasks depending on every remote
///   task — §5: "a program to run on the local workstation after the
///   remote executions have begun".
/// * `CONNECT` statements become stream arcs.
pub fn graph_from_script(name: &str, eval: &Evaluated) -> TaskGraph {
    let mut g = TaskGraph::new(name);
    let mut remote_ids = Vec::new();
    for PlacementRequest {
        target,
        count,
        path,
    } in &eval.remote
    {
        let class = match target {
            TargetClass::Problem(p) => *p,
            TargetClass::Machine(m) => class_for_machine(*m),
        };
        let id = g.add_task(
            TaskSpec::new(path.clone())
                .with_class(class)
                .with_work(DEFAULT_SCRIPT_WORK_MOPS)
                .with_instance_range(count.min, count.max),
        );
        remote_ids.push(id);
    }
    for LocalRun { path } in &eval.local {
        let id = g.add_task(
            TaskSpec::new(path.clone())
                .with_class(ProblemClass::Asynchronous)
                .with_work(DEFAULT_SCRIPT_WORK_MOPS / 10.0)
                .local(),
        );
        for &r in &remote_ids {
            g.depends(id, r, 1);
        }
    }
    for (from, to, kib) in &eval.channels {
        if let (Some(f), Some(t)) = (g.find(from), g.find(to)) {
            g.add_arc(f, t, ArcKind::Stream, *kib);
        }
    }
    g
}

fn class_for_machine(m: vce_net::MachineClass) -> ProblemClass {
    use vce_net::MachineClass as MC;
    match m {
        MC::Simd | MC::Vector => ProblemClass::Synchronous,
        MC::Mimd => ProblemClass::LooselySynchronous,
        MC::Workstation => ProblemClass::Asynchronous,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vce_script::{evaluate, parse, EvalEnv, WEATHER_SCRIPT};
    use vce_taskgraph::algo::topo_sort;

    fn weather_graph() -> TaskGraph {
        let script = parse(WEATHER_SCRIPT).unwrap();
        let eval = evaluate(&script, &EvalEnv::new());
        graph_from_script("weather", &eval)
    }

    #[test]
    fn weather_script_becomes_four_tasks() {
        let g = weather_graph();
        assert_eq!(g.len(), 4);
        let collector = g.get(g.find("/apps/snow/collector.vce").unwrap()).unwrap();
        assert_eq!(collector.class, Some(ProblemClass::Asynchronous));
        assert_eq!(collector.instances, 2);
        let predictor = g.get(g.find("/apps/snow/predictor.vce").unwrap()).unwrap();
        assert_eq!(predictor.class, Some(ProblemClass::Synchronous));
        let display = g.get(g.find("/apps/snow/display.vce").unwrap()).unwrap();
        assert!(display.local_only);
    }

    #[test]
    fn local_task_depends_on_all_remotes() {
        let g = weather_graph();
        let display = g.find("/apps/snow/display.vce").unwrap();
        assert_eq!(g.predecessors(display).count(), 3);
        assert!(topo_sort(&g).is_some());
    }

    #[test]
    fn machine_targets_map_to_problem_classes() {
        let g = weather_graph();
        let uc = g
            .get(g.find("/apps/snow/usercollect.vce").unwrap())
            .unwrap();
        assert_eq!(uc.class, Some(ProblemClass::Asynchronous));
    }

    #[test]
    fn connect_statements_become_stream_arcs() {
        let script = parse("ASYNC 1 \"a\"\nASYNC 1 \"b\"\nCONNECT \"a\" \"b\" 64\n").unwrap();
        let eval = evaluate(&script, &EvalEnv::new());
        let g = graph_from_script("piped", &eval);
        let a = g.find("a").unwrap();
        assert_eq!(g.stream_peers(a).count(), 1);
        assert_eq!(
            g.arcs()
                .iter()
                .filter(|x| x.kind == ArcKind::Stream)
                .count(),
            1
        );
    }

    #[test]
    fn range_counts_use_max_instances() {
        let script = parse("ASYNC 5- \"a\"\nSYNC 5,10 \"b\"\n").unwrap();
        let eval = evaluate(&script, &EvalEnv::new());
        let g = graph_from_script("r", &eval);
        assert_eq!(g.get(g.find("a").unwrap()).unwrap().instances, 5);
        assert_eq!(g.get(g.find("b").unwrap()).unwrap().instances, 10);
    }
}
