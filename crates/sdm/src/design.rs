//! The design stage: classify each task's problem architecture.
//!
//! §3.1.1: "The design stage is responsible for analyzing the computational
//! needs and the existing dependencies for each task in the task graph ...
//! The parallel software design methodology used in the design stage
//! concentrates on the architecture of the problem and not the machine."
//!
//! User-supplied classes are respected; unclassified tasks are inferred
//! from the graph's structure:
//!
//! * many identical instances with **no** stream coupling → a regular
//!   data-parallel sweep → **synchronous**;
//! * stream-coupled tasks (peers exchanging data while running) → phased
//!   communication → **loosely synchronous**;
//! * everything else (irregular, event-driven, single processes) →
//!   **asynchronous**.

use vce_taskgraph::{ProblemClass, TaskGraph};

/// Instance count at or above which an uncoupled replicated task reads as
/// data-parallel.
pub const SYNCHRONOUS_INSTANCE_THRESHOLD: u32 = 4;

/// Run the design stage: fill in missing [`ProblemClass`] annotations.
/// Returns how many tasks were classified by inference.
pub fn run_design_stage(g: &mut TaskGraph) -> usize {
    let mut inferred = 0;
    let ids: Vec<_> = g.ids().collect();
    for id in ids {
        if g.get(id).expect("valid id").class.is_some() {
            continue;
        }
        let has_streams = g.stream_peers(id).count() > 0;
        let instances = g.get(id).expect("valid id").instances;
        let class = if has_streams {
            ProblemClass::LooselySynchronous
        } else if instances >= SYNCHRONOUS_INSTANCE_THRESHOLD {
            ProblemClass::Synchronous
        } else {
            ProblemClass::Asynchronous
        };
        g.get_mut(id).expect("valid id").class = Some(class);
        inferred += 1;
    }
    inferred
}

#[cfg(test)]
mod tests {
    use super::*;
    use vce_taskgraph::{ArcKind, TaskSpec};

    #[test]
    fn user_classes_are_respected() {
        let mut g = TaskGraph::new("g");
        let id = g.add_task(TaskSpec::new("t").with_class(ProblemClass::Synchronous));
        assert_eq!(run_design_stage(&mut g), 0);
        assert_eq!(g.get(id).unwrap().class, Some(ProblemClass::Synchronous));
    }

    #[test]
    fn replicated_uncoupled_task_is_synchronous() {
        let mut g = TaskGraph::new("g");
        let id = g.add_task(TaskSpec::new("sweep").with_instances(8));
        assert_eq!(run_design_stage(&mut g), 1);
        assert_eq!(g.get(id).unwrap().class, Some(ProblemClass::Synchronous));
    }

    #[test]
    fn stream_coupled_tasks_are_loosely_synchronous() {
        let mut g = TaskGraph::new("g");
        let a = g.add_task(TaskSpec::new("a").with_instances(8));
        let b = g.add_task(TaskSpec::new("b"));
        g.add_arc(a, b, ArcKind::Stream, 16);
        run_design_stage(&mut g);
        assert_eq!(
            g.get(a).unwrap().class,
            Some(ProblemClass::LooselySynchronous),
            "stream coupling dominates instance count"
        );
        assert_eq!(
            g.get(b).unwrap().class,
            Some(ProblemClass::LooselySynchronous)
        );
    }

    #[test]
    fn singleton_tasks_are_asynchronous() {
        let mut g = TaskGraph::new("g");
        let a = g.add_task(TaskSpec::new("a"));
        let b = g.add_task(TaskSpec::new("b").with_instances(2));
        g.depends(b, a, 1);
        run_design_stage(&mut g);
        assert_eq!(g.get(a).unwrap().class, Some(ProblemClass::Asynchronous));
        assert_eq!(g.get(b).unwrap().class, Some(ProblemClass::Asynchronous));
    }

    #[test]
    fn mixed_graph_counts_inferences() {
        let mut g = TaskGraph::new("g");
        g.add_task(TaskSpec::new("given").with_class(ProblemClass::Asynchronous));
        g.add_task(TaskSpec::new("infer-me"));
        g.add_task(TaskSpec::new("me-too").with_instances(6));
        assert_eq!(run_design_stage(&mut g), 2);
        assert!(g.tasks().iter().all(|t| t.class.is_some()));
    }
}
