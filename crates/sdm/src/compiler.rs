//! Simulated compilers — the documented substitution for the native
//! toolchains on the paper's machines.
//!
//! The runtime consumes two things from a compiler: *whether* a (language,
//! machine-class) pair is compilable, and *how long* compilation takes
//! (this drives anticipatory compilation, §4.5, and
//! migration-by-recompilation, §4.4). The cost model charges a base price
//! per language plus a size-dependent term, with a penalty for the exotic
//! parallelizing compilers of the era.

use std::fmt;

use vce_net::MachineClass;
use vce_taskgraph::Language;

/// A compilation request.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileJob {
    /// Program identity (task name / path).
    pub unit: String,
    /// Source language.
    pub language: Language,
    /// Target machine class.
    pub target: MachineClass,
    /// Work estimate of the program, Mops (proxy for source size).
    pub work_mops: f64,
}

/// Compilation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// No compiler for this language on this machine class.
    NoToolchain {
        /// The language.
        language: Language,
        /// The class without a toolchain for it.
        target: MachineClass,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NoToolchain { language, target } => {
                write!(f, "no {language:?} toolchain on {target} machines")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Result of a successful compile.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileOutput {
    /// Time the compile took, µs.
    pub compile_us: u64,
    /// Binary size, KiB (drives transfer costs when dispatching).
    pub binary_kib: u64,
}

/// The toolchain inventory + cost model.
#[derive(Debug, Clone)]
pub struct Compiler {
    /// Base compile time, µs.
    pub base_us: u64,
    /// Additional µs per Mop of program size.
    pub per_mop_us: u64,
}

impl Default for Compiler {
    fn default() -> Self {
        // A few seconds base, growing with program size — 1994 toolchains.
        Self {
            base_us: 2_000_000,
            per_mop_us: 500,
        }
    }
}

impl Compiler {
    /// Language penalty: parallelizing compilers are slower than `cc`.
    fn language_factor(language: Language) -> f64 {
        match language {
            Language::C => 1.0,
            Language::Fortran => 1.2,
            Language::HpCpp => 2.5,
            Language::HpFortran => 3.0,
        }
    }

    /// Exotic back-ends take longer.
    fn target_factor(target: MachineClass) -> f64 {
        match target {
            MachineClass::Workstation => 1.0,
            MachineClass::Mimd => 1.5,
            MachineClass::Vector => 2.0,
            MachineClass::Simd => 2.5,
        }
    }

    /// Run one compile.
    pub fn compile(&self, job: &CompileJob) -> Result<CompileOutput, CompileError> {
        if !job.language.available_on(job.target) {
            return Err(CompileError::NoToolchain {
                language: job.language,
                target: job.target,
            });
        }
        let factor = Self::language_factor(job.language) * Self::target_factor(job.target);
        let compile_us =
            ((self.base_us as f64 + self.per_mop_us as f64 * job.work_mops) * factor) as u64;
        let binary_kib = 64 + (job.work_mops / 4.0) as u64;
        Ok(CompileOutput {
            compile_us,
            binary_kib,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(language: Language, target: MachineClass) -> CompileJob {
        CompileJob {
            unit: "predictor".into(),
            language,
            target,
            work_mops: 1000.0,
        }
    }

    #[test]
    fn c_on_workstation_is_cheapest() {
        let c = Compiler::default();
        let ws = c
            .compile(&job(Language::C, MachineClass::Workstation))
            .unwrap();
        let simd = c
            .compile(&job(Language::HpFortran, MachineClass::Simd))
            .unwrap();
        assert!(simd.compile_us > ws.compile_us * 5);
    }

    #[test]
    fn missing_toolchain_reported() {
        let c = Compiler::default();
        let e = c
            .compile(&job(Language::HpFortran, MachineClass::Workstation))
            .unwrap_err();
        assert_eq!(
            e,
            CompileError::NoToolchain {
                language: Language::HpFortran,
                target: MachineClass::Workstation
            }
        );
        assert!(e.to_string().contains("toolchain"));
    }

    #[test]
    fn cost_scales_with_program_size() {
        let c = Compiler::default();
        let small = c
            .compile(&CompileJob {
                work_mops: 10.0,
                ..job(Language::C, MachineClass::Workstation)
            })
            .unwrap();
        let big = c
            .compile(&CompileJob {
                work_mops: 100_000.0,
                ..job(Language::C, MachineClass::Workstation)
            })
            .unwrap();
        assert!(big.compile_us > small.compile_us);
        assert!(big.binary_kib > small.binary_kib);
    }

    #[test]
    fn deterministic() {
        let c = Compiler::default();
        let j = job(Language::HpCpp, MachineClass::Mimd);
        assert_eq!(c.compile(&j), c.compile(&j));
    }
}
