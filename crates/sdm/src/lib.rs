#![warn(missing_docs)]
//! # vce-sdm — the Software Development Module + compilation manager
//!
//! Fig. 1 of the paper stacks five layers; this crate implements the
//! development-side three and the compilation manager that bridges into
//! the execution module:
//!
//! 1. **Problem specification** ([`spec`]): produce the initial task graph
//!    — including from an application-description script, which is how the
//!    §5 prototype described applications.
//! 2. **Design stage** ([`design`]): attach problem-architecture classes
//!    (Fox's synchronous / loosely-synchronous / asynchronous) by analysing
//!    "the computational needs and the existing dependencies for each task
//!    in the task graph".
//! 3. **Coding level** ([`coding`]): attach implementation languages and
//!    derive the communication plan (MPI channels for stream arcs, file
//!    transfers for dataflow arcs).
//! 4. **Compilation manager** ([`compilemgr`]): consult the machine
//!    database (§3.1.2's "simple database, maintained by VCE software"),
//!    map each task to *every* feasible machine class, and prepare binaries
//!    for all of them up front — §4.1: "By preparing all possible
//!    executables before an application is actually run, the runtime
//!    manager will be able to move a given task among various machine
//!    architectures without the need to compile a task while the
//!    application is running."
//!
//! Compilers are simulated by a cost model ([`compiler`]) — the documented
//! substitution for the native toolchains of the paper's testbed.

pub mod anticipate;
pub mod coding;
pub mod compilemgr;
pub mod compiler;
pub mod design;
pub mod machinedb;
pub mod spec;

pub use compilemgr::{Binary, BinaryCache, CompilationManager, CompileReport};
pub use compiler::{CompileError, CompileJob, Compiler};
pub use design::run_design_stage;
pub use machinedb::MachineDb;
pub use spec::graph_from_script;
