//! The coding level: implementation languages and the communication plan.
//!
//! §3.1.1: the coding level parallelizes tasks "using architecture
//! independent languages" (HPF, HPC++) with communication "via standard
//! communication libraries (based on standards such as MPI)". We assign a
//! default language per problem class when the user gave none, and derive
//! the [`CommPlan`] — which channels and transfers the runtime must
//! provision — from the graph's arcs.

use vce_taskgraph::{ArcKind, Language, ProblemClass, TaskGraph, TaskId};

/// Default language per problem class (the idiomatic 1994 choice).
pub fn default_language(class: ProblemClass) -> Language {
    match class {
        ProblemClass::Synchronous => Language::HpFortran,
        ProblemClass::LooselySynchronous => Language::HpCpp,
        ProblemClass::Asynchronous => Language::C,
    }
}

/// One provisioned communication element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommElement {
    /// A VCE channel for an ongoing stream between two tasks.
    Channel {
        /// Sender task.
        from: TaskId,
        /// Receiver task.
        to: TaskId,
        /// Volume per step, KiB.
        kib: u64,
    },
    /// A one-shot output transfer along a dataflow arc.
    Transfer {
        /// Producer.
        from: TaskId,
        /// Consumer.
        to: TaskId,
        /// Volume, KiB.
        kib: u64,
    },
}

/// The communication plan for an application.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommPlan {
    /// Elements in arc order.
    pub elements: Vec<CommElement>,
}

impl CommPlan {
    /// Channels only.
    pub fn channels(&self) -> impl Iterator<Item = &CommElement> {
        self.elements
            .iter()
            .filter(|e| matches!(e, CommElement::Channel { .. }))
    }

    /// Transfers only.
    pub fn transfers(&self) -> impl Iterator<Item = &CommElement> {
        self.elements
            .iter()
            .filter(|e| matches!(e, CommElement::Transfer { .. }))
    }

    /// Total volume moved per application step, KiB.
    pub fn total_kib(&self) -> u64 {
        self.elements
            .iter()
            .map(|e| match e {
                CommElement::Channel { kib, .. } | CommElement::Transfer { kib, .. } => *kib,
            })
            .sum()
    }
}

/// Run the coding level: fill languages and estimate work where missing,
/// and derive the communication plan. Returns the plan.
///
/// Tasks with no work estimate get `fallback_work_mops` — the coding level
/// must leave the graph coding-complete for the compilation manager.
pub fn run_coding_level(g: &mut TaskGraph, fallback_work_mops: f64) -> CommPlan {
    let ids: Vec<_> = g.ids().collect();
    for id in ids {
        let t = g.get_mut(id).expect("valid id");
        if t.language.is_none() {
            let class = t
                .class
                .expect("design stage must run before the coding level");
            t.language = Some(default_language(class));
        }
        if t.work_mops <= 0.0 {
            t.work_mops = fallback_work_mops;
        }
    }
    let mut plan = CommPlan::default();
    for a in g.arcs() {
        plan.elements.push(match a.kind {
            ArcKind::Stream => CommElement::Channel {
                from: a.from,
                to: a.to,
                kib: a.data_kib,
            },
            ArcKind::DataFlow => CommElement::Transfer {
                from: a.from,
                to: a.to,
                kib: a.data_kib,
            },
        });
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use vce_taskgraph::{validate, TaskSpec};

    #[test]
    fn default_languages_per_class() {
        assert_eq!(
            default_language(ProblemClass::Synchronous),
            Language::HpFortran
        );
        assert_eq!(
            default_language(ProblemClass::LooselySynchronous),
            Language::HpCpp
        );
        assert_eq!(default_language(ProblemClass::Asynchronous), Language::C);
    }

    #[test]
    fn fills_language_and_work_until_coding_complete() {
        let mut g = TaskGraph::new("g");
        let a = g.add_task(TaskSpec::new("a").with_class(ProblemClass::Synchronous));
        let b = g.add_task(
            TaskSpec::new("b")
                .with_class(ProblemClass::Asynchronous)
                .with_language(Language::Fortran)
                .with_work(7.0),
        );
        g.depends(b, a, 32);
        let plan = run_coding_level(&mut g, 500.0);
        assert_eq!(g.get(a).unwrap().language, Some(Language::HpFortran));
        assert_eq!(g.get(a).unwrap().work_mops, 500.0);
        // User choices untouched.
        assert_eq!(g.get(b).unwrap().language, Some(Language::Fortran));
        assert_eq!(g.get(b).unwrap().work_mops, 7.0);
        assert!(validate(&g).is_ok());
        assert_eq!(plan.transfers().count(), 1);
        assert_eq!(plan.channels().count(), 0);
        assert_eq!(plan.total_kib(), 32);
    }

    #[test]
    fn stream_arcs_become_channels() {
        let mut g = TaskGraph::new("g");
        let a = g.add_task(
            TaskSpec::new("a")
                .with_class(ProblemClass::LooselySynchronous)
                .with_work(1.0),
        );
        let b = g.add_task(
            TaskSpec::new("b")
                .with_class(ProblemClass::LooselySynchronous)
                .with_work(1.0),
        );
        g.add_arc(a, b, ArcKind::Stream, 128);
        let plan = run_coding_level(&mut g, 1.0);
        assert_eq!(
            plan.elements,
            vec![CommElement::Channel {
                from: a,
                to: b,
                kib: 128
            }]
        );
    }

    #[test]
    #[should_panic(expected = "design stage must run")]
    fn coding_before_design_panics() {
        let mut g = TaskGraph::new("g");
        g.add_task(TaskSpec::new("bare"));
        run_coding_level(&mut g, 1.0);
    }
}
