//! Property tests: decode(encode(x)) == x for every Codec impl and for
//! arbitrary dynamic Values, plus "malformed input never panics".

use std::collections::BTreeMap;

use proptest::prelude::*;
use vce_codec::{from_bytes, to_bytes, Value};

fn arb_value(depth: u32) -> BoxedStrategy<Value> {
    let leaf = prop_oneof![
        Just(Value::Unit),
        any::<bool>().prop_map(Value::Bool),
        any::<u64>().prop_map(Value::U64),
        any::<i64>().prop_map(Value::I64),
        // Use finite doubles; NaN breaks PartialEq-based round-trip checks.
        prop::num::f64::NORMAL.prop_map(Value::F64),
        ".*".prop_map(Value::Str),
        prop::collection::vec(any::<u8>(), 0..64).prop_map(Value::Bytes),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        let inner = arb_value(depth - 1);
        prop_oneof![
            leaf,
            prop::collection::vec(arb_value(depth - 1), 0..4).prop_map(Value::List),
            prop::collection::vec(arb_value(depth - 1), 0..4).prop_map(Value::Record),
            prop::collection::btree_map("[a-z]{1,8}", inner, 0..4).prop_map(Value::Map),
        ]
        .boxed()
    }
}

proptest! {
    #[test]
    fn u64_round_trip(v in any::<u64>()) {
        prop_assert_eq!(from_bytes::<u64>(&to_bytes(&v)).unwrap(), v);
    }

    #[test]
    fn i64_round_trip(v in any::<i64>()) {
        prop_assert_eq!(from_bytes::<i64>(&to_bytes(&v)).unwrap(), v);
    }

    #[test]
    fn f64_round_trip(v in prop::num::f64::ANY) {
        let back = from_bytes::<f64>(&to_bytes(&v)).unwrap();
        // Bit-exact round trip, including NaN payloads and -0.0.
        prop_assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn string_round_trip(s in ".*") {
        prop_assert_eq!(from_bytes::<String>(&to_bytes(&s)).unwrap(), s);
    }

    #[test]
    fn vec_u32_round_trip(v in prop::collection::vec(any::<u32>(), 0..128)) {
        prop_assert_eq!(from_bytes::<Vec<u32>>(&to_bytes(&v)).unwrap(), v);
    }

    #[test]
    fn map_round_trip(m in prop::collection::btree_map("[a-z]{1,6}", any::<i64>(), 0..32)) {
        prop_assert_eq!(from_bytes::<BTreeMap<String, i64>>(&to_bytes(&m)).unwrap(), m);
    }

    #[test]
    fn option_round_trip(v in prop::option::of(any::<u16>())) {
        prop_assert_eq!(from_bytes::<Option<u16>>(&to_bytes(&v)).unwrap(), v);
    }

    #[test]
    fn tuple_round_trip(a in any::<u8>(), b in any::<i32>(), c in ".{0,16}") {
        let t = (a, b, c);
        let back: (u8, i32, String) = from_bytes(&to_bytes(&t)).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn value_round_trip(v in arb_value(3)) {
        let bytes = v.to_bytes();
        prop_assert_eq!(Value::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Decoding attacker-controlled garbage must fail gracefully.
        let _ = Value::from_bytes(&bytes);
        let _ = from_bytes::<Vec<String>>(&bytes);
        let _ = from_bytes::<(u64, String, bool)>(&bytes);
    }

    #[test]
    fn truncation_never_panics(v in arb_value(2), cut_frac in 0.0f64..1.0) {
        let bytes = v.to_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let _ = Value::from_bytes(&bytes[..cut.min(bytes.len())]);
    }
}
