//! Dynamic wire values — the runtime-proxy marshaling path (paper Fig. 2).
//!
//! Client/server proxies in the VCE forward method invocations whose
//! signatures are only known from an IDL description loaded at runtime. They
//! therefore marshal *tagged, self-describing* values: each datum carries its
//! [`WireType`], so a proxy can decode, inspect, convert and re-encode
//! arguments it has no Rust type for.

use std::collections::BTreeMap;
use std::fmt;

use crate::decode::Decoder;
use crate::encode::Encoder;
use crate::error::{CodecError, Result};
use crate::wire::WireType;

/// A dynamically-typed wire datum.
///
/// This is the argument/return representation used by
/// `vce-channels`' proxy layer; it can represent anything the static
/// [`Codec`](crate::Codec) path can.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absence of a value.
    Unit,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer (widest representation).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// IEEE-754 double.
    F64(f64),
    /// UTF-8 string.
    Str(String),
    /// Opaque bytes.
    Bytes(Vec<u8>),
    /// Homogeneous or heterogeneous list.
    List(Vec<Value>),
    /// String-keyed map.
    Map(BTreeMap<String, Value>),
    /// Positional record (struct fields in declaration order).
    Record(Vec<Value>),
}

impl Value {
    /// The wire type tag this value encodes with.
    pub fn wire_type(&self) -> WireType {
        match self {
            Value::Unit => WireType::Unit,
            Value::Bool(_) => WireType::Bool,
            Value::U64(_) => WireType::U64,
            Value::I64(_) => WireType::I64,
            Value::F64(_) => WireType::F64,
            Value::Str(_) => WireType::Str,
            Value::Bytes(_) => WireType::Bytes,
            Value::List(_) => WireType::List,
            Value::Map(_) => WireType::Map,
            Value::Record(_) => WireType::Record,
        }
    }

    /// Encode this value, tag first, into `enc`.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_tag(self.wire_type());
        match self {
            Value::Unit => {}
            Value::Bool(b) => enc.put_bool(*b),
            Value::U64(v) => enc.put_u64(*v),
            Value::I64(v) => enc.put_i64(*v),
            Value::F64(v) => enc.put_f64(*v),
            Value::Str(s) => enc.put_str(s),
            Value::Bytes(b) => enc.put_len_bytes(b),
            Value::List(items) | Value::Record(items) => {
                enc.put_u32(items.len() as u32);
                for it in items {
                    it.encode(enc);
                }
            }
            Value::Map(m) => {
                enc.put_u32(m.len() as u32);
                for (k, v) in m {
                    enc.put_str(k);
                    v.encode(enc);
                }
            }
        }
    }

    /// Decode one tagged value.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        dec.push_depth()?;
        let tag = dec.get_tag()?;
        let v = match tag {
            WireType::Unit => Value::Unit,
            WireType::Bool => Value::Bool(dec.get_bool()?),
            WireType::U64 => Value::U64(dec.get_u64()?),
            WireType::I64 => Value::I64(dec.get_i64()?),
            WireType::F64 => Value::F64(dec.get_f64()?),
            WireType::Str => Value::Str(dec.get_str()?.to_owned()),
            WireType::Bytes => Value::Bytes(dec.get_len_bytes()?.to_vec()),
            WireType::List => {
                let n = dec.get_count(1)?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(Value::decode(dec)?);
                }
                Value::List(items)
            }
            WireType::Record => {
                let n = dec.get_count(1)?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(Value::decode(dec)?);
                }
                Value::Record(items)
            }
            WireType::Map => {
                let n = dec.get_count(2)?;
                let mut m = BTreeMap::new();
                for _ in 0..n {
                    let k = dec.get_str()?.to_owned();
                    let v = Value::decode(dec)?;
                    m.insert(k, v);
                }
                Value::Map(m)
            }
        };
        dec.pop_depth();
        Ok(v)
    }

    /// Encode to a fresh byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.finish()
    }

    /// Decode from a byte slice, requiring full consumption.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut dec = Decoder::new(bytes);
        let v = Value::decode(&mut dec)?;
        if !dec.is_empty() {
            return Err(CodecError::TrailingBytes {
                remaining: dec.remaining(),
            });
        }
        Ok(v)
    }

    // ---- accessors used by proxy/IDL code ----

    /// As an unsigned integer, if this is `U64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// As a signed integer, if this is `I64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// As a double, if this is `F64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// As a string slice, if this is `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// As a boolean, if this is `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As a list slice, if this is `List` or `Record`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) | Value::Record(v) => Some(v),
            _ => None,
        }
    }

    /// As a map, if this is `Map`.
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "bytes[{}]", b.len()),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{it}")?;
                }
                write!(f, "]")
            }
            Value::Record(items) => {
                write!(f, "{{")?;
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{it}")?;
                }
                write!(f, "}}")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k:?}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nested_sample() -> Value {
        let mut m = BTreeMap::new();
        m.insert("load".to_string(), Value::F64(0.75));
        m.insert(
            "tasks".to_string(),
            Value::List(vec![Value::Str("collector".into()), Value::U64(2)]),
        );
        Value::Record(vec![
            Value::Unit,
            Value::Bool(true),
            Value::I64(-9),
            Value::Bytes(vec![1, 2, 3]),
            Value::Map(m),
        ])
    }

    #[test]
    fn nested_round_trip() {
        let v = nested_sample();
        let bytes = v.to_bytes();
        assert_eq!(Value::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn deep_nesting_rejected() {
        // Build a list nested past MAX_DEPTH.
        let mut v = Value::U64(1);
        for _ in 0..(crate::decode::MAX_DEPTH + 2) {
            v = Value::List(vec![v]);
        }
        let bytes = v.to_bytes();
        assert!(matches!(
            Value::from_bytes(&bytes),
            Err(CodecError::DepthExceeded { .. })
        ));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::U64(3).as_u64(), Some(3));
        assert_eq!(Value::I64(-3).as_i64(), Some(-3));
        assert_eq!(Value::F64(0.5).as_f64(), Some(0.5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::U64(3).as_str(), None);
        assert!(Value::List(vec![]).as_list().unwrap().is_empty());
    }

    #[test]
    fn display_is_readable() {
        let s = nested_sample().to_string();
        assert!(s.contains("collector"));
        assert!(s.contains("bytes[3]"));
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Value::from(5u64), Value::U64(5));
        assert_eq!(Value::from(-5i64), Value::I64(-5));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn wire_type_matches() {
        assert_eq!(nested_sample().wire_type(), WireType::Record);
        assert_eq!(Value::Unit.wire_type(), WireType::Unit);
    }

    #[test]
    fn truncated_buffer_fails_cleanly() {
        let bytes = nested_sample().to_bytes();
        for cut in 0..bytes.len() {
            // Every prefix must fail without panicking (or, rarely, decode to
            // a shorter valid value then hit TrailingBytes — also fine).
            let _ = Value::from_bytes(&bytes[..cut]);
        }
    }
}
