//! Wire-type tags.
//!
//! Every tagged datum on the wire is preceded by one byte identifying its
//! shape. Tags make the format self-describing, which the dynamic
//! [`Value`](crate::Value) path relies on: a runtime proxy can faithfully
//! forward an argument list it has never seen a compile-time type for.

use crate::error::{CodecError, Result};

/// One-byte type tag preceding a tagged wire datum.
///
/// The numeric values are part of the wire format and must never be
/// renumbered; new types may only be appended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum WireType {
    /// Absence of a value (`Option::None`, void returns).
    Unit = 0,
    /// Boolean, encoded as one byte (0 or 1).
    Bool = 1,
    /// Unsigned 64-bit integer, big-endian. Narrower unsigned ints widen to
    /// this on the tagged path.
    U64 = 2,
    /// Signed 64-bit integer, big-endian two's complement.
    I64 = 3,
    /// IEEE-754 binary64, big-endian. (`f32` widens to this on the tagged
    /// path, exactly as XDR promotes floats in many RPC stacks.)
    F64 = 4,
    /// UTF-8 string: u32 byte length, then bytes.
    Str = 5,
    /// Opaque bytes: u32 length, then bytes.
    Bytes = 6,
    /// Homogeneously-typed list: u32 count, then tagged elements.
    List = 7,
    /// String-keyed map: u32 count, then (string, tagged value) pairs.
    Map = 8,
    /// Record/struct: u32 field count, then tagged field values in
    /// declaration order.
    Record = 9,
}

impl WireType {
    /// Decode a tag byte.
    pub fn from_byte(b: u8) -> Result<Self> {
        Ok(match b {
            0 => WireType::Unit,
            1 => WireType::Bool,
            2 => WireType::U64,
            3 => WireType::I64,
            4 => WireType::F64,
            5 => WireType::Str,
            6 => WireType::Bytes,
            7 => WireType::List,
            8 => WireType::Map,
            9 => WireType::Record,
            other => return Err(CodecError::InvalidTag(other)),
        })
    }

    /// The tag byte for this wire type.
    pub fn as_byte(self) -> u8 {
        self as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_tags() {
        for b in 0u8..=9 {
            let wt = WireType::from_byte(b).unwrap();
            assert_eq!(wt.as_byte(), b);
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        for b in 10u8..=255 {
            assert_eq!(WireType::from_byte(b), Err(CodecError::InvalidTag(b)));
        }
    }
}
