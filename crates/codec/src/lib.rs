#![warn(missing_docs)]
//! # vce-codec — architecture-independent marshaling
//!
//! The VCE paper (§4.2) requires that data crossing machine boundaries be
//! translated "into architecture independent form" by proxies and
//! communication libraries, because a single virtual application may span
//! big-endian supercomputers and little-endian workstations. In 1994 this was
//! the job of Sun XDR or the OMG IDL compiler's marshaling stubs.
//!
//! This crate is the reproduction of that layer: a compact, self-describing,
//! **big-endian (network order)** wire format with
//!
//! * a [`Codec`] trait implemented for all primitives, strings, byte buffers,
//!   `Option`, `Vec`, tuples and maps — the static (stub-generated) path;
//! * a dynamic [`Value`] type that can represent any wire datum without
//!   compile-time knowledge of its shape — the path used by runtime-generated
//!   proxies ([Fig. 2 of the paper](crate::value)), which must forward
//!   arguments for methods whose signatures are only known from an IDL
//!   description at runtime;
//! * explicit [`wire::WireType`] tags so a decoder can always skip or
//!   round-trip data it does not understand.
//!
//! Unlike real XDR we do not pad to 4-byte boundaries; every field is
//! length-exact. This is documented as a deliberate deviation (DESIGN.md):
//! padding existed for word-aligned DMA on 1990s hardware and has no
//! behavioural role in the experiments.
//!
//! ## Example
//!
//! ```
//! use vce_codec::{Codec, Decoder, Encoder};
//!
//! let mut enc = Encoder::new();
//! 42u32.encode(&mut enc);
//! "predictor.vce".to_string().encode(&mut enc);
//! let bytes = enc.finish();
//!
//! let mut dec = Decoder::new(&bytes);
//! assert_eq!(u32::decode(&mut dec).unwrap(), 42);
//! assert_eq!(String::decode(&mut dec).unwrap(), "predictor.vce");
//! assert!(dec.is_empty());
//! ```

pub mod codec;
pub mod decode;
pub mod encode;
pub mod error;
pub mod value;
pub mod wire;

pub use codec::Codec;
pub use decode::Decoder;
pub use encode::Encoder;
pub use error::{CodecError, Result};
pub use value::Value;
pub use wire::WireType;

/// Encode a single [`Codec`] value into a fresh byte vector.
///
/// Convenience wrapper over [`Encoder`]; the inverse of [`from_bytes`].
pub fn to_bytes<T: Codec>(value: &T) -> Vec<u8> {
    let mut enc = Encoder::new();
    value.encode(&mut enc);
    enc.finish()
}

/// Decode a single [`Codec`] value directly from a [`bytes::Bytes`]
/// buffer, requiring that it is fully consumed. Unlike [`from_bytes`],
/// nested byte fields read with [`Decoder::get_bytes`] come back as
/// zero-copy sub-views of `buf` rather than fresh copies — the decode
/// path for protocol messages whose payloads ride inside an envelope.
pub fn from_backing<T: Codec>(buf: &bytes::Bytes) -> Result<T> {
    let mut dec = Decoder::with_backing(buf);
    let v = T::decode(&mut dec)?;
    if !dec.is_empty() {
        return Err(CodecError::TrailingBytes {
            remaining: dec.remaining(),
        });
    }
    Ok(v)
}

/// Decode a single [`Codec`] value from a byte slice, requiring that the
/// slice is fully consumed.
pub fn from_bytes<T: Codec>(bytes: &[u8]) -> Result<T> {
    let mut dec = Decoder::new(bytes);
    let v = T::decode(&mut dec)?;
    if !dec.is_empty() {
        return Err(CodecError::TrailingBytes {
            remaining: dec.remaining(),
        });
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_helpers() {
        let v = vec![1u64, 2, 3];
        let bytes = to_bytes(&v);
        let back: Vec<u64> = from_bytes(&bytes).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&7u32);
        bytes.push(0xff);
        let err = from_bytes::<u32>(&bytes).unwrap_err();
        assert!(matches!(err, CodecError::TrailingBytes { remaining: 1 }));
    }
}
