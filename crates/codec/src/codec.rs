//! The static [`Codec`] trait — the stub-generated marshaling path.
//!
//! Compile-time-known message types (everything in `vce-net`, `vce-isis`,
//! `vce-exm`) implement `Codec` by field-wise composition, the way a 1994 IDL
//! compiler would have emitted XDR stubs. The encoding here is *untagged*:
//! both sides know the schema, so no `WireType` bytes are spent. The tagged,
//! self-describing path lives in [`crate::value`].

use std::collections::BTreeMap;

use crate::decode::Decoder;
use crate::encode::Encoder;
use crate::error::Result;

/// A type that can marshal itself to and from architecture-independent bytes.
///
/// Implementations must satisfy the round-trip law
/// `decode(encode(x)) == x`, which the property tests in
/// `tests/proptest_roundtrip.rs` verify for every implementation here.
pub trait Codec: Sized {
    /// Append this value to the encoder.
    fn encode(&self, enc: &mut Encoder);
    /// Read a value of this type from the decoder.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self>;
}

impl Codec for () {
    fn encode(&self, _enc: &mut Encoder) {}
    fn decode(_dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(())
    }
}

impl Codec for bool {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bool(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        dec.get_bool()
    }
}

macro_rules! impl_codec_uint {
    ($($t:ty),*) => {$(
        impl Codec for $t {
            fn encode(&self, enc: &mut Encoder) {
                enc.put_u64(u64::from(*self));
            }
            fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
                let v = dec.get_u64()?;
                <$t>::try_from(v).map_err(|_| crate::error::CodecError::InvalidDiscriminant {
                    value: v,
                    type_name: stringify!($t),
                })
            }
        }
    )*};
}
impl_codec_uint!(u8, u16, u32);

impl Codec for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        dec.get_u64()
    }
}

impl Codec for usize {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(*self as u64);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let v = dec.get_u64()?;
        usize::try_from(v).map_err(|_| crate::error::CodecError::InvalidDiscriminant {
            value: v,
            type_name: "usize",
        })
    }
}

macro_rules! impl_codec_sint {
    ($($t:ty),*) => {$(
        impl Codec for $t {
            fn encode(&self, enc: &mut Encoder) {
                enc.put_i64(i64::from(*self));
            }
            fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
                let v = dec.get_i64()?;
                <$t>::try_from(v).map_err(|_| crate::error::CodecError::InvalidDiscriminant {
                    value: v as u64,
                    type_name: stringify!($t),
                })
            }
        }
    )*};
}
impl_codec_sint!(i8, i16, i32);

impl Codec for i64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_i64(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        dec.get_i64()
    }
}

impl Codec for f64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        dec.get_f64()
    }
}

impl Codec for f32 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(f64::from(*self));
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(dec.get_f64()? as f32)
    }
}

impl Codec for String {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(dec.get_str()?.to_owned())
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            None => enc.put_bool(false),
            Some(v) => {
                enc.put_bool(true);
                v.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        if dec.get_bool()? {
            Ok(Some(T::decode(dec)?))
        } else {
            Ok(None)
        }
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, enc: &mut Encoder) {
        debug_assert!(self.len() <= u32::MAX as usize);
        enc.put_u32(self.len() as u32);
        for item in self {
            item.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        // Each element is at least one byte on the wire for all our types.
        let n = dec.get_count(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<K: Codec + Ord, V: Codec> Codec for BTreeMap<K, V> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.len() as u32);
        for (k, v) in self {
            k.encode(enc);
            v.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let n = dec.get_count(2)?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::decode(dec)?;
            let v = V::decode(dec)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

macro_rules! impl_codec_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Codec),+> Codec for ($($name,)+) {
            fn encode(&self, enc: &mut Encoder) {
                $(self.$idx.encode(enc);)+
            }
            fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
                Ok(($($name::decode(dec)?,)+))
            }
        }
    )+};
}
impl_codec_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
);

/// Implement [`Codec`] for a fieldless enum with explicit `u64`
/// discriminants. Used by the protocol crates for message kinds, machine
/// classes, problem classes, etc.
#[macro_export]
macro_rules! impl_codec_for_enum {
    ($ty:ty { $($variant:path => $disc:literal),+ $(,)? }) => {
        impl $crate::Codec for $ty {
            fn encode(&self, enc: &mut $crate::Encoder) {
                let d: u64 = match self {
                    $($variant => $disc,)+
                };
                enc.put_u64(d);
            }
            fn decode(dec: &mut $crate::Decoder<'_>) -> $crate::Result<Self> {
                let d = dec.get_u64()?;
                match d {
                    $($disc => Ok($variant),)+
                    other => Err($crate::CodecError::InvalidDiscriminant {
                        value: other,
                        type_name: stringify!($ty),
                    }),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_bytes, to_bytes};

    #[derive(Debug, PartialEq, Eq)]
    enum Color {
        Red,
        Green,
        Blue,
    }
    impl_codec_for_enum!(Color {
        Color::Red => 0,
        Color::Green => 1,
        Color::Blue => 2,
    });

    #[test]
    fn enum_macro_round_trip() {
        for c in [Color::Red, Color::Green, Color::Blue] {
            let bytes = to_bytes(&c);
            assert_eq!(from_bytes::<Color>(&bytes).unwrap(), c);
        }
    }

    #[test]
    fn enum_macro_bad_discriminant() {
        let bytes = to_bytes(&99u64);
        assert!(from_bytes::<Color>(&bytes).is_err());
    }

    #[test]
    fn option_round_trip() {
        for v in [None, Some(5u32)] {
            assert_eq!(from_bytes::<Option<u32>>(&to_bytes(&v)).unwrap(), v);
        }
    }

    #[test]
    fn map_round_trip() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2u64);
        assert_eq!(
            from_bytes::<BTreeMap<String, u64>>(&to_bytes(&m)).unwrap(),
            m
        );
    }

    #[test]
    fn tuple_round_trip() {
        let t = (1u8, -2i32, "x".to_string(), true, 2.5f64);
        let back: (u8, i32, String, bool, f64) = from_bytes(&to_bytes(&t)).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn narrow_uint_range_checked() {
        let bytes = to_bytes(&300u64);
        assert!(from_bytes::<u8>(&bytes).is_err());
        let bytes = to_bytes(&255u64);
        assert_eq!(from_bytes::<u8>(&bytes).unwrap(), 255);
    }

    #[test]
    fn narrow_sint_range_checked() {
        let bytes = to_bytes(&(i64::from(i32::MIN) - 1));
        assert!(from_bytes::<i32>(&bytes).is_err());
    }

    #[test]
    fn vec_of_strings() {
        let v = vec!["collector".to_string(), "predictor".to_string()];
        assert_eq!(from_bytes::<Vec<String>>(&to_bytes(&v)).unwrap(), v);
    }

    #[test]
    fn f32_widens_via_f64() {
        let x = 3.25f32;
        let back: f32 = from_bytes(&to_bytes(&x)).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn unit_is_zero_bytes() {
        assert!(to_bytes(&()).is_empty());
    }
}
