//! Error type for encoding/decoding failures.

use std::fmt;

use crate::wire::WireType;

/// Result alias used throughout the codec.
pub type Result<T> = std::result::Result<T, CodecError>;

/// Everything that can go wrong while decoding a wire buffer.
///
/// Encoding is infallible (it only appends to an in-memory buffer), so this
/// type only describes decode-side failures. Each variant carries enough
/// context to diagnose a malformed message from a remote daemon without a
/// debugger — important because in the VCE a bad message may originate on a
/// machine of a different architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the requested number of bytes were available.
    UnexpectedEof {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A wire-type tag byte did not correspond to any known [`WireType`].
    InvalidTag(u8),
    /// A tag was read successfully but did not match the type the caller
    /// asked for.
    TypeMismatch {
        /// Type the caller expected.
        expected: WireType,
        /// Type found on the wire.
        found: WireType,
    },
    /// A length prefix exceeded the configured sanity limit.
    LengthOverflow {
        /// Declared length.
        declared: u64,
        /// Maximum the decoder accepts.
        limit: u64,
    },
    /// Bytes declared as a string were not valid UTF-8.
    InvalidUtf8,
    /// A boolean byte was neither 0 nor 1.
    InvalidBool(u8),
    /// An enum/discriminant value was out of range for the target type.
    InvalidDiscriminant {
        /// The offending discriminant.
        value: u64,
        /// Human-readable name of the type being decoded.
        type_name: &'static str,
    },
    /// Decoding succeeded but unconsumed bytes remain (only reported by
    /// whole-buffer helpers such as [`crate::from_bytes`]).
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// Structure nesting exceeded the decoder's recursion limit.
    DepthExceeded {
        /// The limit that was hit.
        limit: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of buffer: needed {needed} bytes, {remaining} remaining"
            ),
            CodecError::InvalidTag(b) => write!(f, "invalid wire-type tag byte 0x{b:02x}"),
            CodecError::TypeMismatch { expected, found } => {
                write!(
                    f,
                    "wire type mismatch: expected {expected:?}, found {found:?}"
                )
            }
            CodecError::LengthOverflow { declared, limit } => {
                write!(f, "declared length {declared} exceeds limit {limit}")
            }
            CodecError::InvalidUtf8 => write!(f, "string payload is not valid UTF-8"),
            CodecError::InvalidBool(b) => write!(f, "invalid boolean byte 0x{b:02x}"),
            CodecError::InvalidDiscriminant { value, type_name } => {
                write!(f, "discriminant {value} out of range for {type_name}")
            }
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decode")
            }
            CodecError::DepthExceeded { limit } => {
                write!(f, "nesting depth exceeded limit {limit}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CodecError::UnexpectedEof {
            needed: 8,
            remaining: 3,
        };
        let s = e.to_string();
        assert!(s.contains("needed 8"));
        assert!(s.contains("3 remaining"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CodecError::InvalidUtf8);
    }
}
