//! The decoder: reads big-endian fields from a byte slice with bounds and
//! sanity checking.

use bytes::Bytes;

use crate::error::{CodecError, Result};
use crate::wire::WireType;

/// Maximum length prefix the decoder will accept, guarding against a
/// corrupted message causing a multi-gigabyte allocation on a daemon.
pub const MAX_LEN: u64 = 64 * 1024 * 1024;

/// Maximum nesting depth for dynamic [`Value`](crate::Value) decoding.
pub const MAX_DEPTH: usize = 64;

/// Cursor over a received wire buffer.
///
/// Every read is bounds-checked; malformed input yields a [`CodecError`]
/// rather than a panic, because in the VCE a message may arrive from any
/// machine on the network and daemons must survive garbage.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
    depth: usize,
    /// When decoding straight out of a refcounted buffer, the owner — lets
    /// [`Decoder::get_bytes`] return zero-copy sub-views of it.
    backing: Option<&'a Bytes>,
}

impl<'a> Decoder<'a> {
    /// Start decoding at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self {
            buf,
            pos: 0,
            depth: 0,
            backing: None,
        }
    }

    /// Start decoding a [`Bytes`] buffer, remembering it as the backing
    /// store so [`Decoder::get_bytes`] can hand out zero-copy sub-views
    /// (`Bytes::slice_ref`) instead of copying payloads out.
    pub fn with_backing(buf: &'a Bytes) -> Self {
        Self {
            buf,
            pos: 0,
            depth: 0,
            backing: Some(buf),
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True if the whole buffer has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current read offset (useful in error reports).
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    // ---- raw primitive readers (untagged) ----

    /// Read one raw byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a big-endian u16.
    pub fn get_u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Read a big-endian u32.
    pub fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a big-endian u64.
    pub fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes(b.try_into().expect("slice len 8")))
    }

    /// Read a big-endian i64.
    pub fn get_i64(&mut self) -> Result<i64> {
        let b = self.take(8)?;
        Ok(i64::from_be_bytes(b.try_into().expect("slice len 8")))
    }

    /// Read an LEB128 varint u64 (see [`crate::Encoder::put_uvarint`]).
    /// Rejects encodings longer than 10 bytes and 10-byte encodings whose
    /// final group overflows 64 bits.
    pub fn get_uvarint(&mut self) -> Result<u64> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.get_u8()?;
            if shift == 63 && b > 1 {
                break; // 10th byte may only contribute the final bit
            }
            v |= u64::from(b & 0x7f) << shift;
            if b < 0x80 {
                return Ok(v);
            }
        }
        Err(CodecError::InvalidDiscriminant {
            value: v,
            type_name: "uvarint (overlong or >64-bit encoding)",
        })
    }

    /// Read a big-endian IEEE-754 binary64.
    pub fn get_f64(&mut self) -> Result<f64> {
        let b = self.take(8)?;
        Ok(f64::from_be_bytes(b.try_into().expect("slice len 8")))
    }

    /// Read a boolean byte, rejecting anything but 0/1.
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::InvalidBool(other)),
        }
    }

    /// Read a u32 length prefix (validated against [`MAX_LEN`] and the
    /// remaining buffer) followed by that many raw bytes.
    pub fn get_len_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.get_u32()? as u64;
        if len > MAX_LEN {
            return Err(CodecError::LengthOverflow {
                declared: len,
                limit: MAX_LEN,
            });
        }
        self.take(len as usize)
    }

    /// Read a u32 length prefix followed by that many raw bytes, as an
    /// owned [`Bytes`]. With a backing buffer ([`Decoder::with_backing`])
    /// this is zero-copy — the result is a sub-view sharing the backing
    /// allocation; otherwise the bytes are copied out.
    pub fn get_bytes(&mut self) -> Result<Bytes> {
        let s = self.get_len_bytes()?;
        Ok(match self.backing {
            Some(b) => b.slice_ref(s),
            None => Bytes::copy_from_slice(s),
        })
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str> {
        let bytes = self.get_len_bytes()?;
        std::str::from_utf8(bytes).map_err(|_| CodecError::InvalidUtf8)
    }

    /// Read a wire-type tag byte.
    pub fn get_tag(&mut self) -> Result<WireType> {
        WireType::from_byte(self.get_u8()?)
    }

    /// Read a tag and require it to be `expected`.
    pub fn expect_tag(&mut self, expected: WireType) -> Result<()> {
        let found = self.get_tag()?;
        if found != expected {
            return Err(CodecError::TypeMismatch { expected, found });
        }
        Ok(())
    }

    /// Read a length prefix intended as an element count, validating it
    /// against what could physically fit in the remaining buffer assuming at
    /// least `min_elem_size` bytes per element. This stops a forged count
    /// from pre-allocating unbounded memory.
    pub fn get_count(&mut self, min_elem_size: usize) -> Result<usize> {
        let count = self.get_u32()? as u64;
        let fit = (self.remaining() / min_elem_size.max(1)) as u64;
        if count > fit {
            return Err(CodecError::LengthOverflow {
                declared: count,
                limit: fit,
            });
        }
        Ok(count as usize)
    }

    /// Enter one level of nesting, failing past [`MAX_DEPTH`].
    pub fn push_depth(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(CodecError::DepthExceeded { limit: MAX_DEPTH });
        }
        Ok(())
    }

    /// Leave one level of nesting.
    pub fn pop_depth(&mut self) {
        debug_assert!(self.depth > 0);
        self.depth -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Encoder;

    #[test]
    fn eof_reported_with_context() {
        let mut d = Decoder::new(&[1, 2]);
        let err = d.get_u32().unwrap_err();
        assert_eq!(
            err,
            CodecError::UnexpectedEof {
                needed: 4,
                remaining: 2
            }
        );
    }

    #[test]
    fn bool_rejects_garbage() {
        let mut d = Decoder::new(&[7]);
        assert_eq!(d.get_bool(), Err(CodecError::InvalidBool(7)));
    }

    #[test]
    fn uvarint_roundtrips_across_the_range() {
        let cases = [
            0u64,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            1 << 40,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut e = Encoder::new();
        for &v in &cases {
            e.put_uvarint(v);
        }
        assert!(e.len() < cases.len() * 8, "varints must beat fixed width");
        let bytes = e.as_slice().to_vec();
        let mut d = Decoder::new(&bytes);
        for &v in &cases {
            assert_eq!(d.get_uvarint(), Ok(v));
        }
        assert!(d.is_empty());
    }

    #[test]
    fn uvarint_rejects_overlong_and_torn_encodings() {
        // 11 continuation bytes: more groups than 64 bits can hold.
        let overlong = [0x80u8; 11];
        assert!(Decoder::new(&overlong).get_uvarint().is_err());
        // 10th byte carrying more than the final bit overflows u64.
        let mut overflow = [0x80u8; 10];
        overflow[9] = 0x02;
        assert!(Decoder::new(&overflow).get_uvarint().is_err());
        // Continuation bit set but the buffer ends.
        assert!(Decoder::new(&[0x80]).get_uvarint().is_err());
    }

    #[test]
    fn forged_count_rejected() {
        // Claims 1_000_000 elements but only 4 bytes remain.
        let mut e = Encoder::new();
        e.put_u32(1_000_000);
        e.put_u32(0);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(
            d.get_count(8),
            Err(CodecError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn str_round_trip_and_position() {
        let mut e = Encoder::new();
        e.put_str("hello");
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_str().unwrap(), "hello");
        assert_eq!(d.position(), bytes.len());
        assert!(d.is_empty());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut e = Encoder::new();
        e.put_len_bytes(&[0xff, 0xfe]);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_str(), Err(CodecError::InvalidUtf8));
    }

    #[test]
    fn depth_guard() {
        let mut d = Decoder::new(&[]);
        for _ in 0..MAX_DEPTH {
            d.push_depth().unwrap();
        }
        assert!(matches!(
            d.push_depth(),
            Err(CodecError::DepthExceeded { .. })
        ));
    }

    #[test]
    fn expect_tag_mismatch() {
        let mut e = Encoder::new();
        e.put_tag(WireType::Str);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(
            d.expect_tag(WireType::U64),
            Err(CodecError::TypeMismatch {
                expected: WireType::U64,
                found: WireType::Str
            })
        );
    }
}
