//! The encoder: appends big-endian, length-exact fields to a growable buffer.

use bytes::{BufMut, BytesMut};

use crate::wire::WireType;

/// Append-only encoder producing network-order bytes.
///
/// All multi-byte integers are written **big-endian** regardless of host
/// architecture — this is the "architecture independent form" of the paper's
/// §4.2. Encoding never fails; the buffer grows as needed.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: BytesMut,
}

impl Encoder {
    /// Create an empty encoder.
    pub fn new() -> Self {
        Self {
            buf: BytesMut::new(),
        }
    }

    /// Create an encoder with pre-reserved capacity (hot paths in the
    /// runtime manager encode many small messages; reserving avoids
    /// re-allocation per the perf-book guidance).
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the encoder, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf.to_vec()
    }

    /// Consume the encoder, returning a frozen zero-copy buffer.
    pub fn finish_bytes(self) -> bytes::Bytes {
        self.buf.freeze()
    }

    /// Reset to empty, keeping the allocated capacity. Hot paths hold one
    /// scratch `Encoder` per host and `clear` it between messages instead
    /// of constructing a fresh buffer per message.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// The bytes written so far, without consuming the encoder.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Copy the written bytes out as a frozen buffer, leaving the encoder
    /// (and its capacity) intact for reuse. Small messages (the common
    /// case on the wire) land in `Bytes`' inline representation with no
    /// heap allocation at all; larger ones pay one exact-size copy — the
    /// same cost `finish_bytes` pays for its shared buffer, minus the
    /// per-message scratch allocation.
    pub fn snapshot_bytes(&self) -> bytes::Bytes {
        bytes::Bytes::copy_from_slice(&self.buf)
    }

    // ---- raw primitive writers (untagged) ----

    /// Write a single raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Write a big-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.put_u16(v);
    }

    /// Write a big-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32(v);
    }

    /// Write a big-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64(v);
    }

    /// Write a big-endian i64 (two's complement).
    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64(v);
    }

    /// Write a u64 as an LEB128 varint (7 value bits per byte, low group
    /// first, high bit = continuation): 1 byte for values < 128, at most
    /// 10 bytes. Used where small values dominate — e.g. the `.vct` trace
    /// format's delta-encoded event records.
    pub fn put_uvarint(&mut self, mut v: u64) {
        while v >= 0x80 {
            self.buf.put_u8((v as u8 & 0x7f) | 0x80);
            v >>= 7;
        }
        self.buf.put_u8(v as u8);
    }

    /// Write a big-endian IEEE-754 binary64.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64(v);
    }

    /// Write a boolean as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.put_u8(u8::from(v));
    }

    /// Write a u32 length prefix followed by the raw bytes.
    pub fn put_len_bytes(&mut self, bytes: &[u8]) {
        debug_assert!(
            bytes.len() <= u32::MAX as usize,
            "buffer too large for wire"
        );
        self.buf.put_u32(bytes.len() as u32);
        self.buf.put_slice(bytes);
    }

    /// Write a u32 length prefix followed by UTF-8 bytes.
    pub fn put_str(&mut self, s: &str) {
        self.put_len_bytes(s.as_bytes());
    }

    /// Write a wire-type tag byte.
    pub fn put_tag(&mut self, t: WireType) {
        self.buf.put_u8(t.as_byte());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_are_big_endian() {
        let mut e = Encoder::new();
        e.put_u32(0x0102_0304);
        assert_eq!(e.finish(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn i64_two_complement() {
        let mut e = Encoder::new();
        e.put_i64(-1);
        assert_eq!(e.finish(), vec![0xff; 8]);
    }

    #[test]
    fn str_is_length_prefixed() {
        let mut e = Encoder::new();
        e.put_str("ab");
        assert_eq!(e.finish(), vec![0, 0, 0, 2, b'a', b'b']);
    }

    #[test]
    fn with_capacity_reserves() {
        let e = Encoder::with_capacity(64);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
    }

    #[test]
    fn clear_and_snapshot_reuse_the_buffer() {
        let mut e = Encoder::with_capacity(64);
        e.put_u32(0xAABB_CCDD);
        let first = e.snapshot_bytes();
        assert_eq!(&first[..], &[0xAA, 0xBB, 0xCC, 0xDD]);
        assert_eq!(e.as_slice(), &first[..]); // snapshot does not consume
        e.clear();
        assert!(e.is_empty());
        e.put_u8(7);
        let second = e.snapshot_bytes();
        assert_eq!(&second[..], &[7]);
        assert_eq!(&first[..], &[0xAA, 0xBB, 0xCC, 0xDD]); // unaffected
    }

    #[test]
    fn f64_bits_round() {
        let mut e = Encoder::new();
        e.put_f64(1.5);
        let bytes = e.finish();
        assert_eq!(bytes, 1.5f64.to_be_bytes().to_vec());
    }
}
