//! Delivery statistics, shared by both transports.

// vce-lint: allow(S002) commutative Relaxed counters for the live transport, read only after it stops
use std::sync::atomic::{AtomicU64, Ordering};

/// Coarse traffic attribution, so experiments can tell a protocol's
/// *standing* cost (failure-detector heartbeats, which grow O(n²) with
/// group size) from the cost of the operation under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MsgCategory {
    /// Protocol traffic proper (requests, bids, casts, NACKs, …).
    #[default]
    Protocol,
    /// Periodic liveness heartbeats.
    Heartbeat,
}

/// Monotone counters describing traffic through a transport.
///
/// All counters use relaxed atomics: they are statistics, not
/// synchronization, and the threaded transport updates them from many
/// threads (see *Rust Atomics and Locks* ch. 2-3 on when `Relaxed` is
/// sufficient — independent counters with no ordering dependencies).
#[derive(Debug, Default)]
pub struct NetStats {
    sent: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    bytes_sent: AtomicU64,
    heartbeats_sent: AtomicU64,
}

impl NetStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a send attempt of `wire_size` bytes.
    pub fn record_sent(&self, wire_size: usize) {
        self.record_sent_category(wire_size, MsgCategory::Protocol);
    }

    /// Record a send attempt, attributed to a traffic category.
    pub fn record_sent_category(&self, wire_size: usize, category: MsgCategory) {
        self.sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent
            .fetch_add(wire_size as u64, Ordering::Relaxed);
        if category == MsgCategory::Heartbeat {
            self.heartbeats_sent.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Fold pre-aggregated counter deltas in at once. The sim engine
    /// stages counters in plain integers on its hot path and folds them
    /// here at sync points — one locked RMW per counter per window instead
    /// of several per message.
    pub fn record_batch(
        &self,
        sent: u64,
        bytes_sent: u64,
        heartbeats_sent: u64,
        delivered: u64,
        dropped: u64,
        duplicated: u64,
    ) {
        self.sent.fetch_add(sent, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes_sent, Ordering::Relaxed);
        self.heartbeats_sent
            .fetch_add(heartbeats_sent, Ordering::Relaxed);
        self.delivered.fetch_add(delivered, Ordering::Relaxed);
        self.dropped.fetch_add(dropped, Ordering::Relaxed);
        self.duplicated.fetch_add(duplicated, Ordering::Relaxed);
    }

    /// Record a successful delivery.
    pub fn record_delivered(&self) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a drop (fault plan or dead destination).
    pub fn record_dropped(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duplicated delivery.
    pub fn record_duplicated(&self) {
        self.duplicated.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold another counter set into this one. The sharded simulator keeps
    /// one `NetStats` per shard (each touched by exactly one worker) and
    /// merges them into the facade's aggregate at barrier sync points;
    /// counters are commutative, so the merge is order-independent.
    pub fn absorb(&self, other: &NetStats) {
        self.sent.fetch_add(other.sent(), Ordering::Relaxed);
        self.delivered
            .fetch_add(other.delivered(), Ordering::Relaxed);
        self.dropped.fetch_add(other.dropped(), Ordering::Relaxed);
        self.duplicated
            .fetch_add(other.duplicated(), Ordering::Relaxed);
        self.bytes_sent
            .fetch_add(other.bytes_sent(), Ordering::Relaxed);
        self.heartbeats_sent
            .fetch_add(other.heartbeats_sent(), Ordering::Relaxed);
    }

    /// Messages submitted for sending.
    pub fn sent(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }

    /// Messages delivered to a mailbox.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Messages dropped.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Extra deliveries caused by duplication faults.
    pub fn duplicated(&self) -> u64 {
        self.duplicated.load(Ordering::Relaxed)
    }

    /// Total payload+header bytes submitted.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Messages submitted that were liveness heartbeats.
    pub fn heartbeats_sent(&self) -> u64 {
        self.heartbeats_sent.load(Ordering::Relaxed)
    }

    /// Messages submitted that were protocol traffic proper.
    pub fn protocol_sent(&self) -> u64 {
        self.sent() - self.heartbeats_sent()
    }

    /// A plain-data snapshot for reports.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            sent: self.sent(),
            delivered: self.delivered(),
            dropped: self.dropped(),
            duplicated: self.duplicated(),
            bytes_sent: self.bytes_sent(),
            heartbeats_sent: self.heartbeats_sent(),
        }
    }
}

/// Plain-data copy of [`NetStats`] at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Messages submitted for sending.
    pub sent: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Messages dropped.
    pub dropped: u64,
    /// Extra duplicate deliveries.
    pub duplicated: u64,
    /// Bytes submitted.
    pub bytes_sent: u64,
    /// Of `sent`, how many were liveness heartbeats.
    pub heartbeats_sent: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = NetStats::new();
        s.record_sent(100);
        s.record_sent(50);
        s.record_delivered();
        s.record_dropped();
        s.record_duplicated();
        assert_eq!(s.sent(), 2);
        assert_eq!(s.bytes_sent(), 150);
        assert_eq!(s.delivered(), 1);
        assert_eq!(s.dropped(), 1);
        assert_eq!(s.duplicated(), 1);
    }

    #[test]
    fn heartbeats_split_out_of_sent() {
        let s = NetStats::new();
        s.record_sent_category(10, MsgCategory::Protocol);
        s.record_sent_category(10, MsgCategory::Heartbeat);
        s.record_sent_category(10, MsgCategory::Heartbeat);
        assert_eq!(s.sent(), 3);
        assert_eq!(s.heartbeats_sent(), 2);
        assert_eq!(s.protocol_sent(), 1);
        assert_eq!(s.bytes_sent(), 30);
        assert_eq!(s.snapshot().heartbeats_sent, 2);
    }

    #[test]
    fn snapshot_copies() {
        let s = NetStats::new();
        s.record_sent(10);
        let snap = s.snapshot();
        s.record_sent(10);
        assert_eq!(snap.sent, 1);
        assert_eq!(s.sent(), 2);
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        use std::sync::Arc;
        let s = Arc::new(NetStats::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_sent(1);
                        s.record_delivered();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.sent(), 8000);
        assert_eq!(s.delivered(), 8000);
        assert_eq!(s.bytes_sent(), 8000);
    }
}
