//! The transport-agnostic actor model every VCE protocol component uses.
//!
//! Daemons, group leaders, executors and simulated tasks are written as
//! [`Endpoint`] state machines: they react to envelopes, timers and
//! work-completion notifications, and express all side effects through the
//! [`Host`] interface. Two hosts exist:
//!
//! * the deterministic discrete-event host in `vce-sim` (all experiments);
//! * the threaded [`LiveDriver`](crate::driver::LiveDriver) over
//!   [`MemoryNetwork`](crate::MemoryNetwork) (live examples).
//!
//! Because the state machines *cannot tell the difference*, the code that is
//! benchmarked is the code that runs live — the property DESIGN.md calls
//! "the evaluated system is the shipped system".

use bytes::Bytes;

use crate::addr::Addr;
use crate::machine::MachineInfo;
use crate::stats::MsgCategory;

/// The environment an [`Endpoint`] runs in.
///
/// All methods are infallible from the endpoint's perspective; delivery
/// failures surface as silence (exactly what a 1994 datagram LAN gave Isis,
/// which is why the failure detector exists).
pub trait Host {
    /// Current time in microseconds since the epoch of the run.
    fn now_us(&self) -> u64;

    /// Queue a message. `src` must be an endpoint on the local node.
    fn send(&mut self, src: Addr, dst: Addr, payload: Bytes);

    /// Queue a message attributed to a traffic category (see
    /// [`MsgCategory`]). Hosts that don't keep per-category statistics may
    /// ignore the attribution — the default forwards to [`Host::send`].
    fn send_category(&mut self, src: Addr, dst: Addr, payload: Bytes, category: MsgCategory) {
        let _ = category;
        self.send(src, dst, payload);
    }

    /// Arm a one-shot timer that fires `delay_us` from now with `token`.
    fn set_timer(&mut self, delay_us: u64, token: u64);

    /// Cancel a previously armed timer by token. Cancelling an unknown or
    /// already-fired token is a no-op.
    fn cancel_timer(&mut self, token: u64);

    /// Begin executing `ops` million operations of compute on this machine's
    /// CPU under the local process id `pid`; `on_work_done(pid)` fires when
    /// it completes. Execution shares the CPU with other local work
    /// (processor sharing in the simulator).
    fn start_work(&mut self, pid: u64, mops: f64);

    /// Kill running work by pid. Killing unknown work is a no-op.
    fn cancel_work(&mut self, pid: u64);

    /// Remaining Mops of work started under `pid` on this endpoint, if
    /// still running — what checkpointing and migration read to know how
    /// much progress would be carried or lost.
    fn work_remaining(&self, pid: u64) -> Option<f64>;

    /// Instantaneous load of the local machine: the number of runnable
    /// processes including background (local-user) activity — the quantity
    /// daemons disclose in their bids (§5).
    fn load(&self) -> f64;

    /// The local machine's database record.
    fn machine(&self) -> &MachineInfo;

    /// Deterministic per-node randomness (seeded by the driver).
    fn rand_u64(&mut self) -> u64;

    /// Emit a trace line (collected by the driver; free-form).
    fn log(&mut self, line: String);

    /// Whether [`Host::log`] lines are being kept. Hot paths check this
    /// before building a log string, so disabled-trace runs (benchmarks)
    /// pay neither the `format!` allocation nor the push.
    fn log_enabled(&self) -> bool {
        true
    }

    /// Run `f` against an encoder and return the encoded bytes. The
    /// default constructs a fresh encoder per call; hosts on the hot path
    /// (the simulator) override it with a pooled per-host scratch buffer
    /// so envelope encode stops allocating per message. Callers must treat
    /// the encoder as empty on entry and must not stash it.
    fn encode_with(&mut self, f: &mut dyn FnMut(&mut vce_codec::Encoder)) -> Bytes {
        let mut enc = vce_codec::Encoder::with_capacity(64);
        f(&mut enc);
        enc.finish_bytes()
    }
}

/// A protocol state machine bound to one [`Addr`].
///
/// Implementations must be deterministic functions of their inputs plus
/// `Host::rand_u64`; they must not consult wall-clock time or global state.
pub trait Endpoint: Send {
    /// Called once when the endpoint starts (node boot or port creation).
    fn on_start(&mut self, _host: &mut dyn Host) {}

    /// Called for every envelope addressed to this endpoint.
    fn on_envelope(&mut self, env: crate::Envelope, host: &mut dyn Host);

    /// Called when a timer armed with `token` fires.
    fn on_timer(&mut self, _token: u64, _host: &mut dyn Host) {}

    /// Called when locally started work completes.
    fn on_work_done(&mut self, _pid: u64, _host: &mut dyn Host) {}

    /// Called at the instant the node crashes, before it is marked dead.
    /// This is *not* an orderly shutdown hook: sends are already severed
    /// (the fault plan drops them) and timers die with the node. Its one
    /// legitimate use is settling simulated local state that survives the
    /// crash — e.g. a stable store deciding which in-flight writes hit the
    /// platter. Endpoints without durable state ignore it.
    fn on_crash(&mut self, _host: &mut dyn Host) {}

    /// Optional downcast hook so drivers can expose endpoint state to tests
    /// and experiment harnesses. Override with `Some(self)` where inspection
    /// is wanted; protocol correctness must never depend on it.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }

    /// Cheap digest of the endpoint's protocol state, folded into the
    /// per-node snapshot hashes the record/replay subsystem writes
    /// (`vce_sim::record`). Implementations must be **deterministic and
    /// shard-invariant**: fold only state that is a pure function of the
    /// simulation (sorted containers, scalars — never `HashMap` iteration
    /// order, pointers or capacities), and keep it O(state) cheap. The
    /// default participates with a constant, so endpoints without an
    /// override neither break divergence detection nor contribute to it.
    fn snapshot_hash(&self) -> u64 {
        0
    }
}

/// Encode a message and send it — the common idiom. Encodes through
/// [`Host::encode_with`], so hosts with a pooled scratch buffer serve the
/// hot path allocation-free.
pub fn send_msg<T: vce_codec::Codec>(host: &mut dyn Host, src: Addr, dst: Addr, msg: &T) {
    let payload = host.encode_with(&mut |enc| msg.encode(enc));
    host.send(src, dst, payload);
}

#[cfg(test)]
pub(crate) mod test_host {
    //! A scripted host for unit-testing endpoints in isolation.

    use std::collections::VecDeque;

    use super::*;
    use crate::addr::NodeId;

    /// Records effects; time is advanced manually.
    pub struct MockHost {
        pub now: u64,
        pub sent: Vec<(Addr, Addr, Bytes)>,
        pub timers: Vec<(u64, u64)>,
        pub cancelled_timers: Vec<u64>,
        pub work: Vec<(u64, f64)>,
        pub cancelled_work: Vec<u64>,
        pub logs: Vec<String>,
        pub load_value: f64,
        pub info: MachineInfo,
        pub rand: VecDeque<u64>,
    }

    impl MockHost {
        pub fn new(node: NodeId) -> Self {
            Self {
                now: 0,
                sent: Vec::new(),
                timers: Vec::new(),
                cancelled_timers: Vec::new(),
                work: Vec::new(),
                cancelled_work: Vec::new(),
                logs: Vec::new(),
                load_value: 0.0,
                info: MachineInfo::workstation(node, 100.0),
                rand: VecDeque::new(),
            }
        }
    }

    impl Host for MockHost {
        fn now_us(&self) -> u64 {
            self.now
        }
        fn send(&mut self, src: Addr, dst: Addr, payload: Bytes) {
            self.sent.push((src, dst, payload));
        }
        fn set_timer(&mut self, delay_us: u64, token: u64) {
            self.timers.push((delay_us, token));
        }
        fn cancel_timer(&mut self, token: u64) {
            self.cancelled_timers.push(token);
        }
        fn start_work(&mut self, pid: u64, mops: f64) {
            self.work.push((pid, mops));
        }
        fn cancel_work(&mut self, pid: u64) {
            self.cancelled_work.push(pid);
        }
        fn work_remaining(&self, pid: u64) -> Option<f64> {
            self.work.iter().find(|(p, _)| *p == pid).map(|(_, m)| *m)
        }
        fn load(&self) -> f64 {
            self.load_value
        }
        fn machine(&self) -> &MachineInfo {
            &self.info
        }
        fn rand_u64(&mut self) -> u64 {
            self.rand.pop_front().unwrap_or(0)
        }
        fn log(&mut self, line: String) {
            self.logs.push(line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_host::MockHost;
    use super::*;
    use crate::addr::NodeId;
    use crate::Envelope;

    /// An endpoint that echoes payloads back to the sender.
    struct Echo {
        me: Addr,
        seen: usize,
    }

    impl Endpoint for Echo {
        fn on_envelope(&mut self, env: Envelope, host: &mut dyn Host) {
            self.seen += 1;
            host.send(self.me, env.src, env.payload);
        }
    }

    #[test]
    fn endpoint_effects_are_captured() {
        let me = Addr::daemon(NodeId(0));
        let peer = Addr::daemon(NodeId(1));
        let mut echo = Echo { me, seen: 0 };
        let mut host = MockHost::new(NodeId(0));
        echo.on_envelope(
            Envelope::new(peer, me, 0, Bytes::from_static(b"hi")),
            &mut host,
        );
        assert_eq!(echo.seen, 1);
        assert_eq!(host.sent.len(), 1);
        assert_eq!(host.sent[0].1, peer);
        assert_eq!(&host.sent[0].2[..], b"hi");
    }

    #[test]
    fn send_msg_encodes() {
        let mut host = MockHost::new(NodeId(0));
        let src = Addr::daemon(NodeId(0));
        let dst = Addr::leader(NodeId(1));
        send_msg(&mut host, src, dst, &("x".to_string(), 7u64));
        let (_, _, payload) = &host.sent[0];
        let mut dec = vce_codec::Decoder::new(payload);
        let got = <(String, u64) as vce_codec::Codec>::decode(&mut dec).unwrap();
        assert_eq!(got, ("x".to_string(), 7));
    }
}
