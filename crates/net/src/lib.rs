#![warn(missing_docs)]
//! # vce-net — the communication substrate
//!
//! The VCE runtime (§3.1.2, §5 of the paper) is "a distributed application
//! whose components are running on each of the machines in the VCE network":
//! per-machine daemons, group leaders, and per-user execution programs, all
//! exchanging messages. This crate provides the addressing scheme, message
//! envelope, delivery statistics and fault-injection machinery those
//! components are built on, plus a **threaded in-memory transport** that runs
//! the protocol state machines on real OS threads (the "live" mode used by
//! examples and some integration tests).
//!
//! The deterministic discrete-event transport — used by all experiments —
//! lives in `vce-sim` and reuses the same [`Envelope`] and [`FaultPlan`]
//! types, so the protocol code cannot tell which world it is running in.
//!
//! Design note: protocol logic throughout the workspace is written as
//! transport-agnostic state machines that *return* the envelopes they want
//! sent (see `vce-isis` and `vce-exm`); transports only move bytes. This is
//! what lets the same scheduler be unit-tested, simulated at fleet scale, and
//! run live without divergence.

pub mod actor;
pub mod addr;
pub mod arena;
pub mod driver;
pub mod fault;
pub mod hash;
pub mod machine;
pub mod memory;
pub mod message;
pub mod stats;

pub use actor::{send_msg, Endpoint, Host};
pub use addr::{Addr, NodeId, PortId};
pub use arena::{NodeList, SeqWindow, SlotArena, SlotHandle, NODE_LIST_INLINE};
pub use driver::{LiveDriver, LiveNodeConfig};
pub use fault::{FaultOp, FaultPlan, LinkFault};
pub use hash::{fnv64, DetHashState, DetHasher, Fnv64};
pub use machine::{MachineClass, MachineInfo};
pub use memory::{MemoryNetwork, NodeHandle};
pub use message::Envelope;
pub use stats::{MsgCategory, NetStats};
