//! The threaded in-memory transport ("live" mode).
//!
//! Each participating machine gets a [`NodeHandle`] with its own mailbox;
//! protocol components run on real OS threads and exchange [`Envelope`]s
//! through unbounded crossbeam channels. The shared [`FaultPlan`] is applied
//! on the send path, so crash/partition experiments work identically to the
//! simulator.
//!
//! This transport is intended for examples and integration tests at LAN
//! scale (tens of nodes); the experiment harness uses the deterministic
//! discrete-event transport in `vce-sim` instead.

use std::collections::HashMap;
// vce-lint: allow(S002) live transport is threaded by design; counters feed MsgStats after the run
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::addr::{Addr, NodeId};
use crate::fault::{Delivery, FaultPlan};
use crate::message::Envelope;
use crate::stats::{MsgCategory, NetStats};

struct Inner {
    mailboxes: RwLock<HashMap<NodeId, Sender<Envelope>>>,
    fault: Mutex<FaultPlan>,
    rng: Mutex<SmallRng>,
    stats: NetStats,
}

/// A process-wide virtual LAN connecting [`NodeHandle`]s.
///
/// Cheap to clone (it is an `Arc` inside); clones share mailboxes, fault
/// plan and statistics.
#[derive(Clone)]
pub struct MemoryNetwork {
    inner: Arc<Inner>,
}

impl MemoryNetwork {
    /// Create an empty network. `seed` drives fault-plan randomness.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: Arc::new(Inner {
                mailboxes: RwLock::new(HashMap::new()),
                fault: Mutex::new(FaultPlan::none()),
                rng: Mutex::new(SmallRng::seed_from_u64(seed)),
                stats: NetStats::new(),
            }),
        }
    }

    /// Attach a node, returning its handle. Panics if the node id is already
    /// attached — node ids are assigned by the fleet builder and must be
    /// unique.
    pub fn attach(&self, node: NodeId) -> NodeHandle {
        let (tx, rx) = unbounded();
        let prev = self.inner.mailboxes.write().insert(node, tx);
        assert!(prev.is_none(), "node {node} attached twice");
        NodeHandle {
            node,
            rx,
            net: self.clone(),
            seq: AtomicU64::new(0),
        }
    }

    /// Detach a node; its mailbox closes and future messages to it drop.
    pub fn detach(&self, node: NodeId) {
        self.inner.mailboxes.write().remove(&node);
    }

    /// Mutate the fault plan under its lock.
    pub fn with_fault_plan<T>(&self, f: impl FnOnce(&mut FaultPlan) -> T) -> T {
        f(&mut self.inner.fault.lock())
    }

    /// Crash a node: messages to and from it vanish until revived. Its
    /// threads keep running — exactly like a machine that lost its network,
    /// which is what Isis failure detectors actually observe.
    pub fn kill(&self, node: NodeId) {
        self.with_fault_plan(|p| p.kill(node));
    }

    /// Revive a crashed node.
    pub fn revive(&self, node: NodeId) {
        self.with_fault_plan(|p| p.revive(node));
    }

    /// Traffic statistics.
    pub fn stats(&self) -> &NetStats {
        &self.inner.stats
    }

    /// Number of currently attached nodes.
    pub fn node_count(&self) -> usize {
        self.inner.mailboxes.read().len()
    }

    fn submit(&self, env: Envelope, category: MsgCategory) {
        let inner = &self.inner;
        inner.stats.record_sent_category(env.wire_size(), category);
        let verdict = {
            let plan = inner.fault.lock();
            let mut rng = inner.rng.lock();
            plan.judge(env.src.node, env.dst.node, &mut *rng)
        };
        match verdict {
            Delivery::Drop => inner.stats.record_dropped(),
            Delivery::Deliver { extra_delay_us } => {
                self.deliver_after(env, extra_delay_us);
            }
            Delivery::Duplicate {
                first_us,
                second_us,
            } => {
                inner.stats.record_duplicated();
                self.deliver_after(env.clone(), first_us);
                self.deliver_after(env, second_us);
            }
        }
    }

    fn deliver_after(&self, env: Envelope, delay_us: u64) {
        if delay_us == 0 {
            self.deliver(env);
        } else {
            // Test-scale traffic only: a short-lived timer thread per delayed
            // message keeps the transport dependency-free.
            let this = self.clone();
            // vce-lint: allow(D004) live transport injects real delay; the sim engine models delay deterministically
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_micros(delay_us)); // vce-lint: allow(D004) same: real sleep in the live transport's timer thread
                this.deliver(env);
            });
        }
    }

    fn deliver(&self, env: Envelope) {
        let mailboxes = self.inner.mailboxes.read();
        match mailboxes.get(&env.dst.node) {
            Some(tx) if tx.send(env).is_ok() => self.inner.stats.record_delivered(),
            _ => self.inner.stats.record_dropped(),
        }
    }
}

/// One machine's attachment to a [`MemoryNetwork`].
///
/// A handle owns the node's single mailbox; messages for every port on the
/// node arrive here and the node-local dispatcher (in `vce-exm`) demuxes by
/// destination port, mirroring how one VCE daemon per machine fronted all
/// local services in the paper.
pub struct NodeHandle {
    node: NodeId,
    rx: Receiver<Envelope>,
    net: MemoryNetwork,
    seq: AtomicU64,
}

impl NodeHandle {
    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The network this handle is attached to.
    pub fn network(&self) -> &MemoryNetwork {
        &self.net
    }

    /// Send an envelope built from an already-encoded payload. The sequence
    /// number is assigned here (per-handle monotone).
    pub fn send_raw(&self, src: Addr, dst: Addr, payload: impl Into<bytes::Bytes>) {
        self.send_raw_category(src, dst, payload, MsgCategory::Protocol);
    }

    /// [`NodeHandle::send_raw`] with explicit traffic attribution.
    pub fn send_raw_category(
        &self,
        src: Addr,
        dst: Addr,
        payload: impl Into<bytes::Bytes>,
        category: MsgCategory,
    ) {
        debug_assert_eq!(src.node, self.node, "src must be a local endpoint");
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.net
            .submit(Envelope::new(src, dst, seq, payload), category);
    }

    /// Encode `msg` with `vce-codec` and send it.
    pub fn send<T: vce_codec::Codec>(&self, src: Addr, dst: Addr, msg: &T) {
        debug_assert_eq!(src.node, self.node, "src must be a local endpoint");
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.net.submit(
            Envelope::encode_payload(src, dst, seq, msg),
            MsgCategory::Protocol,
        );
    }

    /// Receive the next envelope, blocking.
    pub fn recv(&self) -> Option<Envelope> {
        self.rx.recv().ok()
    }

    /// Receive with a timeout; `None` on timeout or disconnect.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        match self.rx.recv_timeout(timeout) {
            Ok(env) => Some(env),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PortId;
    use crate::fault::LinkFault;

    #[test]
    fn basic_send_receive() {
        let net = MemoryNetwork::new(1);
        let a = net.attach(NodeId(0));
        let b = net.attach(NodeId(1));
        a.send(Addr::daemon(NodeId(0)), Addr::daemon(NodeId(1)), &42u64);
        let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(env.decode_payload::<u64>().unwrap(), 42);
        assert_eq!(env.src, Addr::daemon(NodeId(0)));
        assert_eq!(net.stats().delivered(), 1);
    }

    #[test]
    fn sequence_numbers_are_monotone_per_handle() {
        let net = MemoryNetwork::new(1);
        let a = net.attach(NodeId(0));
        let b = net.attach(NodeId(1));
        for _ in 0..5 {
            a.send(Addr::daemon(NodeId(0)), Addr::daemon(NodeId(1)), &0u8);
        }
        let mut seqs = Vec::new();
        for _ in 0..5 {
            seqs.push(b.recv_timeout(Duration::from_secs(1)).unwrap().seq);
        }
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn killed_node_receives_nothing() {
        let net = MemoryNetwork::new(1);
        let a = net.attach(NodeId(0));
        let b = net.attach(NodeId(1));
        net.kill(NodeId(1));
        a.send(Addr::daemon(NodeId(0)), Addr::daemon(NodeId(1)), &1u8);
        assert!(b.recv_timeout(Duration::from_millis(50)).is_none());
        assert_eq!(net.stats().dropped(), 1);
        net.revive(NodeId(1));
        a.send(Addr::daemon(NodeId(0)), Addr::daemon(NodeId(1)), &2u8);
        assert!(b.recv_timeout(Duration::from_secs(1)).is_some());
    }

    #[test]
    fn detached_node_drops_traffic() {
        let net = MemoryNetwork::new(1);
        let a = net.attach(NodeId(0));
        net.attach(NodeId(1));
        net.detach(NodeId(1));
        a.send(Addr::daemon(NodeId(0)), Addr::daemon(NodeId(1)), &1u8);
        assert_eq!(net.stats().dropped(), 1);
        assert_eq!(net.node_count(), 1);
    }

    #[test]
    #[should_panic(expected = "attached twice")]
    fn double_attach_panics() {
        let net = MemoryNetwork::new(1);
        let _a = net.attach(NodeId(0));
        let _b = net.attach(NodeId(0));
    }

    #[test]
    fn delayed_delivery_arrives() {
        let net = MemoryNetwork::new(1);
        let a = net.attach(NodeId(0));
        let b = net.attach(NodeId(1));
        net.with_fault_plan(|p| {
            p.default_link = LinkFault {
                extra_delay_us: 10_000, // 10ms
                ..Default::default()
            };
        });
        let t0 = std::time::Instant::now();
        a.send(Addr::daemon(NodeId(0)), Addr::daemon(NodeId(1)), &9u8);
        let env = b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(9));
        assert_eq!(env.decode_payload::<u8>().unwrap(), 9);
    }

    #[test]
    fn duplication_delivers_twice() {
        let net = MemoryNetwork::new(1);
        let a = net.attach(NodeId(0));
        let b = net.attach(NodeId(1));
        net.with_fault_plan(|p| {
            p.default_link = LinkFault {
                dup_prob: 1.0,
                ..Default::default()
            };
        });
        a.send(Addr::daemon(NodeId(0)), Addr::daemon(NodeId(1)), &1u8);
        assert!(b.recv_timeout(Duration::from_secs(1)).is_some());
        assert!(b.recv_timeout(Duration::from_secs(1)).is_some());
        assert_eq!(net.stats().duplicated(), 1);
    }

    #[test]
    fn ports_share_one_mailbox_per_node() {
        let net = MemoryNetwork::new(1);
        let a = net.attach(NodeId(0));
        let b = net.attach(NodeId(1));
        a.send(Addr::daemon(NodeId(0)), Addr::leader(NodeId(1)), &1u8);
        a.send(
            Addr::daemon(NodeId(0)),
            Addr::new(NodeId(1), PortId(1001)),
            &2u8,
        );
        let e1 = b.recv_timeout(Duration::from_secs(1)).unwrap();
        let e2 = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(e1.dst.port, PortId::LEADER);
        assert_eq!(e2.dst.port, PortId(1001));
    }

    #[test]
    fn concurrent_senders() {
        let net = MemoryNetwork::new(1);
        let rx = net.attach(NodeId(99));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let h = net.attach(NodeId(i));
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        h.send(Addr::daemon(h.node()), Addr::daemon(NodeId(99)), &1u32);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got = 0;
        while rx.recv_timeout(Duration::from_millis(200)).is_some() {
            got += 1;
        }
        assert_eq!(got, 800);
    }
}
