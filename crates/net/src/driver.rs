//! Live threaded driver: runs [`Endpoint`] state machines on OS threads.
//!
//! One thread per node pumps that node's mailbox, timer wheel and work queue,
//! dispatching to the endpoints registered on the node's ports. This is the
//! "real" deployment mode; the experiments instead use the deterministic
//! discrete-event host in `vce-sim`, which drives the *same* endpoints.
//!
//! Compute model in live mode: work started via [`Host::start_work`] runs for
//! `mops / speed_mops` seconds of scaled wall-clock time (no processor
//! sharing — live mode exists to demonstrate the protocols, not to measure
//! compute interference; the simulator models processor sharing properly).
//! The `time_scale` factor compresses simulated seconds into real
//! microseconds so examples finish instantly.

use std::collections::{BTreeMap, BinaryHeap, HashMap};
// vce-lint: allow(S002) live driver IS threaded: one OS thread per node, stop flag is its shutdown signal
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
// vce-lint: allow(D001) live mode IS wall-clock: one OS thread per node, scaled real time (see module doc)
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

use crate::actor::{Endpoint, Host};
#[cfg(test)]
use crate::addr::NodeId;
use crate::addr::{Addr, PortId};
use crate::machine::MachineInfo;
use crate::memory::{MemoryNetwork, NodeHandle};

/// Deadline-ordered entry (min-heap via `Reverse` ordering trick).
#[derive(Debug, PartialEq, Eq)]
enum Pending {
    Timer { port: PortId, token: u64 },
    Work { port: PortId, pid: u64 },
}

#[derive(Debug, PartialEq, Eq)]
struct Deadline {
    at_us: u64,
    seq: u64,
    what: Pending,
}

impl Ord for Deadline {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .at_us
            .cmp(&self.at_us)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Deadline {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct NodeState {
    handle: NodeHandle,
    info: MachineInfo,
    start: Instant,
    time_scale: f64,
    deadlines: BinaryHeap<Deadline>,
    seq: u64,
    cancelled_timers: HashMap<(PortId, u64), u32>,
    cancelled_work: HashMap<(PortId, u64), u32>,
    active_work: usize,
    background_load: f64,
    rng: SmallRng,
    logs: Vec<String>,
    current_port: PortId,
}

impl NodeState {
    fn now_us(&self) -> u64 {
        let real = self.start.elapsed().as_micros() as f64;
        (real * self.time_scale) as u64
    }

    fn next_deadline(&self) -> Option<u64> {
        self.deadlines.peek().map(|d| d.at_us)
    }
}

impl Host for NodeState {
    fn now_us(&self) -> u64 {
        NodeState::now_us(self)
    }

    fn send(&mut self, src: Addr, dst: Addr, payload: bytes::Bytes) {
        self.handle.send_raw(src, dst, payload);
    }

    fn send_category(
        &mut self,
        src: Addr,
        dst: Addr,
        payload: bytes::Bytes,
        category: crate::MsgCategory,
    ) {
        self.handle.send_raw_category(src, dst, payload, category);
    }

    fn set_timer(&mut self, delay_us: u64, token: u64) {
        let at_us = self.now_us() + delay_us;
        self.seq += 1;
        self.deadlines.push(Deadline {
            at_us,
            seq: self.seq,
            what: Pending::Timer {
                port: self.current_port,
                token,
            },
        });
    }

    fn cancel_timer(&mut self, token: u64) {
        *self
            .cancelled_timers
            .entry((self.current_port, token))
            .or_insert(0) += 1;
    }

    fn start_work(&mut self, pid: u64, mops: f64) {
        // Simulated seconds of compute, compressed by time_scale into real
        // time but *reported* in simulated microseconds.
        let sim_us = (mops.max(0.0) / self.info.speed_mops * 1e6) as u64;
        let at_us = self.now_us() + sim_us;
        self.seq += 1;
        self.active_work += 1;
        self.deadlines.push(Deadline {
            at_us,
            seq: self.seq,
            what: Pending::Work {
                port: self.current_port,
                pid,
            },
        });
    }

    fn cancel_work(&mut self, pid: u64) {
        *self
            .cancelled_work
            .entry((self.current_port, pid))
            .or_insert(0) += 1;
    }

    fn work_remaining(&self, pid: u64) -> Option<f64> {
        let now = self.now_us();
        let key = (self.current_port, pid);
        if self.cancelled_work.contains_key(&key) {
            return None;
        }
        self.deadlines.iter().find_map(|d| match d.what {
            Pending::Work { port, pid: p } if (port, p) == key => {
                Some(d.at_us.saturating_sub(now) as f64 / 1e6 * self.info.speed_mops)
            }
            _ => None,
        })
    }

    fn load(&self) -> f64 {
        self.active_work as f64 + self.background_load
    }

    fn machine(&self) -> &MachineInfo {
        &self.info
    }

    fn rand_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    fn log(&mut self, line: String) {
        self.logs.push(line);
    }
}

/// A node assembled for live running: machine info plus its endpoints.
pub struct LiveNodeConfig {
    /// Machine database record for the node.
    pub info: MachineInfo,
    /// Endpoints keyed by port.
    pub endpoints: Vec<(PortId, Box<dyn Endpoint>)>,
    /// Constant background (local-user) load contribution.
    pub background_load: f64,
}

impl LiveNodeConfig {
    /// A node with the given machine record and no endpoints yet.
    pub fn new(info: MachineInfo) -> Self {
        Self {
            info,
            endpoints: Vec::new(),
            background_load: 0.0,
        }
    }

    /// Register an endpoint on a port.
    pub fn with_endpoint(mut self, port: PortId, ep: Box<dyn Endpoint>) -> Self {
        self.endpoints.push((port, ep));
        self
    }
}

/// Drives a set of nodes, one thread each, until stopped.
pub struct LiveDriver {
    stop: Arc<AtomicBool>,
    // vce-lint: allow(D004) live mode exists to run endpoints on real OS threads; the sim engine is the deterministic twin
    threads: Vec<std::thread::JoinHandle<Vec<String>>>,
}

impl LiveDriver {
    /// Spawn all node threads. `time_scale` maps real microseconds to
    /// simulated microseconds (e.g. `1000.0` makes one real millisecond one
    /// simulated second... i.e. everything runs 1000x fast).
    pub fn spawn(
        net: &MemoryNetwork,
        nodes: Vec<LiveNodeConfig>,
        seed: u64,
        time_scale: f64,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        // Attach every node before any thread runs, so `on_start` sends from
        // one node cannot race the attachment of another.
        let attached: Vec<(NodeHandle, LiveNodeConfig)> = nodes
            .into_iter()
            .map(|cfg| (net.attach(cfg.info.node), cfg))
            .collect();
        let threads = attached
            .into_iter()
            .enumerate()
            .map(|(i, (handle, cfg))| {
                let stop = Arc::clone(&stop);
                let node_seed = seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                // vce-lint: allow(D004) one thread per live node is the point of the live driver
                std::thread::spawn(move || run_node(handle, cfg, node_seed, time_scale, stop))
            })
            .collect();
        Self { stop, threads }
    }

    /// Signal all node threads to finish and collect their trace logs.
    pub fn stop(self) -> Vec<Vec<String>> {
        self.stop.store(true, Ordering::SeqCst);
        self.threads
            .into_iter()
            .map(|t| t.join().expect("node thread panicked"))
            .collect()
    }
}

fn run_node(
    handle: NodeHandle,
    cfg: LiveNodeConfig,
    seed: u64,
    time_scale: f64,
    stop: Arc<AtomicBool>,
) -> Vec<String> {
    let node = cfg.info.node;
    // BTreeMap so `on_start` order (and any same-deadline dispatch order)
    // matches the sim engine's port order rather than a hash seed.
    let mut endpoints: BTreeMap<PortId, Box<dyn Endpoint>> = cfg.endpoints.into_iter().collect();
    let mut state = NodeState {
        handle,
        info: cfg.info,
        // vce-lint: allow(D001) live node time base: scaled wall clock, by definition of live mode
        start: Instant::now(),
        time_scale,
        deadlines: BinaryHeap::new(),
        seq: 0,
        cancelled_timers: HashMap::new(),
        cancelled_work: HashMap::new(),
        active_work: 0,
        background_load: cfg.background_load,
        rng: SmallRng::seed_from_u64(seed),
        logs: Vec::new(),
        current_port: PortId::DAEMON,
    };

    // Start every endpoint.
    let ports: Vec<PortId> = endpoints.keys().copied().collect();
    for port in ports {
        if let Some(mut ep) = endpoints.remove(&port) {
            state.current_port = port;
            ep.on_start(&mut state);
            endpoints.insert(port, ep);
        }
    }

    while !stop.load(Ordering::Relaxed) {
        // Fire due deadlines.
        let now = state.now_us();
        while state.next_deadline().is_some_and(|at| at <= now) {
            let d = state.deadlines.pop().expect("peeked");
            match d.what {
                Pending::Timer { port, token } => {
                    if let Some(n) = state.cancelled_timers.get_mut(&(port, token)) {
                        *n -= 1;
                        if *n == 0 {
                            state.cancelled_timers.remove(&(port, token));
                        }
                        continue;
                    }
                    if let Some(mut ep) = endpoints.remove(&port) {
                        state.current_port = port;
                        ep.on_timer(token, &mut state);
                        endpoints.insert(port, ep);
                    }
                }
                Pending::Work { port, pid } => {
                    state.active_work = state.active_work.saturating_sub(1);
                    if let Some(n) = state.cancelled_work.get_mut(&(port, pid)) {
                        *n -= 1;
                        if *n == 0 {
                            state.cancelled_work.remove(&(port, pid));
                        }
                        continue;
                    }
                    if let Some(mut ep) = endpoints.remove(&port) {
                        state.current_port = port;
                        ep.on_work_done(pid, &mut state);
                        endpoints.insert(port, ep);
                    }
                }
            }
        }

        // Wait for the next message, but no longer than the next deadline
        // (in real time) or a polling quantum.
        let wait_real_us = match state.next_deadline() {
            Some(at) => {
                let sim_gap = at.saturating_sub(state.now_us()) as f64;
                ((sim_gap / state.time_scale) as u64).clamp(1, 2_000)
            }
            None => 2_000,
        };
        if let Some(env) = state
            .handle
            .recv_timeout(Duration::from_micros(wait_real_us))
        {
            let port = env.dst.port;
            if let Some(mut ep) = endpoints.remove(&port) {
                state.current_port = port;
                ep.on_envelope(env, &mut state);
                endpoints.insert(port, ep);
            } else {
                state
                    .logs
                    .push(format!("{node}: no endpoint for {}", env.dst));
            }
        }
    }
    state.logs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::send_msg;
    use crate::Envelope;

    /// Ping endpoint: sends a counter to its peer on start and echoes
    /// increments until 10.
    struct PingPong {
        me: Addr,
        peer: Option<Addr>,
        final_value: Option<u64>,
        done_tx: crossbeam::channel::Sender<u64>,
    }

    impl Endpoint for PingPong {
        fn on_start(&mut self, host: &mut dyn Host) {
            if let Some(peer) = self.peer {
                send_msg(host, self.me, peer, &0u64);
            }
        }
        fn on_envelope(&mut self, env: Envelope, host: &mut dyn Host) {
            let v: u64 = env.decode_payload().unwrap();
            if v >= 10 {
                self.final_value = Some(v);
                let _ = self.done_tx.send(v);
            } else {
                send_msg(host, self.me, env.src, &(v + 1));
            }
        }
    }

    #[test]
    fn ping_pong_across_threads() {
        let net = MemoryNetwork::new(7);
        let (tx, rx) = crossbeam::channel::unbounded();
        let n0 = NodeId(0);
        let n1 = NodeId(1);
        let a = LiveNodeConfig::new(MachineInfo::workstation(n0, 100.0)).with_endpoint(
            PortId::DAEMON,
            Box::new(PingPong {
                me: Addr::daemon(n0),
                peer: Some(Addr::daemon(n1)),
                final_value: None,
                done_tx: tx.clone(),
            }),
        );
        let b = LiveNodeConfig::new(MachineInfo::workstation(n1, 100.0)).with_endpoint(
            PortId::DAEMON,
            Box::new(PingPong {
                me: Addr::daemon(n1),
                peer: None,
                final_value: None,
                done_tx: tx,
            }),
        );
        let driver = LiveDriver::spawn(&net, vec![a, b], 1, 1.0);
        let v = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(v, 10);
        driver.stop();
    }

    /// Endpoint that runs work and reports the simulated duration.
    struct Worker {
        done_tx: crossbeam::channel::Sender<u64>,
        started_at: u64,
    }

    impl Endpoint for Worker {
        fn on_start(&mut self, host: &mut dyn Host) {
            self.started_at = host.now_us();
            host.start_work(1, 50.0); // 50 Mops on a 100-Mops machine = 0.5 sim-s
        }
        fn on_envelope(&mut self, _env: Envelope, _host: &mut dyn Host) {}
        fn on_work_done(&mut self, pid: u64, host: &mut dyn Host) {
            assert_eq!(pid, 1);
            let _ = self.done_tx.send(host.now_us() - self.started_at);
        }
    }

    #[test]
    fn work_completes_in_scaled_time() {
        let net = MemoryNetwork::new(7);
        let (tx, rx) = crossbeam::channel::unbounded();
        let cfg = LiveNodeConfig::new(MachineInfo::workstation(NodeId(0), 100.0)).with_endpoint(
            PortId::DAEMON,
            Box::new(Worker {
                done_tx: tx,
                started_at: 0,
            }),
        );
        // time_scale 10_000: 0.5 simulated seconds ≈ 50 real ms.
        let driver = LiveDriver::spawn(&net, vec![cfg], 1, 10_000.0);
        let sim_duration = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        driver.stop();
        // Should be at least the nominal 500_000 sim-us. The upper bound is
        // only a sanity check and must be generous: on a loaded single-core
        // CI machine the driver thread can be starved for whole seconds of
        // real time, which this wall-clock-scaled test would otherwise read
        // as a failure.
        assert!(
            (400_000..40_000_000).contains(&sim_duration),
            "sim duration {sim_duration}"
        );
    }

    /// Endpoint with a timer that cancels a second timer.
    struct TimerBox {
        fired: Vec<u64>,
        done_tx: crossbeam::channel::Sender<Vec<u64>>,
    }

    impl Endpoint for TimerBox {
        fn on_start(&mut self, host: &mut dyn Host) {
            host.set_timer(1_000, 1);
            host.set_timer(2_000, 2);
            host.set_timer(30_000, 3);
            host.cancel_timer(2);
        }
        fn on_envelope(&mut self, _env: Envelope, _host: &mut dyn Host) {}
        fn on_timer(&mut self, token: u64, _host: &mut dyn Host) {
            self.fired.push(token);
            if token == 3 {
                let _ = self.done_tx.send(self.fired.clone());
            }
        }
    }

    #[test]
    fn timers_fire_in_order_and_cancel_works() {
        let net = MemoryNetwork::new(7);
        let (tx, rx) = crossbeam::channel::unbounded();
        let cfg = LiveNodeConfig::new(MachineInfo::workstation(NodeId(0), 100.0)).with_endpoint(
            PortId::DAEMON,
            Box::new(TimerBox {
                fired: Vec::new(),
                done_tx: tx,
            }),
        );
        let driver = LiveDriver::spawn(&net, vec![cfg], 1, 1_000.0);
        let fired = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        driver.stop();
        assert_eq!(fired, vec![1, 3]);
    }
}
