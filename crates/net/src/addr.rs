//! Node and port addressing.
//!
//! Isis addressed processes with opaque "Isis addresses" (§5: "a list of the
//! Isis addresses of the least loaded processors"). We reproduce that with a
//! `(node, port)` pair: a [`NodeId`] names a machine, a [`PortId`] names a
//! software endpoint on it (daemon, executor, a task's channel port, ...).

use std::fmt;

use vce_codec::{Codec, Decoder, Encoder, Result};

/// Identifies one machine participating in the VCE network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifies a software endpoint on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u32);

impl PortId {
    /// The per-machine scheduling/dispatching daemon (paper §5).
    pub const DAEMON: PortId = PortId(0);
    /// The group-leader role endpoint (co-located with a daemon).
    pub const LEADER: PortId = PortId(1);
    /// The user's execution program.
    pub const EXECUTOR: PortId = PortId(2);
    /// First port number available for dynamically created task ports.
    pub const DYNAMIC_BASE: PortId = PortId(1000);

    /// True if this is a runtime-allocated (task/channel) port rather than a
    /// well-known service port.
    pub fn is_dynamic(self) -> bool {
        self.0 >= Self::DYNAMIC_BASE.0
    }
}

/// A full endpoint address: machine plus endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr {
    /// The machine.
    pub node: NodeId,
    /// The endpoint on that machine.
    pub port: PortId,
}

impl Addr {
    /// Construct an address.
    pub fn new(node: NodeId, port: PortId) -> Self {
        Self { node, port }
    }

    /// The daemon endpoint on `node`.
    pub fn daemon(node: NodeId) -> Self {
        Self::new(node, PortId::DAEMON)
    }

    /// The leader endpoint on `node`.
    pub fn leader(node: NodeId) -> Self {
        Self::new(node, PortId::LEADER)
    }

    /// The executor endpoint on `node`.
    pub fn executor(node: NodeId) -> Self {
        Self::new(node, PortId::EXECUTOR)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.port {
            PortId::DAEMON => write!(f, "{}:daemon", self.node),
            PortId::LEADER => write!(f, "{}:leader", self.node),
            PortId::EXECUTOR => write!(f, "{}:exec", self.node),
            PortId(p) => write!(f, "{}:p{}", self.node, p),
        }
    }
}

impl Codec for NodeId {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.0);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(NodeId(dec.get_u32()?))
    }
}

impl Codec for PortId {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.0);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(PortId(dec.get_u32()?))
    }
}

impl Codec for Addr {
    fn encode(&self, enc: &mut Encoder) {
        self.node.encode(enc);
        self.port.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(Addr {
            node: NodeId::decode(dec)?,
            port: PortId::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vce_codec::{from_bytes, to_bytes};

    #[test]
    fn well_known_ports_are_distinct() {
        assert_ne!(PortId::DAEMON, PortId::LEADER);
        assert_ne!(PortId::LEADER, PortId::EXECUTOR);
        assert!(!PortId::DAEMON.is_dynamic());
        assert!(PortId(1000).is_dynamic());
        assert!(PortId(5000).is_dynamic());
    }

    #[test]
    fn addr_constructors() {
        let n = NodeId(7);
        assert_eq!(Addr::daemon(n).port, PortId::DAEMON);
        assert_eq!(Addr::leader(n).port, PortId::LEADER);
        assert_eq!(Addr::executor(n).port, PortId::EXECUTOR);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr::daemon(NodeId(3)).to_string(), "n3:daemon");
        assert_eq!(Addr::new(NodeId(3), PortId(1234)).to_string(), "n3:p1234");
    }

    #[test]
    fn codec_round_trip() {
        let a = Addr::new(NodeId(42), PortId(1001));
        assert_eq!(from_bytes::<Addr>(&to_bytes(&a)).unwrap(), a);
    }

    #[test]
    fn ordering_is_by_node_then_port() {
        let a = Addr::new(NodeId(1), PortId(9));
        let b = Addr::new(NodeId(2), PortId(0));
        assert!(a < b);
    }
}
