//! Machine descriptions: architecture classes and capability records.
//!
//! §4.1 of the paper: "all the machines participating in the VCE are divided
//! into classes. These classes are the low-level counterparts of the problem
//! architecture classes used by the design stage." §5 names WORKSTATION,
//! SIMD and MIMD groups. These types are the vocabulary every other crate
//! (design stage, compilation manager, bidding protocol, simulator) shares,
//! which is why they live here at the bottom of the crate graph.

use std::fmt;

use vce_codec::{impl_codec_for_enum, Codec, Decoder, Encoder, Result};

use crate::addr::NodeId;

/// Low-level machine architecture class (paper §4.1, Fig. 3).
///
/// The synchronous problem class maps to [`MachineClass::Simd`] ("machines
/// like the CM5 and the MasPar MP-1"), loosely-synchronous to
/// [`MachineClass::Mimd`], asynchronous to [`MachineClass::Workstation`];
/// [`MachineClass::Vector`] covers the vector computers §1 lists among the
/// architectural classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MachineClass {
    /// General-purpose Unix workstation.
    Workstation,
    /// SIMD array machine (CM-5 in SIMD mode, MasPar MP-1, ...).
    Simd,
    /// MIMD multiprocessor.
    Mimd,
    /// Vector supercomputer.
    Vector,
}

impl_codec_for_enum!(MachineClass {
    MachineClass::Workstation => 0,
    MachineClass::Simd => 1,
    MachineClass::Mimd => 2,
    MachineClass::Vector => 3,
});

impl MachineClass {
    /// All classes, in group-formation order.
    pub const ALL: [MachineClass; 4] = [
        MachineClass::Workstation,
        MachineClass::Simd,
        MachineClass::Mimd,
        MachineClass::Vector,
    ];

    /// The keyword used in VCE application-description scripts.
    pub fn script_keyword(self) -> &'static str {
        match self {
            // The paper's script uses problem-architecture words for remote
            // directives; these are the machine-class equivalents used when
            // a script addresses hardware groups directly.
            MachineClass::Workstation => "WORKSTATION",
            MachineClass::Simd => "SIMD",
            MachineClass::Mimd => "MIMD",
            MachineClass::Vector => "VECTOR",
        }
    }
}

impl fmt::Display for MachineClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.script_keyword())
    }
}

/// Static description of one machine: what the "simple database maintained
/// by VCE software" (§3.1.2) records about it.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineInfo {
    /// Network identity.
    pub node: NodeId,
    /// Architecture class (determines group membership).
    pub class: MachineClass,
    /// Nominal speed in million operations per second. Heterogeneity between
    /// machines of the same class is expressed here.
    pub speed_mops: f64,
    /// Physical memory in megabytes (checked against task requirements).
    pub mem_mb: u32,
    /// Whether the owner authorises hosting remote VCE executions (§5: "each
    /// workstation authorized to host remote executions").
    pub allows_remote: bool,
}

impl MachineInfo {
    /// A conventional workstation entry.
    pub fn workstation(node: NodeId, speed_mops: f64) -> Self {
        Self {
            node,
            class: MachineClass::Workstation,
            speed_mops,
            mem_mb: 64,
            allows_remote: true,
        }
    }

    /// Builder-style class override.
    pub fn with_class(mut self, class: MachineClass) -> Self {
        self.class = class;
        self
    }

    /// Builder-style memory override.
    pub fn with_mem_mb(mut self, mem_mb: u32) -> Self {
        self.mem_mb = mem_mb;
        self
    }

    /// Builder-style remote-hosting override.
    pub fn with_allows_remote(mut self, allows: bool) -> Self {
        self.allows_remote = allows;
        self
    }
}

impl Codec for MachineInfo {
    fn encode(&self, enc: &mut Encoder) {
        self.node.encode(enc);
        self.class.encode(enc);
        enc.put_f64(self.speed_mops);
        enc.put_u32(self.mem_mb);
        enc.put_bool(self.allows_remote);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(MachineInfo {
            node: NodeId::decode(dec)?,
            class: MachineClass::decode(dec)?,
            speed_mops: dec.get_f64()?,
            mem_mb: dec.get_u32()?,
            allows_remote: dec.get_bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vce_codec::{from_bytes, to_bytes};

    #[test]
    fn class_round_trip() {
        for c in MachineClass::ALL {
            assert_eq!(from_bytes::<MachineClass>(&to_bytes(&c)).unwrap(), c);
        }
    }

    #[test]
    fn keywords_match_paper_vocabulary() {
        assert_eq!(MachineClass::Workstation.script_keyword(), "WORKSTATION");
        assert_eq!(MachineClass::Simd.script_keyword(), "SIMD");
        assert_eq!(MachineClass::Mimd.to_string(), "MIMD");
    }

    #[test]
    fn machine_info_builder_and_codec() {
        let m = MachineInfo::workstation(NodeId(3), 50.0)
            .with_class(MachineClass::Vector)
            .with_mem_mb(1024)
            .with_allows_remote(false);
        assert_eq!(m.class, MachineClass::Vector);
        assert_eq!(m.mem_mb, 1024);
        assert!(!m.allows_remote);
        assert_eq!(from_bytes::<MachineInfo>(&to_bytes(&m)).unwrap(), m);
    }
}
