//! Fault injection: message drop, delay, duplication, and network partition.
//!
//! The paper leans on Isis "error notification functions" for fault tolerance
//! (§5: leader takeover by the oldest surviving member). To evaluate that we
//! must be able to kill machines, partition the network and perturb delivery.
//! A [`FaultPlan`] is consulted by both transports (threaded and simulated)
//! for every envelope.

use std::collections::{BTreeMap, BTreeSet};

use rand::Rng;

use crate::addr::NodeId;

/// Per-link fault parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Probability in `[0,1]` that a message on this link is silently lost.
    pub drop_prob: f64,
    /// Fixed extra delay applied to every message, in microseconds.
    pub extra_delay_us: u64,
    /// Uniform random jitter added on top, in microseconds.
    pub jitter_us: u64,
    /// Probability in `[0,1]` that a delivered message is delivered twice.
    pub dup_prob: f64,
}

impl Default for LinkFault {
    fn default() -> Self {
        Self {
            drop_prob: 0.0,
            extra_delay_us: 0,
            jitter_us: 0,
            dup_prob: 0.0,
        }
    }
}

/// One timed mutation of a [`FaultPlan`] — the unit of a *schedulable*
/// fault plan. Drivers queue `(at_us, FaultOp)` pairs (e.g. via
/// `vce_sim::Sim::schedule_fault`) so an entire crash/partition/heal
/// scenario rides the deterministic event heap instead of ad-hoc driver
/// stepping.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultOp {
    /// Crash a machine: its CPU state vanishes, messages to/from it drop.
    Kill(NodeId),
    /// Revive a crashed machine; its endpoints reboot via `on_start`.
    Revive(NodeId),
    /// Move a node into partition `group` (0 = the main component).
    Partition(NodeId, u32),
    /// Heal all partitions.
    Heal,
    /// Replace the every-link default fault — message loss/dup/jitter
    /// bursts start by installing one and end by restoring the default.
    DefaultLink(LinkFault),
    /// Install a *directed* per-link fault on `src → dst` only. The
    /// reverse direction is untouched — this is how asymmetric gray
    /// faults (one-way loss, one-way latency) are expressed.
    Link(NodeId, NodeId, LinkFault),
    /// Remove the directed `src → dst` entry so the link falls back to
    /// `default_link`. (Installing `LinkFault::default()` would instead
    /// *shield* the link from an ambient default fault.)
    ClearLink(NodeId, NodeId),
    /// Degrade a node's CPU: all work on it takes `factor`× longer
    /// (processor speed divided by `factor`). `SlowNode(n, 1)` restores
    /// full speed. The node stays alive and keeps answering messages —
    /// the canonical gray failure a naive failure detector evicts.
    SlowNode(NodeId, u32),
}

/// The verdict a transport gets for one envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver after the given extra delay (microseconds).
    Deliver {
        /// Extra delay beyond base latency, µs.
        extra_delay_us: u64,
    },
    /// Deliver twice (duplicate), each after its own delay.
    Duplicate {
        /// Delay of the first copy.
        first_us: u64,
        /// Delay of the second copy.
        second_us: u64,
    },
    /// Silently drop.
    Drop,
}

/// A mutable description of what is currently wrong with the network.
///
/// Thread-safe wrappers are applied by the transports themselves; the plan is
/// plain data so the simulator can snapshot it.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Nodes that have crashed (messages to/from them vanish).
    dead: BTreeSet<NodeId>,
    /// Partition id per node; nodes in different partitions cannot talk.
    /// Nodes absent from the map are in partition 0.
    partition: BTreeMap<NodeId, u32>,
    /// Directed per-link faults, keyed `(src, dst)`.
    links: BTreeMap<(NodeId, NodeId), LinkFault>,
    /// Fault applied to every link without a specific entry.
    pub default_link: LinkFault,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Mark a node crashed. Idempotent.
    pub fn kill(&mut self, node: NodeId) {
        self.dead.insert(node);
    }

    /// Revive a crashed node.
    pub fn revive(&mut self, node: NodeId) {
        self.dead.remove(&node);
    }

    /// Whether the node is currently crashed.
    pub fn is_dead(&self, node: NodeId) -> bool {
        self.dead.contains(&node)
    }

    /// Place a node in a partition group. Nodes default to partition 0.
    pub fn set_partition(&mut self, node: NodeId, group: u32) {
        if group == 0 {
            self.partition.remove(&node);
        } else {
            self.partition.insert(node, group);
        }
    }

    /// Heal all partitions.
    pub fn heal_partitions(&mut self) {
        self.partition.clear();
    }

    /// Configure a directed link fault.
    pub fn set_link(&mut self, src: NodeId, dst: NodeId, fault: LinkFault) {
        self.links.insert((src, dst), fault);
    }

    /// Configure the same fault in both directions.
    pub fn set_link_bidir(&mut self, a: NodeId, b: NodeId, fault: LinkFault) {
        self.set_link(a, b, fault);
        self.set_link(b, a, fault);
    }

    /// Remove a directed link-fault entry; the link reverts to
    /// `default_link`.
    pub fn clear_link(&mut self, src: NodeId, dst: NodeId) {
        self.links.remove(&(src, dst));
    }

    /// The directed fault currently installed on `src → dst`, if any.
    pub fn link(&self, src: NodeId, dst: NodeId) -> Option<LinkFault> {
        self.links.get(&(src, dst)).copied()
    }

    fn partition_of(&self, node: NodeId) -> u32 {
        self.partition.get(&node).copied().unwrap_or(0)
    }

    /// Whether `src` can currently reach `dst` at all (liveness + partition).
    pub fn connected(&self, src: NodeId, dst: NodeId) -> bool {
        !self.is_dead(src) && !self.is_dead(dst) && self.partition_of(src) == self.partition_of(dst)
    }

    /// Decide the fate of one envelope from `src` to `dst`, drawing any
    /// randomness from `rng` (the caller owns determinism).
    pub fn judge<R: Rng + ?Sized>(&self, src: NodeId, dst: NodeId, rng: &mut R) -> Delivery {
        if !self.connected(src, dst) {
            return Delivery::Drop;
        }
        let fault = match self.links.get(&(src, dst)) {
            Some(f) => *f,
            // Loopback traffic never traverses the network, so the ambient
            // link fault does not apply (an explicit self-link entry still
            // does). Without this, a lossy `default_link` can drop a node's
            // message to itself — unrecoverable for head-of-stream losses
            // that gap-based NACK schemes cannot observe.
            None if src == dst => LinkFault::default(),
            None => self.default_link,
        };
        if fault.drop_prob > 0.0 && rng.gen::<f64>() < fault.drop_prob {
            return Delivery::Drop;
        }
        let delay = |rng: &mut R| {
            let jitter = if fault.jitter_us > 0 {
                rng.gen_range(0..=fault.jitter_us)
            } else {
                0
            };
            fault.extra_delay_us + jitter
        };
        let first = delay(rng);
        if fault.dup_prob > 0.0 && rng.gen::<f64>() < fault.dup_prob {
            let second = delay(rng);
            Delivery::Duplicate {
                first_us: first,
                second_us: second,
            }
        } else {
            Delivery::Deliver {
                extra_delay_us: first,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn clean_plan_delivers() {
        let plan = FaultPlan::none();
        let mut r = rng();
        assert_eq!(
            plan.judge(NodeId(0), NodeId(1), &mut r),
            Delivery::Deliver { extra_delay_us: 0 }
        );
    }

    #[test]
    fn dead_node_drops_both_directions() {
        let mut plan = FaultPlan::none();
        plan.kill(NodeId(1));
        let mut r = rng();
        assert_eq!(plan.judge(NodeId(0), NodeId(1), &mut r), Delivery::Drop);
        assert_eq!(plan.judge(NodeId(1), NodeId(0), &mut r), Delivery::Drop);
        assert!(plan.is_dead(NodeId(1)));
        plan.revive(NodeId(1));
        assert!(!plan.is_dead(NodeId(1)));
        assert!(matches!(
            plan.judge(NodeId(0), NodeId(1), &mut r),
            Delivery::Deliver { .. }
        ));
    }

    #[test]
    fn partition_blocks_cross_traffic_only() {
        let mut plan = FaultPlan::none();
        plan.set_partition(NodeId(2), 1);
        plan.set_partition(NodeId(3), 1);
        let mut r = rng();
        // Within partition 1: ok.
        assert!(matches!(
            plan.judge(NodeId(2), NodeId(3), &mut r),
            Delivery::Deliver { .. }
        ));
        // Across: dropped.
        assert_eq!(plan.judge(NodeId(0), NodeId(2), &mut r), Delivery::Drop);
        plan.heal_partitions();
        assert!(matches!(
            plan.judge(NodeId(0), NodeId(2), &mut r),
            Delivery::Deliver { .. }
        ));
    }

    #[test]
    fn drop_probability_one_always_drops() {
        let mut plan = FaultPlan::none();
        plan.set_link(
            NodeId(0),
            NodeId(1),
            LinkFault {
                drop_prob: 1.0,
                ..Default::default()
            },
        );
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(plan.judge(NodeId(0), NodeId(1), &mut r), Delivery::Drop);
        }
        // Reverse direction unaffected.
        assert!(matches!(
            plan.judge(NodeId(1), NodeId(0), &mut r),
            Delivery::Deliver { .. }
        ));
    }

    #[test]
    fn delay_and_jitter_bounds() {
        let mut plan = FaultPlan::none();
        plan.default_link = LinkFault {
            extra_delay_us: 100,
            jitter_us: 50,
            ..Default::default()
        };
        let mut r = rng();
        for _ in 0..200 {
            match plan.judge(NodeId(0), NodeId(1), &mut r) {
                Delivery::Deliver { extra_delay_us } => {
                    assert!((100..=150).contains(&extra_delay_us));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn duplication_produces_two_copies() {
        let mut plan = FaultPlan::none();
        plan.default_link = LinkFault {
            dup_prob: 1.0,
            extra_delay_us: 5,
            ..Default::default()
        };
        let mut r = rng();
        match plan.judge(NodeId(0), NodeId(1), &mut r) {
            Delivery::Duplicate {
                first_us,
                second_us,
            } => {
                assert_eq!(first_us, 5);
                assert_eq!(second_us, 5);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn drop_rate_is_approximately_honoured() {
        let mut plan = FaultPlan::none();
        plan.default_link = LinkFault {
            drop_prob: 0.3,
            ..Default::default()
        };
        let mut r = rng();
        let n = 10_000;
        let dropped = (0..n)
            .filter(|_| plan.judge(NodeId(0), NodeId(1), &mut r) == Delivery::Drop)
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "observed rate {rate}");
    }

    #[test]
    fn loopback_exempt_from_default_link_faults() {
        let mut plan = FaultPlan::none();
        plan.default_link = LinkFault {
            drop_prob: 1.0,
            extra_delay_us: 99,
            ..Default::default()
        };
        let mut r = rng();
        assert_eq!(
            plan.judge(NodeId(3), NodeId(3), &mut r),
            Delivery::Deliver { extra_delay_us: 0 }
        );
        // An explicit self-link entry is still honoured.
        plan.set_link(
            NodeId(3),
            NodeId(3),
            LinkFault {
                drop_prob: 1.0,
                ..Default::default()
            },
        );
        assert_eq!(plan.judge(NodeId(3), NodeId(3), &mut r), Delivery::Drop);
    }

    #[test]
    fn asymmetric_link_fault_is_one_directional() {
        // Regression for the chaos-schedule asymmetry gap: a directed
        // entry on A→B must leave B→A on the default link, and clearing
        // it must restore A→B to the default as well.
        let mut plan = FaultPlan::none();
        plan.set_link(
            NodeId(0),
            NodeId(1),
            LinkFault {
                drop_prob: 1.0,
                ..Default::default()
            },
        );
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(plan.judge(NodeId(0), NodeId(1), &mut r), Delivery::Drop);
            assert!(matches!(
                plan.judge(NodeId(1), NodeId(0), &mut r),
                Delivery::Deliver { .. }
            ));
        }
        assert!(plan.link(NodeId(0), NodeId(1)).is_some());
        assert!(plan.link(NodeId(1), NodeId(0)).is_none());
        plan.clear_link(NodeId(0), NodeId(1));
        assert!(matches!(
            plan.judge(NodeId(0), NodeId(1), &mut r),
            Delivery::Deliver { .. }
        ));
    }

    #[test]
    fn clear_link_reverts_to_ambient_default() {
        // An explicit benign entry shields a link from the ambient
        // default fault; clearing it re-exposes the link.
        let mut plan = FaultPlan::none();
        plan.default_link = LinkFault {
            drop_prob: 1.0,
            ..Default::default()
        };
        plan.set_link(NodeId(0), NodeId(1), LinkFault::default());
        let mut r = rng();
        assert!(matches!(
            plan.judge(NodeId(0), NodeId(1), &mut r),
            Delivery::Deliver { .. }
        ));
        plan.clear_link(NodeId(0), NodeId(1));
        assert_eq!(plan.judge(NodeId(0), NodeId(1), &mut r), Delivery::Drop);
    }

    #[test]
    fn bidir_link_fault() {
        let mut plan = FaultPlan::none();
        plan.set_link_bidir(
            NodeId(4),
            NodeId(5),
            LinkFault {
                extra_delay_us: 7,
                ..Default::default()
            },
        );
        let mut r = rng();
        for (a, b) in [(NodeId(4), NodeId(5)), (NodeId(5), NodeId(4))] {
            assert_eq!(
                plan.judge(a, b, &mut r),
                Delivery::Deliver { extra_delay_us: 7 }
            );
        }
    }
}
