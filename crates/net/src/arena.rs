//! Dense, allocation-free-in-steady-state containers for hot protocol
//! state.
//!
//! The protocol objects (isis ordering buffers, EXM daemon tables) were
//! originally `BTreeMap`s: correct and deterministic, but every
//! insert/remove cycle allocates and frees a tree node, which dominates the
//! per-event cost once encode and decode are pooled. This module provides
//! the replacements, all preserving *deterministic iteration order*:
//!
//! * [`SlotArena`] — a slab of generational slots plus a sorted key index:
//!   `BTreeMap`-compatible ordered iteration, but inserts reuse freed slots
//!   and removals free into a free-list, so a steady-state workload that
//!   inserts and removes at the same rate allocates nothing.
//! * [`SeqWindow`] — a ring buffer keyed by a dense monotone sequence
//!   number (FIFO/total-order holdback): insert ahead of the base, take
//!   contiguously from the base, no per-entry nodes at all.
//! * [`NodeList`] — an inline small-vector of [`NodeId`]s wire-compatible
//!   with `Vec<NodeId>`, so allocation fan-out lists (≤ 8 nodes in every
//!   benchmark scenario) decode and store without touching the heap.
//!
//! Mutability classes follow murk-arena's split: *per-tick scratch*
//! (cleared and refilled every round — plain `Vec`s owned by the protocol
//! object) versus *sparse long-lived* state (these arenas, where entries
//! outlive many ticks and churn slot-by-slot).

use vce_codec::{Codec, Decoder, Encoder, Result};

use crate::addr::NodeId;

/// Stable reference to a [`SlotArena`] entry: slot index plus the slot's
/// generation at hand-out time. A handle held across the entry's removal
/// (and the slot's reuse) goes stale rather than aliasing the new tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotHandle {
    slot: u32,
    generation: u32,
}

#[derive(Debug)]
struct Slot<K, V> {
    generation: u32,
    entry: Option<(K, V)>,
}

/// An ordered map over a dense slab: sorted `(key, slot)` index for
/// deterministic iteration and `O(log n)` lookup, generational slots for
/// storage, and a free-list so steady-state insert/remove churn reuses
/// slots instead of allocating.
#[derive(Debug)]
pub struct SlotArena<K, V> {
    /// Sorted by key; values are slot indices.
    index: Vec<(K, u32)>,
    slots: Vec<Slot<K, V>>,
    free: Vec<u32>,
}

impl<K, V> Default for SlotArena<K, V> {
    fn default() -> Self {
        SlotArena {
            index: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
        }
    }
}

impl<K: Ord + Copy, V> SlotArena<K, V> {
    /// Empty arena; slots are allocated on demand.
    pub fn new() -> Self {
        SlotArena {
            index: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Empty arena with room for `cap` entries before any reallocation.
    pub fn with_capacity(cap: usize) -> Self {
        SlotArena {
            index: Vec::with_capacity(cap),
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    fn find(&self, key: &K) -> std::result::Result<usize, usize> {
        self.index.binary_search_by(|(k, _)| k.cmp(key))
    }

    /// Insert or replace; returns the previous value if the key was
    /// present. Reuses a freed slot when one exists.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.find(&key) {
            Ok(i) => {
                let slot = self.index[i].1 as usize;
                let old = self.slots[slot].entry.replace((key, value));
                old.map(|(_, v)| v)
            }
            Err(i) => {
                let slot = match self.free.pop() {
                    Some(s) => {
                        self.slots[s as usize].entry = Some((key, value));
                        s
                    }
                    None => {
                        self.slots.push(Slot {
                            generation: 0,
                            entry: Some((key, value)),
                        });
                        (self.slots.len() - 1) as u32
                    }
                };
                self.index.insert(i, (key, slot));
                None
            }
        }
    }

    /// Remove and return the value for `key`, freeing its slot.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let i = self.find(key).ok()?;
        let slot = self.index.remove(i).1;
        let s = &mut self.slots[slot as usize];
        s.generation = s.generation.wrapping_add(1);
        self.free.push(slot);
        s.entry.take().map(|(_, v)| v)
    }

    /// Shared access by key.
    pub fn get(&self, key: &K) -> Option<&V> {
        let i = self.find(key).ok()?;
        let slot = self.index[i].1 as usize;
        self.slots[slot].entry.as_ref().map(|(_, v)| v)
    }

    /// Mutable access by key.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let i = self.find(key).ok()?;
        let slot = self.index[i].1 as usize;
        self.slots[slot].entry.as_mut().map(|(_, v)| v)
    }

    /// True if `key` has a live entry.
    pub fn contains_key(&self, key: &K) -> bool {
        self.find(key).is_ok()
    }

    /// Mutable access by key, inserting `default()` first if absent.
    pub fn entry_or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        if self.find(&key).is_err() {
            self.insert(key, default());
        }
        self.get_mut(&key).expect("just ensured present")
    }

    /// A generational handle to `key`'s current entry (see [`SlotHandle`]).
    pub fn handle_of(&self, key: &K) -> Option<SlotHandle> {
        let i = self.find(key).ok()?;
        let slot = self.index[i].1;
        Some(SlotHandle {
            slot,
            generation: self.slots[slot as usize].generation,
        })
    }

    /// Resolve a handle; `None` once the entry it named was removed (even
    /// if the slot has since been reused for another key).
    pub fn get_handle(&self, h: SlotHandle) -> Option<&V> {
        let s = self.slots.get(h.slot as usize)?;
        if s.generation != h.generation {
            return None;
        }
        s.entry.as_ref().map(|(_, v)| v)
    }

    /// Iterate entries in ascending key order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.index.iter().map(|(_, slot)| {
            let (k, v) = self.slots[*slot as usize]
                .entry
                .as_ref()
                .expect("indexed slot is live");
            (k, v)
        })
    }

    /// Iterate keys in ascending order (deterministic).
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// Iterate values in ascending key order (deterministic).
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }

    /// Visit every entry mutably, in ascending key order (deterministic).
    pub fn for_each_mut(&mut self, mut f: impl FnMut(&K, &mut V)) {
        let slots = &mut self.slots;
        for &(_, slot) in &self.index {
            let (k, v) = slots[slot as usize]
                .entry
                .as_mut()
                .expect("indexed slot is live");
            f(k, v);
        }
    }

    /// Keep only entries for which `pred` returns true, in key order.
    /// Freed slots go to the free-list; no allocation.
    pub fn retain(&mut self, mut pred: impl FnMut(&K, &mut V) -> bool) {
        let slots = &mut self.slots;
        let free = &mut self.free;
        self.index.retain(|&(_, slot)| {
            let s = &mut slots[slot as usize];
            let (k, v) = s.entry.as_mut().expect("indexed slot is live");
            let keep = pred(k, v);
            if !keep {
                s.generation = s.generation.wrapping_add(1);
                s.entry = None;
                free.push(slot);
            }
            keep
        });
    }

    /// Drop all entries (slots and capacity are retained for reuse).
    pub fn clear(&mut self) {
        for &(_, slot) in &self.index {
            let s = &mut self.slots[slot as usize];
            s.generation = s.generation.wrapping_add(1);
            s.entry = None;
            self.free.push(slot);
        }
        self.index.clear();
    }

    /// First (minimum) key, if any.
    pub fn first_key(&self) -> Option<&K> {
        self.index.first().map(|(k, _)| k)
    }
}

/// Holdback buffer keyed by a dense monotone sequence number.
///
/// Entries are inserted at arbitrary positions at or ahead of the window
/// `base` and consumed contiguously from the base — exactly the access
/// pattern of FIFO and total-order holdback queues. Storage is a power-of-
/// two ring of `Option<T>`; the ring grows (amortized, rarely after warm-
/// up) when a sequence lands beyond the current capacity, and never holds
/// per-entry heap nodes.
#[derive(Debug)]
pub struct SeqWindow<T> {
    ring: Vec<Option<T>>,
    /// Sequence number of ring position `head`.
    base: u64,
    head: usize,
    occupied: usize,
}

impl<T> Default for SeqWindow<T> {
    fn default() -> Self {
        SeqWindow::new()
    }
}

impl<T> SeqWindow<T> {
    /// Empty window based at sequence 0.
    pub fn new() -> Self {
        SeqWindow {
            ring: Vec::new(),
            base: 0,
            head: 0,
            occupied: 0,
        }
    }

    /// Number of buffered entries.
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// The sequence number the next contiguous take will yield.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Rebase an *empty* window at `seq` (adopting a stream position).
    ///
    /// # Panics
    /// Panics if entries are buffered — rebasing would orphan them.
    pub fn rebase(&mut self, seq: u64) {
        assert!(self.occupied == 0, "rebase of a non-empty SeqWindow");
        self.base = seq;
        self.head = 0;
    }

    fn pos_of(&self, seq: u64) -> usize {
        debug_assert!(seq >= self.base);
        let off = (seq - self.base) as usize;
        (self.head + off) & (self.ring.len() - 1)
    }

    fn grow_to(&mut self, need: usize) {
        let new_cap = need.next_power_of_two().max(8);
        let old_cap = self.ring.len();
        let mut ring = Vec::with_capacity(new_cap);
        ring.resize_with(new_cap, || None);
        for (i, slot) in ring.iter_mut().take(old_cap).enumerate() {
            let pos = (self.head + i) & (old_cap - 1);
            *slot = self.ring[pos].take();
        }
        self.ring = ring;
        self.head = 0;
    }

    /// Buffer `value` at `seq`. Returns `false` (dropping nothing) for
    /// sequences behind the base — those are duplicates by construction.
    /// Re-inserting an occupied position keeps the first arrival, matching
    /// the retransmission-tolerant map semantics it replaces.
    pub fn insert(&mut self, seq: u64, value: T) -> bool {
        if seq < self.base {
            return false;
        }
        let need = (seq - self.base) as usize + 1;
        if need > self.ring.len() {
            self.grow_to(need);
        }
        let pos = self.pos_of(seq);
        if self.ring[pos].is_none() {
            self.ring[pos] = Some(value);
            self.occupied += 1;
        }
        true
    }

    /// Take the entry at the base, advancing it, or `None` on a gap.
    pub fn take_next(&mut self) -> Option<T> {
        if self.ring.is_empty() {
            return None;
        }
        let v = self.ring[self.head].take()?;
        self.head = (self.head + 1) & (self.ring.len() - 1);
        self.base += 1;
        self.occupied -= 1;
        Some(v)
    }

    /// Whether `seq` is currently buffered.
    pub fn contains(&self, seq: u64) -> bool {
        seq >= self.base
            && ((seq - self.base) as usize) < self.ring.len()
            && self.ring[self.pos_of(seq)].is_some()
    }

    /// Drop all entries; base is unchanged, capacity retained.
    pub fn clear(&mut self) {
        for slot in &mut self.ring {
            *slot = None;
        }
        self.occupied = 0;
    }
}

/// How many [`NodeId`]s a [`NodeList`] stores without heap allocation.
pub const NODE_LIST_INLINE: usize = 8;

/// A list of [`NodeId`]s, inline up to [`NODE_LIST_INLINE`] entries and
/// spilling to a `Vec` beyond that. Wire-compatible with `Vec<NodeId>`
/// (`u32` count + entries), so protocol messages switch representations
/// without a format change. Allocation fan-out in every benchmark scenario
/// fits inline, making decode, store, and clone allocation-free.
#[derive(Clone)]
pub enum NodeList {
    /// Up to [`NODE_LIST_INLINE`] ids in the handle itself.
    Inline {
        /// Number of valid entries in `buf`.
        len: u8,
        /// Backing storage; entries past `len` are meaningless.
        buf: [NodeId; NODE_LIST_INLINE],
    },
    /// Heap fallback for longer lists.
    Spill(Vec<NodeId>),
}

impl NodeList {
    /// Empty list (inline, no allocation).
    pub const fn new() -> Self {
        NodeList::Inline {
            len: 0,
            buf: [NodeId(0); NODE_LIST_INLINE],
        }
    }

    /// Number of ids.
    pub fn len(&self) -> usize {
        match self {
            NodeList::Inline { len, .. } => *len as usize,
            NodeList::Spill(v) => v.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ids as a slice.
    pub fn as_slice(&self) -> &[NodeId] {
        match self {
            NodeList::Inline { len, buf } => &buf[..*len as usize],
            NodeList::Spill(v) => v,
        }
    }

    /// Append an id, spilling to the heap past the inline capacity.
    pub fn push(&mut self, id: NodeId) {
        match self {
            NodeList::Inline { len, buf } => {
                if (*len as usize) < NODE_LIST_INLINE {
                    buf[*len as usize] = id;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(NODE_LIST_INLINE * 2);
                    v.extend_from_slice(&buf[..]);
                    v.push(id);
                    *self = NodeList::Spill(v);
                }
            }
            NodeList::Spill(v) => v.push(id),
        }
    }

    /// Remove all ids (inline representation keeps its buffer; spilled
    /// keeps its capacity).
    pub fn clear(&mut self) {
        match self {
            NodeList::Inline { len, .. } => *len = 0,
            NodeList::Spill(v) => v.clear(),
        }
    }

    /// Iterate the ids.
    pub fn iter(&self) -> std::slice::Iter<'_, NodeId> {
        self.as_slice().iter()
    }

    /// Whether `id` is present.
    pub fn contains(&self, id: NodeId) -> bool {
        self.as_slice().contains(&id)
    }
}

impl Default for NodeList {
    fn default() -> Self {
        NodeList::new()
    }
}

impl PartialEq for NodeList {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for NodeList {}

impl std::fmt::Debug for NodeList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl From<Vec<NodeId>> for NodeList {
    fn from(v: Vec<NodeId>) -> Self {
        if v.len() <= NODE_LIST_INLINE {
            let mut out = NodeList::new();
            for id in v {
                out.push(id);
            }
            out
        } else {
            NodeList::Spill(v)
        }
    }
}

impl From<&[NodeId]> for NodeList {
    fn from(s: &[NodeId]) -> Self {
        let mut out = NodeList::new();
        if s.len() > NODE_LIST_INLINE {
            return NodeList::Spill(s.to_vec());
        }
        for &id in s {
            out.push(id);
        }
        out
    }
}

impl<'a> IntoIterator for &'a NodeList {
    type Item = &'a NodeId;
    type IntoIter = std::slice::Iter<'a, NodeId>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl Codec for NodeList {
    fn encode(&self, enc: &mut Encoder) {
        // Wire format of `Vec<NodeId>`: u32 count, then each id.
        enc.put_u32(self.len() as u32);
        for id in self.iter() {
            id.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let n = dec.get_count(1)?;
        if n <= NODE_LIST_INLINE {
            let mut out = NodeList::new();
            for _ in 0..n {
                out.push(NodeId::decode(dec)?);
            }
            Ok(out)
        } else {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(NodeId::decode(dec)?);
            }
            Ok(NodeList::Spill(v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_matches_btreemap_iteration_order() {
        use std::collections::BTreeMap;
        let keys = [40u32, 7, 19, 3, 28, 11, 40, 7];
        let mut arena = SlotArena::new();
        let mut map = BTreeMap::new();
        for (i, &k) in keys.iter().enumerate() {
            arena.insert(k, i);
            map.insert(k, i);
        }
        let a: Vec<_> = arena.iter().map(|(k, v)| (*k, *v)).collect();
        let m: Vec<_> = map.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(a, m);
        arena.remove(&19);
        map.remove(&19);
        arena.insert(5, 99);
        map.insert(5, 99);
        let a: Vec<_> = arena.iter().map(|(k, v)| (*k, *v)).collect();
        let m: Vec<_> = map.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(a, m);
    }

    #[test]
    fn arena_insert_remove_reuses_slots() {
        let mut arena = SlotArena::new();
        for i in 0u32..8 {
            arena.insert(i, i);
        }
        let slots_before = arena.slots.len();
        for round in 0u32..100 {
            arena.remove(&(round % 8));
            arena.insert(round % 8, round);
        }
        assert_eq!(
            arena.slots.len(),
            slots_before,
            "churn must not grow the slab"
        );
        assert_eq!(arena.len(), 8);
    }

    #[test]
    fn arena_handles_go_stale_on_removal() {
        let mut arena = SlotArena::new();
        arena.insert(1u32, "one");
        let h = arena.handle_of(&1).unwrap();
        assert_eq!(arena.get_handle(h), Some(&"one"));
        arena.remove(&1);
        assert_eq!(arena.get_handle(h), None);
        // Slot reuse must not resurrect the old handle.
        arena.insert(2u32, "two");
        assert_eq!(arena.get_handle(h), None);
        assert_eq!(arena.get(&2), Some(&"two"));
    }

    #[test]
    fn arena_retain_frees_slots_in_order() {
        let mut arena = SlotArena::new();
        for i in 0u32..10 {
            arena.insert(i, i);
        }
        arena.retain(|k, _| k % 2 == 0);
        let kept: Vec<u32> = arena.keys().copied().collect();
        assert_eq!(kept, vec![0, 2, 4, 6, 8]);
        // Freed slots are reused before the slab grows.
        let slots = arena.slots.len();
        for i in 10u32..15 {
            arena.insert(i, i);
        }
        assert_eq!(arena.slots.len(), slots);
    }

    #[test]
    fn arena_entry_or_insert_with() {
        let mut arena: SlotArena<u32, Vec<u32>> = SlotArena::new();
        arena.entry_or_insert_with(3, Vec::new).push(1);
        arena.entry_or_insert_with(3, Vec::new).push(2);
        assert_eq!(arena.get(&3), Some(&vec![1, 2]));
    }

    #[test]
    fn arena_clear_retains_capacity() {
        let mut arena = SlotArena::new();
        for i in 0u32..4 {
            arena.insert(i, i);
        }
        arena.clear();
        assert!(arena.is_empty());
        assert_eq!(arena.slots.len(), 4);
        arena.insert(9, 9);
        assert_eq!(arena.slots.len(), 4, "cleared slots are reused");
    }

    #[test]
    fn seq_window_contiguous_flow() {
        let mut w = SeqWindow::new();
        assert!(w.insert(0, "a"));
        assert!(w.insert(1, "b"));
        assert_eq!(w.take_next(), Some("a"));
        assert_eq!(w.take_next(), Some("b"));
        assert_eq!(w.take_next(), None);
        assert_eq!(w.base(), 2);
    }

    #[test]
    fn seq_window_gap_and_fill() {
        let mut w = SeqWindow::new();
        w.rebase(10);
        assert!(w.insert(12, "c"));
        assert_eq!(w.take_next(), None, "gap at 10");
        assert!(w.insert(10, "a"));
        assert!(w.insert(11, "b"));
        assert_eq!(w.take_next(), Some("a"));
        assert_eq!(w.take_next(), Some("b"));
        assert_eq!(w.take_next(), Some("c"));
        assert!(w.is_empty());
    }

    #[test]
    fn seq_window_behind_base_is_duplicate() {
        let mut w = SeqWindow::new();
        w.insert(0, 1);
        assert_eq!(w.take_next(), Some(1));
        assert!(!w.insert(0, 2), "seq behind base rejected");
        // First arrival wins on re-insert of a buffered position.
        w.insert(5, 50);
        w.insert(5, 51);
        assert_eq!(w.len(), 1);
        for _ in 0..4 {
            assert_eq!(w.take_next(), None);
            w.base += 1; // simulate fills elsewhere for the test
        }
    }

    #[test]
    fn seq_window_grows_for_far_ahead_seq() {
        let mut w = SeqWindow::new();
        w.insert(0, 0u64);
        assert!(w.insert(100, 100));
        assert_eq!(w.len(), 2);
        assert_eq!(w.take_next(), Some(0));
        assert!(w.contains(100));
        for seq in 1..100 {
            w.insert(seq, seq);
        }
        for seq in 1..=100 {
            assert_eq!(w.take_next(), Some(seq));
        }
    }

    #[test]
    fn seq_window_wraps_ring() {
        let mut w = SeqWindow::new();
        // Fill and drain repeatedly so head wraps the power-of-two ring.
        for round in 0u64..50 {
            let base = round * 3;
            for i in 0..3 {
                assert!(w.insert(base + i, base + i));
            }
            for i in 0..3 {
                assert_eq!(w.take_next(), Some(base + i));
            }
        }
        assert_eq!(w.base(), 150);
    }

    #[test]
    fn node_list_inline_and_spill() {
        let mut l = NodeList::new();
        for i in 0..NODE_LIST_INLINE as u32 {
            l.push(NodeId(i));
        }
        assert!(matches!(l, NodeList::Inline { .. }));
        assert_eq!(l.len(), NODE_LIST_INLINE);
        l.push(NodeId(99));
        assert!(matches!(l, NodeList::Spill(_)));
        assert_eq!(l.len(), NODE_LIST_INLINE + 1);
        assert!(l.contains(NodeId(99)));
    }

    #[test]
    fn node_list_wire_compatible_with_vec() {
        let ids = vec![NodeId(3), NodeId(1), NodeId(7)];
        let mut enc = Encoder::with_capacity(32);
        ids.encode(&mut enc);
        let vec_bytes = enc.finish();

        let list = NodeList::from(ids.clone());
        let mut enc = Encoder::with_capacity(32);
        list.encode(&mut enc);
        assert_eq!(enc.finish(), vec_bytes, "same wire bytes as Vec<NodeId>");

        let mut dec = Decoder::new(&vec_bytes);
        let back = NodeList::decode(&mut dec).unwrap();
        assert_eq!(back.as_slice(), ids.as_slice());
    }

    #[test]
    fn node_list_long_round_trip() {
        let ids: Vec<NodeId> = (0..20).map(NodeId).collect();
        let list = NodeList::from(ids.clone());
        let mut enc = Encoder::with_capacity(128);
        list.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        let back = NodeList::decode(&mut dec).unwrap();
        assert!(matches!(back, NodeList::Spill(_)));
        assert_eq!(back.as_slice(), ids.as_slice());
    }
}
