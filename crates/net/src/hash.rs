//! FNV-1a 64-bit state digests.
//!
//! The record/replay subsystem (`vce_sim::record`) periodically snapshots a
//! whole-sim hash plus one hash per node, folded from every endpoint's
//! [`Endpoint::snapshot_hash`](crate::Endpoint::snapshot_hash). Those
//! digests must be *cheap* (they run on every snapshot of every recorded
//! run) and *deterministic across shard layouts* (only fold state whose
//! value is a pure function of the simulation, never HashMap iteration
//! order or host pointers). FNV-1a fits: no tables, one multiply per byte,
//! and the same function the bench fingerprints already use.

/// Incremental FNV-1a 64-bit hasher.
///
/// Not a general-purpose `std::hash::Hasher` on purpose: protocol code
/// folds fields explicitly (and in a fixed order), so a digest documents
/// exactly what state it covers.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

/// FNV-1a 64-bit offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(OFFSET)
    }

    /// Fold one byte.
    #[inline]
    pub fn write_u8(&mut self, b: u8) -> &mut Self {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(PRIME);
        self
    }

    /// Fold a `u64`, little-endian byte order.
    #[inline]
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
        self
    }

    /// Fold a byte slice (length is *not* folded; callers that hash
    /// variable-length runs should fold the length themselves).
    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.write_u8(b);
        }
        self
    }

    /// Fold an `f64` by bit pattern (exact, no rounding ambiguity).
    #[inline]
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Fold a `bool` as one byte.
    #[inline]
    pub fn write_bool(&mut self, v: bool) -> &mut Self {
        self.write_u8(u8::from(v))
    }

    /// The digest so far.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a 64 of a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write_bytes(bytes);
    h.finish()
}

/// A deterministic, table-free `std::hash::Hasher` for hot-path hash maps
/// (one multiply per word, FxHash-style).
///
/// `std`'s default hasher is SipHash with a per-process random key — safe
/// against adversarial keys, but an order of magnitude slower on the tiny
/// fixed-width keys the engine hashes (timer tokens, port ids), and its
/// random state is one more thing that could leak into an iteration order.
/// Engine-internal maps are never keyed by remote input, so the DoS
/// hardening buys nothing there. Use as
/// `HashMap<K, V, DetHashState>` with `HashMap::default()`.
#[derive(Debug, Default, Clone, Copy)]
pub struct DetHasher(u64);

/// `BuildHasherDefault` alias for [`DetHasher`].
pub type DetHashState = std::hash::BuildHasherDefault<DetHasher>;

impl DetHasher {
    const K: u64 = 0x517c_c1b7_2722_0a95;

    #[inline]
    fn mix(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(Self::K);
    }
}

impl std::hash::Hasher for DetHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().expect("len 8")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }
    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(u64::from(v));
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(u64::from(v));
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut h = Fnv64::new();
        h.write_bytes(b"foo").write_bytes(b"bar");
        assert_eq!(h.finish(), fnv64(b"foobar"));
    }

    #[test]
    fn u64_is_le_bytes() {
        let mut a = Fnv64::new();
        a.write_u64(0x0102_0304_0506_0708);
        assert_eq!(
            a.finish(),
            fnv64(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01])
        );
    }
}
