//! The message envelope carried by every transport.

use bytes::Bytes;
use vce_codec::{Codec, Decoder, Encoder, Result};

use crate::addr::Addr;

/// A routed message: source, destination, sequence number and an opaque
/// payload.
///
/// The payload is already in architecture-independent form (encoded with
/// `vce-codec` by the protocol layer); transports never inspect it. The
/// sequence number is assigned per *sender endpoint* and is what FIFO
/// ordering in `vce-isis` is built from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sending endpoint.
    pub src: Addr,
    /// Receiving endpoint.
    pub dst: Addr,
    /// Per-sender monotone sequence number.
    pub seq: u64,
    /// Opaque encoded payload.
    pub payload: Bytes,
}

impl Envelope {
    /// Build an envelope around an already-encoded payload.
    pub fn new(src: Addr, dst: Addr, seq: u64, payload: impl Into<Bytes>) -> Self {
        Self {
            src,
            dst,
            seq,
            payload: payload.into(),
        }
    }

    /// Encode `msg` with `vce-codec` and wrap it.
    pub fn encode_payload<T: Codec>(src: Addr, dst: Addr, seq: u64, msg: &T) -> Self {
        let mut enc = Encoder::with_capacity(64);
        msg.encode(&mut enc);
        Self::new(src, dst, seq, enc.finish_bytes())
    }

    /// Decode the payload as a `T`. The payload buffer is passed as the
    /// decoder's backing store, so nested byte fields (e.g. the payload
    /// inside an `IsisMsg::Cast`) decode as zero-copy sub-views of it.
    pub fn decode_payload<T: Codec>(&self) -> Result<T> {
        let mut dec = Decoder::with_backing(&self.payload);
        T::decode(&mut dec)
    }

    /// Decode a whole envelope from its wire buffer without copying the
    /// payload: where plain `Codec::decode` from a `&[u8]` copies the
    /// payload bytes out, this borrows them — the returned envelope's
    /// `payload` is a `slice_ref` sub-view sharing `buf`'s allocation.
    /// The buffer must contain exactly one envelope.
    pub fn decode_from(buf: &Bytes) -> Result<Self> {
        vce_codec::from_backing(buf)
    }

    /// Total size of the envelope on the (notional) wire: header + payload.
    /// Used by the simulator's bandwidth model and by [`crate::NetStats`].
    pub fn wire_size(&self) -> usize {
        // src(8) + dst(8) + seq(8) + len(4)
        28 + self.payload.len()
    }
}

impl Codec for Envelope {
    fn encode(&self, enc: &mut Encoder) {
        self.src.encode(enc);
        self.dst.encode(enc);
        enc.put_u64(self.seq);
        enc.put_len_bytes(&self.payload);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(Envelope {
            src: Addr::decode(dec)?,
            dst: Addr::decode(dec)?,
            seq: dec.get_u64()?,
            // Zero-copy when the decoder has a backing buffer (see
            // `Envelope::decode_from`); copies otherwise.
            payload: dec.get_bytes()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{NodeId, PortId};
    use vce_codec::{from_bytes, to_bytes};

    fn sample() -> Envelope {
        Envelope::encode_payload(
            Addr::daemon(NodeId(1)),
            Addr::leader(NodeId(2)),
            7,
            &("bid".to_string(), 0.25f64),
        )
    }

    #[test]
    fn payload_round_trip() {
        let env = sample();
        let (tag, load): (String, f64) = env.decode_payload().unwrap();
        assert_eq!(tag, "bid");
        assert_eq!(load, 0.25);
    }

    #[test]
    fn envelope_itself_is_codec() {
        let env = sample();
        let back: Envelope = from_bytes(&to_bytes(&env)).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn wire_size_counts_header() {
        let env = Envelope::new(
            Addr::daemon(NodeId(0)),
            Addr::daemon(NodeId(1)),
            0,
            vec![0u8; 10],
        );
        assert_eq!(env.wire_size(), 38);
    }

    #[test]
    fn decode_wrong_type_fails() {
        let env = sample();
        assert!(env.decode_payload::<Vec<u64>>().is_err());
    }

    #[test]
    fn decode_from_shares_the_wire_buffer() {
        // Payload large enough to be heap-backed (not inline in the
        // Bytes handle), so pointer identity proves sharing.
        let env = Envelope::new(
            Addr::daemon(NodeId(1)),
            Addr::daemon(NodeId(2)),
            3,
            (0u8..64).collect::<Vec<u8>>(),
        );
        let wire = Bytes::from(to_bytes(&env));
        let back = Envelope::decode_from(&wire).unwrap();
        assert_eq!(back, env);
        // Zero-copy: the decoded payload points into the wire buffer.
        let base = wire.as_ref().as_ptr() as usize;
        let sub = back.payload.as_ref().as_ptr() as usize;
        assert!(sub >= base && sub + back.payload.len() <= base + wire.len());
    }

    #[test]
    fn decode_from_rejects_trailing_garbage() {
        let env = sample();
        let mut wire = to_bytes(&env);
        wire.push(0);
        assert!(Envelope::decode_from(&Bytes::from(wire)).is_err());
    }

    #[test]
    fn dynamic_port_envelope() {
        let env = Envelope::new(
            Addr::new(NodeId(1), PortId(1001)),
            Addr::new(NodeId(2), PortId(1002)),
            1,
            Bytes::new(),
        );
        assert!(env.src.port.is_dynamic());
        assert_eq!(env.wire_size(), 28);
    }
}
