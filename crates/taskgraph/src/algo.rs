//! DAG algorithms over the dataflow arcs: topological order, cycle
//! detection, level schedule, critical path, ready sets.

use std::collections::BTreeSet;

use crate::graph::{ArcKind, TaskGraph};
use crate::task::TaskId;

/// Kahn's algorithm over dataflow arcs. `None` if the dataflow relation is
/// cyclic.
pub fn topo_sort(g: &TaskGraph) -> Option<Vec<TaskId>> {
    let n = g.len();
    let mut indeg = vec![0usize; n];
    for a in g.arcs() {
        if a.kind == ArcKind::DataFlow {
            indeg[a.to.0 as usize] += 1;
        }
    }
    // Ready queue kept sorted by id for deterministic output.
    let mut ready: Vec<TaskId> = (0..n as u32)
        .map(TaskId)
        .filter(|t| indeg[t.0 as usize] == 0)
        .collect();
    let mut out = Vec::with_capacity(n);
    while let Some(&next) = ready.first() {
        ready.remove(0);
        out.push(next);
        for succ in g.successors(next) {
            let d = &mut indeg[succ.0 as usize];
            *d -= 1;
            if *d == 0 {
                let pos = ready.binary_search(&succ).unwrap_err();
                ready.insert(pos, succ);
            }
        }
    }
    (out.len() == n).then_some(out)
}

/// True if the dataflow relation contains a cycle.
pub fn has_cycle(g: &TaskGraph) -> bool {
    topo_sort(g).is_none()
}

/// Level schedule: level(t) = 1 + max(level(preds)), sources at level 0.
/// `None` on cycles.
pub fn levels(g: &TaskGraph) -> Option<Vec<u32>> {
    let order = topo_sort(g)?;
    let mut level = vec![0u32; g.len()];
    for t in order {
        for p in g.predecessors(t) {
            level[t.0 as usize] = level[t.0 as usize].max(level[p.0 as usize] + 1);
        }
    }
    Some(level)
}

/// Critical path by work estimate: the heaviest (sum of `work_mops`)
/// dependency chain. Returns `(total_mops, path)`; `None` on cycles or an
/// empty graph.
pub fn critical_path(g: &TaskGraph) -> Option<(f64, Vec<TaskId>)> {
    if g.is_empty() {
        return None;
    }
    let order = topo_sort(g)?;
    let n = g.len();
    let mut best = vec![0.0f64; n]; // heaviest chain ending at t, inclusive
    let mut prev: Vec<Option<TaskId>> = vec![None; n];
    for &t in &order {
        let own = g.get(t).expect("valid id").work_mops;
        let mut incoming = 0.0;
        for p in g.predecessors(t) {
            if best[p.0 as usize] > incoming {
                incoming = best[p.0 as usize];
                prev[t.0 as usize] = Some(p);
            }
        }
        best[t.0 as usize] = incoming + own;
    }
    let (end, &total) = best
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN work"))?;
    let mut path = vec![TaskId(end as u32)];
    while let Some(p) = prev[path.last().expect("nonempty").0 as usize] {
        path.push(p);
    }
    path.reverse();
    Some((total, path))
}

/// Tasks whose dataflow predecessors are all in `completed` and which are
/// not themselves completed or in `running` — the dispatchable frontier.
pub fn ready_set(
    g: &TaskGraph,
    completed: &BTreeSet<TaskId>,
    running: &BTreeSet<TaskId>,
) -> Vec<TaskId> {
    g.ids()
        .filter(|t| !completed.contains(t) && !running.contains(t))
        .filter(|&t| g.predecessors(t).all(|p| completed.contains(&p)))
        .collect()
}

/// Total work in the graph, Mops (instances counted).
pub fn total_work(g: &TaskGraph) -> f64 {
    g.tasks()
        .iter()
        .map(|t| t.work_mops * f64::from(t.instances))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskSpec;

    fn diamond() -> (TaskGraph, [TaskId; 4]) {
        let mut g = TaskGraph::new("diamond");
        let a = g.add_task(TaskSpec::new("a").with_work(10.0));
        let b = g.add_task(TaskSpec::new("b").with_work(100.0));
        let c = g.add_task(TaskSpec::new("c").with_work(20.0));
        let d = g.add_task(TaskSpec::new("d").with_work(5.0));
        g.depends(b, a, 1);
        g.depends(c, a, 1);
        g.depends(d, b, 1);
        g.depends(d, c, 1);
        (g, [a, b, c, d])
    }

    #[test]
    fn topo_respects_dependencies() {
        let (g, [a, b, c, d]) = diamond();
        let order = topo_sort(&g).unwrap();
        let pos = |t: TaskId| order.iter().position(|&x| x == t).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(a) < pos(c));
        assert!(pos(b) < pos(d));
        assert!(pos(c) < pos(d));
        assert!(!has_cycle(&g));
    }

    #[test]
    fn cycle_detected() {
        let mut g = TaskGraph::new("cyc");
        let a = g.add_task(TaskSpec::new("a"));
        let b = g.add_task(TaskSpec::new("b"));
        g.depends(b, a, 1);
        g.depends(a, b, 1);
        assert!(has_cycle(&g));
        assert!(topo_sort(&g).is_none());
        assert!(levels(&g).is_none());
        assert!(critical_path(&g).is_none());
    }

    #[test]
    fn level_schedule() {
        let (g, [a, b, c, d]) = diamond();
        let lv = levels(&g).unwrap();
        assert_eq!(lv[a.0 as usize], 0);
        assert_eq!(lv[b.0 as usize], 1);
        assert_eq!(lv[c.0 as usize], 1);
        assert_eq!(lv[d.0 as usize], 2);
    }

    #[test]
    fn critical_path_takes_heavy_branch() {
        let (g, [a, b, _c, d]) = diamond();
        let (total, path) = critical_path(&g).unwrap();
        assert_eq!(path, vec![a, b, d]);
        assert!((total - 115.0).abs() < 1e-9);
    }

    #[test]
    fn ready_set_progresses_with_completions() {
        let (g, [a, b, c, d]) = diamond();
        let mut done = BTreeSet::new();
        let mut running = BTreeSet::new();
        assert_eq!(ready_set(&g, &done, &running), vec![a]);
        running.insert(a);
        assert!(ready_set(&g, &done, &running).is_empty());
        running.remove(&a);
        done.insert(a);
        assert_eq!(ready_set(&g, &done, &running), vec![b, c]);
        done.insert(b);
        done.insert(c);
        assert_eq!(ready_set(&g, &done, &running), vec![d]);
        done.insert(d);
        assert!(ready_set(&g, &done, &running).is_empty());
    }

    #[test]
    fn stream_arcs_ignored_by_dag_algorithms() {
        let mut g = TaskGraph::new("s");
        let a = g.add_task(TaskSpec::new("a").with_work(1.0));
        let b = g.add_task(TaskSpec::new("b").with_work(1.0));
        g.add_arc(a, b, crate::graph::ArcKind::Stream, 1);
        g.add_arc(b, a, crate::graph::ArcKind::Stream, 1);
        assert!(!has_cycle(&g), "stream cycles are fine");
        assert_eq!(levels(&g).unwrap(), vec![0, 0]);
    }

    #[test]
    fn total_work_counts_instances() {
        let mut g = TaskGraph::new("w");
        g.add_task(TaskSpec::new("a").with_work(10.0).with_instances(3));
        g.add_task(TaskSpec::new("b").with_work(5.0));
        assert_eq!(total_work(&g), 35.0);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = TaskGraph::new("e");
        assert_eq!(topo_sort(&g), Some(vec![]));
        assert!(critical_path(&g).is_none());
        assert_eq!(total_work(&g), 0.0);
    }

    #[test]
    fn deterministic_topo_order() {
        let (g, _) = diamond();
        assert_eq!(topo_sort(&g).unwrap(), topo_sort(&g).unwrap());
    }
}
