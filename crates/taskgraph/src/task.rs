//! Task specifications with layered annotations.

use vce_codec::{Codec, Decoder, Encoder, Result};

use crate::classes::{Language, ProblemClass, TaskNature};

/// Identifies a task within one task graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl Codec for TaskId {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.0);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(TaskId(dec.get_u32()?))
    }
}

/// How a task may be migrated (§4.4's four techniques each require
/// different cooperation from the task).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationTraits {
    /// The task checkpoints its own state periodically (enables
    /// migration-through-checkpointing).
    pub checkpoints: bool,
    /// Checkpoint interval hint, seconds (meaningful when `checkpoints`).
    pub checkpoint_interval_s: u32,
    /// The task may be killed and restarted from scratch elsewhere without
    /// corrupting the application (idempotent).
    pub restartable: bool,
    /// Its address space may be dumped and resumed on an identical
    /// architecture (the "old-fashioned way").
    pub core_dumpable: bool,
}

impl Default for MigrationTraits {
    fn default() -> Self {
        Self {
            checkpoints: false,
            checkpoint_interval_s: 30,
            restartable: true,
            core_dumpable: true,
        }
    }
}

impl Codec for MigrationTraits {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bool(self.checkpoints);
        enc.put_u32(self.checkpoint_interval_s);
        enc.put_bool(self.restartable);
        enc.put_bool(self.core_dumpable);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(MigrationTraits {
            checkpoints: dec.get_bool()?,
            checkpoint_interval_s: dec.get_u32()?,
            restartable: dec.get_bool()?,
            core_dumpable: dec.get_bool()?,
        })
    }
}

/// User hints (§3.1.1: "These hints will allow the execution module to do
/// extra optimization", e.g. dispatch the long-running module first).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TaskHints {
    /// Expected run time relative to siblings (larger ⇒ dispatch earlier);
    /// 0 = no hint.
    pub expected_dominance: u32,
    /// User/administrator priority boost (authorized users only, §4.3).
    pub priority_boost: i32,
}

impl Codec for TaskHints {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.expected_dominance);
        (self.priority_boost as i64).encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(TaskHints {
            expected_dominance: dec.get_u32()?,
            priority_boost: i32::decode(dec)?,
        })
    }
}

/// A fully annotatable task: the node of a task graph.
///
/// Fields fill in as the SDM layers run; [`validate()`](crate::validate()) checks that
/// the layers a consumer needs have completed.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Graph-local identity (assigned by [`crate::TaskGraph::add_task`]).
    pub id: TaskId,
    /// Human name / program path ("/apps/snow/predictor.vce").
    pub name: String,
    /// Maximum useful instances (scripts may request several, §5; ranges
    /// like `SYNC 5,10` set [`TaskSpec::instances_min`] too).
    pub instances: u32,
    /// Minimum instances the application needs to proceed (≤ `instances`).
    pub instances_min: u32,
    // ---- design-stage annotations ----
    /// Problem-architecture class (design stage).
    pub class: Option<ProblemClass>,
    /// Task nature (design stage).
    pub nature: TaskNature,
    // ---- coding-level annotations ----
    /// Implementation language (coding level).
    pub language: Option<Language>,
    /// Estimated compute per instance, million operations.
    pub work_mops: f64,
    /// Memory requirement, MB.
    pub mem_mb: u32,
    /// Input files needed besides predecessor outputs (anticipatory file
    /// replication targets, §4.5).
    pub input_files: Vec<String>,
    /// Migration cooperation traits.
    pub migration: MigrationTraits,
    /// Must run on the submitting user's workstation (`LOCAL` directive).
    pub local_only: bool,
    /// Data-parallel decomposable: `work_mops` divides across however many
    /// instances the runtime obtains (free parallelism exploits this);
    /// non-divisible tasks replicate the full work per instance.
    pub divisible: bool,
    // ---- user hints ----
    /// Runtime-manager hints.
    pub hints: TaskHints,
}

impl TaskSpec {
    /// Problem-specification-layer constructor: a bare task.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            id: TaskId(u32::MAX), // assigned on insertion
            name: name.into(),
            instances: 1,
            instances_min: 1,
            class: None,
            nature: TaskNature::Compute,
            language: None,
            work_mops: 0.0,
            mem_mb: 1,
            input_files: Vec::new(),
            migration: MigrationTraits::default(),
            local_only: false,
            divisible: false,
            hints: TaskHints::default(),
        }
    }

    /// Design stage: set the problem class.
    pub fn with_class(mut self, class: ProblemClass) -> Self {
        self.class = Some(class);
        self
    }

    /// Design stage: set the nature.
    pub fn with_nature(mut self, nature: TaskNature) -> Self {
        self.nature = nature;
        self
    }

    /// Coding level: set the language.
    pub fn with_language(mut self, language: Language) -> Self {
        self.language = Some(language);
        self
    }

    /// Coding level: compute estimate in Mops.
    pub fn with_work(mut self, work_mops: f64) -> Self {
        self.work_mops = work_mops;
        self
    }

    /// Coding level: memory requirement.
    pub fn with_mem(mut self, mem_mb: u32) -> Self {
        self.mem_mb = mem_mb;
        self
    }

    /// Number of instances to run (min = max = `instances`).
    pub fn with_instances(mut self, instances: u32) -> Self {
        self.instances = instances.max(1);
        self.instances_min = self.instances;
        self
    }

    /// Instance range: accept anywhere from `min` to `max` replicas (the
    /// §5 future-work constructs `ASYNC 5-` and `SYNC 5,10`).
    pub fn with_instance_range(mut self, min: u32, max: u32) -> Self {
        assert!(min >= 1 && min <= max, "bad instance range {min},{max}");
        self.instances_min = min;
        self.instances = max;
        self
    }

    /// Extra input files.
    pub fn with_input_file(mut self, path: impl Into<String>) -> Self {
        self.input_files.push(path.into());
        self
    }

    /// Migration traits.
    pub fn with_migration(mut self, migration: MigrationTraits) -> Self {
        self.migration = migration;
        self
    }

    /// Pin to the submitting workstation.
    pub fn local(mut self) -> Self {
        self.local_only = true;
        self
    }

    /// Mark the work as divisible across instances.
    pub fn divisible(mut self) -> Self {
        self.divisible = true;
        self
    }

    /// User hints.
    pub fn with_hints(mut self, hints: TaskHints) -> Self {
        self.hints = hints;
        self
    }

    /// True once design-stage annotations are present.
    pub fn design_complete(&self) -> bool {
        self.class.is_some()
    }

    /// True once coding-level annotations are present.
    pub fn coding_complete(&self) -> bool {
        self.design_complete() && self.language.is_some() && self.work_mops > 0.0
    }
}

impl Codec for TaskSpec {
    fn encode(&self, enc: &mut Encoder) {
        self.id.encode(enc);
        self.name.encode(enc);
        enc.put_u32(self.instances);
        enc.put_u32(self.instances_min);
        self.class.encode(enc);
        self.nature.encode(enc);
        self.language.encode(enc);
        enc.put_f64(self.work_mops);
        enc.put_u32(self.mem_mb);
        self.input_files.encode(enc);
        self.migration.encode(enc);
        enc.put_bool(self.local_only);
        enc.put_bool(self.divisible);
        self.hints.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(TaskSpec {
            id: TaskId::decode(dec)?,
            name: String::decode(dec)?,
            instances: dec.get_u32()?,
            instances_min: dec.get_u32()?,
            class: Option::<ProblemClass>::decode(dec)?,
            nature: TaskNature::decode(dec)?,
            language: Option::<Language>::decode(dec)?,
            work_mops: dec.get_f64()?,
            mem_mb: dec.get_u32()?,
            input_files: Vec::<String>::decode(dec)?,
            migration: MigrationTraits::decode(dec)?,
            local_only: dec.get_bool()?,
            divisible: dec.get_bool()?,
            hints: TaskHints::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vce_codec::{from_bytes, to_bytes};

    #[test]
    fn layered_annotation() {
        let t = TaskSpec::new("predictor");
        assert!(!t.design_complete());
        let t = t.with_class(ProblemClass::Synchronous);
        assert!(t.design_complete());
        assert!(!t.coding_complete());
        let t = t.with_language(Language::HpFortran).with_work(500.0);
        assert!(t.coding_complete());
    }

    #[test]
    fn builder_covers_all_fields() {
        let t = TaskSpec::new("collector")
            .with_class(ProblemClass::Asynchronous)
            .with_nature(TaskNature::Graphic)
            .with_language(Language::C)
            .with_work(100.0)
            .with_mem(32)
            .with_instances(2)
            .with_input_file("/data/obs.dat")
            .with_migration(MigrationTraits {
                checkpoints: true,
                checkpoint_interval_s: 10,
                restartable: false,
                core_dumpable: true,
            })
            .with_hints(TaskHints {
                expected_dominance: 3,
                priority_boost: -1,
            });
        assert_eq!(t.instances, 2);
        assert_eq!(t.nature, TaskNature::Graphic);
        assert!(t.migration.checkpoints);
        assert_eq!(t.hints.priority_boost, -1);
        assert!(!t.local_only);
    }

    #[test]
    fn instances_floor_at_one() {
        assert_eq!(TaskSpec::new("x").with_instances(0).instances, 1);
    }

    #[test]
    fn local_directive() {
        assert!(TaskSpec::new("display").local().local_only);
    }

    #[test]
    fn codec_round_trip() {
        let t = TaskSpec::new("p")
            .with_class(ProblemClass::LooselySynchronous)
            .with_language(Language::HpCpp)
            .with_work(42.5)
            .with_input_file("f");
        let bytes = to_bytes(&t);
        assert_eq!(from_bytes::<TaskSpec>(&bytes).unwrap(), t);
    }
}
