#![warn(missing_docs)]
//! # vce-taskgraph — the application representation
//!
//! §3.1 of the paper: "A VCE application is broken down into functional
//! components called tasks, which are represented visually using a task
//! graph. ... The task graph defines the input, output, and function of
//! each task. The nodes in the task graph are connected by arcs which
//! define the communication and synchronization relationships among the
//! tasks."
//!
//! The task graph is annotated layer by layer as it flows through the
//! Software Development Module (Fig. 1):
//!
//! 1. the **problem specification layer** creates the bare graph
//!    ([`TaskSpec::new`], [`TaskGraph::add_task`], [`TaskGraph::add_arc`]);
//! 2. the **design stage** attaches the problem-architecture class
//!    ([`ProblemClass`]: synchronous / loosely synchronous / asynchronous,
//!    after Fox's classification) and the task's nature
//!    ([`TaskNature`]: compute / graphic / interactive);
//! 3. the **coding level** attaches implementation language, resource
//!    estimates and migratability traits;
//! 4. **user hints** (§3.1.1's "extra optimization" information, e.g.
//!    expected run-time dominance) ride along for the runtime manager.
//!
//! The graph algorithms here (topological order, critical path, ready sets)
//! are what the compilation and runtime managers consume.

pub mod algo;
pub mod classes;
pub mod dot;
pub mod graph;
pub mod task;
pub mod validate;

pub use classes::{Language, ProblemClass, TaskNature};
pub use graph::{Arc, ArcKind, TaskGraph};
pub use task::{MigrationTraits, TaskHints, TaskId, TaskSpec};
pub use validate::{validate, ValidationError};
