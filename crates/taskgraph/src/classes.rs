//! Problem-architecture classes and related vocabulary.
//!
//! The design stage classifies *problems*, not machines: "There are three
//! broad classes of problem architectures: synchronous, loosely
//! synchronous, and asynchronous, which describe the temporal ... structure
//! of the problem" (§3.1.1, after Fox). The compilation manager later maps
//! these to machine classes: "the synchronous class of problems maps easily
//! to most SIMD style machines" (§4.1).

use vce_codec::impl_codec_for_enum;
use vce_net::MachineClass;

/// Fox's problem-architecture classes (temporal structure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProblemClass {
    /// Lock-step data parallelism (maps to SIMD/vector hardware).
    Synchronous,
    /// Iterative phases with loose synchronization (maps to MIMD).
    LooselySynchronous,
    /// Irregular, event-driven computation (maps to MIMD/workstations).
    Asynchronous,
}

impl_codec_for_enum!(ProblemClass {
    ProblemClass::Synchronous => 0,
    ProblemClass::LooselySynchronous => 1,
    ProblemClass::Asynchronous => 2,
});

impl ProblemClass {
    /// Machine classes able to run this problem class, in preference order
    /// (§4.1's class mapping). The first entry is the "best available
    /// platform" the runtime manager aims for; later entries are feasible
    /// fallbacks.
    pub fn machine_preferences(self) -> &'static [MachineClass] {
        match self {
            ProblemClass::Synchronous => {
                &[MachineClass::Simd, MachineClass::Vector, MachineClass::Mimd]
            }
            ProblemClass::LooselySynchronous => &[
                MachineClass::Mimd,
                MachineClass::Vector,
                MachineClass::Workstation,
            ],
            ProblemClass::Asynchronous => &[MachineClass::Workstation, MachineClass::Mimd],
        }
    }

    /// Can this problem class execute on `machine` at all?
    pub fn runs_on(self, machine: MachineClass) -> bool {
        self.machine_preferences().contains(&machine)
    }

    /// Preference rank of `machine` (0 = best), or `None` if infeasible.
    pub fn preference_rank(self, machine: MachineClass) -> Option<usize> {
        self.machine_preferences()
            .iter()
            .position(|&m| m == machine)
    }

    /// The keyword used in application-description scripts (§5: `ASYNC`,
    /// `SYNC`, plus our spelled-out loosely-synchronous form).
    pub fn script_keyword(self) -> &'static str {
        match self {
            ProblemClass::Synchronous => "SYNC",
            ProblemClass::LooselySynchronous => "LSYNC",
            ProblemClass::Asynchronous => "ASYNC",
        }
    }
}

/// "Other classes that capture the nature of the task, such as graphic or
/// interactive, will be used to assist the lower layers" (§3.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TaskNature {
    /// Pure computation (the default).
    #[default]
    Compute,
    /// Produces graphics; prefers the user's workstation or one with a
    /// display.
    Graphic,
    /// Interacts with the user; must run locally.
    Interactive,
}

impl_codec_for_enum!(TaskNature {
    TaskNature::Compute => 0,
    TaskNature::Graphic => 1,
    TaskNature::Interactive => 2,
});

/// Implementation languages the coding level supports (§3.1.1 names the
/// emerging standards of the day).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Language {
    /// Plain Fortran 77.
    Fortran,
    /// High Performance Fortran (Fortran D lineage).
    HpFortran,
    /// Plain C.
    C,
    /// High Performance C++.
    HpCpp,
}

impl_codec_for_enum!(Language {
    Language::Fortran => 0,
    Language::HpFortran => 1,
    Language::C => 2,
    Language::HpCpp => 3,
});

impl Language {
    /// Whether compilers for this language exist on a machine class in the
    /// VCE's (simulated) tool inventory. HPF targets data-parallel hardware;
    /// everything compiles on workstations and MIMD machines.
    pub fn available_on(self, machine: MachineClass) -> bool {
        match self {
            Language::Fortran | Language::C => true,
            Language::HpFortran => matches!(
                machine,
                MachineClass::Simd | MachineClass::Vector | MachineClass::Mimd
            ),
            Language::HpCpp => matches!(machine, MachineClass::Mimd | MachineClass::Workstation),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vce_codec::{from_bytes, to_bytes};

    #[test]
    fn synchronous_prefers_simd() {
        assert_eq!(
            ProblemClass::Synchronous.machine_preferences()[0],
            MachineClass::Simd
        );
        assert_eq!(
            ProblemClass::Synchronous.preference_rank(MachineClass::Simd),
            Some(0)
        );
        assert!(ProblemClass::Synchronous.runs_on(MachineClass::Vector));
        assert!(!ProblemClass::Synchronous.runs_on(MachineClass::Workstation));
    }

    #[test]
    fn asynchronous_prefers_workstations() {
        assert_eq!(
            ProblemClass::Asynchronous.machine_preferences()[0],
            MachineClass::Workstation
        );
        assert!(!ProblemClass::Asynchronous.runs_on(MachineClass::Simd));
    }

    #[test]
    fn script_keywords_match_paper() {
        assert_eq!(ProblemClass::Asynchronous.script_keyword(), "ASYNC");
        assert_eq!(ProblemClass::Synchronous.script_keyword(), "SYNC");
    }

    #[test]
    fn language_availability() {
        assert!(Language::C.available_on(MachineClass::Simd));
        assert!(Language::HpFortran.available_on(MachineClass::Simd));
        assert!(!Language::HpFortran.available_on(MachineClass::Workstation));
        assert!(!Language::HpCpp.available_on(MachineClass::Vector));
    }

    #[test]
    fn enums_round_trip() {
        for c in [
            ProblemClass::Synchronous,
            ProblemClass::LooselySynchronous,
            ProblemClass::Asynchronous,
        ] {
            assert_eq!(from_bytes::<ProblemClass>(&to_bytes(&c)).unwrap(), c);
        }
        for n in [
            TaskNature::Compute,
            TaskNature::Graphic,
            TaskNature::Interactive,
        ] {
            assert_eq!(from_bytes::<TaskNature>(&to_bytes(&n)).unwrap(), n);
        }
        for l in [
            Language::Fortran,
            Language::HpFortran,
            Language::C,
            Language::HpCpp,
        ] {
            assert_eq!(from_bytes::<Language>(&to_bytes(&l)).unwrap(), l);
        }
    }
}
