//! The task graph itself.

use vce_codec::{impl_codec_for_enum, Codec, Decoder, Encoder, Result};

use crate::task::{TaskId, TaskSpec};

/// What an arc means (§3.1: arcs "define the communication and
/// synchronization relationships among the tasks").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArcKind {
    /// Producer → consumer dependency: the consumer cannot start until the
    /// producer finishes and its output is transferred.
    DataFlow,
    /// An ongoing channel between concurrently running tasks; imposes no
    /// start ordering but requires a VCE channel at runtime.
    Stream,
}

impl_codec_for_enum!(ArcKind {
    ArcKind::DataFlow => 0,
    ArcKind::Stream => 1,
});

/// A directed arc between two tasks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arc {
    /// Producer / sender.
    pub from: TaskId,
    /// Consumer / receiver.
    pub to: TaskId,
    /// Relationship kind.
    pub kind: ArcKind,
    /// Data volume carried, KiB (drives transfer latency and the
    /// channel layer's accounting).
    pub data_kib: u64,
}

impl Codec for Arc {
    fn encode(&self, enc: &mut Encoder) {
        self.from.encode(enc);
        self.to.encode(enc);
        self.kind.encode(enc);
        enc.put_u64(self.data_kib);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(Arc {
            from: TaskId::decode(dec)?,
            to: TaskId::decode(dec)?,
            kind: ArcKind::decode(dec)?,
            data_kib: dec.get_u64()?,
        })
    }
}

/// An application's task graph.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TaskGraph {
    /// Application name.
    pub name: String,
    tasks: Vec<TaskSpec>,
    arcs: Vec<Arc>,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            tasks: Vec::new(),
            arcs: Vec::new(),
        }
    }

    /// Insert a task, assigning its [`TaskId`].
    pub fn add_task(&mut self, mut task: TaskSpec) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        task.id = id;
        self.tasks.push(task);
        id
    }

    /// Connect two tasks. Panics on unknown ids (graph construction is
    /// programmer-driven; a bad id is a bug, not input).
    pub fn add_arc(&mut self, from: TaskId, to: TaskId, kind: ArcKind, data_kib: u64) {
        assert!(self.get(from).is_some(), "unknown task {from:?}");
        assert!(self.get(to).is_some(), "unknown task {to:?}");
        assert_ne!(from, to, "self-arcs are not allowed");
        self.arcs.push(Arc {
            from,
            to,
            kind,
            data_kib,
        });
    }

    /// Convenience: a dataflow dependency.
    pub fn depends(&mut self, consumer: TaskId, producer: TaskId, data_kib: u64) {
        self.add_arc(producer, consumer, ArcKind::DataFlow, data_kib);
    }

    /// Task by id.
    pub fn get(&self, id: TaskId) -> Option<&TaskSpec> {
        self.tasks.get(id.0 as usize)
    }

    /// Mutable task by id.
    pub fn get_mut(&mut self, id: TaskId) -> Option<&mut TaskSpec> {
        self.tasks.get_mut(id.0 as usize)
    }

    /// All tasks in id order.
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// All arcs.
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no tasks exist.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Task ids.
    pub fn ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len() as u32).map(TaskId)
    }

    /// Dataflow predecessors of `id` (tasks it waits for).
    pub fn predecessors(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.arcs
            .iter()
            .filter(move |a| a.kind == ArcKind::DataFlow && a.to == id)
            .map(|a| a.from)
    }

    /// Dataflow successors of `id` (tasks waiting for it).
    pub fn successors(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.arcs
            .iter()
            .filter(move |a| a.kind == ArcKind::DataFlow && a.from == id)
            .map(|a| a.to)
    }

    /// Stream peers of `id` (channel partners).
    pub fn stream_peers(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.arcs.iter().filter_map(move |a| {
            if a.kind != ArcKind::Stream {
                None
            } else if a.from == id {
                Some(a.to)
            } else if a.to == id {
                Some(a.from)
            } else {
                None
            }
        })
    }

    /// Find a task id by name.
    pub fn find(&self, name: &str) -> Option<TaskId> {
        self.tasks.iter().find(|t| t.name == name).map(|t| t.id)
    }
}

impl Codec for TaskGraph {
    fn encode(&self, enc: &mut Encoder) {
        self.name.encode(enc);
        self.tasks.encode(enc);
        self.arcs.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(TaskGraph {
            name: String::decode(dec)?,
            tasks: Vec::<TaskSpec>::decode(dec)?,
            arcs: Vec::<Arc>::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (TaskGraph, [TaskId; 4]) {
        // a → b, a → c, b → d, c → d
        let mut g = TaskGraph::new("diamond");
        let a = g.add_task(TaskSpec::new("a"));
        let b = g.add_task(TaskSpec::new("b"));
        let c = g.add_task(TaskSpec::new("c"));
        let d = g.add_task(TaskSpec::new("d"));
        g.depends(b, a, 10);
        g.depends(c, a, 10);
        g.depends(d, b, 10);
        g.depends(d, c, 10);
        (g, [a, b, c, d])
    }

    #[test]
    fn ids_assigned_sequentially() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!([a, b, c, d], [TaskId(0), TaskId(1), TaskId(2), TaskId(3)]);
        assert_eq!(g.len(), 4);
        assert_eq!(g.get(a).unwrap().name, "a");
        assert_eq!(g.find("c"), Some(c));
        assert_eq!(g.find("zzz"), None);
    }

    #[test]
    fn predecessor_successor_queries() {
        let (g, [a, b, c, d]) = diamond();
        let mut preds: Vec<TaskId> = g.predecessors(d).collect();
        preds.sort();
        assert_eq!(preds, vec![b, c]);
        let succs: Vec<TaskId> = g.successors(a).collect();
        assert_eq!(succs, vec![b, c]);
        assert_eq!(g.predecessors(a).count(), 0);
        assert_eq!(g.successors(d).count(), 0);
    }

    #[test]
    fn stream_arcs_do_not_impose_order() {
        let mut g = TaskGraph::new("pipes");
        let a = g.add_task(TaskSpec::new("a"));
        let b = g.add_task(TaskSpec::new("b"));
        g.add_arc(a, b, ArcKind::Stream, 100);
        assert_eq!(g.predecessors(b).count(), 0);
        assert_eq!(g.stream_peers(a).collect::<Vec<_>>(), vec![b]);
        assert_eq!(g.stream_peers(b).collect::<Vec<_>>(), vec![a]);
    }

    #[test]
    #[should_panic(expected = "self-arcs")]
    fn self_arc_rejected() {
        let mut g = TaskGraph::new("bad");
        let a = g.add_task(TaskSpec::new("a"));
        g.add_arc(a, a, ArcKind::DataFlow, 1);
    }

    #[test]
    #[should_panic(expected = "unknown task")]
    fn unknown_arc_target_rejected() {
        let mut g = TaskGraph::new("bad");
        let a = g.add_task(TaskSpec::new("a"));
        g.add_arc(a, TaskId(9), ArcKind::DataFlow, 1);
    }

    #[test]
    fn codec_round_trip() {
        let (g, _) = diamond();
        let bytes = vce_codec::to_bytes(&g);
        assert_eq!(vce_codec::from_bytes::<TaskGraph>(&bytes).unwrap(), g);
    }

    #[test]
    fn mutation_through_get_mut() {
        let (mut g, [a, ..]) = diamond();
        g.get_mut(a).unwrap().work_mops = 77.0;
        assert_eq!(g.get(a).unwrap().work_mops, 77.0);
    }
}
