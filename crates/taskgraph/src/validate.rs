//! Graph validation — what each SDM layer requires before handing the
//! graph onward.

use std::fmt;

use crate::algo::has_cycle;
use crate::graph::TaskGraph;
use crate::task::TaskId;

/// Why a task graph was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The graph has no tasks.
    Empty,
    /// Two tasks share a name (scripts and reports address tasks by name).
    DuplicateName(String),
    /// The dataflow relation is cyclic.
    Cycle,
    /// A task is missing its design-stage annotation.
    DesignIncomplete(TaskId),
    /// A task is missing coding-level annotations.
    CodingIncomplete(TaskId),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::Empty => write!(f, "task graph has no tasks"),
            ValidationError::DuplicateName(n) => write!(f, "duplicate task name {n:?}"),
            ValidationError::Cycle => write!(f, "dataflow arcs form a cycle"),
            ValidationError::DesignIncomplete(t) => {
                write!(f, "task {t:?} lacks design-stage annotations")
            }
            ValidationError::CodingIncomplete(t) => {
                write!(f, "task {t:?} lacks coding-level annotations")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// How far through the SDM the graph claims to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Problem specification only: structure checks.
    Specification,
    /// Design stage done: classes present.
    Design,
    /// Coding level done: languages and estimates present.
    Coding,
}

/// Validate the graph for a given SDM stage.
pub fn validate_stage(g: &TaskGraph, stage: Stage) -> Result<(), ValidationError> {
    if g.is_empty() {
        return Err(ValidationError::Empty);
    }
    let mut names: Vec<&str> = g.tasks().iter().map(|t| t.name.as_str()).collect();
    names.sort_unstable();
    if let Some(w) = names.windows(2).find(|w| w[0] == w[1]) {
        return Err(ValidationError::DuplicateName(w[0].to_string()));
    }
    if has_cycle(g) {
        return Err(ValidationError::Cycle);
    }
    if matches!(stage, Stage::Design | Stage::Coding) {
        for t in g.tasks() {
            if !t.design_complete() {
                return Err(ValidationError::DesignIncomplete(t.id));
            }
        }
    }
    if stage == Stage::Coding {
        for t in g.tasks() {
            if !t.coding_complete() {
                return Err(ValidationError::CodingIncomplete(t.id));
            }
        }
    }
    Ok(())
}

/// Validate for the final (coding-complete) stage — what the execution
/// module requires.
pub fn validate(g: &TaskGraph) -> Result<(), ValidationError> {
    validate_stage(g, Stage::Coding)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{Language, ProblemClass};
    use crate::task::TaskSpec;

    fn complete_task(name: &str) -> TaskSpec {
        TaskSpec::new(name)
            .with_class(ProblemClass::Asynchronous)
            .with_language(Language::C)
            .with_work(10.0)
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(validate(&TaskGraph::new("e")), Err(ValidationError::Empty));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut g = TaskGraph::new("d");
        g.add_task(complete_task("x"));
        g.add_task(complete_task("x"));
        assert_eq!(
            validate(&g),
            Err(ValidationError::DuplicateName("x".into()))
        );
    }

    #[test]
    fn cycle_rejected() {
        let mut g = TaskGraph::new("c");
        let a = g.add_task(complete_task("a"));
        let b = g.add_task(complete_task("b"));
        g.depends(a, b, 1);
        g.depends(b, a, 1);
        assert_eq!(validate(&g), Err(ValidationError::Cycle));
    }

    #[test]
    fn stage_gates_annotations() {
        let mut g = TaskGraph::new("s");
        let id = g.add_task(TaskSpec::new("bare"));
        assert!(validate_stage(&g, Stage::Specification).is_ok());
        assert_eq!(
            validate_stage(&g, Stage::Design),
            Err(ValidationError::DesignIncomplete(id))
        );
        g.get_mut(id).unwrap().class = Some(ProblemClass::Synchronous);
        assert!(validate_stage(&g, Stage::Design).is_ok());
        assert_eq!(
            validate_stage(&g, Stage::Coding),
            Err(ValidationError::CodingIncomplete(id))
        );
        {
            let t = g.get_mut(id).unwrap();
            t.language = Some(Language::HpFortran);
            t.work_mops = 5.0;
        }
        assert!(validate(&g).is_ok());
    }

    #[test]
    fn complete_graph_passes() {
        let mut g = TaskGraph::new("ok");
        let a = g.add_task(complete_task("a"));
        let b = g.add_task(complete_task("b"));
        g.depends(b, a, 1);
        assert!(validate(&g).is_ok());
    }

    #[test]
    fn errors_display() {
        let e = ValidationError::DesignIncomplete(TaskId(3));
        assert!(e.to_string().contains("design-stage"));
    }
}
