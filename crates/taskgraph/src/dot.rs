//! Graphviz DOT export — the "represented visually using a task graph" of
//! §3.1, in the only visual format a library can honestly emit.

use std::fmt::Write as _;

use crate::classes::ProblemClass;
use crate::graph::{ArcKind, TaskGraph};

/// Render the graph as DOT. Dataflow arcs are solid, stream arcs dashed;
/// node labels carry the class annotation once the design stage has run.
pub fn to_dot(g: &TaskGraph) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", g.name);
    let _ = writeln!(s, "  rankdir=LR;");
    for t in g.tasks() {
        let class = match t.class {
            Some(ProblemClass::Synchronous) => "SYNC",
            Some(ProblemClass::LooselySynchronous) => "LSYNC",
            Some(ProblemClass::Asynchronous) => "ASYNC",
            None => "?",
        };
        let shape = if t.local_only { "house" } else { "box" };
        let _ = writeln!(
            s,
            "  t{} [label=\"{}\\n{} x{}\", shape={}];",
            t.id.0, t.name, class, t.instances, shape
        );
    }
    for a in g.arcs() {
        let style = match a.kind {
            ArcKind::DataFlow => "solid",
            ArcKind::Stream => "dashed",
        };
        let _ = writeln!(
            s,
            "  t{} -> t{} [style={}, label=\"{}KiB\"];",
            a.from.0, a.to.0, style, a.data_kib
        );
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskSpec;

    #[test]
    fn dot_contains_nodes_and_arcs() {
        let mut g = TaskGraph::new("weather");
        let a = g.add_task(TaskSpec::new("collector").with_class(ProblemClass::Asynchronous));
        let b = g.add_task(TaskSpec::new("display").local());
        g.depends(b, a, 64);
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph \"weather\""));
        assert!(dot.contains("collector"));
        assert!(dot.contains("ASYNC"));
        assert!(dot.contains("shape=house"), "local task gets house shape");
        assert!(dot.contains("t0 -> t1"));
        assert!(dot.contains("64KiB"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn unannotated_task_shows_question_mark() {
        let mut g = TaskGraph::new("g");
        g.add_task(TaskSpec::new("x"));
        assert!(to_dot(&g).contains("?"));
    }

    #[test]
    fn stream_arcs_are_dashed() {
        let mut g = TaskGraph::new("g");
        let a = g.add_task(TaskSpec::new("a"));
        let b = g.add_task(TaskSpec::new("b"));
        g.add_arc(a, b, ArcKind::Stream, 1);
        assert!(to_dot(&g).contains("style=dashed"));
    }
}
