//! Property tests on random DAGs: the graph algorithms' invariants.

use std::collections::BTreeSet;

use proptest::prelude::*;
use vce_taskgraph::algo::{critical_path, has_cycle, levels, ready_set, topo_sort, total_work};
use vce_taskgraph::{TaskGraph, TaskId, TaskSpec};

/// Generate a random DAG: arcs only from lower to higher id, so it is
/// acyclic by construction.
fn arb_dag() -> impl Strategy<Value = TaskGraph> {
    (2usize..20, any::<u64>()).prop_map(|(n, seed)| {
        let mut g = TaskGraph::new("random");
        let mut s = seed;
        let mut next = move || {
            // xorshift64 for cheap deterministic pseudo-randomness.
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for i in 0..n {
            g.add_task(TaskSpec::new(format!("t{i}")).with_work(1.0 + (next() % 100) as f64));
        }
        for to in 1..n {
            for from in 0..to {
                if next() % 4 == 0 {
                    g.depends(TaskId(to as u32), TaskId(from as u32), 1 + next() % 64);
                }
            }
        }
        g
    })
}

proptest! {
    #[test]
    fn random_dags_are_acyclic_and_sortable(g in arb_dag()) {
        prop_assert!(!has_cycle(&g));
        let order = topo_sort(&g).unwrap();
        prop_assert_eq!(order.len(), g.len());
        // Every arc goes forward in the order.
        let pos: Vec<usize> = {
            let mut p = vec![0; g.len()];
            for (i, t) in order.iter().enumerate() {
                p[t.0 as usize] = i;
            }
            p
        };
        for a in g.arcs() {
            prop_assert!(pos[a.from.0 as usize] < pos[a.to.0 as usize]);
        }
    }

    #[test]
    fn levels_increase_along_arcs(g in arb_dag()) {
        let lv = levels(&g).unwrap();
        for a in g.arcs() {
            prop_assert!(lv[a.from.0 as usize] < lv[a.to.0 as usize]);
        }
    }

    #[test]
    fn critical_path_is_a_chain_bounded_by_total_work(g in arb_dag()) {
        let (cp, path) = critical_path(&g).unwrap();
        prop_assert!(cp <= total_work(&g) + 1e-9);
        prop_assert!(!path.is_empty());
        // The path is a dependency chain.
        for w in path.windows(2) {
            prop_assert!(g.predecessors(w[1]).any(|p| p == w[0]));
        }
        // And its weight equals the sum of its tasks' work.
        let sum: f64 = path.iter().map(|&t| g.get(t).unwrap().work_mops).sum();
        prop_assert!((sum - cp).abs() < 1e-6);
    }

    #[test]
    fn executing_ready_sets_drains_the_graph(g in arb_dag()) {
        // Repeatedly complete the whole ready frontier; the graph must
        // drain in at most `len` rounds and never expose an unready task.
        let mut done: BTreeSet<TaskId> = BTreeSet::new();
        let running = BTreeSet::new();
        let mut rounds = 0;
        while done.len() < g.len() {
            let ready = ready_set(&g, &done, &running);
            prop_assert!(!ready.is_empty(), "deadlock with {} done", done.len());
            for t in &ready {
                prop_assert!(g.predecessors(*t).all(|p| done.contains(&p)));
            }
            done.extend(ready);
            rounds += 1;
            prop_assert!(rounds <= g.len());
        }
    }

    #[test]
    fn graph_codec_round_trip(g in arb_dag()) {
        let bytes = vce_codec::to_bytes(&g);
        prop_assert_eq!(vce_codec::from_bytes::<TaskGraph>(&bytes).unwrap(), g);
    }
}
