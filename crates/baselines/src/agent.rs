//! The worker agent: a minimal per-machine daemon for baseline schedulers.

use std::collections::BTreeMap;

use vce_codec::Codec;
use vce_net::{Addr, Endpoint, Envelope, Host};

use crate::msg::BaselineMsg;
use crate::workload::JobId;

const TOKEN_REPORT: u64 = 1;
/// Load-report period, µs.
pub const REPORT_PERIOD_US: u64 = 500_000;

/// Per-machine agent: runs, suspends, resumes and recalls jobs on the
/// scheduler's orders, and reports machine load periodically.
pub struct AgentEndpoint {
    me: Addr,
    scheduler: Addr,
    running: BTreeMap<JobId, u64>,
    suspended: BTreeMap<JobId, f64>,
    next_pid: u64,
    pid_jobs: BTreeMap<u64, JobId>,
}

impl AgentEndpoint {
    /// Agent on `me`, reporting to `scheduler`.
    pub fn new(me: Addr, scheduler: Addr) -> Self {
        Self {
            me,
            scheduler,
            running: BTreeMap::new(),
            suspended: BTreeMap::new(),
            next_pid: 1,
            pid_jobs: BTreeMap::new(),
        }
    }

    fn send(&self, host: &mut dyn Host, msg: &BaselineMsg) {
        // Pooled scratch encode — baseline traffic shares the hot path's
        // zero-allocation discipline so cross-baseline benches compare
        // schedulers, not allocators.
        let payload = host.encode_with(&mut |enc| msg.encode(enc));
        host.send(self.me, self.scheduler, payload);
    }

    fn start(&mut self, job: JobId, mops: f64, host: &mut dyn Host) {
        let pid = self.next_pid;
        self.next_pid += 1;
        self.running.insert(job, pid);
        self.pid_jobs.insert(pid, job);
        host.start_work(pid, mops);
    }

    fn stop(&mut self, job: JobId, host: &mut dyn Host) -> Option<f64> {
        let pid = self.running.remove(&job)?;
        let remaining = host.work_remaining(pid).unwrap_or(0.0);
        host.cancel_work(pid);
        self.pid_jobs.remove(&pid);
        Some(remaining)
    }

    fn report(&self, host: &mut dyn Host) {
        let m = host.machine();
        let load = host.load();
        let background = (load - self.running.len() as f64).max(0.0);
        let msg = BaselineMsg::LoadReport {
            node: m.node,
            load,
            background,
            speed_mops: m.speed_mops,
        };
        self.send(host, &msg);
    }
}

impl Endpoint for AgentEndpoint {
    fn on_start(&mut self, host: &mut dyn Host) {
        host.set_timer(REPORT_PERIOD_US, TOKEN_REPORT);
        self.report(host);
    }

    fn on_envelope(&mut self, env: Envelope, host: &mut dyn Host) {
        let Ok(msg) = vce_codec::from_bytes::<BaselineMsg>(&env.payload) else {
            return;
        };
        match msg {
            BaselineMsg::Run { job, mops } if !self.running.contains_key(&job) => {
                self.start(job, mops, host);
            }
            BaselineMsg::Suspend { job } => {
                if let Some(rem) = self.stop(job, host) {
                    self.suspended.insert(job, rem);
                }
            }
            BaselineMsg::Resume { job } => {
                if let Some(rem) = self.suspended.remove(&job) {
                    self.start(job, rem, host);
                }
            }
            BaselineMsg::Recall { job, keep_progress } => {
                let rem = self.stop(job, host).or_else(|| self.suspended.remove(&job));
                if let Some(rem) = rem {
                    self.send(
                        host,
                        &BaselineMsg::Recalled {
                            job,
                            remaining_mops: if keep_progress { rem } else { f64::NAN },
                        },
                    );
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, host: &mut dyn Host) {
        if token == TOKEN_REPORT {
            host.set_timer(REPORT_PERIOD_US, TOKEN_REPORT);
            self.report(host);
        }
    }

    fn on_work_done(&mut self, pid: u64, host: &mut dyn Host) {
        if let Some(job) = self.pid_jobs.remove(&pid) {
            self.running.remove(&job);
            let node = host.machine().node;
            self.send(host, &BaselineMsg::Done { job, node });
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    fn snapshot_hash(&self) -> u64 {
        let mut h = vce_net::Fnv64::new();
        h.write_u64(self.next_pid)
            .write_u64(self.running.len() as u64);
        for (job, pid) in &self.running {
            h.write_u64(u64::from(job.0)).write_u64(*pid);
        }
        h.write_u64(self.suspended.len() as u64);
        for (job, rem) in &self.suspended {
            h.write_u64(u64::from(job.0)).write_f64(*rem);
        }
        h.finish()
    }
}
