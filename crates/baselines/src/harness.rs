//! One-call harness: run a workload under a baseline policy on a simulated
//! fleet and report.

use vce_net::{Addr, MachineInfo, NodeId, PortId};
use vce_sim::{LoadTrace, Sim, SimConfig};

use crate::agent::AgentEndpoint;
use crate::policy::Policy;
use crate::sched::{SchedCounters, SchedulerEndpoint};
use crate::workload::Workload;

/// The scheduler's endpoint port (distinct from agent daemons).
pub const SCHED_PORT: PortId = PortId::EXECUTOR;

/// What a baseline run produced.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// Policy name.
    pub policy: &'static str,
    /// All jobs finished within the horizon?
    pub completed: bool,
    /// Last completion time, µs.
    pub makespan_us: Option<u64>,
    /// Mean job turnaround (submit→done), µs.
    pub mean_turnaround_us: Option<f64>,
    /// Scheduler action counters.
    pub counters: SchedCounters,
    /// Mean machine utilization over the run.
    pub mean_utilization: f64,
}

/// Run `workload` under `policy` on `machines` (with optional background
/// load traces, aligned by index) until done or `horizon_us`.
pub fn run_baseline(
    seed: u64,
    machines: &[(MachineInfo, LoadTrace)],
    workload: &Workload,
    policy: Box<dyn Policy>,
    horizon_us: u64,
) -> BaselineReport {
    let name = policy.name();
    let mut sim = Sim::new(SimConfig {
        seed,
        trace_enabled: false,
        ..SimConfig::default()
    });
    // The scheduler lives on the first machine.
    let sched_node = machines.first().expect("at least one machine").0.node;
    let sched_addr = Addr::new(sched_node, SCHED_PORT);
    for (info, load) in machines {
        sim.add_node_with_load(info.clone(), load.clone());
        sim.add_endpoint(
            Addr::daemon(info.node),
            Box::new(AgentEndpoint::new(Addr::daemon(info.node), sched_addr)),
        );
    }
    sim.add_endpoint(
        sched_addr,
        Box::new(SchedulerEndpoint::new(sched_addr, workload, policy)),
    );
    // Step until done or horizon.
    loop {
        let done = sim
            .with_endpoint_mut::<SchedulerEndpoint, _>(sched_addr, |s| s.is_done())
            .unwrap_or(true);
        if done || sim.now_us() >= horizon_us {
            break;
        }
        let next = (sim.now_us() + 250_000).min(horizon_us);
        sim.run_until(next);
    }
    let (completed, makespan_us, completions, counters) = sim
        .with_endpoint_mut::<SchedulerEndpoint, _>(sched_addr, |s| {
            (s.is_done(), s.makespan_us(), s.completions(), s.counters)
        })
        .expect("scheduler present");
    let mean_turnaround_us = if completions.is_empty() {
        None
    } else {
        let submit: std::collections::BTreeMap<_, _> = workload
            .jobs()
            .iter()
            .map(|j| (j.id, j.submit_at_us))
            .collect();
        let sum: u64 = completions
            .iter()
            .map(|(id, &done)| done.saturating_sub(submit.get(id).copied().unwrap_or(0)))
            .sum();
        Some(sum as f64 / completions.len() as f64)
    };
    let metrics = sim.all_metrics();
    let mean_utilization = vce_sim::metrics::FleetMetrics::summarize(&metrics).mean_utilization;
    BaselineReport {
        policy: name,
        completed,
        makespan_us,
        mean_turnaround_us,
        counters,
        mean_utilization,
    }
}

/// Convenience: `n` identical always-idle workstations.
pub fn idle_fleet(n: u32, speed_mops: f64) -> Vec<(MachineInfo, LoadTrace)> {
    (0..n)
        .map(|i| {
            (
                MachineInfo::workstation(NodeId(i), speed_mops),
                LoadTrace::idle(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{condor, random, roundrobin, spawn, stealth, vcelike};
    use crate::workload::{JobId, Workload};

    const HORIZON: u64 = 3_600_000_000; // one simulated hour

    fn bag() -> Workload {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        Workload::bag(&mut rng, 12, 1_000.0, 3_000.0)
    }

    #[test]
    fn every_policy_completes_an_idle_fleet_bag() {
        let fleet = idle_fleet(4, 100.0);
        let w = bag();
        let policies: Vec<Box<dyn crate::policy::Policy>> = vec![
            Box::new(random::Random::new(1)),
            Box::new(roundrobin::RoundRobin::new()),
            Box::new(condor::Condor::new()),
            Box::new(stealth::Stealth::new()),
            Box::new(spawn::Spawn::new(1)),
            Box::new(vcelike::VceLike::new()),
        ];
        for p in policies {
            let name = p.name();
            let r = run_baseline(9, &fleet, &w, p, HORIZON);
            assert!(r.completed, "{name} did not finish");
            assert!(r.makespan_us.unwrap() > 0);
            assert!(r.counters.placements >= 12, "{name}");
            assert!(r.mean_utilization > 0.0, "{name}");
        }
    }

    #[test]
    fn chain_respects_dependencies() {
        let fleet = idle_fleet(3, 100.0);
        let w = Workload::chain(5, 1_000.0);
        let r = run_baseline(9, &fleet, &w, Box::new(condor::Condor::new()), HORIZON);
        assert!(r.completed);
        // A 5×10s chain takes at least 50 simulated seconds.
        assert!(r.makespan_us.unwrap() >= 50_000_000);
    }

    #[test]
    fn stealth_suspends_under_owner_activity_and_still_finishes() {
        // One machine with a busy owner mid-run, one spare... no: stealth
        // never migrates, so give it only the one machine and assert the
        // suspension stall shows up in the makespan.
        let busy = vec![(
            MachineInfo::workstation(NodeId(0), 100.0),
            // Owner busy from t=5s to t=25s.
            LoadTrace::from_steps(vec![(5_000_000, 2.0), (25_000_000, 0.0)]),
        )];
        let w = Workload::chain(1, 2_000.0); // 20 s of work
        let r = run_baseline(9, &busy, &w, Box::new(stealth::Stealth::new()), HORIZON);
        assert!(r.completed);
        assert!(r.counters.suspensions >= 1);
        assert!(r.counters.resumes >= 1);
        // 20s of work + ~20s suspension stall.
        assert!(
            r.makespan_us.unwrap() >= 38_000_000,
            "makespan {:?}",
            r.makespan_us
        );
    }

    #[test]
    fn vcelike_migrates_instead_of_stalling() {
        let fleet = vec![
            (
                MachineInfo::workstation(NodeId(0), 100.0),
                LoadTrace::from_steps(vec![(5_000_000, 2.0)]),
            ),
            (
                MachineInfo::workstation(NodeId(1), 100.0),
                LoadTrace::idle(),
            ),
        ];
        let w = Workload::new(vec![crate::workload::Job {
            id: JobId(0),
            mops: 2_000.0,
            submit_at_us: 0,
            deps: vec![],
        }]);
        let r = run_baseline(9, &fleet, &w, Box::new(vcelike::VceLike::new()), HORIZON);
        assert!(r.completed);
        assert!(r.counters.recalls >= 1, "migration happened");
        // Migration loses almost nothing: ~20 s of work plus small slack.
        assert!(
            r.makespan_us.unwrap() < 30_000_000,
            "makespan {:?}",
            r.makespan_us
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let fleet = idle_fleet(3, 100.0);
        let w = bag();
        let a = run_baseline(3, &fleet, &w, Box::new(spawn::Spawn::new(3)), HORIZON);
        let b = run_baseline(3, &fleet, &w, Box::new(spawn::Spawn::new(3)), HORIZON);
        assert_eq!(a.makespan_us, b.makespan_us);
        assert_eq!(a.counters, b.counters);
    }
}
