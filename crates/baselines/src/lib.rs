#![warn(missing_docs)]
//! # vce-baselines — the schedulers §4.3–4.4 argues against
//!
//! The paper positions the VCE against the idle-workstation systems of its
//! day: Condor (Litzkow: checkpoint/migrate long batch jobs, homogeneous),
//! Stealth (Krueger: *suspend* remote work when the owner returns, resume
//! later — avoiding migration), Spawn (Waldspurger: a computational
//! economy), and DAWGS (Clark). Its central §4.4 claim is that suspension
//! is wrong for virtual-computer workloads: "If a virtual machine task is
//! suspended to allow execution of local tasks, initiation of other tasks
//! dependent on the output of the suspended task could be delayed. This
//! ripple effect could adversely affect system throughput."
//!
//! This crate implements those baselines behind one [`Policy`] trait, on a
//! deliberately simpler substrate than the full VCE protocol — a central
//! scheduler endpoint plus one worker agent per machine, the shape those
//! 1990s systems actually had. Experiments B1 (scheduler comparison) and
//! M2 (ripple effect) run identical workloads through each policy and
//! through the real VCE stack.
//!
//! Simplifications are documented per policy: Condor-style migration moves
//! exact remaining state (ideal checkpoints); Spawn's time-sliced
//! second-price auctions become funding-by-waiting lotteries at fixed
//! auction rounds; owner reclamation under Spawn kills and requeues (its
//! sponsored tasks lost their slice).

pub mod agent;
pub mod harness;
pub mod msg;
pub mod policy;
pub mod sched;
pub mod workload;

pub use harness::{run_baseline, BaselineReport};
pub use policy::{condor, random, roundrobin, spawn, stealth, vcelike, Action, Policy, SchedView};
pub use sched::SchedulerEndpoint;
pub use workload::{Job, JobId, Workload};
