//! Workloads for scheduler comparisons: bags of tasks and dependency
//! chains, with submission times.

use rand::Rng;

/// Job identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u32);

/// One schedulable job.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Identity.
    pub id: JobId,
    /// Compute, Mops.
    pub mops: f64,
    /// Submission time, µs.
    pub submit_at_us: u64,
    /// Jobs that must finish first (the ripple-effect structure).
    pub deps: Vec<JobId>,
}

/// A set of jobs.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    jobs: Vec<Job>,
}

impl Workload {
    /// Wrap explicit jobs.
    pub fn new(jobs: Vec<Job>) -> Self {
        Self { jobs }
    }

    /// The jobs.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Count.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Empty?
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Total work, Mops.
    pub fn total_mops(&self) -> f64 {
        self.jobs.iter().map(|j| j.mops).sum()
    }

    /// A bag of `n` independent jobs with uniformly random sizes in
    /// `[min_mops, max_mops]`, all submitted at t=0 — the Monte-Carlo-style
    /// workload the load-balancing literature validated on (§4.4).
    pub fn bag<R: Rng + ?Sized>(rng: &mut R, n: u32, min_mops: f64, max_mops: f64) -> Self {
        let jobs = (0..n)
            .map(|i| Job {
                id: JobId(i),
                mops: rng.gen_range(min_mops..=max_mops),
                submit_at_us: 0,
                deps: vec![],
            })
            .collect();
        Self { jobs }
    }

    /// A dependency chain of `n` equal jobs — the worst case for the
    /// ripple effect (§4.4): every suspension stalls everything after it.
    pub fn chain(n: u32, mops: f64) -> Self {
        let jobs = (0..n)
            .map(|i| Job {
                id: JobId(i),
                mops,
                submit_at_us: 0,
                deps: if i == 0 { vec![] } else { vec![JobId(i - 1)] },
            })
            .collect();
        Self { jobs }
    }

    /// `width` parallel chains of `depth` jobs each.
    pub fn chains(width: u32, depth: u32, mops: f64) -> Self {
        let mut jobs = Vec::new();
        for w in 0..width {
            for d in 0..depth {
                let id = JobId(w * depth + d);
                jobs.push(Job {
                    id,
                    mops,
                    submit_at_us: 0,
                    deps: if d == 0 {
                        vec![]
                    } else {
                        vec![JobId(w * depth + d - 1)]
                    },
                });
            }
        }
        Self { jobs }
    }

    /// Poisson-ish arrivals: `n` independent jobs with exponential
    /// inter-arrival times (mean `mean_interarrival_us`).
    pub fn stream<R: Rng + ?Sized>(
        rng: &mut R,
        n: u32,
        mops: f64,
        mean_interarrival_us: f64,
    ) -> Self {
        let mut t = 0u64;
        let jobs = (0..n)
            .map(|i| {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                t += (-mean_interarrival_us * u.ln()).max(1.0) as u64;
                Job {
                    id: JobId(i),
                    mops,
                    submit_at_us: t,
                    deps: vec![],
                }
            })
            .collect();
        Self { jobs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn bag_is_independent_and_sized() {
        let mut rng = SmallRng::seed_from_u64(1);
        let w = Workload::bag(&mut rng, 10, 100.0, 200.0);
        assert_eq!(w.len(), 10);
        assert!(w.jobs().iter().all(|j| j.deps.is_empty()));
        assert!(w.jobs().iter().all(|j| (100.0..=200.0).contains(&j.mops)));
        assert!(w.total_mops() >= 1000.0);
    }

    #[test]
    fn chain_links_consecutive_jobs() {
        let w = Workload::chain(4, 50.0);
        assert_eq!(w.jobs()[0].deps, vec![]);
        assert_eq!(w.jobs()[3].deps, vec![JobId(2)]);
    }

    #[test]
    fn chains_are_independent_of_each_other() {
        let w = Workload::chains(2, 3, 10.0);
        assert_eq!(w.len(), 6);
        // Second chain's first job has no deps.
        assert!(w.jobs()[3].deps.is_empty());
        assert_eq!(w.jobs()[4].deps, vec![JobId(3)]);
    }

    #[test]
    fn stream_has_increasing_submit_times() {
        let mut rng = SmallRng::seed_from_u64(2);
        let w = Workload::stream(&mut rng, 20, 10.0, 1_000_000.0);
        for pair in w.jobs().windows(2) {
            assert!(pair[0].submit_at_us <= pair[1].submit_at_us);
        }
        assert!(w.jobs()[0].submit_at_us > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Workload::bag(&mut SmallRng::seed_from_u64(3), 5, 1.0, 2.0);
        let b = Workload::bag(&mut SmallRng::seed_from_u64(3), 5, 1.0, 2.0);
        assert_eq!(a.jobs(), b.jobs());
    }
}
