//! The central scheduler endpoint driving a [`Policy`].

use std::collections::BTreeMap;

use vce_codec::Codec;
use vce_net::{Addr, Endpoint, Envelope, Host, NodeId};

use crate::msg::BaselineMsg;
use crate::policy::{Action, MachineView, Policy, ReadyJob, SchedView};
use crate::workload::{Job, JobId, Workload};

const TOKEN_DECIDE: u64 = 1;
const TOKEN_SUBMIT_BASE: u64 = 1 << 20;
/// Decision-round period, µs.
pub const DECIDE_PERIOD_US: u64 = 250_000;

#[derive(Debug, Clone, PartialEq)]
enum JobState {
    /// Submitted but dependencies unfinished.
    Waiting,
    /// Dispatchable.
    Ready { since_us: u64 },
    /// Running on a machine.
    Running(NodeId),
    /// Suspended in place.
    Suspended(NodeId),
    /// Recall sent, response pending.
    Recalling(NodeId),
    /// Finished.
    Done { at_us: u64 },
}

#[derive(Debug, Clone)]
struct JobEntry {
    job: Job,
    /// Remaining work (updated by keep-progress recalls).
    remaining_mops: f64,
    state: JobState,
}

/// Counters for experiment tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedCounters {
    /// Placements ordered.
    pub placements: u64,
    /// Suspensions ordered.
    pub suspensions: u64,
    /// Resumes ordered.
    pub resumes: u64,
    /// Recalls (migrations / reclamation kills) ordered.
    pub recalls: u64,
}

/// The central scheduler.
pub struct SchedulerEndpoint {
    me: Addr,
    policy: Box<dyn Policy>,
    jobs: BTreeMap<JobId, JobEntry>,
    machines: BTreeMap<NodeId, MachineView>,
    /// Experiment counters.
    pub counters: SchedCounters,
}

impl SchedulerEndpoint {
    /// Build a scheduler at `me` for a workload under a policy. Machines
    /// announce themselves via load reports.
    pub fn new(me: Addr, workload: &Workload, policy: Box<dyn Policy>) -> Self {
        let jobs = workload
            .jobs()
            .iter()
            .map(|j| {
                (
                    j.id,
                    JobEntry {
                        job: j.clone(),
                        remaining_mops: j.mops,
                        state: JobState::Waiting,
                    },
                )
            })
            .collect();
        Self {
            me,
            policy,
            jobs,
            machines: BTreeMap::new(),
            counters: SchedCounters::default(),
        }
    }

    /// All jobs done?
    pub fn is_done(&self) -> bool {
        self.jobs
            .values()
            .all(|j| matches!(j.state, JobState::Done { .. }))
    }

    /// Completion time of the last job, µs.
    pub fn makespan_us(&self) -> Option<u64> {
        self.jobs
            .values()
            .map(|j| match j.state {
                JobState::Done { at_us } => Some(at_us),
                _ => None,
            })
            .collect::<Option<Vec<u64>>>()
            .map(|v| v.into_iter().max().unwrap_or(0))
    }

    /// Per-job completion times.
    pub fn completions(&self) -> BTreeMap<JobId, u64> {
        self.jobs
            .iter()
            .filter_map(|(&id, j)| match j.state {
                JobState::Done { at_us } => Some((id, at_us)),
                _ => None,
            })
            .collect()
    }

    fn send(&self, host: &mut dyn Host, node: NodeId, msg: &BaselineMsg) {
        // Pooled scratch encode — see agent.rs: benches must compare
        // scheduling disciplines, not per-send allocations.
        let payload = host.encode_with(&mut |enc| msg.encode(enc));
        host.send(self.me, Addr::daemon(node), payload);
    }

    /// Promote Waiting→Ready as dependencies finish.
    fn refresh_ready(&mut self, now: u64) {
        let done: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|(_, j)| matches!(j.state, JobState::Done { .. }))
            .map(|(&id, _)| id)
            .collect();
        for j in self.jobs.values_mut() {
            if j.state == JobState::Waiting
                && j.job.submit_at_us <= now
                && j.job.deps.iter().all(|d| done.contains(d))
            {
                j.state = JobState::Ready { since_us: now };
            }
        }
    }

    fn decide(&mut self, host: &mut dyn Host) {
        let now = host.now_us();
        self.refresh_ready(now);
        // Build the view.
        let machines: Vec<MachineView> = self.machines.values().cloned().collect();
        let mut ready: Vec<ReadyJob> = self
            .jobs
            .values()
            .filter_map(|j| match j.state {
                JobState::Ready { since_us } => Some(ReadyJob {
                    id: j.job.id,
                    mops: j.remaining_mops,
                    ready_since_us: since_us,
                }),
                _ => None,
            })
            .collect();
        ready.sort_by_key(|r| (r.ready_since_us, r.id));
        let view = SchedView {
            now_us: now,
            machines: &machines,
            ready: &ready,
        };
        let actions = self.policy.react(&view);
        for action in actions {
            self.apply(action, host);
        }
    }

    fn apply(&mut self, action: Action, host: &mut dyn Host) {
        match action {
            Action::Place { job, node } => {
                let Some(entry) = self.jobs.get_mut(&job) else {
                    return;
                };
                if !matches!(entry.state, JobState::Ready { .. }) {
                    return; // stale decision
                }
                entry.state = JobState::Running(node);
                let mops = entry.remaining_mops;
                self.counters.placements += 1;
                // Local bookkeeping so this round doesn't double-book.
                if let Some(m) = self.machines.get_mut(&node) {
                    m.load += 1.0;
                    m.running.push(job);
                }
                self.send(host, node, &BaselineMsg::Run { job, mops });
            }
            Action::Suspend { job } => {
                let Some(entry) = self.jobs.get_mut(&job) else {
                    return;
                };
                let JobState::Running(node) = entry.state else {
                    return;
                };
                entry.state = JobState::Suspended(node);
                self.counters.suspensions += 1;
                if let Some(m) = self.machines.get_mut(&node) {
                    m.running.retain(|&j| j != job);
                    m.suspended.push(job);
                }
                self.send(host, node, &BaselineMsg::Suspend { job });
            }
            Action::Resume { job } => {
                let Some(entry) = self.jobs.get_mut(&job) else {
                    return;
                };
                let JobState::Suspended(node) = entry.state else {
                    return;
                };
                entry.state = JobState::Running(node);
                self.counters.resumes += 1;
                if let Some(m) = self.machines.get_mut(&node) {
                    m.suspended.retain(|&j| j != job);
                    m.running.push(job);
                }
                self.send(host, node, &BaselineMsg::Resume { job });
            }
            Action::Recall { job, keep_progress } => {
                let Some(entry) = self.jobs.get_mut(&job) else {
                    return;
                };
                let node = match entry.state {
                    JobState::Running(n) | JobState::Suspended(n) => n,
                    _ => return,
                };
                entry.state = JobState::Recalling(node);
                self.counters.recalls += 1;
                if let Some(m) = self.machines.get_mut(&node) {
                    m.running.retain(|&j| j != job);
                    m.suspended.retain(|&j| j != job);
                }
                self.send(host, node, &BaselineMsg::Recall { job, keep_progress });
            }
        }
    }
}

impl Endpoint for SchedulerEndpoint {
    fn on_start(&mut self, host: &mut dyn Host) {
        host.set_timer(DECIDE_PERIOD_US, TOKEN_DECIDE);
        // Future submissions arrive by timer.
        let max_submit = self
            .jobs
            .values()
            .map(|j| j.job.submit_at_us)
            .max()
            .unwrap_or(0);
        if max_submit > 0 {
            host.set_timer(max_submit + 1, TOKEN_SUBMIT_BASE);
        }
    }

    fn on_envelope(&mut self, env: Envelope, host: &mut dyn Host) {
        let Ok(msg) = vce_codec::from_bytes::<BaselineMsg>(&env.payload) else {
            return;
        };
        match msg {
            BaselineMsg::LoadReport {
                node,
                load,
                background,
                speed_mops,
            } => {
                let running: Vec<JobId> = self
                    .jobs
                    .values()
                    .filter_map(|j| match j.state {
                        JobState::Running(n) if n == node => Some(j.job.id),
                        _ => None,
                    })
                    .collect();
                let suspended: Vec<JobId> = self
                    .jobs
                    .values()
                    .filter_map(|j| match j.state {
                        JobState::Suspended(n) if n == node => Some(j.job.id),
                        _ => None,
                    })
                    .collect();
                self.machines.insert(
                    node,
                    MachineView {
                        node,
                        load,
                        background,
                        speed_mops,
                        running,
                        suspended,
                    },
                );
            }
            BaselineMsg::Done { job, node: _ } => {
                if let Some(entry) = self.jobs.get_mut(&job) {
                    if !matches!(entry.state, JobState::Done { .. }) {
                        entry.state = JobState::Done {
                            at_us: host.now_us(),
                        };
                        entry.remaining_mops = 0.0;
                    }
                }
                // Newly unblocked dependents may dispatch immediately.
                self.decide(host);
            }
            BaselineMsg::Recalled {
                job,
                remaining_mops,
            } => {
                if let Some(entry) = self.jobs.get_mut(&job) {
                    if matches!(entry.state, JobState::Recalling(_)) {
                        if remaining_mops.is_finite() {
                            entry.remaining_mops = remaining_mops;
                        } else {
                            entry.remaining_mops = entry.job.mops; // restart
                        }
                        entry.state = JobState::Ready {
                            since_us: host.now_us(),
                        };
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, host: &mut dyn Host) {
        if token == TOKEN_DECIDE {
            if !self.is_done() {
                host.set_timer(DECIDE_PERIOD_US, TOKEN_DECIDE);
            }
            self.decide(host);
        } else if token >= TOKEN_SUBMIT_BASE {
            self.decide(host);
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    fn snapshot_hash(&self) -> u64 {
        let mut h = vce_net::Fnv64::new();
        h.write_u64(self.jobs.len() as u64);
        for (id, j) in &self.jobs {
            let (tag, node, at): (u64, u64, u64) = match j.state {
                JobState::Waiting => (0, 0, 0),
                JobState::Ready { since_us } => (1, 0, since_us),
                JobState::Running(n) => (2, u64::from(n.0), 0),
                JobState::Suspended(n) => (3, u64::from(n.0), 0),
                JobState::Recalling(n) => (4, u64::from(n.0), 0),
                JobState::Done { at_us } => (5, 0, at_us),
            };
            h.write_u64(u64::from(id.0))
                .write_u64(tag)
                .write_u64(node)
                .write_u64(at)
                .write_f64(j.remaining_mops);
        }
        h.write_u64(self.machines.len() as u64);
        for (n, m) in &self.machines {
            h.write_u64(u64::from(n.0))
                .write_f64(m.load)
                .write_f64(m.background)
                .write_u64(m.running.len() as u64)
                .write_u64(m.suspended.len() as u64);
        }
        h.write_u64(self.counters.placements)
            .write_u64(self.counters.suspensions)
            .write_u64(self.counters.resumes)
            .write_u64(self.counters.recalls);
        h.finish()
    }
}
