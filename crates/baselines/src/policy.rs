//! The [`Policy`] trait and the cited baseline implementations.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vce_net::NodeId;

use crate::workload::JobId;

/// A machine as the central scheduler sees it (latest load report plus
/// local bookkeeping).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineView {
    /// The machine.
    pub node: NodeId,
    /// Reported load (plus jobs placed since the report).
    pub load: f64,
    /// Owner activity component.
    pub background: f64,
    /// Nominal speed, Mops/s.
    pub speed_mops: f64,
    /// Jobs running there.
    pub running: Vec<JobId>,
    /// Jobs suspended there.
    pub suspended: Vec<JobId>,
}

/// A dispatchable job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadyJob {
    /// The job.
    pub id: JobId,
    /// Remaining work, Mops.
    pub mops: f64,
    /// When it became ready, µs.
    pub ready_since_us: u64,
}

/// Scheduler state offered to a policy each decision round.
#[derive(Debug)]
pub struct SchedView<'a> {
    /// Current time, µs.
    pub now_us: u64,
    /// Machines, sorted by node id.
    pub machines: &'a [MachineView],
    /// Ready jobs, oldest-ready first.
    pub ready: &'a [ReadyJob],
}

/// What a policy may order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Start a ready job on a machine.
    Place {
        /// The job.
        job: JobId,
        /// The machine.
        node: NodeId,
    },
    /// Suspend a running job in place (Stealth).
    Suspend {
        /// The job.
        job: JobId,
    },
    /// Resume a suspended job.
    Resume {
        /// The job.
        job: JobId,
    },
    /// Pull a job off its machine; it re-enters the ready queue with
    /// remaining (or, with `keep_progress: false`, full) work.
    Recall {
        /// The job.
        job: JobId,
        /// Keep partial progress (ideal checkpoint) or restart.
        keep_progress: bool,
    },
}

/// A baseline scheduling policy.
pub trait Policy: Send {
    /// Display name (experiment tables).
    fn name(&self) -> &'static str;
    /// Decide actions for this round.
    fn react(&mut self, view: &SchedView<'_>) -> Vec<Action>;
}

/// Machines with no activity at all (the idle-workstation harvesting
/// condition the 1990s systems used).
fn idle_machines<'a>(view: &'a SchedView<'_>) -> Vec<&'a MachineView> {
    view.machines
        .iter()
        .filter(|m| m.load < 0.5 && m.running.is_empty() && m.suspended.is_empty())
        .collect()
}

/// Pair ready jobs with idle machines one-to-one, in the given machine
/// order.
fn place_one_each(view: &SchedView<'_>, machines: &[&MachineView]) -> Vec<Action> {
    view.ready
        .iter()
        .zip(machines)
        .map(|(j, m)| Action::Place {
            job: j.id,
            node: m.node,
        })
        .collect()
}

pub mod random {
    //! Uniformly random placement; oblivious to load and owners.

    use super::*;

    /// The random scheduler.
    pub struct Random {
        rng: SmallRng,
    }

    impl Random {
        /// Seeded constructor.
        pub fn new(seed: u64) -> Self {
            Self {
                rng: SmallRng::seed_from_u64(seed),
            }
        }
    }

    impl Policy for Random {
        fn name(&self) -> &'static str {
            "random"
        }
        fn react(&mut self, view: &SchedView<'_>) -> Vec<Action> {
            if view.machines.is_empty() {
                return vec![];
            }
            view.ready
                .iter()
                .map(|j| Action::Place {
                    job: j.id,
                    node: view.machines[self.rng.gen_range(0..view.machines.len())].node,
                })
                .collect()
        }
    }
}

pub mod roundrobin {
    //! Cyclic placement; oblivious to load and owners.

    use super::*;

    /// The round-robin scheduler.
    #[derive(Default)]
    pub struct RoundRobin {
        next: usize,
    }

    impl RoundRobin {
        /// Constructor.
        pub fn new() -> Self {
            Self::default()
        }
    }

    impl Policy for RoundRobin {
        fn name(&self) -> &'static str {
            "round-robin"
        }
        fn react(&mut self, view: &SchedView<'_>) -> Vec<Action> {
            if view.machines.is_empty() {
                return vec![];
            }
            view.ready
                .iter()
                .map(|j| {
                    let node = view.machines[self.next % view.machines.len()].node;
                    self.next += 1;
                    Action::Place { job: j.id, node }
                })
                .collect()
        }
    }
}

pub mod condor {
    //! Condor-style (Litzkow): harvest idle workstations; when the owner
    //! returns, checkpoint-migrate the batch job elsewhere (we model ideal
    //! checkpoints: exact remaining work travels). Homogeneous migration
    //! only — which our one-class baseline fleets satisfy by construction.

    use super::*;

    /// The Condor-like scheduler.
    #[derive(Default)]
    pub struct Condor;

    impl Condor {
        /// Constructor.
        pub fn new() -> Self {
            Self
        }
    }

    impl Policy for Condor {
        fn name(&self) -> &'static str {
            "condor-like"
        }
        fn react(&mut self, view: &SchedView<'_>) -> Vec<Action> {
            let mut actions = Vec::new();
            // Vacate machines the owner reclaimed.
            for m in view.machines {
                if m.background >= 1.0 {
                    for &job in &m.running {
                        actions.push(Action::Recall {
                            job,
                            keep_progress: true,
                        });
                    }
                }
            }
            let idle = idle_machines(view);
            actions.extend(place_one_each(view, &idle));
            actions
        }
    }
}

pub mod stealth {
    //! Stealth-style (Krueger): *suspend* remote work when the owner
    //! returns and resume when the machine idles again — "reduces the
    //! frequency of process migrations" at the cost of the §4.4 ripple
    //! effect on dependent tasks.

    use super::*;

    /// The Stealth-like scheduler.
    #[derive(Default)]
    pub struct Stealth;

    impl Stealth {
        /// Constructor.
        pub fn new() -> Self {
            Self
        }
    }

    impl Policy for Stealth {
        fn name(&self) -> &'static str {
            "stealth-like"
        }
        fn react(&mut self, view: &SchedView<'_>) -> Vec<Action> {
            let mut actions = Vec::new();
            for m in view.machines {
                if m.background >= 1.0 {
                    for &job in &m.running {
                        actions.push(Action::Suspend { job });
                    }
                } else {
                    for &job in &m.suspended {
                        actions.push(Action::Resume { job });
                    }
                }
            }
            let idle = idle_machines(view);
            actions.extend(place_one_each(view, &idle));
            actions
        }
    }
}

pub mod spawn {
    //! Spawn-style (Waldspurger): a computational economy. Waiting jobs
    //! accumulate funding proportional to their wait; each round, idle
    //! machines go to lottery winners weighted by funding. Owner
    //! reclamation kills the resident job outright (its sponsored slice is
    //! gone) and requeues it from scratch. This compresses Spawn's
    //! time-sliced second-price auctions into per-round lotteries —
    //! documented simplification.

    use super::*;

    /// The Spawn-like scheduler.
    pub struct Spawn {
        rng: SmallRng,
    }

    impl Spawn {
        /// Seeded constructor.
        pub fn new(seed: u64) -> Self {
            Self {
                rng: SmallRng::seed_from_u64(seed),
            }
        }
    }

    impl Policy for Spawn {
        fn name(&self) -> &'static str {
            "spawn-like"
        }
        fn react(&mut self, view: &SchedView<'_>) -> Vec<Action> {
            let mut actions = Vec::new();
            for m in view.machines {
                if m.background >= 1.0 {
                    for &job in &m.running {
                        actions.push(Action::Recall {
                            job,
                            keep_progress: false,
                        });
                    }
                }
            }
            let idle = idle_machines(view);
            let mut pool: Vec<ReadyJob> = view.ready.to_vec();
            for m in idle {
                if pool.is_empty() {
                    break;
                }
                // Funding = waiting time + 1 tick so fresh jobs have a
                // nonzero ticket.
                let total: f64 = pool
                    .iter()
                    .map(|j| (view.now_us - j.ready_since_us) as f64 + 1.0)
                    .sum();
                let mut draw = self.rng.gen_range(0.0..total);
                let mut winner = 0;
                for (i, j) in pool.iter().enumerate() {
                    let w = (view.now_us - j.ready_since_us) as f64 + 1.0;
                    if draw < w {
                        winner = i;
                        break;
                    }
                    draw -= w;
                }
                let job = pool.remove(winner);
                actions.push(Action::Place {
                    job: job.id,
                    node: m.node,
                });
            }
            actions
        }
    }
}

pub mod vcelike {
    //! The VCE's §4.4 stance expressed in this harness's vocabulary:
    //! checkpoint-migrate away from reclaimed machines so dependent work
    //! is never stalled behind a suspension. (The full-protocol VCE runs
    //! in its own harness; this variant isolates the *policy* difference
    //! from the protocol difference.)

    use super::*;

    /// The migrating policy.
    #[derive(Default)]
    pub struct VceLike;

    impl VceLike {
        /// Constructor.
        pub fn new() -> Self {
            Self
        }
    }

    impl Policy for VceLike {
        fn name(&self) -> &'static str {
            "vce-like"
        }
        fn react(&mut self, view: &SchedView<'_>) -> Vec<Action> {
            let mut actions = Vec::new();
            let idle_count = idle_machines(view).len();
            let mut budget = idle_count;
            for m in view.machines {
                if m.background >= 1.0 {
                    for &job in &m.running {
                        // Only migrate when somewhere idle exists — else
                        // stay put and share (migration to nowhere is the
                        // §4.3 waiting discipline).
                        if budget > 0 {
                            actions.push(Action::Recall {
                                job,
                                keep_progress: true,
                            });
                            budget -= 1;
                        }
                    }
                }
            }
            let idle = idle_machines(view);
            actions.extend(place_one_each(view, &idle));
            actions
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(n: u32, load: f64, background: f64, running: Vec<JobId>) -> MachineView {
        MachineView {
            node: NodeId(n),
            load,
            background,
            speed_mops: 100.0,
            running,
            suspended: vec![],
        }
    }

    fn ready(id: u32) -> ReadyJob {
        ReadyJob {
            id: JobId(id),
            mops: 100.0,
            ready_since_us: 0,
        }
    }

    #[test]
    fn condor_recalls_from_reclaimed_machines() {
        let machines = vec![
            machine(0, 2.0, 1.5, vec![JobId(9)]),
            machine(1, 0.0, 0.0, vec![]),
        ];
        let view = SchedView {
            now_us: 0,
            machines: &machines,
            ready: &[ready(1)],
        };
        let actions = condor::Condor::new().react(&view);
        assert!(actions.contains(&Action::Recall {
            job: JobId(9),
            keep_progress: true
        }));
        assert!(actions.contains(&Action::Place {
            job: JobId(1),
            node: NodeId(1)
        }));
    }

    #[test]
    fn stealth_suspends_and_resumes() {
        let mut machines = vec![machine(0, 2.0, 1.5, vec![JobId(9)])];
        let view = SchedView {
            now_us: 0,
            machines: &machines,
            ready: &[],
        };
        let actions = stealth::Stealth::new().react(&view);
        assert_eq!(actions, vec![Action::Suspend { job: JobId(9) }]);
        machines[0] = MachineView {
            background: 0.0,
            load: 0.0,
            running: vec![],
            suspended: vec![JobId(9)],
            ..machines[0].clone()
        };
        let view = SchedView {
            now_us: 1,
            machines: &machines,
            ready: &[],
        };
        let actions = stealth::Stealth::new().react(&view);
        assert_eq!(actions, vec![Action::Resume { job: JobId(9) }]);
    }

    #[test]
    fn spawn_kills_progress_on_reclaim() {
        let machines = vec![machine(0, 2.0, 1.5, vec![JobId(9)])];
        let view = SchedView {
            now_us: 0,
            machines: &machines,
            ready: &[],
        };
        let actions = spawn::Spawn::new(1).react(&view);
        assert_eq!(
            actions,
            vec![Action::Recall {
                job: JobId(9),
                keep_progress: false
            }]
        );
    }

    #[test]
    fn spawn_lottery_places_on_idle_machines() {
        let machines = vec![machine(0, 0.0, 0.0, vec![]), machine(1, 0.0, 0.0, vec![])];
        let view = SchedView {
            now_us: 100,
            machines: &machines,
            ready: &[ready(1), ready(2), ready(3)],
        };
        let actions = spawn::Spawn::new(2).react(&view);
        let places = actions
            .iter()
            .filter(|a| matches!(a, Action::Place { .. }))
            .count();
        assert_eq!(places, 2, "one job per idle machine");
    }

    #[test]
    fn vcelike_migrates_only_when_idle_target_exists() {
        // No idle machine: stay put.
        let machines = vec![machine(0, 2.0, 1.5, vec![JobId(9)])];
        let view = SchedView {
            now_us: 0,
            machines: &machines,
            ready: &[],
        };
        assert!(vcelike::VceLike::new().react(&view).is_empty());
        // Idle machine exists: recall for migration.
        let machines = vec![
            machine(0, 2.0, 1.5, vec![JobId(9)]),
            machine(1, 0.0, 0.0, vec![]),
        ];
        let view = SchedView {
            now_us: 0,
            machines: &machines,
            ready: &[],
        };
        let actions = vcelike::VceLike::new().react(&view);
        assert!(actions.contains(&Action::Recall {
            job: JobId(9),
            keep_progress: true
        }));
    }

    #[test]
    fn oblivious_policies_place_everything() {
        let machines = vec![machine(0, 5.0, 5.0, vec![]), machine(1, 0.0, 0.0, vec![])];
        let view = SchedView {
            now_us: 0,
            machines: &machines,
            ready: &[ready(1), ready(2)],
        };
        assert_eq!(roundrobin::RoundRobin::new().react(&view).len(), 2);
        assert_eq!(random::Random::new(7).react(&view).len(), 2);
    }

    #[test]
    fn round_robin_cycles() {
        let machines = vec![machine(0, 0.0, 0.0, vec![]), machine(1, 0.0, 0.0, vec![])];
        let view = SchedView {
            now_us: 0,
            machines: &machines,
            ready: &[ready(1), ready(2), ready(3)],
        };
        let actions = roundrobin::RoundRobin::new().react(&view);
        let nodes: Vec<NodeId> = actions
            .iter()
            .map(|a| match a {
                Action::Place { node, .. } => *node,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(nodes, vec![NodeId(0), NodeId(1), NodeId(0)]);
    }
}
