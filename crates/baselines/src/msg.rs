//! The baseline scheduler↔agent wire protocol.

use vce_codec::{Codec, CodecError, Decoder, Encoder, Result};
use vce_net::NodeId;

use crate::workload::JobId;

impl Codec for JobId {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.0);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(JobId(dec.get_u32()?))
    }
}

/// Messages between the central scheduler and worker agents.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineMsg {
    /// Scheduler → agent: run a job.
    Run {
        /// The job.
        job: JobId,
        /// Work to execute, Mops.
        mops: f64,
    },
    /// Scheduler → agent: suspend a running job (Stealth semantics).
    Suspend {
        /// The job.
        job: JobId,
    },
    /// Scheduler → agent: resume a suspended job.
    Resume {
        /// The job.
        job: JobId,
    },
    /// Scheduler → agent: kill a job and report its remaining work
    /// (migration recall / Spawn reclamation).
    Recall {
        /// The job.
        job: JobId,
        /// If false the remaining work is discarded at the scheduler
        /// (restart semantics).
        keep_progress: bool,
    },
    /// Agent → scheduler: recalled job state.
    Recalled {
        /// The job.
        job: JobId,
        /// Remaining work, Mops (full work if progress was discarded).
        remaining_mops: f64,
    },
    /// Agent → scheduler: job finished.
    Done {
        /// The job.
        job: JobId,
        /// Where.
        node: NodeId,
    },
    /// Agent → scheduler: periodic machine state.
    LoadReport {
        /// The machine.
        node: NodeId,
        /// Total load.
        load: f64,
        /// Owner component.
        background: f64,
        /// Nominal speed, Mops/s.
        speed_mops: f64,
    },
}

const T_RUN: u8 = 0;
const T_SUSPEND: u8 = 1;
const T_RESUME: u8 = 2;
const T_RECALL: u8 = 3;
const T_RECALLED: u8 = 4;
const T_DONE: u8 = 5;
const T_LOAD: u8 = 6;

impl Codec for BaselineMsg {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            BaselineMsg::Run { job, mops } => {
                enc.put_u8(T_RUN);
                job.encode(enc);
                enc.put_f64(*mops);
            }
            BaselineMsg::Suspend { job } => {
                enc.put_u8(T_SUSPEND);
                job.encode(enc);
            }
            BaselineMsg::Resume { job } => {
                enc.put_u8(T_RESUME);
                job.encode(enc);
            }
            BaselineMsg::Recall { job, keep_progress } => {
                enc.put_u8(T_RECALL);
                job.encode(enc);
                enc.put_bool(*keep_progress);
            }
            BaselineMsg::Recalled {
                job,
                remaining_mops,
            } => {
                enc.put_u8(T_RECALLED);
                job.encode(enc);
                enc.put_f64(*remaining_mops);
            }
            BaselineMsg::Done { job, node } => {
                enc.put_u8(T_DONE);
                job.encode(enc);
                node.encode(enc);
            }
            BaselineMsg::LoadReport {
                node,
                load,
                background,
                speed_mops,
            } => {
                enc.put_u8(T_LOAD);
                node.encode(enc);
                enc.put_f64(*load);
                enc.put_f64(*background);
                enc.put_f64(*speed_mops);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(match dec.get_u8()? {
            T_RUN => BaselineMsg::Run {
                job: JobId::decode(dec)?,
                mops: dec.get_f64()?,
            },
            T_SUSPEND => BaselineMsg::Suspend {
                job: JobId::decode(dec)?,
            },
            T_RESUME => BaselineMsg::Resume {
                job: JobId::decode(dec)?,
            },
            T_RECALL => BaselineMsg::Recall {
                job: JobId::decode(dec)?,
                keep_progress: dec.get_bool()?,
            },
            T_RECALLED => BaselineMsg::Recalled {
                job: JobId::decode(dec)?,
                remaining_mops: dec.get_f64()?,
            },
            T_DONE => BaselineMsg::Done {
                job: JobId::decode(dec)?,
                node: NodeId::decode(dec)?,
            },
            T_LOAD => BaselineMsg::LoadReport {
                node: NodeId::decode(dec)?,
                load: dec.get_f64()?,
                background: dec.get_f64()?,
                speed_mops: dec.get_f64()?,
            },
            other => {
                return Err(CodecError::InvalidDiscriminant {
                    value: u64::from(other),
                    type_name: "BaselineMsg",
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_round_trip() {
        let msgs = vec![
            BaselineMsg::Run {
                job: JobId(1),
                mops: 5.5,
            },
            BaselineMsg::Suspend { job: JobId(2) },
            BaselineMsg::Resume { job: JobId(2) },
            BaselineMsg::Recall {
                job: JobId(3),
                keep_progress: true,
            },
            BaselineMsg::Recalled {
                job: JobId(3),
                remaining_mops: 2.25,
            },
            BaselineMsg::Done {
                job: JobId(4),
                node: NodeId(7),
            },
            BaselineMsg::LoadReport {
                node: NodeId(1),
                load: 1.5,
                background: 0.5,
                speed_mops: 100.0,
            },
        ];
        for m in msgs {
            let bytes = vce_codec::to_bytes(&m);
            assert_eq!(vce_codec::from_bytes::<BaselineMsg>(&bytes).unwrap(), m);
        }
    }
}
