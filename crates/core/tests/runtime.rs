//! Runtime behaviour tests: the full daemon/leader/executor stack on the
//! deterministic simulator.

use vce::prelude::*;
use vce_exm::migrate::MigrationTechnique;
use vce_exm::AppEvent;

fn ws(n: u32, speed: f64) -> MachineInfo {
    MachineInfo::workstation(NodeId(n), speed)
}

/// A one-task application.
fn single_task_app(db: &MachineDb, spec: TaskSpec) -> Application {
    let mut g = TaskGraph::new("single");
    g.add_task(spec);
    Application::from_graph(g, db).unwrap()
}

fn simple_task(name: &str, mops: f64) -> TaskSpec {
    TaskSpec::new(name)
        .with_class(ProblemClass::Asynchronous)
        .with_language(Language::C)
        .with_work(mops)
}

#[test]
fn weather_app_places_tasks_by_class() {
    let db = campus_fleet(6);
    let mut b = VceBuilder::new(7);
    for m in db.machines() {
        b.machine(m.clone());
    }
    let mut vce = b.build();
    vce.settle();
    let app = weather_app(vce.db(), &WeatherCosts::default()).unwrap();
    let graph = app.graph.clone();
    let handle = vce.submit(app, NodeId(0));
    let report = vce.run_until_done(&handle, 600_000_000);
    assert!(report.completed, "failed: {:?}", report.failed);

    let predictor = graph.find("/apps/snow/predictor.vce").unwrap();
    let display = graph.find("/apps/snow/display.vce").unwrap();
    let placements = report.placements.clone();
    // Predictor ran on the SIMD machine (node 6 in campus_fleet(6)).
    let p_node = placements
        .iter()
        .find(|(k, _)| k.task == predictor.0)
        .map(|(_, &n)| n)
        .expect("predictor placed");
    assert_eq!(p_node, NodeId(6), "predictor belongs on the SIMD machine");
    // Display ran locally on the submitting workstation.
    let d_node = placements
        .iter()
        .find(|(k, _)| k.task == display.0)
        .map(|(_, &n)| n)
        .expect("display placed");
    assert_eq!(d_node, NodeId(0));
    // Both collector instances ran on workstations.
    let collector = graph.find("/apps/snow/collector.vce").unwrap();
    let c_nodes: Vec<NodeId> = placements
        .iter()
        .filter(|(k, _)| k.task == collector.0)
        .map(|(_, &n)| n)
        .collect();
    assert_eq!(c_nodes.len(), 2);
    for n in c_nodes {
        assert!(n.0 < 6, "collector on a workstation, got {n}");
    }
}

#[test]
fn runs_are_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut b = VceBuilder::new(seed);
        for m in campus_fleet(5).machines() {
            b.machine(m.clone());
        }
        let mut vce = b.build();
        vce.settle();
        let app = weather_app(vce.db(), &WeatherCosts::default()).unwrap();
        let handle = vce.submit(app, NodeId(0));
        let report = vce.run_until_done(&handle, 600_000_000);
        (report.makespan_us, vce.sim().events_processed())
    };
    assert_eq!(run(3), run(3));
    assert_eq!(run(4), run(4));
}

#[test]
fn utilization_first_reserves_the_restricted_machine() {
    // Fleet: one big-memory fast machine (the paper's "machine A") and one
    // small slow one. Two parallel tasks: one needs the big machine, one
    // runs anywhere.
    let build = |policy: PlacementPolicy| {
        let mut b = VceBuilder::new(11);
        b.machine(ws(0, 100.0)); // user workstation (executor host)
        b.machine(ws(1, 50.0).with_mem_mb(64)); // small
        b.machine(ws(2, 200.0).with_mem_mb(512)); // machine A
        let mut cfg = ExmConfig::default();
        cfg.policy = policy;
        cfg.migration_enabled = false;
        b.exm_config(cfg);
        b.build()
    };
    // The flexible task dispatches FIRST (lower task id): the greedy
    // policy grabs machine A with it; utilization-first sees the pending
    // restricted request and yields A.
    let app_for = |db: &MachineDb| {
        let mut g = TaskGraph::new("two");
        g.add_task(simple_task("flexible", 2_000.0).with_mem(16));
        g.add_task(simple_task("restricted", 4_000.0).with_mem(256));
        Application::from_graph(g, db).unwrap()
    };

    let mut util = build(PlacementPolicy::UtilizationFirst);
    util.settle();
    let app = app_for(util.db());
    let h = util.submit(app, NodeId(0));
    let r_util = util.run_until_done(&h, 600_000_000);
    assert!(r_util.completed, "{:?}", r_util.failed);
    let restricted_node = r_util
        .placements
        .iter()
        .find(|(k, _)| k.task == 1)
        .map(|(_, &n)| n)
        .unwrap();
    let flexible_node = r_util
        .placements
        .iter()
        .find(|(k, _)| k.task == 0)
        .map(|(_, &n)| n)
        .unwrap();
    assert_eq!(restricted_node, NodeId(2), "restricted task gets machine A");
    assert_ne!(flexible_node, NodeId(2), "flexible task avoids machine A");

    // Best-platform greedily sends the flexible task wherever is fastest;
    // makespan is at best equal, typically worse, never better.
    let mut best = build(PlacementPolicy::BestPlatform);
    best.settle();
    let app = app_for(best.db());
    let h2 = best.submit(app, NodeId(0));
    let r_best = best.run_until_done(&h2, 600_000_000);
    assert!(r_best.completed);
    assert!(
        r_util.makespan_us.unwrap() <= r_best.makespan_us.unwrap(),
        "utilization-first {}µs vs best-platform {}µs",
        r_util.makespan_us.unwrap(),
        r_best.makespan_us.unwrap()
    );
}

#[test]
fn leader_failover_does_not_lose_the_application() {
    let mut b = VceBuilder::new(21);
    for i in 0..5 {
        b.machine(ws(i, 100.0));
    }
    let mut vce = b.build();
    vce.settle();
    let leader = vce.leader_of(MachineClass::Workstation).expect("leader");
    // Submit from a machine that will survive the leader's death.
    let survivor = NodeId(if leader == NodeId(4) { 3 } else { 4 });
    let app2 = single_task_app(vce.db(), simple_task("longjob2", 20_000.0));
    let handle2 = vce.submit(app2, survivor);
    // Let the first allocations happen, then kill the leader.
    vce.sim_mut().run_for(2_000_000);
    vce.kill_node(leader);
    let report = vce.run_until_done(&handle2, 600_000_000);
    assert!(
        report.completed,
        "app survives leader death: {:?}",
        report.failed
    );
    // A new leader took over.
    let new_leader = vce.leader_of(MachineClass::Workstation).expect("successor");
    assert_ne!(new_leader, leader);
}

#[test]
fn checkpoint_migration_moves_work_off_a_reclaimed_machine() {
    let mut b = VceBuilder::new(31);
    b.machine(ws(0, 100.0)); // user workstation
    b.machine(ws(1, 100.0)); // initial host
    b.machine(ws(2, 100.0)); // idle target
    let mut cfg = ExmConfig::default();
    cfg.policy = PlacementPolicy::BestPlatform;
    b.exm_config(cfg);
    let mut vce = b.build();
    vce.settle();
    // A long checkpointing task.
    let spec = simple_task("sim", 30_000.0) // 300 s at 100 Mops
        .with_migration(MigrationTraits {
            checkpoints: true,
            checkpoint_interval_s: 5,
            restartable: true,
            core_dumpable: true,
        });
    let app = single_task_app(vce.db(), spec);
    let handle = vce.submit(app, NodeId(0));
    vce.sim_mut().run_for(10_000_000);
    // Find where it landed and let the owner come back there.
    let host = vce
        .placements(&handle)
        .values()
        .next()
        .copied()
        .expect("placed");
    vce.set_background(host, 2.0);
    let report = vce.run_until_done(&handle, 1_200_000_000);
    assert!(report.completed, "{:?}", report.failed);
    assert!(
        !report.migrations.is_empty(),
        "expected at least one migration"
    );
    let mig = &report.migrations[0];
    assert_eq!(mig.technique, MigrationTechnique::Checkpoint);
    assert_eq!(mig.from, host);
    // The executor learned about the move.
    assert!(report
        .timeline
        .events()
        .iter()
        .any(|(_, e)| matches!(e, AppEvent::InstanceMoved { .. })));
    // And the task finished somewhere else.
    let final_node = report.placements.values().next().copied().unwrap();
    assert_ne!(final_node, host);
}

#[test]
fn redundant_execution_survives_owner_reclaim_without_rerequest() {
    let mut b = VceBuilder::new(41);
    b.machine(ws(0, 100.0));
    for i in 1..4 {
        b.machine(ws(i, 100.0));
    }
    let mut cfg = ExmConfig::default();
    cfg.redundancy = 2;
    cfg.migration_enabled = false;
    b.exm_config(cfg);
    let mut vce = b.build();
    vce.settle();
    let app = single_task_app(vce.db(), simple_task("redundant", 10_000.0));
    let handle = vce.submit(app, NodeId(0));
    vce.sim_mut().run_for(8_000_000);
    // Owner reclaims the primary's machine.
    let primary = vce
        .placements(&handle)
        .values()
        .next()
        .copied()
        .expect("placed");
    vce.set_background(primary, 2.0);
    let report = vce.run_until_done(&handle, 600_000_000);
    assert!(report.completed, "{:?}", report.failed);
    assert!(report.evictions >= 1, "redundant incarnation evicted");
    // No re-request was needed: only the original allocation happened.
    assert_eq!(report.allocations(), 1);
}

#[test]
fn eviction_without_redundancy_triggers_rerequest() {
    let mut b = VceBuilder::new(43);
    b.machine(ws(0, 100.0));
    b.machine(ws(1, 100.0));
    b.machine(ws(2, 100.0));
    let mut cfg = ExmConfig::default();
    cfg.redundancy = 1;
    cfg.migration_enabled = false; // force the eviction path off
    b.exm_config(cfg);
    let mut vce = b.build();
    vce.settle();
    // Not redundant, not migratable by the leader (migration off) — kill
    // the host machine outright instead: daemon death means no TaskDone;
    // this tests the crash path is at least survivable via horizon.
    let app = single_task_app(vce.db(), simple_task("fragile", 5_000.0));
    let handle = vce.submit(app, NodeId(0));
    let report = vce.run_until_done(&handle, 600_000_000);
    assert!(report.completed, "{:?}", report.failed);
}

#[test]
fn queueing_with_aging_eventually_runs_everything() {
    // Two usable machines, six parallel tasks: four must queue.
    let mut b = VceBuilder::new(53);
    b.machine(ws(0, 100.0));
    b.machine(ws(1, 100.0));
    b.machine(ws(2, 100.0));
    let mut vce = b.build();
    vce.settle();
    let mut g = TaskGraph::new("many");
    for i in 0..6 {
        g.add_task(simple_task(&format!("job{i}"), 3_000.0));
    }
    let app = Application::from_graph(g, vce.db()).unwrap();
    let handle = vce.submit(app, NodeId(0));
    let report = vce.run_until_done(&handle, 1_200_000_000);
    assert!(report.completed, "{:?}", report.failed);
    assert_eq!(
        report
            .timeline
            .count(|e| matches!(e, AppEvent::TaskComplete { .. })),
        6
    );
}

#[test]
fn divisible_work_uses_all_idle_machines() {
    // Free parallelism (§4.5): a divisible job asks for up to 8 instances;
    // the group hands over every idle machine.
    let mut b = VceBuilder::new(61);
    for i in 0..9 {
        b.machine(ws(i, 100.0));
    }
    let mut vce = b.build();
    vce.settle();
    let app = single_task_app(
        vce.db(),
        simple_task("sweep", 80_000.0).with_instances(8).divisible(),
    );
    let handle = vce.submit(app, NodeId(0));
    let report = vce.run_until_done(&handle, 1_200_000_000);
    assert!(report.completed, "{:?}", report.failed);
    assert!(
        report.machines_used() >= 6,
        "expected wide spread, used {}",
        report.machines_used()
    );
}

#[test]
fn terminate_reaches_daemons() {
    let mut b = VceBuilder::new(71);
    b.machine(ws(0, 100.0));
    b.machine(ws(1, 100.0));
    let mut vce = b.build();
    vce.settle();
    let app = single_task_app(vce.db(), simple_task("t", 1_000.0));
    let handle = vce.submit(app, NodeId(0));
    let report = vce.run_until_done(&handle, 600_000_000);
    assert!(report.completed);
    // After completion no daemon holds residents.
    for n in [NodeId(0), NodeId(1)] {
        let resident = vce.with_daemon(n, |d| d.resident().len()).unwrap();
        assert_eq!(resident, 0, "daemon {n} still hosts tasks");
    }
}

#[test]
fn anticipatory_compilation_cuts_dispatch_latency() {
    let run = |anticipate: bool| {
        let mut b = VceBuilder::new(81);
        b.machine(ws(0, 100.0));
        b.machine(ws(1, 100.0));
        b.machine(ws(2, 100.0));
        let mut cfg = ExmConfig::default();
        cfg.migration_enabled = false;
        b.exm_config(cfg);
        let mut vce = b.build();
        vce.settle();
        // Two stages; the second has an input file and an uncompiled
        // binary unless anticipation pre-stages them.
        let mut g = TaskGraph::new("two-stage");
        let first = g.add_task(simple_task("first", 8_000.0));
        let second = g.add_task(simple_task("second", 2_000.0).with_input_file("/data/grid.dat"));
        g.depends(second, first, 1);
        let app = Application::from_graph(g, vce.db()).unwrap();
        let handle = vce.submit_with(
            app,
            NodeId(0),
            SubmitOptions {
                stage_binaries: false, // daemons must compile at dispatch
                anticipate,
            },
        );
        let report = vce.run_until_done(&handle, 1_200_000_000);
        assert!(report.completed, "{:?}", report.failed);
        report.makespan_us.unwrap()
    };
    let cold = run(false);
    let warm = run(true);
    assert!(
        warm < cold,
        "anticipation must cut the makespan: warm {warm} vs cold {cold}"
    );
}

#[test]
fn dominance_hint_dispatches_the_long_job_first() {
    // One usable machine besides the user's; two independent tasks. The
    // short one has a lower id but the long one carries the §3.1.1
    // dominance hint, so it must claim the machine first.
    let mut b = VceBuilder::new(97);
    // The user's workstation does not host remote work, so exactly one
    // machine is contended.
    b.machine(ws(0, 100.0).with_allows_remote(false));
    b.machine(ws(1, 100.0)); // the one worker
    let mut cfg = ExmConfig::default();
    cfg.migration_enabled = false;
    cfg.overload_threshold = 1.0;
    b.exm_config(cfg);
    let mut vce = b.build();
    vce.settle();
    let mut g = TaskGraph::new("hinted");
    let short = g.add_task(simple_task("short", 1_000.0));
    let long = g.add_task(
        simple_task("long", 10_000.0).with_hints(vce_taskgraph::TaskHints {
            expected_dominance: 5,
            priority_boost: 0,
        }),
    );
    let app = Application::from_graph(g, vce.db()).unwrap();
    let handle = vce.submit(app, NodeId(0));
    let report = vce.run_until_done(&handle, 600_000_000);
    assert!(report.completed, "{:?}", report.failed);
    let loaded_long = report
        .timeline
        .first_time(|e| matches!(e, AppEvent::Loaded { key, .. } if key.task == long.0))
        .unwrap();
    let loaded_short = report
        .timeline
        .first_time(|e| matches!(e, AppEvent::Loaded { key, .. } if key.task == short.0))
        .unwrap();
    assert!(
        loaded_long < loaded_short,
        "hinted long job must start first: long {loaded_long} vs short {loaded_short}"
    );
}

#[test]
fn alloc_error_matches_the_1994_prototype_semantics() {
    // §5: "If there are insufficient resources within a group a message to
    // that effect is returned" — with queueing disabled (the prototype's
    // behaviour), an oversized request fails the application immediately.
    let mut b = VceBuilder::new(99);
    b.machine(ws(0, 100.0));
    b.machine(ws(1, 100.0));
    let mut cfg = ExmConfig::default();
    cfg.queue_insufficient = false; // 1994 prototype semantics
    cfg.migration_enabled = false;
    b.exm_config(cfg);
    let mut vce = b.build();
    vce.settle();
    // Five instances demanded, at most two machines exist.
    let app = single_task_app(vce.db(), simple_task("greedy", 1_000.0).with_instances(5));
    let handle = vce.submit(app, NodeId(0));
    let report = vce.run_until_done(&handle, 120_000_000);
    assert!(!report.completed);
    assert!(
        report
            .failed
            .as_deref()
            .is_some_and(|r| r.contains("insufficient")),
        "expected the §5 failure indication, got {:?}",
        report.failed
    );
    assert_eq!(
        report
            .timeline
            .count(|e| matches!(e, AppEvent::AllocFailed { .. })),
        1
    );
}

#[test]
fn queued_requests_do_not_spuriously_exhaust_retries() {
    // The group is alive but can never serve (its only willing machine is
    // partitioned with the executor and refuses remote work): the leader
    // keeps acking RequestQueued, so the executor waits in the queue
    // instead of declaring the group dead.
    let mut b = VceBuilder::new(114);
    b.machine(ws(0, 100.0).with_allows_remote(false));
    b.machine(ws(1, 100.0));
    b.machine(ws(2, 100.0));
    let mut cfg = ExmConfig::default();
    cfg.request_retry_us = 500_000; // many retry windows within the horizon
    b.exm_config(cfg);
    let mut vce = b.build();
    vce.settle();
    // Executor + node 0's daemon in their own island; after failover node 0
    // coordinates a singleton group that can only queue.
    vce.sim_mut().with_fault_plan(|p| {
        p.set_partition(NodeId(0), 7);
    });
    // Let node 0 detect the partition and become its own coordinator.
    vce.sim_mut().run_for(5_000_000);
    let app = single_task_app(vce.db(), simple_task("stranded", 1_000.0));
    let handle = vce.submit(app, NodeId(0));
    let report = vce.run_until_done(&handle, 60_000_000);
    assert!(!report.completed, "nothing can serve the request");
    assert!(
        report.failed.is_none(),
        "queue acks must prevent spurious exhaustion, got {:?}",
        report.failed
    );
}
