//! Convenience re-exports for VCE users.

pub use crate::app::{Application, PipelineError};
pub use crate::cluster::{AppHandle, SubmitOptions, Vce, VceBuilder};
pub use crate::report::RunReport;
pub use crate::weather::{campus_fleet, weather_app, weather_graph, WeatherCosts};

pub use vce_exm::{AppId, ExmConfig, InstanceKey, PlacementPolicy};
pub use vce_net::{MachineClass, MachineInfo, NodeId};
pub use vce_sdm::MachineDb;
pub use vce_sim::LoadTrace;
pub use vce_taskgraph::{
    ArcKind, Language, MigrationTraits, ProblemClass, TaskGraph, TaskId, TaskSpec,
};
