//! The Fig. 1 development pipeline: specification → design → coding →
//! compilation.

use std::fmt;

use vce_script::{evaluate, parse, EvalEnv, ScriptError};
use vce_sdm::coding::CommPlan;
use vce_sdm::{graph_from_script, run_design_stage, CompilationManager, CompileReport, MachineDb};
use vce_taskgraph::{validate, TaskGraph, ValidationError};

/// Why the pipeline rejected an application.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The description script failed to parse.
    Script(ScriptError),
    /// The task graph is structurally invalid.
    Graph(ValidationError),
    /// Some tasks cannot run anywhere in this fleet.
    Unhostable(Vec<u32>),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Script(e) => write!(f, "{e}"),
            PipelineError::Graph(e) => write!(f, "{e}"),
            PipelineError::Unhostable(tasks) => {
                write!(f, "fleet cannot host tasks {tasks:?}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<ScriptError> for PipelineError {
    fn from(e: ScriptError) -> Self {
        PipelineError::Script(e)
    }
}
impl From<ValidationError> for PipelineError {
    fn from(e: ValidationError) -> Self {
        PipelineError::Graph(e)
    }
}

/// A fully prepared application: annotated graph, communication plan, and
/// binaries for every feasible (unit, class) pair.
#[derive(Debug, Clone)]
pub struct Application {
    /// The coding-complete task graph.
    pub graph: TaskGraph,
    /// Channels/transfers the runtime provisions.
    pub comm_plan: CommPlan,
    /// What the compilation manager produced per task.
    pub compile_reports: Vec<CompileReport>,
}

impl Application {
    /// Run the full SDM pipeline on a problem-specification graph.
    pub fn from_graph(mut graph: TaskGraph, db: &MachineDb) -> Result<Self, PipelineError> {
        // Design stage (fills missing problem classes).
        run_design_stage(&mut graph);
        // Coding level (languages, work fallbacks, comm plan).
        let comm_plan = vce_sdm::coding::run_coding_level(&mut graph, 1_000.0);
        validate(&graph)?;
        // Compilation manager: binaries for all feasible classes (§4.1).
        let mut mgr = CompilationManager::new();
        let (compile_reports, unhostable) = mgr.prepare_all(&graph, db);
        if !unhostable.is_empty() {
            return Err(PipelineError::Unhostable(
                unhostable.into_iter().map(|t| t.0).collect(),
            ));
        }
        Ok(Self {
            graph,
            comm_plan,
            compile_reports,
        })
    }

    /// Parse and evaluate a §5 application-description script, then run
    /// the pipeline. The evaluation environment is derived from the fleet
    /// (all machines idle — conditionals that test IDLE see the database
    /// counts; a live snapshot can be passed via [`Self::from_script_env`]).
    pub fn from_script(name: &str, src: &str, db: &MachineDb) -> Result<Self, PipelineError> {
        let mut env = EvalEnv::new();
        for class in vce_net::MachineClass::ALL {
            let n = db.count(class) as u64;
            env = env.with_class(class, n, n);
        }
        Self::from_script_env(name, src, db, &env)
    }

    /// Script pipeline with an explicit evaluation environment.
    pub fn from_script_env(
        name: &str,
        src: &str,
        db: &MachineDb,
        env: &EvalEnv,
    ) -> Result<Self, PipelineError> {
        let script = parse(src)?;
        let eval = evaluate(&script, env);
        let graph = graph_from_script(name, &eval);
        Self::from_graph(graph, db)
    }

    /// Total work in the application, Mops.
    pub fn total_mops(&self) -> f64 {
        vce_taskgraph::algo::total_work(&self.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vce_net::{MachineClass, MachineInfo, NodeId};
    use vce_taskgraph::TaskSpec;

    fn db() -> MachineDb {
        MachineDb::new()
            .with(MachineInfo::workstation(NodeId(0), 100.0))
            .with(MachineInfo::workstation(NodeId(1), 100.0))
            .with(
                MachineInfo::workstation(NodeId(2), 2000.0)
                    .with_class(MachineClass::Simd)
                    .with_mem_mb(512),
            )
            .with(
                MachineInfo::workstation(NodeId(3), 800.0)
                    .with_class(MachineClass::Mimd)
                    .with_mem_mb(256),
            )
    }

    #[test]
    fn weather_script_pipeline_end_to_end() {
        let app = Application::from_script("weather", vce_script::WEATHER_SCRIPT, &db()).unwrap();
        assert_eq!(app.graph.len(), 4);
        assert!(validate(&app.graph).is_ok());
        assert!(!app.compile_reports.is_empty());
        assert!(app.total_mops() > 0.0);
    }

    #[test]
    fn bare_graph_is_fully_annotated_by_the_pipeline() {
        let mut g = TaskGraph::new("bare");
        let a = g.add_task(TaskSpec::new("a"));
        let b = g.add_task(TaskSpec::new("b").with_instances(8));
        g.depends(b, a, 16);
        let app = Application::from_graph(g, &db()).unwrap();
        assert!(app.graph.tasks().iter().all(|t| t.coding_complete()));
        assert_eq!(app.comm_plan.transfers().count(), 1);
    }

    #[test]
    fn bad_script_reports_parse_error() {
        let e = Application::from_script("bad", "FROB 1 \"x\"\n", &db()).unwrap_err();
        assert!(matches!(e, PipelineError::Script(_)));
        assert!(e.to_string().contains("script error"));
    }

    #[test]
    fn empty_graph_rejected() {
        let e = Application::from_graph(TaskGraph::new("empty"), &db()).unwrap_err();
        assert!(matches!(e, PipelineError::Graph(_)));
    }

    #[test]
    fn unhostable_task_reported() {
        // Synchronous+HPF needs SIMD/Vector/MIMD; a workstation-only fleet
        // cannot host it.
        let small = MachineDb::new().with(MachineInfo::workstation(NodeId(0), 100.0));
        let mut g = TaskGraph::new("g");
        g.add_task(
            TaskSpec::new("lockstep")
                .with_class(vce_taskgraph::ProblemClass::Synchronous)
                .with_language(vce_taskgraph::Language::HpFortran)
                .with_work(10.0),
        );
        let e = Application::from_graph(g, &small).unwrap_err();
        assert_eq!(e, PipelineError::Unhostable(vec![0]));
    }
}
