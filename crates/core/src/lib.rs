#![warn(missing_docs)]
//! # vce — The Virtual Computing Environment
//!
//! A production-quality Rust reproduction of *The Virtual Computing
//! Environment* (Rousselle, Tymann, Hariri, Fox — Syracuse NPAC, HPDC
//! 1994): an early metacomputing system that assembles a *virtual
//! computer* from a heterogeneous network of machines, develops
//! applications as annotated task graphs, and schedules them with a
//! group-based bidding protocol built on Isis-style process groups.
//!
//! This crate is the facade tying the subsystem crates together:
//!
//! * [`Application`] — the Fig. 1 pipeline: problem specification (task
//!   graph or §5 application-description script) → design stage → coding
//!   level → compilation manager;
//! * [`VceBuilder`]/[`Vce`] — a virtual machine room: a simulated
//!   heterogeneous fleet running real VCE daemons (group membership,
//!   bidding, migration, fault tolerance) and executors, deterministic
//!   per seed;
//! * [`weather`] — the paper's worked example application.
//!
//! ```
//! use vce::prelude::*;
//!
//! // Five workstations and a SIMD machine.
//! let mut b = VceBuilder::new(42);
//! for i in 0..5 {
//!     b.machine(MachineInfo::workstation(NodeId(i), 100.0));
//! }
//! b.machine(
//!     MachineInfo::workstation(NodeId(5), 2000.0)
//!         .with_class(MachineClass::Simd)
//!         .with_mem_mb(512),
//! );
//! let mut vce = b.build();
//! vce.settle();
//!
//! // The paper's weather-forecasting script, end to end.
//! let app = Application::from_script("weather", vce_script::WEATHER_SCRIPT, vce.db()).unwrap();
//! let handle = vce.submit(app, NodeId(0));
//! let report = vce.run_until_done(&handle, 600_000_000);
//! assert!(report.completed, "weather app must finish");
//! ```

pub mod app;
pub mod cluster;
pub mod prelude;
pub mod report;
pub mod weather;

pub use app::{Application, PipelineError};
pub use cluster::{AppHandle, Vce, VceBuilder};
pub use report::RunReport;
