//! The virtual machine room: a simulated heterogeneous fleet running real
//! VCE daemons, plus application submission and reporting.
//!
//! Builds the §5 deployment: one scheduling/dispatching daemon per
//! machine, daemons grouped by machine class into Isis process groups
//! whose coordinators are the group leaders of Fig. 3. Executors are added
//! per submitted application. The whole thing is deterministic per seed.

use std::collections::BTreeMap;

use vce_exm::{AppId, DaemonEndpoint, ExecutorEndpoint, ExmConfig, InstanceKey};
use vce_net::{Addr, MachineClass, MachineInfo, NodeId};
use vce_sdm::MachineDb;
use vce_sim::{LoadTrace, Sim, SimConfig, Topology};

use crate::app::Application;
use crate::report::RunReport;

/// Time the group-formation phase is given before applications submit
/// (bootstrap quiet period + a couple of heartbeats).
pub const SETTLE_US: u64 = 2_500_000;

/// Fleet builder.
pub struct VceBuilder {
    seed: u64,
    db: MachineDb,
    loads: Vec<(NodeId, LoadTrace)>,
    cfg: ExmConfig,
    topology: Topology,
    trace_enabled: bool,
    shards: usize,
}

impl VceBuilder {
    /// Start building a fleet; `seed` makes the whole run deterministic.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            db: MachineDb::new(),
            loads: Vec::new(),
            cfg: ExmConfig::default(),
            topology: Topology::default(),
            trace_enabled: true,
            shards: SimConfig::shards_from_env(),
        }
    }

    /// Add an always-idle machine.
    pub fn machine(&mut self, info: MachineInfo) -> &mut Self {
        self.db.register(info);
        self
    }

    /// Add a machine whose owner's activity follows `load`.
    pub fn machine_with_load(&mut self, info: MachineInfo, load: LoadTrace) -> &mut Self {
        let node = info.node;
        self.db.register(info);
        self.loads.push((node, load));
        self
    }

    /// Override the runtime configuration.
    pub fn exm_config(&mut self, cfg: ExmConfig) -> &mut Self {
        self.cfg = cfg;
        self
    }

    /// Override the network topology.
    pub fn topology(&mut self, topology: Topology) -> &mut Self {
        self.topology = topology;
        self
    }

    /// Disable tracing (hot benchmark loops).
    pub fn trace_enabled(&mut self, on: bool) -> &mut Self {
        self.trace_enabled = on;
        self
    }

    /// Partition the fleet across `n` simulator shards (defaults to the
    /// `VCE_SHARDS` environment variable; output is identical for any `n`).
    pub fn shards(&mut self, n: usize) -> &mut Self {
        self.shards = n.clamp(1, 64);
        self
    }

    /// Construct the fleet: nodes, load traces and daemons.
    pub fn build(self) -> Vce {
        let mut sim = Sim::new(SimConfig {
            seed: self.seed,
            topology: self.topology,
            trace_enabled: self.trace_enabled,
            shards: self.shards,
        });
        let mut loads: BTreeMap<NodeId, LoadTrace> = self.loads.into_iter().collect();
        // Group candidates per class (sorted by the GroupConfig).
        let peers_of = |class: MachineClass, db: &MachineDb| -> Vec<Addr> {
            db.by_class(class).map(|m| Addr::daemon(m.node)).collect()
        };
        for m in self.db.machines() {
            let load = loads.remove(&m.node).unwrap_or_else(LoadTrace::idle);
            sim.add_node_with_load(m.clone(), load);
        }
        for m in self.db.machines() {
            let daemon = DaemonEndpoint::new(
                m.node,
                m.class,
                peers_of(m.class, &self.db),
                self.cfg.clone(),
            );
            sim.add_endpoint(Addr::daemon(m.node), Box::new(daemon));
        }
        Vce {
            sim,
            db: self.db,
            cfg: self.cfg,
            next_app: 1,
            apps: Vec::new(),
        }
    }
}

/// Handle to a submitted application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppHandle {
    /// Application id.
    pub app: AppId,
    /// The executor endpoint address.
    pub exec: Addr,
}

/// The running virtual computing environment.
pub struct Vce {
    sim: Sim,
    db: MachineDb,
    cfg: ExmConfig,
    next_app: u64,
    apps: Vec<AppHandle>,
}

impl Vce {
    /// Run the group-formation phase. Call once before submitting.
    pub fn settle(&mut self) {
        let t = self.sim.now_us() + SETTLE_US;
        self.sim.run_until(t);
    }

    /// The machine database.
    pub fn db(&self) -> &MachineDb {
        &self.db
    }

    /// The runtime configuration in force.
    pub fn cfg(&self) -> &ExmConfig {
        &self.cfg
    }

    /// The underlying simulator (metrics, trace, fault injection).
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Mutable simulator access.
    pub fn sim_mut(&mut self) -> &mut Sim {
        &mut self.sim
    }

    /// Submit an application from `user`'s workstation, with binaries
    /// pre-staged on every feasible machine (§4.1's prepare-before-run).
    pub fn submit(&mut self, app: Application, user: NodeId) -> AppHandle {
        self.submit_with(app, user, SubmitOptions::default())
    }

    /// Submit with explicit options.
    pub fn submit_with(
        &mut self,
        app: Application,
        user: NodeId,
        opts: SubmitOptions,
    ) -> AppHandle {
        let id = AppId(self.next_app);
        self.next_app += 1;
        if opts.stage_binaries {
            self.stage_binaries(&app);
        }
        // Each application gets its own executor port, so one workstation
        // can submit many applications concurrently.
        let exec = Addr::new(
            user,
            vce_net::PortId(vce_net::PortId::EXECUTOR.0 + (id.0 - 1) as u32),
        );
        let endpoint = ExecutorEndpoint::new(
            id,
            exec,
            app.graph.clone(),
            self.db.clone(),
            self.cfg.clone(),
        )
        .with_anticipation(opts.anticipate);
        self.sim.add_endpoint(exec, Box::new(endpoint));
        let handle = AppHandle { app: id, exec };
        self.apps.push(handle);
        handle
    }

    /// Distribute an application's prepared binaries to every feasible
    /// daemon (models §4.1: executables prepared before the run).
    pub fn stage_binaries(&mut self, app: &Application) {
        for task in app.graph.tasks() {
            let nodes: Vec<NodeId> = self
                .db
                .feasible_machines(task)
                .iter()
                .map(|m| m.node)
                .collect();
            for node in nodes {
                let unit = task.name.clone();
                self.with_daemon(node, |d| d.stage_binary(unit.clone()));
            }
            // LOCAL tasks run inside the executor; no staging needed.
        }
    }

    /// Pre-stage an input file on specific machines.
    pub fn stage_file(&mut self, node: NodeId, file: &str) {
        let f = file.to_string();
        self.with_daemon(node, |d| d.stage_file(f.clone()));
    }

    /// Run until the application reports done (or `horizon_us` elapses)
    /// and return the report.
    pub fn run_until_done(&mut self, handle: &AppHandle, horizon_us: u64) -> RunReport {
        let deadline = self.sim.now_us() + horizon_us;
        loop {
            let done = self.with_executor(handle, |e| e.is_done()).unwrap_or(true);
            if done || self.sim.now_us() >= deadline {
                break;
            }
            let next = (self.sim.now_us() + 100_000).min(deadline);
            self.sim.run_until(next);
        }
        self.report(handle)
    }

    /// Build the report for an application in its current state.
    pub fn report(&mut self, handle: &AppHandle) -> RunReport {
        let (completed, failed, makespan_us, timeline, placements) = self
            .with_executor(handle, |e| {
                (
                    e.is_done() && e.failed.is_none(),
                    e.failed.clone(),
                    e.makespan_us(),
                    e.timeline.clone(),
                    e.placements.clone(),
                )
            })
            .unwrap_or((
                false,
                Some("executor missing".into()),
                None,
                Default::default(),
                BTreeMap::new(),
            ));
        let nodes = self.sim.all_metrics();
        let node_ids: Vec<NodeId> = self.db.machines().iter().map(|m| m.node).collect();
        let mut migrations = Vec::new();
        let mut evictions = 0;
        for n in node_ids {
            if let Some((m, e)) = self.with_daemon(n, |d| (d.migrations.clone(), d.evictions)) {
                migrations.extend(m);
                evictions += e;
            }
        }
        RunReport {
            completed,
            failed,
            makespan_us,
            timeline,
            placements,
            nodes,
            migrations,
            evictions,
        }
    }

    /// Inspect/mutate an executor endpoint.
    pub fn with_executor<T>(
        &mut self,
        handle: &AppHandle,
        f: impl FnOnce(&mut ExecutorEndpoint) -> T,
    ) -> Option<T> {
        self.sim
            .with_endpoint_mut::<ExecutorEndpoint, T>(handle.exec, f)
    }

    /// Inspect/mutate a daemon endpoint.
    pub fn with_daemon<T>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut DaemonEndpoint) -> T,
    ) -> Option<T> {
        self.sim
            .with_endpoint_mut::<DaemonEndpoint, T>(Addr::daemon(node), f)
    }

    /// The current group leader of a machine class, if any daemon claims
    /// the role.
    pub fn leader_of(&mut self, class: MachineClass) -> Option<NodeId> {
        let nodes: Vec<NodeId> = self.db.by_class(class).map(|m| m.node).collect();
        let alive: Vec<NodeId> = nodes
            .into_iter()
            .filter(|&n| !self.sim.is_node_dead(n))
            .collect();
        alive
            .into_iter()
            .find(|&n| self.with_daemon(n, |d| d.is_leader()).unwrap_or(false))
    }

    /// Crash a machine (daemon, tasks and all).
    pub fn kill_node(&mut self, node: NodeId) {
        self.sim.kill_node(node);
    }

    /// Revive a crashed machine; its daemon reboots and re-joins.
    pub fn revive_node(&mut self, node: NodeId) {
        self.sim.revive_node(node);
    }

    /// Set a machine's owner (background) load immediately.
    pub fn set_background(&mut self, node: NodeId, background: f64) {
        self.sim.set_background(node, background);
    }

    /// Final placements of an app keyed by instance.
    pub fn placements(&mut self, handle: &AppHandle) -> BTreeMap<InstanceKey, NodeId> {
        self.with_executor(handle, |e| e.placements.clone())
            .unwrap_or_default()
    }
}

/// Submission options.
#[derive(Debug, Clone, Copy)]
pub struct SubmitOptions {
    /// Pre-stage binaries on all feasible machines (§4.1). Disable to make
    /// daemons compile at dispatch time (the anticipatory-compilation
    /// experiment's "cold" arm).
    pub stage_binaries: bool,
    /// Enable §4.5 anticipatory processing in the executor.
    pub anticipate: bool,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        Self {
            stage_binaries: true,
            anticipate: false,
        }
    }
}
