//! Run reports: what an experiment learns from one application run.

use std::collections::BTreeMap;

use vce_exm::events::MigrationRecord;
use vce_exm::{AppEvent, InstanceKey, Timeline};
use vce_net::NodeId;
use vce_sim::metrics::FleetMetrics;
use vce_sim::NodeMetrics;

/// Everything measured about one application run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Did the application finish (all tasks complete)?
    pub completed: bool,
    /// Failure reason, if the executor gave up.
    pub failed: Option<String>,
    /// Submission → AppDone, µs.
    pub makespan_us: Option<u64>,
    /// The executor's event timeline.
    pub timeline: Timeline,
    /// Final instance placements.
    pub placements: BTreeMap<InstanceKey, NodeId>,
    /// Per-node metrics at report time.
    pub nodes: Vec<NodeMetrics>,
    /// Migrations performed (collected from every daemon).
    pub migrations: Vec<MigrationRecord>,
    /// Redundant-incarnation evictions (owner reclaimed machines).
    pub evictions: u64,
}

impl RunReport {
    /// Fleet-wide aggregates.
    pub fn fleet(&self) -> FleetMetrics {
        FleetMetrics::summarize(&self.nodes)
    }

    /// Makespan in seconds (NaN when unfinished).
    pub fn makespan_s(&self) -> f64 {
        self.makespan_us
            .map(|us| us as f64 / 1e6)
            .unwrap_or(f64::NAN)
    }

    /// Number of allocation round-trips the executor performed.
    pub fn allocations(&self) -> usize {
        self.timeline
            .count(|e| matches!(e, AppEvent::Allocated { .. }))
    }

    /// Distinct machines that hosted at least one instance.
    pub fn machines_used(&self) -> usize {
        let mut nodes: Vec<NodeId> = self.placements.values().copied().collect();
        nodes.sort();
        nodes.dedup();
        nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_defaults() {
        let r = RunReport {
            completed: false,
            failed: None,
            makespan_us: None,
            timeline: Timeline::default(),
            placements: BTreeMap::new(),
            nodes: vec![],
            migrations: vec![],
            evictions: 0,
        };
        assert!(r.makespan_s().is_nan());
        assert_eq!(r.allocations(), 0);
        assert_eq!(r.machines_used(), 0);
        assert_eq!(r.fleet(), FleetMetrics::default());
    }
}
