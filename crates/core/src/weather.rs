//! The paper's worked example: the §5 weather-forecasting application.
//!
//! Two asynchronous data collectors, a user-data collector on a
//! workstation, a synchronous predictor (the heavy lockstep computation)
//! and a local display. The script constant reproduces the paper's input
//! verbatim (see [`vce_script::WEATHER_SCRIPT`]); this module also builds
//! the same application as an explicitly annotated task graph with
//! realistic work estimates, for experiments that need cost control.

use vce_sdm::MachineDb;
use vce_taskgraph::{Language, MigrationTraits, ProblemClass, TaskGraph, TaskSpec};

use crate::app::{Application, PipelineError};

/// Work estimates, Mops.
pub struct WeatherCosts {
    /// Per collector instance.
    pub collector_mops: f64,
    /// User-data collector.
    pub usercollect_mops: f64,
    /// The predictor (dominant).
    pub predictor_mops: f64,
    /// The local display task.
    pub display_mops: f64,
}

impl Default for WeatherCosts {
    fn default() -> Self {
        Self {
            collector_mops: 2_000.0,
            usercollect_mops: 500.0,
            predictor_mops: 20_000.0,
            display_mops: 200.0,
        }
    }
}

/// Build the weather application as an annotated task graph.
pub fn weather_graph(costs: &WeatherCosts) -> TaskGraph {
    let mut g = TaskGraph::new("weather");
    let collector = g.add_task(
        TaskSpec::new("/apps/snow/collector.vce")
            .with_class(ProblemClass::Asynchronous)
            .with_language(Language::C)
            .with_work(costs.collector_mops)
            .with_instances(2)
            .with_migration(MigrationTraits {
                checkpoints: true,
                checkpoint_interval_s: 5,
                restartable: true,
                core_dumpable: true,
            }),
    );
    let usercollect = g.add_task(
        TaskSpec::new("/apps/snow/usercollect.vce")
            .with_class(ProblemClass::Asynchronous)
            .with_language(Language::C)
            .with_work(costs.usercollect_mops),
    );
    let predictor = g.add_task(
        TaskSpec::new("/apps/snow/predictor.vce")
            .with_class(ProblemClass::Synchronous)
            .with_language(Language::HpFortran)
            .with_work(costs.predictor_mops)
            .with_mem(128)
            .with_input_file("/data/terrain.grid"),
    );
    let display = g.add_task(
        TaskSpec::new("/apps/snow/display.vce")
            .with_class(ProblemClass::Asynchronous)
            .with_language(Language::C)
            .with_work(costs.display_mops)
            .local(),
    );
    // Collectors feed the predictor; everything feeds the display.
    g.depends(predictor, collector, 256);
    g.depends(predictor, usercollect, 64);
    g.depends(display, predictor, 128);
    g.depends(display, collector, 16);
    g.depends(display, usercollect, 16);
    g
}

/// The annotated weather application, through the full pipeline.
pub fn weather_app(db: &MachineDb, costs: &WeatherCosts) -> Result<Application, PipelineError> {
    Application::from_graph(weather_graph(costs), db)
}

/// A fleet resembling the campus the paper envisioned: `n_ws` workstations
/// of mixed speeds, one SIMD machine, one MIMD machine.
pub fn campus_fleet(n_ws: u32) -> MachineDb {
    use vce_net::{MachineClass, MachineInfo, NodeId};
    let mut db = MachineDb::new();
    for i in 0..n_ws {
        // Speeds alternate 50/80/120 Mops: a heterogeneous LAN.
        let speed = [50.0, 80.0, 120.0][(i % 3) as usize];
        db.register(MachineInfo::workstation(NodeId(i), speed));
    }
    db.register(
        MachineInfo::workstation(NodeId(n_ws), 4_000.0)
            .with_class(MachineClass::Simd)
            .with_mem_mb(1024),
    );
    db.register(
        MachineInfo::workstation(NodeId(n_ws + 1), 1_500.0)
            .with_class(MachineClass::Mimd)
            .with_mem_mb(512),
    );
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use vce_taskgraph::{algo, validate};

    #[test]
    fn weather_graph_is_valid_and_ordered() {
        let g = weather_graph(&WeatherCosts::default());
        assert!(validate(&g).is_ok());
        let order = algo::topo_sort(&g).unwrap();
        let display = g.find("/apps/snow/display.vce").unwrap();
        assert_eq!(*order.last().unwrap(), display);
        let (cp, path) = algo::critical_path(&g).unwrap();
        assert!(cp >= 20_000.0, "predictor dominates: {cp}");
        assert!(path.contains(&g.find("/apps/snow/predictor.vce").unwrap()));
    }

    #[test]
    fn weather_app_compiles_on_campus_fleet() {
        let db = campus_fleet(6);
        let app = weather_app(&db, &WeatherCosts::default()).unwrap();
        // Predictor must have a SIMD binary (its best platform).
        let predictor_report = app
            .compile_reports
            .iter()
            .find(|r| r.task == app.graph.find("/apps/snow/predictor.vce").unwrap())
            .unwrap();
        assert_eq!(predictor_report.targets[0], vce_net::MachineClass::Simd);
    }

    #[test]
    fn campus_fleet_shape() {
        let db = campus_fleet(9);
        assert_eq!(db.count(vce_net::MachineClass::Workstation), 9);
        assert_eq!(db.count(vce_net::MachineClass::Simd), 1);
        assert_eq!(db.count(vce_net::MachineClass::Mimd), 1);
    }
}
