//! Binary trace record/replay: the `.vct` (VCE trace) format.
//!
//! A recorded run is a durable, tamper-evident repro artifact: every event
//! pop `(at_us, cause, node, kind)` plus periodic snapshot frames carrying
//! per-node and whole-sim FNV-1a state hashes. Replaying the same scenario
//! against the current binary and diffing the two traces localises a
//! divergence to one event — first by bisecting the snapshot hash chain to
//! one snapshot interval, then by scanning that interval's event records
//! (see [`first_divergence`]).
//!
//! # File layout
//!
//! ```text
//! "VCT1"                                  4-byte magic
//! [u32 len][u32 crc][u8 tag][payload]     frame, repeated
//! ```
//!
//! Framing is `vce-storage`'s `[len][crc][payload]` (big-endian,
//! CRC-32/IEEE), with one addition: each frame's CRC covers the **previous
//! frame's CRC** followed by the frame body, forming a hash chain seeded by
//! `crc32(magic)`. Truncation, reordering, splicing or bit rot therefore
//! breaks the chain at the first bad frame, and the reader reports
//! *"truncated after frame N"* rather than replaying a silently-shortened
//! prefix as complete. A well-formed file ends with an [`FrameKind::End`]
//! frame; its absence is truncation too (the writer crashed mid-record).
//!
//! Frame kinds: `Header` (version, snapshot cadence, scenario string),
//! `Events` (a batch of event records, written at every engine sync point),
//! `Snapshot` (event index + whole-sim hash + sorted per-node hashes),
//! `End` (totals + final hash). Since format version 2, `Events` frames
//! varint delta-encode their records (`at_us` as a delta from the previous
//! record, `cause` as a zigzag delta, `node`/`a`/`b` as plain varints) —
//! a ~3× size cut on real recordings; the reader accepts version-1 files
//! unchanged. The engine writes frames at driver-call
//! boundaries, which are independent of the shard count — so a `.vct` file
//! is **byte-identical for `VCE_SHARDS` ∈ {1, 2, 4, 8}**, making the
//! sharded engine independently verifiable (`scripts/ci.sh` diffs the
//! files; `crates/sim/tests/record_replay.rs` asserts it in-process).

use std::fmt;
use std::io::{self, Write};
use std::path::Path;

use vce_codec::{Decoder, Encoder};
use vce_net::NodeId;
use vce_storage::{crc32, FRAME_HEADER, MAX_RECORD};

/// File magic: "VCT1".
pub const MAGIC: &[u8; 4] = b"VCT1";
/// Format version written in the header frame. Version 2 varint
/// delta-encodes `Events` frames (see [`TraceWriter::append_events`]);
/// the reader still accepts version-1 recordings, whose event records are
/// fixed-width.
pub const VERSION: u16 = 2;
/// The fixed-width event-record format this reader also accepts.
pub const VERSION_V1: u16 = 1;

// Event-kind tags inside an `Events` frame (one per engine event pop).
/// An endpoint `on_start` (node boot or revive).
pub const EV_START: u8 = 0;
/// An envelope delivery (batched deliveries record one each).
pub const EV_DELIVER: u8 = 1;
/// A timer firing.
pub const EV_TIMER: u8 = 2;
/// A CPU completion check.
pub const EV_CPU: u8 = 3;
/// A background-load change.
pub const EV_LOAD: u8 = 4;
/// A fault fence application (kill/revive/partition/heal/link).
pub const EV_FENCE: u8 = 5;

// Fence-op tags carried in an `EV_FENCE` record's `a` field.
/// `FaultOp::Kill`.
pub const FENCE_KILL: u64 = 0;
/// `FaultOp::Revive`.
pub const FENCE_REVIVE: u64 = 1;
/// `FaultOp::Partition` (`b` = group).
pub const FENCE_PARTITION: u64 = 2;
/// `FaultOp::Heal`.
pub const FENCE_HEAL: u64 = 3;
/// `FaultOp::DefaultLink` (`b` = FNV of the link-fault fields).
pub const FENCE_LINK: u64 = 4;
/// `FaultOp::Link` — directed per-link fault (`b` = `dst << 32 | FNV of the
/// link-fault fields (truncated)`, record node = src).
pub const FENCE_LINK_DIR: u64 = 5;
/// `FaultOp::ClearLink` (`b` = dst node, record node = src).
pub const FENCE_CLEAR_LINK: u64 = 6;
/// `FaultOp::SlowNode` (`b` = slowdown factor; 1 = restore).
pub const FENCE_SLOW: u64 = 7;

/// One recorded event pop. `a`/`b` are kind-specific details (timer token,
/// envelope seq, load bits, fence op) — enough to tell two schedules apart
/// at the first divergent pop without storing payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// Sim time of the pop, µs.
    pub at_us: u64,
    /// The event's cause key (`origin << 40 | seq`) — the global tiebreak.
    pub cause: u64,
    /// Node the event executed on.
    pub node: NodeId,
    /// `EV_*` tag.
    pub kind: u8,
    /// Kind detail: port (`EV_START`), envelope seq (`EV_DELIVER`), token
    /// (`EV_TIMER`), generation (`EV_CPU`), load bits (`EV_LOAD`), fence op
    /// (`EV_FENCE`).
    pub a: u64,
    /// Second detail: source addr code (`EV_DELIVER`), port (`EV_TIMER`),
    /// fence aux (`EV_FENCE`); 0 otherwise.
    pub b: u64,
}

impl fmt::Display for EventRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            EV_START => "start",
            EV_DELIVER => "deliver",
            EV_TIMER => "timer",
            EV_CPU => "cpu",
            EV_LOAD => "load",
            EV_FENCE => "fence",
            _ => "?",
        };
        write!(
            f,
            "[{:>12}µs {} cause={:#x}] {} a={:#x} b={:#x}",
            self.at_us, self.node, self.cause, kind, self.a, self.b
        )
    }
}

/// One snapshot frame: the state-hash checkpoint bisection narrows with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotRecord {
    /// Sim time the snapshot was cut, µs.
    pub at_us: u64,
    /// Events recorded before this snapshot (index into the event stream).
    pub event_index: u64,
    /// Whole-sim digest (time, event index, every per-node hash).
    pub sim_hash: u64,
    /// Per-node digests, sorted by node id.
    pub nodes: Vec<(NodeId, u64)>,
}

/// The `End` frame: totals a complete recording signs off with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EndRecord {
    /// Total event records written.
    pub events: u64,
    /// Total snapshot frames written.
    pub snapshots: u64,
    /// Final whole-sim hash.
    pub sim_hash: u64,
    /// Sim clock when recording finished, µs.
    pub now_us: u64,
}

/// Frame kinds of the `.vct` container. Constructed by the writer methods
/// and by [`FrameKind::from_tag`]; every variant must have a decode arm in
/// [`read_trace`]'s `decode_frame` — vce-lint's P004 journal⇔replay check
/// covers this enum, so adding a frame kind without teaching the reader
/// fails the lint gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Version, snapshot cadence, scenario string. Always the first frame.
    Header,
    /// A batch of [`EventRecord`]s (one engine sync point).
    Events,
    /// A [`SnapshotRecord`].
    Snapshot,
    /// An [`EndRecord`]. Always the last frame.
    End,
}

impl FrameKind {
    /// Wire tag of this frame kind.
    pub fn tag(self) -> u8 {
        match self {
            FrameKind::Header => 1,
            FrameKind::Events => 2,
            FrameKind::Snapshot => 3,
            FrameKind::End => 4,
        }
    }

    /// Frame kind for a wire tag.
    pub fn from_tag(tag: u8) -> Option<FrameKind> {
        match tag {
            1 => Some(FrameKind::Header),
            2 => Some(FrameKind::Events),
            3 => Some(FrameKind::Snapshot),
            4 => Some(FrameKind::End),
            _ => None,
        }
    }
}

/// Zigzag-map a signed difference onto small unsigned varints (±n → 2n∓).
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ----------------------------------------------------------------------
// Writer
// ----------------------------------------------------------------------

enum Sink {
    File(io::BufWriter<std::fs::File>),
    Memory(Vec<u8>),
}

impl Sink {
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        match self {
            Sink::File(f) => f.write_all(bytes),
            Sink::Memory(v) => {
                v.extend_from_slice(bytes);
                Ok(())
            }
        }
    }
}

/// Streaming `.vct` writer. Frames are CRC-chained as they are appended;
/// [`TraceWriter::finish`] writes the `End` frame and flushes.
pub struct TraceWriter {
    sink: Sink,
    prev_crc: u32,
    frames: u64,
    events: u64,
    snapshots: u64,
    scratch: Encoder,
}

impl TraceWriter {
    /// Open `path` (truncating) and write the magic + header frame.
    pub fn to_file(path: &Path, scenario: &str, snapshot_every_us: u64) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Self::start(
            Sink::File(io::BufWriter::new(file)),
            scenario,
            snapshot_every_us,
        )
    }

    /// Record into memory; [`TraceWriter::finish`] returns the bytes.
    pub fn to_memory(scenario: &str, snapshot_every_us: u64) -> Self {
        Self::start(Sink::Memory(Vec::new()), scenario, snapshot_every_us)
            .expect("memory sink cannot fail")
    }

    fn start(sink: Sink, scenario: &str, snapshot_every_us: u64) -> io::Result<Self> {
        let mut w = Self {
            sink,
            prev_crc: crc32(MAGIC),
            frames: 0,
            events: 0,
            snapshots: 0,
            scratch: Encoder::with_capacity(256),
        };
        w.sink.write_all(MAGIC)?;
        w.scratch.clear();
        w.scratch.put_u16(VERSION);
        w.scratch.put_u64(snapshot_every_us);
        w.scratch.put_str(scenario);
        w.write_frame(FrameKind::Header)?;
        Ok(w)
    }

    /// Frame the scratch buffer's contents under `kind` and chain the CRC.
    fn write_frame(&mut self, kind: FrameKind) -> io::Result<()> {
        let body_len = self.scratch.len() + 1; // + tag byte
        assert!(body_len <= MAX_RECORD, "oversized record frame");
        let mut crc_input = Vec::with_capacity(4 + body_len);
        crc_input.extend_from_slice(&self.prev_crc.to_be_bytes());
        crc_input.push(kind.tag());
        crc_input.extend_from_slice(self.scratch.as_slice());
        let crc = crc32(&crc_input);
        self.sink.write_all(&(body_len as u32).to_be_bytes())?;
        self.sink.write_all(&crc.to_be_bytes())?;
        self.sink.write_all(&crc_input[4..])?;
        self.prev_crc = crc;
        self.frames += 1;
        Ok(())
    }

    /// Append a batch of event records as one `Events` frame (no-op for an
    /// empty batch, so frame boundaries stay driver-determined).
    ///
    /// Version-2 framing: records are in global `(at_us, cause)` order, so
    /// `at_us` is stored as a varint delta from the previous record (the
    /// first record's delta is from 0 — frames stay self-contained) and
    /// `cause` as a zigzag varint of its wrapping difference — consecutive
    /// events usually share an origin, making the difference small.
    /// `node`/`a`/`b` are plain varints. Wrapping arithmetic means *any*
    /// sequence round-trips; monotonicity only buys compactness.
    pub fn append_events(&mut self, recs: &[EventRecord]) -> io::Result<()> {
        if recs.is_empty() {
            return Ok(());
        }
        self.scratch.clear();
        self.scratch.put_u32(recs.len() as u32);
        let (mut prev_at, mut prev_cause) = (0u64, 0u64);
        for r in recs {
            self.scratch.put_uvarint(r.at_us.wrapping_sub(prev_at));
            self.scratch
                .put_uvarint(zigzag(r.cause.wrapping_sub(prev_cause) as i64));
            self.scratch.put_uvarint(u64::from(r.node.0));
            self.scratch.put_u8(r.kind);
            self.scratch.put_uvarint(r.a);
            self.scratch.put_uvarint(r.b);
            prev_at = r.at_us;
            prev_cause = r.cause;
        }
        self.events += recs.len() as u64;
        self.write_frame(FrameKind::Events)
    }

    /// Append a snapshot frame.
    pub fn snapshot(&mut self, snap: &SnapshotRecord) -> io::Result<()> {
        self.scratch.clear();
        self.scratch.put_u64(snap.at_us);
        self.scratch.put_u64(snap.event_index);
        self.scratch.put_u64(snap.sim_hash);
        self.scratch.put_u32(snap.nodes.len() as u32);
        for &(node, hash) in &snap.nodes {
            self.scratch.put_u32(node.0);
            self.scratch.put_u64(hash);
        }
        self.snapshots += 1;
        self.write_frame(FrameKind::Snapshot)
    }

    /// Events written so far.
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Write the `End` frame, flush, and return the recording (memory
    /// sinks return their bytes; file sinks return `None`).
    pub fn finish(mut self, sim_hash: u64, now_us: u64) -> io::Result<Option<Vec<u8>>> {
        self.scratch.clear();
        self.scratch.put_u64(self.events);
        self.scratch.put_u64(self.snapshots);
        self.scratch.put_u64(sim_hash);
        self.scratch.put_u64(now_us);
        self.write_frame(FrameKind::End)?;
        match self.sink {
            Sink::File(mut f) => {
                f.flush()?;
                Ok(None)
            }
            Sink::Memory(v) => Ok(Some(v)),
        }
    }
}

// ----------------------------------------------------------------------
// Reader
// ----------------------------------------------------------------------

/// A fully parsed, chain-verified recording.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedTrace {
    /// Format version from the header (1 = fixed-width event records,
    /// 2 = varint delta-encoded).
    pub version: u16,
    /// Scenario string from the header (e.g. `chaos seed=100 shape=crashes
    /// technique=checkpoint`) — enough for a replay tool to re-run the cell.
    pub scenario: String,
    /// Snapshot cadence the recording ran with, µs.
    pub snapshot_every_us: u64,
    /// Every event pop, in global order.
    pub events: Vec<EventRecord>,
    /// Every snapshot, in order.
    pub snapshots: Vec<SnapshotRecord>,
    /// The closing totals.
    pub end: EndRecord,
    /// Total frames in the file (header + events + snapshots + end).
    pub frames: u64,
}

/// Why a `.vct` file failed to parse. A reader never panics on torn or
/// tampered input and never returns a partial trace as complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadError {
    /// The file does not start with the `VCT1` magic.
    BadMagic,
    /// The file ends mid-frame, or cleanly but without an `End` frame:
    /// `frames_read` complete frames parsed before the tear.
    Truncated {
        /// Complete, chain-valid frames parsed before the tear.
        frames_read: u64,
    },
    /// A structurally complete frame failed the CRC chain or decoded
    /// inconsistently — tampering, splicing, or bit rot.
    Corrupt {
        /// Complete, chain-valid frames parsed before the bad one.
        frames_read: u64,
        /// What failed.
        detail: String,
    },
    /// Underlying I/O failure reading the file.
    Io(String),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::BadMagic => write!(f, "not a .vct file (bad magic)"),
            ReadError::Truncated { frames_read } => {
                write!(f, "truncated after frame {frames_read}")
            }
            ReadError::Corrupt {
                frames_read,
                detail,
            } => write!(f, "corrupt after frame {frames_read}: {detail}"),
            ReadError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

/// Decode one frame body into the trace under construction. The match over
/// [`FrameKind`] is the decode side of the P004 journal⇔replay contract:
/// every frame kind the writer can emit is handled here.
fn decode_frame(
    kind: FrameKind,
    dec: &mut Decoder<'_>,
    out: &mut RecordedTrace,
    ended: &mut bool,
) -> Result<(), String> {
    match kind {
        FrameKind::Header => {
            if out.frames > 0 {
                return Err("header frame not first".into());
            }
            let version = dec.get_u16().map_err(|e| e.to_string())?;
            if version != VERSION && version != VERSION_V1 {
                return Err(format!("unsupported version {version}"));
            }
            out.version = version;
            out.snapshot_every_us = dec.get_u64().map_err(|e| e.to_string())?;
            out.scenario = dec.get_str().map_err(|e| e.to_string())?.to_string();
        }
        FrameKind::Events => {
            let n = dec.get_u32().map_err(|e| e.to_string())?;
            let (mut prev_at, mut prev_cause) = (0u64, 0u64);
            for _ in 0..n {
                let rec = if out.version == VERSION_V1 {
                    EventRecord {
                        at_us: dec.get_u64().map_err(|e| e.to_string())?,
                        cause: dec.get_u64().map_err(|e| e.to_string())?,
                        node: NodeId(dec.get_u32().map_err(|e| e.to_string())?),
                        kind: dec.get_u8().map_err(|e| e.to_string())?,
                        a: dec.get_u64().map_err(|e| e.to_string())?,
                        b: dec.get_u64().map_err(|e| e.to_string())?,
                    }
                } else {
                    let at_us = prev_at.wrapping_add(dec.get_uvarint().map_err(|e| e.to_string())?);
                    let cause = prev_cause.wrapping_add(unzigzag(
                        dec.get_uvarint().map_err(|e| e.to_string())?,
                    ) as u64);
                    let node = dec.get_uvarint().map_err(|e| e.to_string())?;
                    let node = NodeId(
                        u32::try_from(node).map_err(|_| format!("node id {node} overflows"))?,
                    );
                    EventRecord {
                        at_us,
                        cause,
                        node,
                        kind: dec.get_u8().map_err(|e| e.to_string())?,
                        a: dec.get_uvarint().map_err(|e| e.to_string())?,
                        b: dec.get_uvarint().map_err(|e| e.to_string())?,
                    }
                };
                prev_at = rec.at_us;
                prev_cause = rec.cause;
                out.events.push(rec);
            }
        }
        FrameKind::Snapshot => {
            let at_us = dec.get_u64().map_err(|e| e.to_string())?;
            let event_index = dec.get_u64().map_err(|e| e.to_string())?;
            let sim_hash = dec.get_u64().map_err(|e| e.to_string())?;
            let n = dec.get_u32().map_err(|e| e.to_string())?;
            let mut nodes = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let node = NodeId(dec.get_u32().map_err(|e| e.to_string())?);
                let hash = dec.get_u64().map_err(|e| e.to_string())?;
                nodes.push((node, hash));
            }
            out.snapshots.push(SnapshotRecord {
                at_us,
                event_index,
                sim_hash,
                nodes,
            });
        }
        FrameKind::End => {
            out.end = EndRecord {
                events: dec.get_u64().map_err(|e| e.to_string())?,
                snapshots: dec.get_u64().map_err(|e| e.to_string())?,
                sim_hash: dec.get_u64().map_err(|e| e.to_string())?,
                now_us: dec.get_u64().map_err(|e| e.to_string())?,
            };
            *ended = true;
        }
    }
    if !dec.is_empty() {
        return Err("trailing bytes in frame".into());
    }
    Ok(())
}

/// Parse and chain-verify a `.vct` byte buffer.
pub fn read_trace(bytes: &[u8]) -> Result<RecordedTrace, ReadError> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(ReadError::BadMagic);
    }
    let mut out = RecordedTrace {
        version: VERSION,
        scenario: String::new(),
        snapshot_every_us: 0,
        events: Vec::new(),
        snapshots: Vec::new(),
        end: EndRecord {
            events: 0,
            snapshots: 0,
            sim_hash: 0,
            now_us: 0,
        },
        frames: 0,
    };
    let mut off = MAGIC.len();
    let mut prev_crc = crc32(MAGIC);
    let mut ended = false;
    while off < bytes.len() {
        if ended {
            // Bytes after a chain-valid End frame cannot be a tear — the
            // writer seals the file with End. They are tampering.
            return Err(ReadError::Corrupt {
                frames_read: out.frames,
                detail: format!("{} trailing bytes after the End frame", bytes.len() - off),
            });
        }
        let rest = &bytes[off..];
        if rest.len() < FRAME_HEADER {
            return Err(ReadError::Truncated {
                frames_read: out.frames,
            });
        }
        let len = u32::from_be_bytes(rest[..4].try_into().unwrap()) as usize;
        if len == 0 || len > MAX_RECORD {
            // A garbage length header is indistinguishable from a tear mid-
            // header; report it as the tear it almost always is.
            return Err(ReadError::Truncated {
                frames_read: out.frames,
            });
        }
        if rest.len() < FRAME_HEADER + len {
            return Err(ReadError::Truncated {
                frames_read: out.frames,
            });
        }
        let crc = u32::from_be_bytes(rest[4..8].try_into().unwrap());
        let body = &rest[FRAME_HEADER..FRAME_HEADER + len];
        let mut crc_input = Vec::with_capacity(4 + len);
        crc_input.extend_from_slice(&prev_crc.to_be_bytes());
        crc_input.extend_from_slice(body);
        if crc32(&crc_input) != crc {
            // A bad CRC on the *last* frame is the classic torn tail; mid-
            // file it is corruption. Both refuse to replay; distinguish so
            // the operator knows whether the tail or the middle is bad.
            if off + FRAME_HEADER + len == bytes.len() {
                return Err(ReadError::Truncated {
                    frames_read: out.frames,
                });
            }
            return Err(ReadError::Corrupt {
                frames_read: out.frames,
                detail: "frame CRC does not chain from its predecessor".into(),
            });
        }
        let Some(kind) = FrameKind::from_tag(body[0]) else {
            return Err(ReadError::Corrupt {
                frames_read: out.frames,
                detail: format!("unknown frame tag {}", body[0]),
            });
        };
        let mut dec = Decoder::new(&body[1..]);
        decode_frame(kind, &mut dec, &mut out, &mut ended).map_err(|detail| {
            ReadError::Corrupt {
                frames_read: out.frames,
                detail,
            }
        })?;
        if out.frames == 0 && kind != FrameKind::Header {
            return Err(ReadError::Corrupt {
                frames_read: 0,
                detail: "first frame is not a header".into(),
            });
        }
        out.frames += 1;
        prev_crc = crc;
        off += FRAME_HEADER + len;
    }
    if !ended {
        // Clean frame boundary but no End: the writer died mid-recording.
        return Err(ReadError::Truncated {
            frames_read: out.frames,
        });
    }
    if out.end.events != out.events.len() as u64 || out.end.snapshots != out.snapshots.len() as u64
    {
        return Err(ReadError::Corrupt {
            frames_read: out.frames,
            detail: format!(
                "End frame totals ({} events, {} snapshots) disagree with the body ({}, {})",
                out.end.events,
                out.end.snapshots,
                out.events.len(),
                out.snapshots.len()
            ),
        });
    }
    Ok(out)
}

/// Read and parse a `.vct` file.
pub fn read_trace_file(path: &Path) -> Result<RecordedTrace, ReadError> {
    let bytes = std::fs::read(path).map_err(|e| ReadError::Io(e.to_string()))?;
    read_trace(&bytes)
}

// ----------------------------------------------------------------------
// Divergence
// ----------------------------------------------------------------------

/// Where two recordings of the same scenario first split.
#[derive(Debug, Clone, PartialEq)]
pub enum Divergence {
    /// Identical: same events, same hash chain, same final hash.
    None,
    /// The first differing event record, localised by snapshot bisection to
    /// `window` (event-index half-open range).
    Event {
        /// Global index of the first differing event.
        index: u64,
        /// Snapshot-bisected window `[lo, hi)` the divergence lies in.
        window: (u64, u64),
        /// What the recording has at `index` (`None` = it ended first).
        recorded: Option<EventRecord>,
        /// What the replay has at `index` (`None` = it ended first).
        replayed: Option<EventRecord>,
    },
    /// Event streams agree but a state hash splits: silent state drift
    /// (some state not reflected in the event schedule changed).
    StateHash {
        /// Index of the first differing snapshot (== snapshot count when
        /// only the final `End` hash differs).
        snapshot: u64,
        /// Sim time of that snapshot, µs.
        at_us: u64,
        /// Event window `[lo, hi)` bounded by the adjacent snapshots.
        window: (u64, u64),
        /// First node whose per-node hash differs, if any.
        node: Option<NodeId>,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::None => write!(f, "no divergence"),
            Divergence::Event {
                index,
                window,
                recorded,
                replayed,
            } => {
                writeln!(
                    f,
                    "first divergence at event {index} (snapshot window [{}, {}))",
                    window.0, window.1
                )?;
                match recorded {
                    Some(r) => writeln!(f, "  recorded: {r}")?,
                    None => writeln!(f, "  recorded: <ended at {index}>")?,
                }
                match replayed {
                    Some(r) => write!(f, "  replayed: {r}"),
                    None => write!(f, "  replayed: <ended at {index}>"),
                }
            }
            Divergence::StateHash {
                snapshot,
                at_us,
                window,
                node,
            } => {
                write!(
                    f,
                    "state hash diverged at snapshot {snapshot} ({at_us}µs), events identical \
                     in window [{}, {})",
                    window.0, window.1
                )?;
                if let Some(n) = node {
                    write!(f, "; first differing node: {n}")?;
                }
                Ok(())
            }
        }
    }
}

/// Compare a recording against a replay of the same scenario and localise
/// the first divergence.
///
/// Strategy: binary-search the snapshot hash chain for the first snapshot
/// whose whole-sim hash differs (divergence in a deterministic replay is
/// permanent, so "matches" is a prefix property and bisection is sound),
/// then scan only the event window between the last agreeing snapshot and
/// the first disagreeing one for the first differing [`EventRecord`]. Cost
/// is `O(log S)` hash compares plus one snapshot interval of event
/// compares, not `O(events)`.
pub fn first_divergence(recorded: &RecordedTrace, replayed: &RecordedTrace) -> Divergence {
    let common = recorded.snapshots.len().min(replayed.snapshots.len());
    // partition_point: count of leading snapshots whose hashes agree.
    let agree = (0..common)
        .collect::<Vec<_>>()
        .partition_point(|&i| recorded.snapshots[i].sim_hash == replayed.snapshots[i].sim_hash);
    let win_lo = if agree == 0 {
        0
    } else {
        recorded.snapshots[agree - 1].event_index
    };
    let (win_hi, diverged_snapshot) = if agree < common {
        (recorded.snapshots[agree].event_index, Some(agree))
    } else {
        (
            recorded.events.len().max(replayed.events.len()) as u64,
            None,
        )
    };
    // Scan the bisected window for the first differing event record.
    for i in win_lo..win_hi {
        let r = recorded.events.get(i as usize);
        let p = replayed.events.get(i as usize);
        if r != p {
            return Divergence::Event {
                index: i,
                window: (win_lo, win_hi),
                recorded: r.copied(),
                replayed: p.copied(),
            };
        }
        if r.is_none() {
            break; // both ended inside the window
        }
    }
    if let Some(s) = diverged_snapshot {
        // Events in the window agree but the hash split: state drift.
        let snap = &recorded.snapshots[s];
        let other = &replayed.snapshots[s];
        let node = snap
            .nodes
            .iter()
            .zip(other.nodes.iter())
            .find(|(a, b)| a != b)
            .map(|(a, _)| a.0);
        return Divergence::StateHash {
            snapshot: s as u64,
            at_us: snap.at_us,
            window: (win_lo, win_hi),
            node,
        };
    }
    if recorded.snapshots.len() != replayed.snapshots.len() {
        let s = common as u64;
        return Divergence::StateHash {
            snapshot: s,
            at_us: recorded
                .snapshots
                .get(common)
                .or_else(|| replayed.snapshots.get(common))
                .map_or(0, |x| x.at_us),
            window: (win_lo, win_hi),
            node: None,
        };
    }
    if recorded.end.sim_hash != replayed.end.sim_hash {
        return Divergence::StateHash {
            snapshot: recorded.snapshots.len() as u64,
            at_us: recorded.end.now_us,
            window: (win_lo, win_hi),
            node: None,
        };
    }
    Divergence::None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> EventRecord {
        EventRecord {
            at_us: i * 10,
            cause: (1 << 40) | i,
            node: NodeId((i % 3) as u32),
            kind: EV_DELIVER,
            a: i,
            b: 7,
        }
    }

    fn snap(at: u64, idx: u64, hash: u64) -> SnapshotRecord {
        SnapshotRecord {
            at_us: at,
            event_index: idx,
            sim_hash: hash,
            nodes: vec![(NodeId(0), hash ^ 1), (NodeId(1), hash ^ 2)],
        }
    }

    /// Write a small well-formed trace to memory.
    fn sample(perturb: Option<usize>) -> Vec<u8> {
        let mut w = TraceWriter::to_memory("test scenario", 100);
        let mut all: Vec<EventRecord> = (0..20).map(ev).collect();
        if let Some(i) = perturb {
            // Keep the perturbed value inside one varint group so the
            // perturbed file has the same length (the splice test needs
            // same-shape traces).
            all[i].a ^= 0x55;
        }
        w.snapshot(&snap(0, 0, 111)).unwrap();
        w.append_events(&all[..10]).unwrap();
        let h1 = if perturb.is_some_and(|i| i < 10) {
            999
        } else {
            222
        };
        w.snapshot(&snap(100, 10, h1)).unwrap();
        w.append_events(&all[10..]).unwrap();
        let h2 = if perturb.is_some() { 998 } else { 333 };
        w.snapshot(&snap(200, 20, h2)).unwrap();
        w.finish(h2, 200).unwrap().unwrap()
    }

    /// Hand-frame a version-1 file (fixed-width event records) with the
    /// same CRC chain the writer uses — the reader must stay compatible
    /// with recordings committed before the varint format landed.
    fn sample_v1(recs: &[EventRecord]) -> Vec<u8> {
        let mut out = MAGIC.to_vec();
        let mut prev_crc = crc32(MAGIC);
        let frame = |out: &mut Vec<u8>, prev_crc: &mut u32, tag: u8, body: &[u8]| {
            let mut crc_input = prev_crc.to_be_bytes().to_vec();
            crc_input.push(tag);
            crc_input.extend_from_slice(body);
            let crc = crc32(&crc_input);
            out.extend_from_slice(&((body.len() + 1) as u32).to_be_bytes());
            out.extend_from_slice(&crc.to_be_bytes());
            out.extend_from_slice(&crc_input[4..]);
            *prev_crc = crc;
        };
        let mut e = Encoder::with_capacity(256);
        e.put_u16(VERSION_V1);
        e.put_u64(50);
        e.put_str("v1 scenario");
        frame(
            &mut out,
            &mut prev_crc,
            FrameKind::Header.tag(),
            e.as_slice(),
        );
        e.clear();
        e.put_u32(recs.len() as u32);
        for r in recs {
            e.put_u64(r.at_us);
            e.put_u64(r.cause);
            e.put_u32(r.node.0);
            e.put_u8(r.kind);
            e.put_u64(r.a);
            e.put_u64(r.b);
        }
        frame(
            &mut out,
            &mut prev_crc,
            FrameKind::Events.tag(),
            e.as_slice(),
        );
        e.clear();
        e.put_u64(recs.len() as u64);
        e.put_u64(0);
        e.put_u64(42);
        e.put_u64(190);
        frame(&mut out, &mut prev_crc, FrameKind::End.tag(), e.as_slice());
        out
    }

    #[test]
    fn version_1_recordings_still_read() {
        let recs: Vec<EventRecord> = (0..20).map(ev).collect();
        let t = read_trace(&sample_v1(&recs)).unwrap();
        assert_eq!(t.version, VERSION_V1);
        assert_eq!(t.scenario, "v1 scenario");
        assert_eq!(t.events, recs);
        assert_eq!(t.end.sim_hash, 42);
    }

    #[test]
    fn version_2_events_are_far_smaller_than_fixed_width() {
        let recs: Vec<EventRecord> = (0..500).map(ev).collect();
        let mut w = TraceWriter::to_memory("size", 100);
        w.append_events(&recs).unwrap();
        let v2 = w.finish(0, 0).unwrap().unwrap();
        let v1 = sample_v1(&recs);
        // Same event stream both ways; the delta-varint records must cut
        // the file to well under half the fixed-width size (in practice
        // ~5 bytes/record vs 37).
        assert_eq!(read_trace(&v2).unwrap().events, recs);
        assert!(
            v2.len() * 2 < v1.len(),
            "v2 {}B not < half of v1 {}B",
            v2.len(),
            v1.len()
        );
    }

    #[test]
    fn zigzag_delta_roundtrips_adversarial_sequences() {
        // Non-monotone times, wildly jumping causes, max-range details —
        // wrapping arithmetic must reproduce them all exactly.
        let recs = vec![
            EventRecord {
                at_us: u64::MAX,
                cause: u64::MAX,
                node: NodeId(u32::MAX),
                kind: EV_FENCE,
                a: u64::MAX,
                b: 0,
            },
            EventRecord {
                at_us: 0,
                cause: 0,
                node: NodeId(0),
                kind: EV_START,
                a: 0,
                b: u64::MAX,
            },
            EventRecord {
                at_us: 1 << 63,
                cause: 1 << 40,
                node: NodeId(7),
                kind: EV_TIMER,
                a: 3,
                b: 4,
            },
        ];
        let mut w = TraceWriter::to_memory("wrap", 100);
        w.append_events(&recs).unwrap();
        let bytes = w.finish(0, 0).unwrap().unwrap();
        assert_eq!(read_trace(&bytes).unwrap().events, recs);
    }

    #[test]
    fn roundtrip() {
        let bytes = sample(None);
        let t = read_trace(&bytes).unwrap();
        assert_eq!(t.scenario, "test scenario");
        assert_eq!(t.snapshot_every_us, 100);
        assert_eq!(t.events.len(), 20);
        assert_eq!(t.snapshots.len(), 3);
        assert_eq!(t.events[7], ev(7));
        assert_eq!(t.end.events, 20);
        assert_eq!(t.end.sim_hash, 333);
        assert_eq!(t.frames, 7); // header, 3 snapshots, 2 event frames, end
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(read_trace(b"nope"), Err(ReadError::BadMagic));
        assert_eq!(read_trace(b"VC"), Err(ReadError::BadMagic));
        let mut bytes = sample(None);
        bytes[0] = b'X';
        assert_eq!(read_trace(&bytes), Err(ReadError::BadMagic));
    }

    #[test]
    fn every_truncation_reports_frames_read_and_never_panics() {
        let bytes = sample(None);
        let full = read_trace(&bytes).unwrap();
        for cut in MAGIC.len()..bytes.len() {
            let err = read_trace(&bytes[..cut]).expect_err("prefix must not parse as complete");
            match err {
                ReadError::Truncated { frames_read } => {
                    assert!(frames_read < full.frames, "cut {cut}: frames {frames_read}");
                }
                // A cut can also land so a stale CRC is checked against
                // shorter content — still a refusal, never a success.
                ReadError::Corrupt { .. } => {}
                other => panic!("cut {cut}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn missing_end_frame_is_truncation() {
        let mut w = TraceWriter::to_memory("s", 10);
        w.append_events(&[ev(0)]).unwrap();
        // Steal the bytes without finish(): simulate a writer crash. The
        // memory sink is private, so rebuild via finish then strip End.
        let done = w.finish(0, 0).unwrap().unwrap();
        let full = read_trace(&done).unwrap();
        // Strip the End frame (its length is in its header).
        let mut off = MAGIC.len();
        let mut frame_starts = Vec::new();
        while off < done.len() {
            frame_starts.push(off);
            let len = u32::from_be_bytes(done[off..off + 4].try_into().unwrap()) as usize;
            off += FRAME_HEADER + len;
        }
        let stripped = &done[..*frame_starts.last().unwrap()];
        assert_eq!(
            read_trace(stripped),
            Err(ReadError::Truncated {
                frames_read: full.frames - 1
            })
        );
    }

    #[test]
    fn bitflip_breaks_the_chain() {
        let bytes = sample(None);
        // Flip one payload byte mid-file (inside frame 3's body, past its
        // header) — the chain must refuse at that frame.
        let mut bad = bytes.clone();
        let target = bytes.len() / 2;
        bad[target] ^= 0x40;
        match read_trace(&bad) {
            Ok(_) => panic!("bitflip accepted"),
            Err(ReadError::BadMagic) => panic!("flip hit magic?"),
            Err(_) => {}
        }
    }

    #[test]
    fn spliced_frames_from_another_file_break_the_chain() {
        // Take file A's prefix and file B's (valid!) tail: every frame CRCs
        // fine in isolation, but the chain breaks at the splice.
        let a = sample(None);
        let b = sample(Some(3));
        assert_eq!(a.len(), b.len(), "same shape traces");
        let cut = {
            // Find the start of the 4th frame.
            let mut off = MAGIC.len();
            for _ in 0..4 {
                let len = u32::from_be_bytes(a[off..off + 4].try_into().unwrap()) as usize;
                off += FRAME_HEADER + len;
            }
            off
        };
        let mut spliced = a[..cut].to_vec();
        spliced.extend_from_slice(&b[cut..]);
        match read_trace(&spliced) {
            Err(ReadError::Corrupt { detail, .. }) => {
                assert!(detail.contains("chain"), "{detail}");
            }
            other => panic!("splice not caught: {other:?}"),
        }
    }

    #[test]
    fn divergence_none_for_identical() {
        let t = read_trace(&sample(None)).unwrap();
        assert_eq!(first_divergence(&t, &t), Divergence::None);
    }

    #[test]
    fn divergence_bisects_to_the_right_window_and_event() {
        let rec = read_trace(&sample(None)).unwrap();
        // Perturb event 13: snapshots 0/1 agree, snapshot 2 differs, so the
        // bisected window is [10, 20) and the first differing event is 13.
        let rep = read_trace(&sample(Some(13))).unwrap();
        match first_divergence(&rec, &rep) {
            Divergence::Event { index, window, .. } => {
                assert_eq!(index, 13);
                assert_eq!(window, (10, 20));
            }
            other => panic!("wrong divergence: {other:?}"),
        }
        // Perturb event 3: first snapshot pair after it differs → window
        // [0, 10), event 3.
        let rep = read_trace(&sample(Some(3))).unwrap();
        match first_divergence(&rec, &rep) {
            Divergence::Event { index, window, .. } => {
                assert_eq!(index, 3);
                assert_eq!(window, (0, 10));
            }
            other => panic!("wrong divergence: {other:?}"),
        }
    }

    #[test]
    fn divergence_state_hash_when_events_agree() {
        let rec = read_trace(&sample(None)).unwrap();
        // Same events, different final snapshot hash: rebuild manually.
        let mut w = TraceWriter::to_memory("test scenario", 100);
        let all: Vec<EventRecord> = (0..20).map(ev).collect();
        w.snapshot(&snap(0, 0, 111)).unwrap();
        w.append_events(&all[..10]).unwrap();
        w.snapshot(&snap(100, 10, 222)).unwrap();
        w.append_events(&all[10..]).unwrap();
        w.snapshot(&snap(200, 20, 777)).unwrap(); // drifted
        let bytes = w.finish(777, 200).unwrap().unwrap();
        let rep = read_trace(&bytes).unwrap();
        match first_divergence(&rec, &rep) {
            Divergence::StateHash {
                snapshot, window, ..
            } => {
                assert_eq!(snapshot, 2);
                assert_eq!(window, (10, 20));
            }
            other => panic!("wrong divergence: {other:?}"),
        }
    }

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(Divergence::None.to_string(), "no divergence");
        let e = ReadError::Truncated { frames_read: 4 };
        assert_eq!(e.to_string(), "truncated after frame 4");
    }
}
