//! Shard-local simulator state: one partition of the node slab plus its own
//! calendar queue, dispatch tables, fault-plan replica and statistics.
//!
//! The sharded engine (see `DESIGN.md` decision 17) partitions nodes across
//! `S` shards by `NodeId % S` and advances all shards in lock-step
//! *conservative time windows* of width `lookahead =
//! Topology::min_cross_latency_us()`. Everything a node does lands either on
//! itself (timers, CPU checks, load changes — always intra-shard) or on a
//! peer reached through the network, whose latency is at least `lookahead`;
//! therefore no event created inside a window `[w, w+lookahead)` can *fire*
//! inside that same window on another shard, and shards can run a window in
//! parallel with no communication at all. Cross-shard sends are buffered in
//! per-destination outboxes and exchanged at the window barrier
//! ([`Shard::push_or_remote`] asserts the invariant on every remote event).
//!
//! # The cause key: one total order for every shard count
//!
//! The serial engine used to break ties at equal timestamps with a global
//! insertion counter — meaningless across concurrently-running shards. It is
//! replaced by a **cause key** derived from the event's *creator*: each node
//! (plus the driver, origin 0) owns a monotone counter, and every scheduled
//! event carries `cause = origin << CAUSE_SEQ_BITS | counter++`. Because a
//! node's events execute in the same relative order on any shard layout, the
//! key is a pure function of the simulation itself, and ordering the global
//! event set by `(at_us, cause)` yields the *same* total order for S ∈ {1,
//! 2, 4, 8, …}. Traces are merged on exactly that key at barrier-sync
//! points, so experiment stdout is byte-identical across shard counts.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

use vce_net::fault::Delivery;
use vce_net::{
    Addr, DetHashState, Endpoint, Envelope, FaultOp, FaultPlan, Host, MachineInfo, MsgCategory,
    NetStats, NodeId, PortId,
};

use crate::cpu::Cpu;
use crate::load::LoadTrace;
use crate::metrics::NodeMetrics;
use crate::queue::CalendarQueue;
use crate::record::{
    EventRecord, EV_CPU, EV_DELIVER, EV_FENCE, EV_LOAD, EV_START, EV_TIMER, FENCE_CLEAR_LINK,
    FENCE_HEAL, FENCE_KILL, FENCE_LINK, FENCE_LINK_DIR, FENCE_PARTITION, FENCE_REVIVE, FENCE_SLOW,
};
use crate::topology::Topology;
use crate::trace::TraceEvent;

/// Low bits of a cause key: the per-origin counter. 2^40 events per origin
/// is ~12 days of one node scheduling an event every simulated microsecond.
pub(crate) const CAUSE_SEQ_BITS: u32 = 40;
/// High bits: the origin. Origin 0 is the driver (injections, fences);
/// node `n` is origin `n + 1`; [`MAX_ORIGIN`] is the orphan fallback.
pub(crate) const MAX_ORIGIN: u64 = (1 << (64 - CAUSE_SEQ_BITS)) - 1;

/// Trace-merge phase for fence applications (fault ops, driver kills):
/// sorts before same-microsecond event lines, matching execution order.
pub(crate) const PHASE_FENCE: u8 = 0;
/// Trace-merge phase for ordinary event dispatch.
pub(crate) const PHASE_EVENT: u8 = 1;

/// Cause-key origin of a node's counter stream.
#[inline]
pub(crate) fn origin_of(node: NodeId) -> u64 {
    u64::from(node.0) + 1
}

/// Pack an origin and a per-origin counter into one ordering key.
#[inline]
pub(crate) fn cause_key(origin: u64, seq: u64) -> u64 {
    debug_assert!(origin <= MAX_ORIGIN);
    debug_assert!(seq < (1 << CAUSE_SEQ_BITS));
    (origin << CAUSE_SEQ_BITS) | seq
}

/// Which shard owns `node` when the slab is split `total` ways. Pure
/// function of the id so even never-registered destinations have a
/// well-defined owner (their deliveries count as drops there).
#[inline]
pub(crate) fn shard_of(node: NodeId, total: usize) -> usize {
    // The serial engine routes every event through here; skip the hardware
    // divide when there is nothing to partition.
    if total == 1 {
        0
    } else {
        node.0 as usize % total
    }
}

#[derive(Debug)]
pub(crate) enum EventKind {
    Start {
        port: PortId,
    },
    Deliver(Envelope),
    /// Several envelopes for the same node at the same timestamp, sent
    /// back-to-back by one callback — coalesced into one queue entry (and
    /// one outbox entry when remote) to cut insert cost on burst traffic.
    /// Carries the *first* envelope's cause; the batch occupies consecutive
    /// same-origin causes, so no foreign event can order between them and
    /// processing order is identical to the uncoalesced form.
    DeliverBatch(Vec<Envelope>),
    Timer {
        port: PortId,
        token: u64,
    },
    CpuCheck {
        generation: u64,
    },
    LoadChange {
        background: f64,
    },
}

/// An event in a shard's calendar queue; its `(at_us, cause)` ordering key
/// lives in the queue entry itself (see [`CalendarQueue`]).
#[derive(Debug)]
pub(crate) struct Event {
    pub(crate) node: NodeId,
    pub(crate) kind: EventKind,
}

/// A cross-shard event in flight: carried through an outbox with its full
/// ordering key, enqueued into the destination shard at the window barrier.
#[derive(Debug)]
pub(crate) struct RemoteEvent {
    pub(crate) at_us: u64,
    pub(crate) cause: u64,
    pub(crate) ev: Event,
}

struct SimNode {
    info: MachineInfo,
    cpu: Cpu,
    /// Kept **sorted by `PortId`** (the order the old `BTreeMap` iterated
    /// in): `kill_node`/`revive_node` replay `on_crash`/`on_start` in this
    /// order, which must not vary run to run. Nodes host a handful of
    /// endpoints, so lookup is a binary search over a short, contiguous
    /// array — cheaper and cache-friendlier than a tree walk.
    endpoints: Vec<(PortId, Box<dyn Endpoint>)>,
    /// Index of the last endpoint hit — a one-entry port→slot cache.
    /// Validated against the port on every use, so staleness is harmless.
    ep_cache: u32,
    /// Endpoint-visible randomness (`Host::rand_u64`).
    rng: SmallRng,
    /// Fault-judgment randomness, drawn in this node's execution order so
    /// verdicts are identical for any shard count. Seeded separately from
    /// `rng` so endpoint draws and link draws can't perturb each other.
    link_rng: SmallRng,
    send_seq: u64,
    /// `origin_of(node) << CAUSE_SEQ_BITS`, precomputed.
    cause_base: u64,
    cause_seq: u64,
    /// Lazy-cancel counts, keyed by `(port, token)`. `DetHashState`: this
    /// map is hit on every cancel and every cancelled pop, with keys the
    /// engine itself produces — SipHash's DoS hardening is waste here.
    cancelled_timers: HashMap<(PortId, u64), u32, DetHashState>,
    /// Sum of the counts in `cancelled_timers`. While zero, timer pops fire
    /// directly without a hash lookup — the common case on nodes that never
    /// cancel (or whose cancellations have all been consumed).
    pending_cancels: u32,
    dead: bool,
}

impl SimNode {
    /// Endpoint slot for `port`: cache check, then binary search.
    #[inline]
    fn ep_slot(&mut self, port: PortId) -> Option<usize> {
        let c = self.ep_cache as usize;
        if let Some((p, _)) = self.endpoints.get(c) {
            if *p == port {
                return Some(c);
            }
        }
        match self.endpoints.binary_search_by_key(&port, |(p, _)| *p) {
            Ok(i) => {
                self.ep_cache = i as u32;
                Some(i)
            }
            Err(_) => None,
        }
    }

    /// Next cause key from this node's counter stream.
    #[inline]
    fn next_cause(&mut self) -> u64 {
        let c = self.cause_base | self.cause_seq;
        self.cause_seq += 1;
        c
    }
}

/// Dense `NodeId → slab slot` index. Node ids in every experiment are
/// small and dense, so the common path is a single array load; ids past
/// [`NodeSlots::DENSE_CAP`] (which would make the array wasteful) spill to
/// a side map.
#[derive(Default)]
struct NodeSlots {
    dense: Vec<u32>,
    spill: HashMap<u32, u32>,
}

impl NodeSlots {
    const DENSE_CAP: usize = 1 << 16;
    const EMPTY: u32 = u32::MAX;

    #[inline]
    fn get(&self, node: NodeId) -> Option<usize> {
        let id = node.0 as usize;
        if id < Self::DENSE_CAP {
            match self.dense.get(id) {
                Some(&s) if s != Self::EMPTY => Some(s as usize),
                _ => None,
            }
        } else {
            self.spill.get(&node.0).map(|&s| s as usize)
        }
    }

    /// Returns false if the node was already present.
    fn insert(&mut self, node: NodeId, slot: usize) -> bool {
        let id = node.0 as usize;
        if id < Self::DENSE_CAP {
            if self.dense.len() <= id {
                self.dense.resize(id + 1, Self::EMPTY);
            }
            if self.dense[id] != Self::EMPTY {
                return false;
            }
            self.dense[id] = slot as u32;
            true
        } else {
            self.spill.insert(node.0, slot as u32).is_none()
        }
    }
}

/// Plain-integer staging for [`NetStats`] (see `Shard::hot_stats`).
#[derive(Default)]
struct HotStats {
    sent: u64,
    bytes_sent: u64,
    heartbeats_sent: u64,
    delivered: u64,
    dropped: u64,
    duplicated: u64,
}

/// A work mutation, kept in issue order. Interleaving starts and cancels in
/// one list (rather than two) preserves the order the endpoint issued them:
/// `cancel(p)` then `start(p)` in one callback leaves `p` running, while
/// `start(p)` then `cancel(p)` leaves it stopped.
enum WorkOp {
    Start(u64, f64),
    Cancel(u64),
}

/// Deferred side effects collected while an endpoint runs.
///
/// One instance lives on the [`Shard`] and is lent to each dispatch in
/// turn; the vectors are drained (not dropped) when applied, so after
/// warm-up the hot path allocates nothing here.
#[derive(Default)]
struct Effects {
    sends: Vec<(Addr, Addr, Bytes, MsgCategory)>,
    timers: Vec<(u64, u64)>,
    timer_cancels: Vec<u64>,
    work_ops: Vec<WorkOp>,
    logs: Vec<String>,
    /// Pooled encode scratch served to endpoints through
    /// [`Host::encode_with`]: cleared per message, capacity retained, so
    /// hot-path envelope encode stops allocating per message.
    enc: vce_codec::Encoder,
    /// Rotating slot pool that turns the scratch encoder's contents into
    /// `Bytes` without a per-message `Arc::from` — slots are reclaimed as
    /// soon as every consumer view drops (see `bytes::BytesPool`).
    pool: bytes::BytesPool,
}

struct HostCtx<'a> {
    now: u64,
    info: &'a MachineInfo,
    load: f64,
    /// CPU state advanced to `now`, for lazy job lookups.
    cpu: &'a Cpu,
    port: PortId,
    trace_on: bool,
    rng: &'a mut SmallRng,
    fx: &'a mut Effects,
}

impl Host for HostCtx<'_> {
    fn now_us(&self) -> u64 {
        self.now
    }
    fn send(&mut self, src: Addr, dst: Addr, payload: Bytes) {
        self.fx
            .sends
            .push((src, dst, payload, MsgCategory::Protocol));
    }
    fn send_category(&mut self, src: Addr, dst: Addr, payload: Bytes, category: MsgCategory) {
        self.fx.sends.push((src, dst, payload, category));
    }
    fn set_timer(&mut self, delay_us: u64, token: u64) {
        self.fx.timers.push((delay_us, token));
    }
    fn cancel_timer(&mut self, token: u64) {
        self.fx.timer_cancels.push(token);
    }
    fn start_work(&mut self, pid: u64, mops: f64) {
        self.load += 1.0; // reflect immediately in subsequent load() calls
        self.fx.work_ops.push(WorkOp::Start(pid, mops));
    }
    fn cancel_work(&mut self, pid: u64) {
        self.fx.work_ops.push(WorkOp::Cancel(pid));
    }
    fn work_remaining(&self, pid: u64) -> Option<f64> {
        // The latest mutation within this callback wins; otherwise consult
        // the CPU directly (advanced to `now` before the callback began).
        for op in self.fx.work_ops.iter().rev() {
            match *op {
                WorkOp::Start(p, m) if p == pid => return Some(m),
                WorkOp::Cancel(p) if p == pid => return None,
                _ => {}
            }
        }
        self.cpu.remaining((self.port, pid))
    }
    fn load(&self) -> f64 {
        self.load
    }
    fn machine(&self) -> &MachineInfo {
        self.info
    }
    fn rand_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
    fn log(&mut self, line: String) {
        if self.trace_on {
            self.fx.logs.push(line);
        }
    }
    fn log_enabled(&self) -> bool {
        self.trace_on
    }
    fn encode_with(&mut self, f: &mut dyn FnMut(&mut vce_codec::Encoder)) -> Bytes {
        self.fx.enc.clear();
        f(&mut self.fx.enc);
        self.fx.pool.freeze(self.fx.enc.as_slice())
    }
}

/// Accumulator for coalescing consecutive deliverable sends into one
/// [`EventKind::DeliverBatch`] entry (see `Shard::route_send`). Carries the
/// first envelope's cause as the batch key.
enum PendingDelivery {
    None,
    One(u64, u64, NodeId, Envelope),
    Many(u64, u64, NodeId, Vec<Envelope>),
}

/// Shard-local trace buffer: records carry their merge key `(at_us, phase,
/// cause)` so the facade can splice S buffers into one global-order trace
/// at barrier-sync points.
pub(crate) struct TraceBuf {
    enabled: bool,
    pub(crate) buf: Vec<(u64, u8, u64, TraceEvent)>,
}

impl TraceBuf {
    fn new(enabled: bool) -> Self {
        Self {
            enabled,
            buf: Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn is_enabled(&self) -> bool {
        self.enabled
    }

    #[inline]
    fn push(&mut self, at_us: u64, phase: u8, cause: u64, node: NodeId, line: String) {
        if self.enabled {
            self.buf
                .push((at_us, phase, cause, TraceEvent { at_us, node, line }));
        }
    }
}

/// Shard-local record/replay buffer: every event pop lands here as an
/// [`EventRecord`] keyed by `(at_us, phase, cause)` — the same merge key the
/// trace uses — so the facade can splice S buffers into the one global-order
/// stream the `.vct` writer serialises. Off (and allocation-free) unless a
/// recorder is attached.
pub(crate) struct RecBuf {
    enabled: bool,
    pub(crate) buf: Vec<(u64, u8, u64, EventRecord)>,
}

impl RecBuf {
    fn new() -> Self {
        Self {
            enabled: false,
            buf: Vec::new(),
        }
    }

    pub(crate) fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    #[inline]
    pub(crate) fn is_enabled(&self) -> bool {
        self.enabled
    }

    #[inline]
    fn push(&mut self, phase: u8, rec: EventRecord) {
        if self.enabled {
            self.buf.push((rec.at_us, phase, rec.cause, rec));
        }
    }
}

/// Stable code for an address folded into delivery records: node and port
/// in one word.
#[inline]
fn addr_code(a: Addr) -> u64 {
    (u64::from(a.node.0) << 32) | u64::from(a.port.0)
}

/// Apply one fault op to a plan — the pure plan mutation, shared by the
/// canonical plan on the facade and every shard's replica.
pub(crate) fn apply_plan_op(plan: &mut FaultPlan, op: &FaultOp) {
    match op {
        FaultOp::Kill(n) => plan.kill(*n),
        FaultOp::Revive(n) => plan.revive(*n),
        FaultOp::Partition(n, g) => plan.set_partition(*n, *g),
        FaultOp::Heal => plan.heal_partitions(),
        FaultOp::DefaultLink(lf) => plan.default_link = *lf,
        FaultOp::Link(src, dst, lf) => plan.set_link(*src, *dst, *lf),
        FaultOp::ClearLink(src, dst) => plan.clear_link(*src, *dst),
        // CPU degradation has no plan component — the network judges
        // nothing differently; the owning shard slows the node's CPU.
        FaultOp::SlowNode(..) => {}
    }
}

/// One partition of the simulator: a slab of nodes, their calendar queue,
/// a fault-plan replica, statistics and a trace buffer. The facade
/// (`vce_sim::Sim`) owns `S` of these; with `S = 1` the shard *is* the
/// serial engine and runs with zero coordination overhead.
pub(crate) struct Shard {
    pub(crate) index: usize,
    pub(crate) total: usize,
    pub(crate) now: u64,
    events: CalendarQueue<Event>,
    /// Index-stable node slab: slots are assigned in registration order and
    /// never reused or removed (crash marks the node dead in place).
    nodes: Vec<SimNode>,
    slots: NodeSlots,
    /// Replica of the facade's canonical [`FaultPlan`], updated op-wise at
    /// fences so every shard judges deliveries against identical state.
    pub(crate) fault: FaultPlan,
    topology: Arc<Topology>,
    pub(crate) stats: NetStats,
    /// Hot-path counter staging: [`NetStats`]' atomics cost a locked RMW
    /// per increment, which at several increments per message is real money
    /// on the storm path. Mutations land here as plain adds and are folded
    /// into `stats` at sync points ([`Shard::flush_stats`]), before any
    /// reader can observe them.
    hot_stats: HotStats,
    pub(crate) trace: TraceBuf,
    pub(crate) rec: RecBuf,
    pub(crate) events_processed: u64,
    /// Scratch [`Effects`] reused across dispatches (capacity persists).
    /// Boxed so lending it to a callback is a pointer move, not a copy of
    /// six buffer headers; `None` only while a dispatch is borrowing it.
    scratch_fx: Option<Box<Effects>>,
    /// Recycled [`EventKind::DeliverBatch`] buffers: drained batches park
    /// here and `route_send` reuses them, so steady-state burst delivery
    /// allocates no fresh `Vec`s.
    batch_pool: Vec<Vec<Envelope>>,
    /// Cross-shard events produced this window, per destination shard
    /// (`outboxes[self.index]` stays empty). Exchanged at window barriers.
    outboxes: Vec<Vec<RemoteEvent>>,
    /// End of the currently-running window, or `u64::MAX` outside windows
    /// (driver time). Guards the conservative-barrier invariant: a remote
    /// event must never land inside the window that produced it.
    window_end: u64,
    seed: u64,
    /// Fallback counters for effects attributed to no registered node
    /// (unreachable in practice; kept defined rather than panicking).
    orphan_seq: u64,
    orphan_cause_seq: u64,
    orphan_rng: SmallRng,
}

impl Shard {
    pub(crate) fn new(
        index: usize,
        total: usize,
        seed: u64,
        topology: Arc<Topology>,
        trace_enabled: bool,
    ) -> Self {
        Self {
            index,
            total,
            now: 0,
            events: CalendarQueue::new(),
            nodes: Vec::new(),
            slots: NodeSlots::default(),
            fault: FaultPlan::none(),
            topology,
            stats: NetStats::new(),
            hot_stats: HotStats::default(),
            trace: TraceBuf::new(trace_enabled),
            rec: RecBuf::new(),
            events_processed: 0,
            scratch_fx: Some(Box::default()),
            batch_pool: Vec::new(),
            outboxes: (0..total).map(|_| Vec::new()).collect(),
            window_end: u64::MAX,
            seed,
            orphan_seq: 0,
            orphan_cause_seq: 0,
            orphan_rng: SmallRng::seed_from_u64(seed ^ u64::MAX),
        }
    }

    // ---- registration (driver time) ----

    pub(crate) fn add_node_with_load(&mut self, info: MachineInfo, load: &LoadTrace, now: u64) {
        let node = info.node;
        debug_assert_eq!(shard_of(node, self.total), self.index);
        assert!(
            origin_of(node) < MAX_ORIGIN,
            "node id {node} too large for a cause-key origin"
        );
        let node_seed = self.seed ^ (u64::from(node.0) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let link_seed = self.seed ^ (u64::from(node.0) + 1).wrapping_mul(0xD1B5_4A32_D192_ED03);
        let cpu = Cpu::new(info.speed_mops);
        let slot = self.nodes.len();
        assert!(self.slots.insert(node, slot), "node {node} added twice");
        self.nodes.push(SimNode {
            info,
            cpu,
            endpoints: Vec::new(),
            ep_cache: 0,
            rng: SmallRng::seed_from_u64(node_seed),
            link_rng: SmallRng::seed_from_u64(link_seed),
            send_seq: 0,
            cause_base: origin_of(node) << CAUSE_SEQ_BITS,
            cause_seq: 0,
            cancelled_timers: HashMap::default(),
            pending_cancels: 0,
            dead: false,
        });
        for &(at_us, background) in load.steps() {
            let cause = self.nodes[slot].next_cause();
            self.events.push(
                at_us.max(now),
                cause,
                Event {
                    node,
                    kind: EventKind::LoadChange { background },
                },
            );
        }
    }

    pub(crate) fn add_endpoint(&mut self, addr: Addr, ep: Box<dyn Endpoint>, now: u64) {
        let slot = self
            .slots
            .get(addr.node)
            .unwrap_or_else(|| panic!("endpoint on unknown node {}", addr.node));
        let node = &mut self.nodes[slot];
        match node.endpoints.binary_search_by_key(&addr.port, |(p, _)| *p) {
            Ok(_) => panic!("endpoint {addr} registered twice"),
            Err(i) => node.endpoints.insert(i, (addr.port, ep)),
        }
        let cause = self.nodes[slot].next_cause();
        self.events.push(
            now,
            cause,
            Event {
                node: addr.node,
                kind: EventKind::Start { port: addr.port },
            },
        );
    }

    /// Enqueue a driver-originated event (injection) on this shard. Driver
    /// time only: the queue is directly reachable, no outbox involved.
    pub(crate) fn push_driver_event(
        &mut self,
        at_us: u64,
        cause: u64,
        node: NodeId,
        env: Envelope,
    ) {
        debug_assert_eq!(shard_of(node, self.total), self.index);
        self.events.push(
            at_us,
            cause,
            Event {
                node,
                kind: EventKind::Deliver(env),
            },
        );
    }

    /// Schedule an immediate background-load change for an owned node.
    pub(crate) fn set_background(&mut self, node: NodeId, background: f64, now: u64) {
        let Some(slot) = self.slots.get(node) else {
            return;
        };
        let cause = self.nodes[slot].next_cause();
        self.events.push(
            now,
            cause,
            Event {
                node,
                kind: EventKind::LoadChange { background },
            },
        );
    }

    // ---- inspection ----

    pub(crate) fn node_load(&self, node: NodeId) -> f64 {
        self.slots
            .get(node)
            .map_or(0.0, |s| self.nodes[s].cpu.load())
    }

    pub(crate) fn node_is_dead(&self, node: NodeId) -> bool {
        self.live_slot(node).is_none()
    }

    pub(crate) fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().map(|n| n.info.node)
    }

    pub(crate) fn metrics(&mut self, node: NodeId, now: u64) -> Option<NodeMetrics> {
        self.slots.get(node).map(|s| {
            let n = &mut self.nodes[s];
            n.cpu.advance(now);
            NodeMetrics {
                node,
                class: n.info.class,
                busy_us: n.cpu.busy_us(),
                elapsed_us: now,
                completed_jobs: n.cpu.completed_jobs(),
                mops_done: n.cpu.total_mops_done(),
                avg_load: if now == 0 {
                    0.0
                } else {
                    n.cpu.weighted_load_us() / now as f64
                },
                load_now: n.cpu.load(),
            }
        })
    }

    pub(crate) fn with_endpoint_mut<E: 'static, T>(
        &mut self,
        addr: Addr,
        f: impl FnOnce(&mut E) -> T,
    ) -> Option<T> {
        let node = &mut self.nodes[self.slots.get(addr.node)?];
        let i = node.ep_slot(addr.port)?;
        let any = node.endpoints[i].1.as_any_mut()?;
        any.downcast_mut::<E>().map(f)
    }

    // ---- window machinery ----

    #[inline]
    pub(crate) fn advance_clock(&mut self, t: u64) {
        if t > self.now {
            self.now = t;
        }
    }

    pub(crate) fn peek_time(&mut self) -> Option<u64> {
        self.events.peek_time()
    }

    pub(crate) fn set_window(&mut self, w_end: u64) {
        self.window_end = w_end;
    }

    pub(crate) fn clear_window(&mut self) {
        self.window_end = u64::MAX;
    }

    /// Run every queued event strictly before `w_end`.
    pub(crate) fn run_window(&mut self, w_end: u64) {
        while let Some(at) = self.events.peek_time() {
            if at >= w_end {
                break;
            }
            self.step_one();
        }
    }

    /// Process one event. Returns `false` when the queue is empty.
    pub(crate) fn step_one(&mut self) -> bool {
        let Some((at_us, cause, ev)) = self.events.pop() else {
            return false;
        };
        debug_assert!(at_us >= self.now, "event queue went backwards");
        self.now = at_us;
        self.events_processed += 1;
        if self.rec.is_enabled() {
            self.record_pop(at_us, cause, &ev);
        }
        self.handle(cause, ev);
        true
    }

    /// Append this pop to the record/replay buffer. Batched deliveries are
    /// recorded one envelope each under their consecutive same-origin
    /// causes, so the record stream is identical to the uncoalesced form.
    fn record_pop(&mut self, at_us: u64, cause: u64, ev: &Event) {
        let node = ev.node;
        let rec = |kind, a, b| EventRecord {
            at_us,
            cause,
            node,
            kind,
            a,
            b,
        };
        match &ev.kind {
            EventKind::Start { port } => {
                self.rec
                    .push(PHASE_EVENT, rec(EV_START, u64::from(port.0), 0));
            }
            EventKind::Deliver(env) => {
                self.rec
                    .push(PHASE_EVENT, rec(EV_DELIVER, env.seq, addr_code(env.src)));
            }
            EventKind::DeliverBatch(envs) => {
                for (i, env) in envs.iter().enumerate() {
                    self.rec.push(
                        PHASE_EVENT,
                        EventRecord {
                            at_us,
                            cause: cause + i as u64,
                            node,
                            kind: EV_DELIVER,
                            a: env.seq,
                            b: addr_code(env.src),
                        },
                    );
                }
            }
            EventKind::Timer { port, token } => {
                self.rec
                    .push(PHASE_EVENT, rec(EV_TIMER, *token, u64::from(port.0)));
            }
            EventKind::CpuCheck { generation } => {
                self.rec.push(PHASE_EVENT, rec(EV_CPU, *generation, 0));
            }
            EventKind::LoadChange { background } => {
                self.rec
                    .push(PHASE_EVENT, rec(EV_LOAD, background.to_bits(), 0));
            }
        }
    }

    /// Fold the staged hot-path counters into the shared [`NetStats`].
    /// Called at sync points (window barriers, run-call returns) — always
    /// before any reader can observe `stats`, so the staging is invisible.
    pub(crate) fn flush_stats(&mut self) {
        let h = std::mem::take(&mut self.hot_stats);
        if h.sent | h.delivered | h.dropped | h.duplicated != 0 {
            self.stats.record_batch(
                h.sent,
                h.bytes_sent,
                h.heartbeats_sent,
                h.delivered,
                h.dropped,
                h.duplicated,
            );
        }
    }

    /// Drain arrived cross-shard events into the local queue. Push order
    /// does not matter: the queue orders purely on `(at_us, cause)`.
    pub(crate) fn enqueue_remote_drain(&mut self, mail: &mut Vec<RemoteEvent>) {
        for m in mail.drain(..) {
            self.events.push(m.at_us, m.cause, m.ev);
        }
    }

    /// Move this shard's outbox for `dst` into `sink` (capacity of the
    /// outbox is retained for the next window).
    pub(crate) fn drain_outbox_into(&mut self, dst: usize, sink: &mut Vec<RemoteEvent>) {
        sink.append(&mut self.outboxes[dst]);
    }

    pub(crate) fn outbox_is_empty(&self, dst: usize) -> bool {
        self.outboxes[dst].is_empty()
    }

    // ---- fences (fault ops and driver-time kills/revives) ----

    /// Apply one fence at `(at, cause)`: every shard updates its plan
    /// replica; the owning shard additionally performs the node-state part
    /// (crash/boot callbacks, trace line). Runs at window starts — never
    /// inside a window — so its ordering against events is the same for
    /// every shard count.
    pub(crate) fn apply_fence(&mut self, at: u64, cause: u64, op: &FaultOp) {
        self.advance_clock(at);
        apply_plan_op(&mut self.fault, op);
        if self.rec.is_enabled() {
            self.record_fence(at, cause, op);
        }
        match *op {
            FaultOp::Kill(n) => {
                if shard_of(n, self.total) == self.index {
                    self.kill_local(at, cause, n);
                }
            }
            FaultOp::Revive(n) => {
                if shard_of(n, self.total) == self.index {
                    self.revive_local(at, cause, n);
                }
            }
            FaultOp::Partition(n, group) => {
                if shard_of(n, self.total) == self.index && self.trace.is_enabled() {
                    self.trace.push(
                        at,
                        PHASE_FENCE,
                        cause,
                        n,
                        format!("engine: partition -> group {group}"),
                    );
                }
            }
            FaultOp::Heal => {
                if self.index == 0 && self.trace.is_enabled() {
                    self.trace.push(
                        at,
                        PHASE_FENCE,
                        cause,
                        NodeId(0),
                        "engine: partitions healed".into(),
                    );
                }
            }
            FaultOp::DefaultLink(lf) => {
                if self.index == 0 && self.trace.is_enabled() {
                    self.trace.push(
                        at,
                        PHASE_FENCE,
                        cause,
                        NodeId(0),
                        format!(
                            "engine: default link drop={} dup={} delay={}µs+{}µs",
                            lf.drop_prob, lf.dup_prob, lf.extra_delay_us, lf.jitter_us
                        ),
                    );
                }
            }
            FaultOp::Link(src, dst, lf) => {
                if shard_of(src, self.total) == self.index && self.trace.is_enabled() {
                    self.trace.push(
                        at,
                        PHASE_FENCE,
                        cause,
                        src,
                        format!(
                            "engine: link ->{} drop={} dup={} delay={}µs+{}µs",
                            dst.0, lf.drop_prob, lf.dup_prob, lf.extra_delay_us, lf.jitter_us
                        ),
                    );
                }
            }
            FaultOp::ClearLink(src, dst) => {
                if shard_of(src, self.total) == self.index && self.trace.is_enabled() {
                    self.trace.push(
                        at,
                        PHASE_FENCE,
                        cause,
                        src,
                        format!("engine: link ->{} cleared", dst.0),
                    );
                }
            }
            FaultOp::SlowNode(n, factor) => {
                if shard_of(n, self.total) == self.index {
                    self.slow_local(at, cause, n, factor);
                }
            }
        }
    }

    /// Degrade (or restore, `factor == 1`) an owned machine's CPU. The
    /// node stays alive — timers and messages are unaffected, only work
    /// stretches — so outstanding completion predictions are invalidated
    /// (generation bump inside `set_slow_factor`) and re-predicted.
    fn slow_local(&mut self, at: u64, cause: u64, node: NodeId, factor: u32) {
        if let Some(s) = self.slots.get(node) {
            let n = &mut self.nodes[s];
            n.cpu.advance(at);
            n.cpu.set_slow_factor(factor);
        }
        if self.trace.is_enabled() {
            let msg = if factor <= 1 {
                "engine: cpu restored to full speed".into()
            } else {
                format!("engine: cpu slowed {factor}x")
            };
            self.trace.push(at, PHASE_FENCE, cause, node, msg);
        }
        self.schedule_cpu_check(node);
    }

    /// Append a fence application to the record/replay buffer. Exactly one
    /// shard records each fence — the owning shard for node-scoped ops,
    /// shard 0 for global ones — mirroring the trace-line conditions, so
    /// the merged stream is identical for every shard count.
    fn record_fence(&mut self, at: u64, cause: u64, op: &FaultOp) {
        let (node, a, b) = match *op {
            FaultOp::Kill(n) => (n, FENCE_KILL, 0),
            FaultOp::Revive(n) => (n, FENCE_REVIVE, 0),
            FaultOp::Partition(n, group) => (n, FENCE_PARTITION, u64::from(group)),
            FaultOp::Heal => (NodeId(0), FENCE_HEAL, 0),
            FaultOp::DefaultLink(lf) => {
                let mut h = vce_net::Fnv64::new();
                h.write_f64(lf.drop_prob)
                    .write_f64(lf.dup_prob)
                    .write_u64(lf.extra_delay_us)
                    .write_u64(lf.jitter_us);
                (NodeId(0), FENCE_LINK, h.finish())
            }
            FaultOp::Link(src, dst, lf) => {
                let mut h = vce_net::Fnv64::new();
                h.write_f64(lf.drop_prob)
                    .write_f64(lf.dup_prob)
                    .write_u64(lf.extra_delay_us)
                    .write_u64(lf.jitter_us);
                (
                    src,
                    FENCE_LINK_DIR,
                    (u64::from(dst.0) << 32) | (h.finish() & 0xFFFF_FFFF),
                )
            }
            FaultOp::ClearLink(src, dst) => (src, FENCE_CLEAR_LINK, u64::from(dst.0)),
            FaultOp::SlowNode(n, factor) => (n, FENCE_SLOW, u64::from(factor)),
        };
        let owns = match *op {
            FaultOp::Kill(n)
            | FaultOp::Revive(n)
            | FaultOp::Partition(n, _)
            | FaultOp::SlowNode(n, _) => shard_of(n, self.total) == self.index,
            FaultOp::Link(src, ..) | FaultOp::ClearLink(src, _) => {
                shard_of(src, self.total) == self.index
            }
            FaultOp::Heal | FaultOp::DefaultLink(_) => self.index == 0,
        };
        if owns {
            self.rec.push(
                PHASE_FENCE,
                EventRecord {
                    at_us: at,
                    cause,
                    node,
                    kind: EV_FENCE,
                    a,
                    b,
                },
            );
        }
    }

    /// Fold every owned node's observable state into per-node digests,
    /// appended to `out` as `(node, hash)` (unsorted; the facade sorts the
    /// combined slice). Folds only shard-invariant state: slab-independent
    /// scalars, CPU accounting, and each endpoint's
    /// [`Endpoint::snapshot_hash`] in sorted-port order. Reads the CPU
    /// without advancing it — its advanced-to point is a pure function of
    /// the events dispatched, which is identical for every shard count.
    pub(crate) fn node_hashes(&self, out: &mut Vec<(NodeId, u64)>) {
        for n in &self.nodes {
            let mut h = vce_net::Fnv64::new();
            h.write_u64(u64::from(n.info.node.0))
                .write_bool(n.dead)
                .write_u64(n.cause_seq)
                .write_u64(n.send_seq)
                .write_u64(n.cpu.busy_us())
                .write_u64(n.cpu.completed_jobs())
                .write_u64(n.cpu.job_count() as u64)
                .write_u64(u64::from(n.cpu.slow_factor()))
                .write_f64(n.cpu.background())
                .write_f64(n.cpu.total_mops_done());
            for (port, ep) in &n.endpoints {
                h.write_u64(u64::from(port.0)).write_u64(ep.snapshot_hash());
            }
            out.push((n.info.node, h.finish()));
        }
    }

    /// Crash an owned machine: give each endpoint its crash instant (the
    /// plan replica is already updated, so anything `on_crash` sends is
    /// dropped by the fault judge), then mark it dead and clear its CPU.
    fn kill_local(&mut self, at: u64, cause: u64, node: NodeId) {
        let slot = self.slots.get(node);
        let ports: Vec<PortId> = match slot {
            Some(s) if !self.nodes[s].dead => {
                self.nodes[s].endpoints.iter().map(|(p, _)| *p).collect()
            }
            _ => Vec::new(),
        };
        if let Some(s) = slot {
            for port in ports {
                self.dispatch(s, node, port, PHASE_FENCE, cause, |ep, host| {
                    ep.on_crash(host)
                });
            }
            let n = &mut self.nodes[s];
            n.dead = true;
            n.cpu.advance(at);
            n.cpu.clear();
        }
        if self.trace.is_enabled() {
            self.trace
                .push(at, PHASE_FENCE, cause, node, "engine: node killed".into());
        }
    }

    /// Revive an owned machine and re-run `on_start` on its endpoints.
    fn revive_local(&mut self, at: u64, cause: u64, node: NodeId) {
        if let Some(s) = self.slots.get(node) {
            let n = &mut self.nodes[s];
            n.dead = false;
            // Sorted by port: the deterministic replay order the old
            // BTreeMap iteration gave us.
            let ports: Vec<PortId> = n.endpoints.iter().map(|(p, _)| *p).collect();
            for port in ports {
                let c = self.nodes[s].next_cause();
                self.events.push(
                    at,
                    c,
                    Event {
                        node,
                        kind: EventKind::Start { port },
                    },
                );
            }
        }
        if self.trace.is_enabled() {
            self.trace
                .push(at, PHASE_FENCE, cause, node, "engine: node revived".into());
        }
    }

    // ---- event handling ----

    fn handle(&mut self, cause: u64, ev: Event) {
        match ev.kind {
            EventKind::Start { port } => {
                let Some(slot) = self.live_slot(ev.node) else {
                    return;
                };
                self.dispatch(slot, ev.node, port, PHASE_EVENT, cause, |ep, host| {
                    ep.on_start(host)
                });
            }
            EventKind::Deliver(env) => self.deliver_one(cause, ev.node, env),
            EventKind::DeliverBatch(mut envs) => {
                // Count each coalesced delivery like its uncoalesced form,
                // so `events_processed` is independent of batching.
                self.events_processed += envs.len() as u64 - 1;
                for env in envs.drain(..) {
                    self.deliver_one(cause, ev.node, env);
                }
                // Park the drained buffer for route_send to reuse.
                if self.batch_pool.len() < 64 {
                    self.batch_pool.push(envs);
                }
            }
            EventKind::Timer { port, token } => {
                let Some(slot) = self.slots.get(ev.node) else {
                    return;
                };
                let n = &mut self.nodes[slot];
                if n.dead {
                    return;
                }
                // Fast path: with no cancellations outstanding anywhere on
                // this node, fire without hashing into the cancel map.
                if n.pending_cancels > 0 {
                    if let Some(c) = n.cancelled_timers.get_mut(&(port, token)) {
                        *c -= 1;
                        n.pending_cancels -= 1;
                        if *c == 0 {
                            n.cancelled_timers.remove(&(port, token));
                        }
                        return;
                    }
                }
                self.dispatch(slot, ev.node, port, PHASE_EVENT, cause, move |ep, host| {
                    ep.on_timer(token, host)
                });
            }
            EventKind::CpuCheck { generation } => {
                let Some(slot) = self.live_slot(ev.node) else {
                    return;
                };
                let now = self.now;
                let completions: Vec<(PortId, u64)> = {
                    let n = &mut self.nodes[slot];
                    if n.cpu.generation != generation {
                        return; // stale prediction
                    }
                    n.cpu.advance(now);
                    // Everything numerically finished completes together.
                    let done = n.cpu.done_jobs();
                    for &key in &done {
                        n.cpu.remove_job(key);
                        n.cpu.note_completed();
                    }
                    done
                };
                for (port, pid) in completions {
                    self.dispatch(slot, ev.node, port, PHASE_EVENT, cause, move |ep, host| {
                        ep.on_work_done(pid, host)
                    });
                }
                self.schedule_cpu_check(ev.node);
            }
            EventKind::LoadChange { background } => {
                if let Some(slot) = self.slots.get(ev.node) {
                    let now = self.now;
                    let n = &mut self.nodes[slot];
                    n.cpu.advance(now);
                    n.cpu.set_background(background);
                    if self.trace.is_enabled() {
                        self.trace.push(
                            now,
                            PHASE_EVENT,
                            cause,
                            ev.node,
                            format!("engine: background load -> {background}"),
                        );
                    }
                    self.schedule_cpu_check(ev.node);
                }
            }
        }
    }

    fn deliver_one(&mut self, cause: u64, node: NodeId, env: Envelope) {
        // Specialised dispatch for the dominant event kind: one slab index
        // covers the liveness check, the endpoint lookup, and the callback
        // itself.
        let now = self.now;
        let trace_on = self.trace.is_enabled();
        let port = env.dst.port;
        let mut fx = self.scratch_fx.take().unwrap_or_default();
        {
            let Some(slot) = self.slots.get(node) else {
                self.scratch_fx = Some(fx);
                self.hot_stats.dropped += 1;
                return;
            };
            let n = &mut self.nodes[slot];
            // The destination may have died after the send was judged.
            if n.dead || self.fault.is_dead(env.dst.node) {
                self.scratch_fx = Some(fx);
                self.hot_stats.dropped += 1;
                return;
            }
            self.hot_stats.delivered += 1;
            let Some(i) = n.ep_slot(port) else {
                self.scratch_fx = Some(fx);
                if trace_on {
                    self.trace.push(
                        now,
                        PHASE_EVENT,
                        cause,
                        node,
                        format!("engine: no endpoint for port {port:?}"),
                    );
                }
                return;
            };
            let SimNode {
                info,
                cpu,
                endpoints,
                rng,
                ..
            } = n;
            let ep = &mut endpoints[i].1;
            cpu.advance(now);
            let mut ctx = HostCtx {
                now,
                info,
                load: cpu.load(),
                cpu,
                port,
                trace_on,
                rng,
                fx: &mut fx,
            };
            ep.on_envelope(env, &mut ctx);
        }
        self.apply_effects(node, port, PHASE_EVENT, cause, &mut fx);
        self.scratch_fx = Some(fx);
    }

    /// Slab slot of `node` if it exists and is alive.
    #[inline]
    fn live_slot(&self, node: NodeId) -> Option<usize> {
        self.slots.get(node).filter(|&s| !self.nodes[s].dead)
    }

    fn schedule_cpu_check(&mut self, node: NodeId) {
        let now = self.now;
        let next = self.slots.get(node).and_then(|s| {
            let n = &mut self.nodes[s];
            n.cpu
                .next_completion(now)
                .map(|(_, at)| (at, n.cpu.generation, n.next_cause()))
        });
        if let Some((at, generation, cause)) = next {
            // A CPU check targets the node itself: always intra-shard.
            self.events.push(
                at,
                cause,
                Event {
                    node,
                    kind: EventKind::CpuCheck { generation },
                },
            );
        }
    }

    /// Run one endpoint callback and apply its effects. `slot` must be
    /// `node_id`'s slab slot. `(tphase, tcause)` key any trace lines the
    /// callback emits.
    fn dispatch(
        &mut self,
        slot: usize,
        node_id: NodeId,
        port: PortId,
        tphase: u8,
        tcause: u64,
        f: impl FnOnce(&mut dyn Endpoint, &mut dyn Host),
    ) {
        let now = self.now;
        let trace_on = self.trace.is_enabled();
        // Lend the shared scratch buffers to this callback; drained on
        // apply, returned below with their capacity intact. (apply_effects
        // never re-enters dispatch, so one scratch instance suffices.)
        let mut fx = self.scratch_fx.take().unwrap_or_default();
        {
            let node = &mut self.nodes[slot];
            let Some(i) = node.ep_slot(port) else {
                self.scratch_fx = Some(fx);
                return;
            };
            // Disjoint field borrows: the endpoint (mut) runs against its
            // node's info/cpu (shared) and rng (mut) with no clones and
            // without moving it out of the table.
            let SimNode {
                info,
                cpu,
                endpoints,
                rng,
                ..
            } = node;
            let ep = &mut endpoints[i].1;
            cpu.advance(now);
            let mut ctx = HostCtx {
                now,
                info,
                load: cpu.load(),
                cpu,
                port,
                trace_on,
                rng,
                fx: &mut fx,
            };
            f(ep.as_mut(), &mut ctx);
        }
        self.apply_effects(node_id, port, tphase, tcause, &mut fx);
        self.scratch_fx = Some(fx);
    }

    fn apply_effects(
        &mut self,
        node_id: NodeId,
        port: PortId,
        tphase: u8,
        tcause: u64,
        fx: &mut Effects,
    ) {
        let now = self.now;
        let slot = self.slots.get(node_id);
        for line in fx.logs.drain(..) {
            self.trace.push(now, tphase, tcause, node_id, line);
        }
        if !fx.timer_cancels.is_empty() {
            if let Some(s) = slot {
                let n = &mut self.nodes[s];
                for token in fx.timer_cancels.drain(..) {
                    *n.cancelled_timers.entry((port, token)).or_insert(0) += 1;
                    n.pending_cancels += 1;
                }
            } else {
                fx.timer_cancels.clear();
            }
        }
        for (delay, token) in fx.timers.drain(..) {
            let cause = match slot {
                Some(s) => self.nodes[s].next_cause(),
                None => self.next_orphan_cause(),
            };
            // A timer targets the node that armed it: always intra-shard.
            self.events.push(
                now + delay,
                cause,
                Event {
                    node: node_id,
                    kind: EventKind::Timer { port, token },
                },
            );
        }
        if !fx.work_ops.is_empty() {
            if let Some(s) = slot {
                let n = &mut self.nodes[s];
                n.cpu.advance(now);
                for op in fx.work_ops.drain(..) {
                    match op {
                        WorkOp::Start(pid, mops) => n.cpu.add_job((port, pid), mops),
                        WorkOp::Cancel(pid) => {
                            n.cpu.remove_job((port, pid));
                        }
                    }
                }
                self.schedule_cpu_check(node_id);
            } else {
                fx.work_ops.clear();
            }
        }
        if fx.sends.is_empty() {
            return;
        }
        let mut pending = PendingDelivery::None;
        // Every per-send draw — envelope seq, cause key(s), fault verdict —
        // comes from the *executing* node's counters and link RNG, in the
        // node's own execution order. That order is identical for any shard
        // layout, which is what makes the whole run shard-invariant.
        for (src, dst, payload, category) in fx.sends.drain(..) {
            let (seq, cause, verdict) = match slot {
                Some(s) => {
                    let n = &mut self.nodes[s];
                    let seq = n.send_seq;
                    n.send_seq += 1;
                    let cause = n.next_cause();
                    let verdict = self.fault.judge(src.node, dst.node, &mut n.link_rng);
                    (seq, cause, verdict)
                }
                None => {
                    let seq = self.orphan_seq;
                    self.orphan_seq += 1;
                    let cause = self.next_orphan_cause();
                    let verdict = self.fault.judge(src.node, dst.node, &mut self.orphan_rng);
                    (seq, cause, verdict)
                }
            };
            // A duplicate verdict needs a second ordering key (the two
            // copies may land at the same microsecond); drawn only then, so
            // counters advance identically on every layout.
            let cause2 = if matches!(verdict, Delivery::Duplicate { .. }) {
                Some(match slot {
                    Some(s) => self.nodes[s].next_cause(),
                    None => self.next_orphan_cause(),
                })
            } else {
                None
            };
            self.route_send(
                src,
                dst,
                payload,
                category,
                seq,
                cause,
                cause2,
                verdict,
                &mut pending,
            );
        }
        self.flush_delivery(pending);
    }

    fn next_orphan_cause(&mut self) -> u64 {
        let c = cause_key(MAX_ORIGIN, self.orphan_cause_seq);
        self.orphan_cause_seq += 1;
        c
    }

    #[allow(clippy::too_many_arguments)]
    fn route_send(
        &mut self,
        src: Addr,
        dst: Addr,
        payload: Bytes,
        category: MsgCategory,
        seq: u64,
        cause: u64,
        cause2: Option<u64>,
        verdict: Delivery,
        pending: &mut PendingDelivery,
    ) {
        let env = Envelope::new(src, dst, seq, payload);
        self.hot_stats.sent += 1;
        self.hot_stats.bytes_sent += env.wire_size() as u64;
        self.hot_stats.heartbeats_sent += u64::from(category == MsgCategory::Heartbeat);
        let base = self
            .topology
            .latency_us(src.node, dst.node, env.wire_size());
        match verdict {
            Delivery::Drop => self.hot_stats.dropped += 1,
            Delivery::Deliver { extra_delay_us } => {
                let at = self.now + base + extra_delay_us;
                // Coalesce with the previous deliverable send when both land
                // on the same node at the same instant: their causes are
                // consecutive draws from this node's counter (nothing else
                // can order between them), so one batched entry keyed by the
                // first cause fires in identical order.
                *pending = match std::mem::replace(pending, PendingDelivery::None) {
                    PendingDelivery::None => PendingDelivery::One(at, cause, dst.node, env),
                    PendingDelivery::One(pat, pcause, pnode, penv)
                        if pat == at && pnode == dst.node =>
                    {
                        // Reuse a drained batch buffer if one is parked.
                        let mut envs = self.batch_pool.pop().unwrap_or_default();
                        envs.push(penv);
                        envs.push(env);
                        PendingDelivery::Many(at, pcause, pnode, envs)
                    }
                    PendingDelivery::Many(pat, pcause, pnode, mut envs)
                        if pat == at && pnode == dst.node =>
                    {
                        envs.push(env);
                        PendingDelivery::Many(pat, pcause, pnode, envs)
                    }
                    other => {
                        self.flush_delivery(other);
                        PendingDelivery::One(at, cause, dst.node, env)
                    }
                };
            }
            Delivery::Duplicate {
                first_us,
                second_us,
            } => {
                // Flush first so ordering matches the serial (unbatched)
                // push sequence exactly.
                self.flush_delivery(std::mem::replace(pending, PendingDelivery::None));
                self.hot_stats.duplicated += 1;
                self.push_or_remote(
                    self.now + base + first_us,
                    cause,
                    dst.node,
                    EventKind::Deliver(env.clone()),
                );
                self.push_or_remote(
                    self.now + base + second_us,
                    cause2.expect("duplicate verdict drew a second cause"),
                    dst.node,
                    EventKind::Deliver(env),
                );
            }
        }
    }

    fn flush_delivery(&mut self, pending: PendingDelivery) {
        match pending {
            PendingDelivery::None => {}
            PendingDelivery::One(at, cause, node, env) => {
                self.push_or_remote(at, cause, node, EventKind::Deliver(env));
            }
            PendingDelivery::Many(at, cause, node, envs) => {
                self.push_or_remote(at, cause, node, EventKind::DeliverBatch(envs));
            }
        }
    }

    /// Route a new event to its owning shard: the local queue, or the
    /// outbox for exchange at the window barrier. The assert is the
    /// conservative-barrier invariant — network latency ≥ lookahead
    /// guarantees a cross-shard event never lands inside the window that
    /// produced it (`window_end` is `u64::MAX` outside windows).
    fn push_or_remote(&mut self, at_us: u64, cause: u64, node: NodeId, kind: EventKind) {
        let owner = shard_of(node, self.total);
        if owner == self.index {
            self.events.push(at_us, cause, Event { node, kind });
        } else {
            assert!(
                self.window_end == u64::MAX || at_us >= self.window_end,
                "cross-shard event at {at_us}µs inside its own window (end {}µs)",
                self.window_end
            );
            self.outboxes[owner].push(RemoteEvent {
                at_us,
                cause,
                ev: Event { node, kind },
            });
        }
    }
}
