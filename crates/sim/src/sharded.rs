//! The multi-core window runner: drives `S` [`Shard`]s through lock-step
//! conservative time windows on scoped worker threads.
//!
//! This is the **only** threaded module in the simulator, and the only one
//! allowed to be: determinism is restored not by avoiding threads but by
//! the conservative barrier (no cross-shard event can land inside the
//! window that produced it, so shards never observe each other mid-window)
//! plus the shard-invariant cause key (see [`crate::shard`]). Everything
//! the threads share is either synchronized at the two barriers per window
//! or commutative (per-shard `NetStats` merged later).
//!
//! # Protocol (three barrier waits per window)
//!
//! 1. Each worker ships the previous window's outboxes to the other
//!    workers' inboxes. **Barrier 0** — every envelope is in its
//!    destination inbox before anyone looks at one.
//! 2. Each worker drains its inbox of cross-shard events, then publishes
//!    its earliest event time. **Barrier A.**
//! 3. The coordinator (worker 0, which also runs shard 0) reads all the
//!    published times plus the next fence, picks the window `[w_start,
//!    w_end)` — `w_end = w_start + lookahead`, capped by the next fence
//!    and the run bound — or raises the stop flag. **Barrier B.**
//! 4. Every worker applies the fences at `w_start` to its plan replica
//!    (the owning shard also runs crash/boot callbacks), runs its events
//!    in `[w_start, w_end)`, buffers cross-shard sends in its outboxes
//!    and loops back to step 1.
//!
//! Inbox append order varies with thread timing, but the destination
//! queue orders purely on the `(at_us, cause)` key, so the queue state —
//! and therefore the whole run — is unaffected.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use std::thread; // vce-lint: allow(D004) the one sanctioned threaded module: window barriers + cause keys keep the run deterministic (DESIGN.md decision 17)

use vce_net::FaultOp;

use crate::shard::{RemoteEvent, Shard};

/// Whether the threaded runner is worth engaging: more than one shard and
/// more than one core. On a 1-core box the facade falls back to the
/// in-place window loop, which produces byte-identical output (the window
/// schedule is the same; only the execution substrate differs).
///
/// `VCE_SHARDS_THREADS=1` forces real worker threads regardless of core
/// count, so the barrier protocol itself is exercised by determinism
/// tests even on single-core CI runners (where it would otherwise always
/// take the fallback).
pub(crate) fn use_threads(shards: usize) -> bool {
    if shards <= 1 {
        return false;
    }
    if std::env::var_os("VCE_SHARDS_THREADS").is_some_and(|v| v == "1") {
        return true;
    }
    thread::available_parallelism().map_or(1, |n| n.get()) > 1
}

/// Schedule-permutation hook for the race gate: `VCE_SHARDS_STAGGER=<seed>`
/// makes every worker yield its timeslice a pseudo-random number of times
/// (derived from seed × shard index × window count × phase) before the
/// shipping and publishing phases, permuting the order in which workers
/// reach each barrier. A correct barrier protocol is insensitive to wake
/// order, so output must stay byte-identical across seeds — the
/// `shard_stagger` gate sweeps seeds and diffs digests against serial.
fn stagger_seed() -> Option<u64> {
    std::env::var("VCE_SHARDS_STAGGER").ok()?.parse().ok()
}

/// splitmix64: cheap, well-mixed, and dependency-free.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn stagger(seed: Option<u64>, shard: usize, window: u64, phase: u64) {
    let Some(seed) = seed else { return };
    let k = splitmix(seed ^ splitmix((shard as u64) << 32 | phase) ^ splitmix(window));
    for _ in 0..(k & 7) {
        thread::yield_now();
    }
}

/// Per-window plan published by the coordinator between barriers A and B.
struct Plan {
    w_end: AtomicU64,
    /// Fence-list index up to which (exclusive) this window's fences run.
    fence_upto: AtomicUsize,
    stop: AtomicBool,
}

/// Drive all shards until no event or fence remains at or before `t`.
///
/// `fences` must be sorted by `(at, cause)` with every entry ≤ `t`; each
/// worker applies them to its own replica at window starts, all at the
/// same fence cursor (published by the coordinator), so replicas never
/// diverge.
pub(crate) fn run(shards: &mut [Shard], fences: &[(u64, u64, FaultOp)], lookahead: u64, t: u64) {
    let n = shards.len();
    let barrier = Barrier::new(n);
    let next_times: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
    let inboxes: Vec<Mutex<Vec<RemoteEvent>>> = (0..n).map(|_| Mutex::new(Vec::new())).collect();
    let plan = Plan {
        w_end: AtomicU64::new(0),
        fence_upto: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
    };
    thread::scope(|scope| {
        let (first, rest) = shards.split_at_mut(1);
        for sh in rest.iter_mut() {
            let barrier = &barrier;
            let next_times = &next_times[..];
            let inboxes = &inboxes[..];
            let plan = &plan;
            scope.spawn(move || {
                worker(sh, barrier, next_times, inboxes, plan, fences, lookahead, t);
            });
        }
        // The coordinator doubles as shard 0's worker.
        worker(
            &mut first[0],
            &barrier,
            &next_times,
            &inboxes,
            &plan,
            fences,
            lookahead,
            t,
        );
    });
}

#[allow(clippy::too_many_arguments)]
fn worker(
    sh: &mut Shard,
    barrier: &Barrier,
    next_times: &[AtomicU64],
    inboxes: &[Mutex<Vec<RemoteEvent>>],
    plan: &Plan,
    fences: &[(u64, u64, FaultOp)],
    lookahead: u64,
    t: u64,
) {
    let i = sh.index;
    let is_coord = i == 0;
    let mut fence_cursor = 0usize;
    let seed = stagger_seed();
    let mut window_no = 0u64;
    loop {
        window_no += 1;
        stagger(seed, i, window_no, 0);
        // Phase 0: ship the previous window's outboxes, then rendezvous
        // before anyone drains. Without this barrier a fast receiver can
        // loop around, drain its still-empty inbox and publish its next
        // event time while a slow sender is still posting mail to it —
        // the coordinator then plans a window that silently excludes that
        // mail, and the receiver replays it a window late (time going
        // backwards, output diverging with thread timing).
        for (d, inbox) in inboxes.iter().enumerate() {
            if d != i && !sh.outbox_is_empty(d) {
                let mut sink = inbox.lock().expect("sim worker panicked");
                sh.drain_outbox_into(d, &mut sink);
            }
        }
        barrier.wait();
        stagger(seed, i, window_no, 1);
        // Phase 1: absorb cross-shard mail, publish the earliest thing
        // this shard still has to do.
        {
            let mut mail = inboxes[i].lock().expect("sim worker panicked");
            sh.enqueue_remote_drain(&mut mail);
        }
        next_times[i].store(sh.peek_time().unwrap_or(u64::MAX), Ordering::Release);
        barrier.wait();
        // Phase 2 (coordinator only, between the barriers — exclusive):
        // pick the next window or stop.
        if is_coord {
            let next_ev = next_times
                .iter()
                .map(|a| a.load(Ordering::Acquire))
                .min()
                .unwrap_or(u64::MAX);
            let next_fence = fences.get(fence_cursor).map_or(u64::MAX, |&(at, _, _)| at);
            let w_start = next_ev.min(next_fence);
            // `w_start == MAX` means every queue is empty and no fence
            // remains — checked explicitly because `w_start > t` can't
            // catch it when the caller's bound is itself `u64::MAX`
            // (`run_until_idle`).
            if w_start > t || w_start == u64::MAX {
                plan.stop.store(true, Ordering::Release);
            } else {
                let mut upto = fence_cursor;
                while upto < fences.len() && fences[upto].0 == w_start {
                    upto += 1;
                }
                let cap = fences.get(upto).map_or(u64::MAX, |&(at, _, _)| at);
                let w_end = w_start
                    .saturating_add(lookahead)
                    .min(cap)
                    .min(t.saturating_add(1));
                plan.fence_upto.store(upto, Ordering::Release);
                plan.w_end.store(w_end, Ordering::Release);
            }
        }
        barrier.wait();
        if plan.stop.load(Ordering::Acquire) {
            break;
        }
        // Phase 3: fences for this window (every replica, same cursor
        // range), then the window itself, then ship the outboxes.
        let upto = plan.fence_upto.load(Ordering::Acquire);
        while fence_cursor < upto {
            let (at, cause, ref op) = fences[fence_cursor];
            sh.apply_fence(at, cause, op);
            fence_cursor += 1;
        }
        let w_end = plan.w_end.load(Ordering::Acquire);
        sh.set_window(w_end);
        sh.run_window(w_end);
        sh.clear_window();
        // Outboxes filled by this window are shipped at the top of the
        // next iteration, behind the phase-0 barrier.
    }
}
