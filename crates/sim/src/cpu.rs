//! Processor-sharing CPU model.
//!
//! Each machine runs its resident jobs (VCE tasks + an "equivalent job
//! count" of background local-user activity) under ideal processor sharing:
//! with `n` jobs and background weight `b`, every job progresses at
//! `speed / (n + b)`. This is the classical model Krueger's and Clark's
//! idle-workstation studies assume, and it is what makes the paper's load
//! balancing arguments measurable: a task on a loaded machine genuinely runs
//! slower, so migrating it away genuinely helps.
//!
//! The model is exact, not time-stepped: between mutations, remaining work
//! decreases linearly, so completions can be predicted in closed form and
//! re-predicted whenever the job set or background weight changes (the
//! engine uses a generation counter to discard stale predictions).

use std::collections::BTreeMap;

use vce_net::PortId;

/// Job key: owning endpoint port + endpoint-chosen pid.
pub type JobKey = (PortId, u64);

#[derive(Debug, Clone, Copy)]
struct Job {
    remaining_mops: f64,
}

/// One machine's CPU: a set of jobs sharing `speed_mops` capacity.
#[derive(Debug, Clone)]
pub struct Cpu {
    speed_mops: f64,
    jobs: BTreeMap<JobKey, Job>,
    background: f64,
    /// Gray-fault degradation: effective speed is `speed_mops / slow_factor`.
    /// 1 = healthy. Only the fault layer sets this; daemons still disclose
    /// the *nominal* speed, which is exactly what makes a slow node gray.
    slow_factor: u32,
    last_update_us: u64,
    /// Bumped on every mutation; stale completion predictions are discarded.
    pub generation: u64,
    // ---- metrics ----
    busy_us: u64,
    weighted_load_us: f64,
    completed_jobs: u64,
    total_mops_done: f64,
}

impl Cpu {
    /// A CPU of the given nominal speed (million ops per second).
    pub fn new(speed_mops: f64) -> Self {
        assert!(speed_mops > 0.0, "speed must be positive");
        Self {
            speed_mops,
            jobs: BTreeMap::new(),
            background: 0.0,
            slow_factor: 1,
            last_update_us: 0,
            generation: 0,
            busy_us: 0,
            weighted_load_us: 0.0,
            completed_jobs: 0,
            total_mops_done: 0.0,
        }
    }

    /// Nominal speed.
    pub fn speed_mops(&self) -> f64 {
        self.speed_mops
    }

    /// Number of resident VCE jobs.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Current background weight (equivalent local jobs).
    pub fn background(&self) -> f64 {
        self.background
    }

    /// The load figure daemons disclose: resident jobs + background.
    pub fn load(&self) -> f64 {
        self.jobs.len() as f64 + self.background
    }

    /// Per-job progress rate in Mops/µs at the current population.
    fn rate_per_job(&self) -> f64 {
        let denom = self.jobs.len() as f64 + self.background;
        if denom <= 0.0 || self.jobs.is_empty() {
            0.0
        } else {
            (self.speed_mops / self.slow_factor as f64 / denom) / 1e6
        }
    }

    /// Current CPU degradation factor (1 = healthy).
    pub fn slow_factor(&self) -> u32 {
        self.slow_factor
    }

    /// Degrade (or restore with `factor == 1`) this CPU: all work takes
    /// `factor`× longer. The caller must `advance` to *now* first and
    /// reschedule completion predictions afterwards.
    pub fn set_slow_factor(&mut self, factor: u32) {
        self.generation += 1;
        self.slow_factor = factor.max(1);
    }

    /// Advance all jobs to `now_us`, accruing progress and metrics.
    ///
    /// Must be called (by the engine) before any mutation or prediction.
    pub fn advance(&mut self, now_us: u64) {
        debug_assert!(now_us >= self.last_update_us, "time went backwards");
        let dt = (now_us - self.last_update_us) as f64;
        if dt > 0.0 {
            if !self.jobs.is_empty() {
                let done = self.rate_per_job() * dt;
                for job in self.jobs.values_mut() {
                    let step = done.min(job.remaining_mops);
                    job.remaining_mops -= step;
                    self.total_mops_done += step;
                }
                self.busy_us += dt as u64;
            }
            self.weighted_load_us += self.load() * dt;
        }
        self.last_update_us = now_us;
    }

    /// Add a job. Replaces (restarts) any existing job with the same key.
    pub fn add_job(&mut self, key: JobKey, mops: f64) {
        self.generation += 1;
        self.jobs.insert(
            key,
            Job {
                remaining_mops: mops.max(0.0),
            },
        );
    }

    /// Remove a job (kill); returns the remaining Mops if it existed.
    pub fn remove_job(&mut self, key: JobKey) -> Option<f64> {
        self.generation += 1;
        self.jobs.remove(&key).map(|j| j.remaining_mops)
    }

    /// Remaining work of a resident job.
    pub fn remaining(&self, key: JobKey) -> Option<f64> {
        self.jobs.get(&key).map(|j| j.remaining_mops)
    }

    /// Set the background weight (local-user activity).
    pub fn set_background(&mut self, background: f64) {
        self.generation += 1;
        self.background = background.max(0.0);
    }

    /// Predict the next completion: `(key, at_us)` for the job that finishes
    /// first if nothing changes. `None` when no jobs are resident.
    ///
    /// Jobs whose remaining work is already ~0 complete "now".
    pub fn next_completion(&self, now_us: u64) -> Option<(JobKey, u64)> {
        let rate = self.rate_per_job();
        self.jobs
            .iter()
            .map(|(&key, job)| {
                let delay_us = if job.remaining_mops <= f64::EPSILON {
                    0
                } else if rate <= 0.0 {
                    u64::MAX
                } else {
                    (job.remaining_mops / rate).ceil() as u64
                };
                (key, now_us.saturating_add(delay_us))
            })
            .min_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)))
    }

    /// Jobs owned by one endpoint port: `(pid, remaining_mops)` pairs.
    pub fn jobs_of_port(&self, port: PortId) -> Vec<(u64, f64)> {
        self.jobs
            .iter()
            .filter(|((p, _), _)| *p == port)
            .map(|(&(_, pid), j)| (pid, j.remaining_mops))
            .collect()
    }

    /// Keys of jobs whose remaining work is numerically zero (≤ 1e-9 Mops —
    /// one nanop of slack absorbs floating-point residue from sharing).
    pub fn done_jobs(&self) -> Vec<JobKey> {
        self.jobs
            .iter()
            .filter(|(_, j)| j.remaining_mops <= 1e-9)
            .map(|(&k, _)| k)
            .collect()
    }

    /// Drop every job (machine crash). Metrics are preserved.
    pub fn clear(&mut self) {
        self.generation += 1;
        self.jobs.clear();
    }

    // ---- metrics accessors ----

    /// Microseconds during which at least one VCE job was resident.
    pub fn busy_us(&self) -> u64 {
        self.busy_us
    }

    /// Time-integral of load (for average-load reporting).
    pub fn weighted_load_us(&self) -> f64 {
        self.weighted_load_us
    }

    /// Completed-job counter (incremented by [`Cpu::note_completed`]).
    pub fn completed_jobs(&self) -> u64 {
        self.completed_jobs
    }

    /// Total useful work executed, in Mops.
    pub fn total_mops_done(&self) -> f64 {
        self.total_mops_done
    }

    /// Record that a job completed (engine calls this when it removes a
    /// finished job).
    pub fn note_completed(&mut self) {
        self.completed_jobs += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: PortId = PortId(1000);

    #[test]
    fn single_job_finishes_at_nominal_speed() {
        let mut cpu = Cpu::new(100.0); // 100 Mops/s
        cpu.add_job((P, 1), 50.0); // 0.5 s
        let (key, at) = cpu.next_completion(0).unwrap();
        assert_eq!(key, (P, 1));
        assert_eq!(at, 500_000);
    }

    #[test]
    fn two_jobs_share_the_processor() {
        let mut cpu = Cpu::new(100.0);
        cpu.add_job((P, 1), 50.0);
        cpu.add_job((P, 2), 50.0);
        // Each gets 50 Mops/s → 1 s.
        let (_, at) = cpu.next_completion(0).unwrap();
        assert_eq!(at, 1_000_000);
    }

    #[test]
    fn background_load_slows_jobs() {
        let mut cpu = Cpu::new(100.0);
        cpu.set_background(1.0);
        cpu.add_job((P, 1), 50.0);
        // Job shares with one background job → 50 Mops/s → 1 s.
        let (_, at) = cpu.next_completion(0).unwrap();
        assert_eq!(at, 1_000_000);
        assert_eq!(cpu.load(), 2.0);
    }

    #[test]
    fn advance_accrues_progress_linearly() {
        let mut cpu = Cpu::new(100.0);
        cpu.add_job((P, 1), 50.0);
        cpu.advance(250_000); // half way
        let rem = cpu.remaining((P, 1)).unwrap();
        assert!((rem - 25.0).abs() < 1e-6, "remaining {rem}");
    }

    #[test]
    fn job_arrival_mid_flight_repredicts_later() {
        let mut cpu = Cpu::new(100.0);
        cpu.add_job((P, 1), 50.0);
        cpu.advance(250_000);
        cpu.add_job((P, 2), 100.0);
        // Job 1 has 25 Mops left at 50 Mops/s → 0.5 s more.
        let (key, at) = cpu.next_completion(250_000).unwrap();
        assert_eq!(key, (P, 1));
        assert_eq!(at, 750_000);
    }

    #[test]
    fn remove_job_speeds_up_survivor() {
        let mut cpu = Cpu::new(100.0);
        cpu.add_job((P, 1), 50.0);
        cpu.add_job((P, 2), 50.0);
        cpu.advance(500_000); // each has 25 Mops left
        let left = cpu.remove_job((P, 2)).unwrap();
        assert!((left - 25.0).abs() < 1e-6);
        let (_, at) = cpu.next_completion(500_000).unwrap();
        assert_eq!(at, 750_000); // 25 Mops at full 100 Mops/s
    }

    #[test]
    fn generation_bumps_on_every_mutation() {
        let mut cpu = Cpu::new(10.0);
        let g0 = cpu.generation;
        cpu.add_job((P, 1), 1.0);
        cpu.set_background(0.5);
        cpu.remove_job((P, 1));
        cpu.clear();
        assert_eq!(cpu.generation, g0 + 4);
    }

    #[test]
    fn slow_factor_stretches_completion() {
        let mut cpu = Cpu::new(100.0);
        cpu.add_job((P, 1), 50.0);
        cpu.set_slow_factor(4);
        // 100/4 = 25 Mops/s → 2 s for 50 Mops.
        let (_, at) = cpu.next_completion(0).unwrap();
        assert_eq!(at, 2_000_000);
        // Restore mid-flight: half the work is left at full speed.
        cpu.advance(1_000_000);
        cpu.set_slow_factor(1);
        let (_, at) = cpu.next_completion(1_000_000).unwrap();
        assert_eq!(at, 1_250_000);
        // Load disclosure is unchanged — that's what makes it gray.
        assert_eq!(cpu.load(), 1.0);
        assert_eq!(cpu.speed_mops(), 100.0);
    }

    #[test]
    fn slow_factor_mutation_bumps_generation_and_clamps() {
        let mut cpu = Cpu::new(10.0);
        let g0 = cpu.generation;
        cpu.set_slow_factor(3);
        assert_eq!(cpu.generation, g0 + 1);
        assert_eq!(cpu.slow_factor(), 3);
        cpu.set_slow_factor(0); // clamped to 1 (restore)
        assert_eq!(cpu.slow_factor(), 1);
    }

    #[test]
    fn metrics_accumulate() {
        let mut cpu = Cpu::new(100.0);
        cpu.add_job((P, 1), 50.0);
        cpu.advance(500_000);
        cpu.remove_job((P, 1));
        cpu.note_completed();
        cpu.advance(1_000_000); // idle period
        assert_eq!(cpu.busy_us(), 500_000);
        assert_eq!(cpu.completed_jobs(), 1);
        assert!((cpu.total_mops_done() - 50.0).abs() < 1e-6);
        // Average load over 1s: busy half at load 1 → integral 500_000.
        assert!((cpu.weighted_load_us() - 500_000.0).abs() < 1.0);
    }

    #[test]
    fn zero_work_job_completes_immediately() {
        let mut cpu = Cpu::new(100.0);
        cpu.add_job((P, 1), 0.0);
        let (_, at) = cpu.next_completion(123).unwrap();
        assert_eq!(at, 123);
    }

    #[test]
    fn empty_cpu_predicts_nothing() {
        let cpu = Cpu::new(100.0);
        assert!(cpu.next_completion(0).is_none());
    }

    #[test]
    fn clear_drops_jobs_keeps_metrics() {
        let mut cpu = Cpu::new(100.0);
        cpu.add_job((P, 1), 50.0);
        cpu.advance(100_000);
        cpu.clear();
        assert_eq!(cpu.job_count(), 0);
        assert!(cpu.busy_us() > 0);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_rejected() {
        let _ = Cpu::new(0.0);
    }
}
