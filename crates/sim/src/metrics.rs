//! Per-node metric snapshots derived from the CPU model.

use vce_net::{MachineClass, NodeId};

/// Snapshot of one machine's accounting at a point in simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeMetrics {
    /// The machine.
    pub node: NodeId,
    /// Its class.
    pub class: MachineClass,
    /// Time with ≥1 resident VCE job, µs.
    pub busy_us: u64,
    /// Total elapsed simulated time, µs.
    pub elapsed_us: u64,
    /// Completed VCE jobs.
    pub completed_jobs: u64,
    /// Useful work executed, Mops.
    pub mops_done: f64,
    /// Time-average load.
    pub avg_load: f64,
    /// Instantaneous load at snapshot time.
    pub load_now: f64,
}

impl NodeMetrics {
    /// Fraction of elapsed time the machine was running VCE work.
    pub fn utilization(&self) -> f64 {
        if self.elapsed_us == 0 {
            0.0
        } else {
            self.busy_us as f64 / self.elapsed_us as f64
        }
    }
}

/// Aggregate over a fleet snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FleetMetrics {
    /// Mean utilization across machines.
    pub mean_utilization: f64,
    /// Total completed jobs.
    pub completed_jobs: u64,
    /// Total Mops executed.
    pub mops_done: f64,
}

impl FleetMetrics {
    /// Summarize a set of node metrics.
    pub fn summarize(nodes: &[NodeMetrics]) -> Self {
        if nodes.is_empty() {
            return Self::default();
        }
        Self {
            mean_utilization: nodes.iter().map(NodeMetrics::utilization).sum::<f64>()
                / nodes.len() as f64,
            completed_jobs: nodes.iter().map(|n| n.completed_jobs).sum(),
            mops_done: nodes.iter().map(|n| n.mops_done).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(node: u32, busy: u64, elapsed: u64, jobs: u64) -> NodeMetrics {
        NodeMetrics {
            node: NodeId(node),
            class: MachineClass::Workstation,
            busy_us: busy,
            elapsed_us: elapsed,
            completed_jobs: jobs,
            mops_done: jobs as f64 * 10.0,
            avg_load: 0.0,
            load_now: 0.0,
        }
    }

    #[test]
    fn utilization_math() {
        assert_eq!(m(0, 50, 100, 1).utilization(), 0.5);
        assert_eq!(m(0, 0, 0, 0).utilization(), 0.0);
    }

    #[test]
    fn fleet_summary() {
        let fleet = vec![m(0, 100, 100, 2), m(1, 0, 100, 0)];
        let agg = FleetMetrics::summarize(&fleet);
        assert_eq!(agg.mean_utilization, 0.5);
        assert_eq!(agg.completed_jobs, 2);
        assert_eq!(agg.mops_done, 20.0);
    }

    #[test]
    fn empty_fleet_summary_is_default() {
        assert_eq!(FleetMetrics::summarize(&[]), FleetMetrics::default());
    }
}
