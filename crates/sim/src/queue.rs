//! The event core: a two-level bucketed calendar queue (hierarchical timer
//! wheel) ordered by `(at_us, cause)`.
//!
//! # Why not a `BinaryHeap`?
//!
//! Every event in the simulator funnels through one priority queue, and the
//! dominant event class is *near-future* periodic work — heartbeats, CPU
//! checks, backoff probes — which is the worst case for a comparison heap
//! (every push/pop pays `O(log n)` sifts through cold memory) and the best
//! case for a timer wheel (`O(1)` amortized bucket append / cursor walk).
//!
//! # Structure
//!
//! * **Level 0 — the wheel.** `NUM_BUCKETS` ring slots of `BUCKET_US`
//!   microseconds each (~[`SPAN_US`] of horizon). An event whose slot
//!   (`at_us >> BUCKET_BITS`) lies inside the current admission window
//!   `[cur_slot, horizon_slot)` is appended, unsorted, to its bucket. When
//!   the drain cursor reaches a bucket, the bucket is sorted once by
//!   `(at_us, cause)` and popped from in order.
//! * **Level 1 — the overflow.** Events at or beyond `horizon_slot` go to a
//!   sorted overflow level (a min-heap on the same key). **Promotion rule:**
//!   only when the wheel runs completely dry does the window jump forward —
//!   `cur_slot` moves to the earliest overflow slot, `horizon_slot` to
//!   `cur_slot + NUM_BUCKETS`, and every overflow event now inside the
//!   window is scattered into its bucket. The admission horizon never moves
//!   between promotions, so a bucketed event is always earlier than every
//!   overflow event and the two levels never have to be compared.
//!
//! # Ordering contract
//!
//! Pop order is **exactly** ascending `(at_us, cause)`, where `cause` is a
//! **caller-supplied** tie-break key. The queue used to assign an internal
//! insertion sequence here, which made the total order depend on global
//! push order — fine for one serial queue, fatal for the sharded engine,
//! where S queues interleave pushes nondeterministically. The engine now
//! derives `cause` from the *creating* event (an `(origin node, per-origin
//! counter)` pair packed into one `u64`), which is a pure function of the
//! simulation itself, so the same total order falls out of any shard
//! count. Callers must keep `(at_us, cause)` pairs unique; equal keys pop
//! in an unspecified (but deterministic for a fixed push order) order.
//!
//! A push whose timestamp lands in the bucket currently being drained (or
//! earlier — possible only for a push at the current sim time) is inserted
//! into the sorted in-flight run by binary search, preserving the global
//! order even for pop/push interleavings at one instant.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// log2 of the bucket width in microseconds (128 µs per bucket): fine
/// enough that a bucket rarely holds more than a handful of events, coarse
/// enough that periodic-timer slots are revisited (and their `Vec`
/// capacity reused) instead of sprayed across cold memory.
const BUCKET_BITS: u32 = 7;
/// Bucket width in microseconds.
const BUCKET_US: u64 = 1 << BUCKET_BITS;
/// Ring size. Must be a power of two (slot masking) and a multiple of 64
/// (occupancy bitmap words).
const NUM_BUCKETS: usize = 8192;
/// Wheel horizon: how far past the drain cursor an event may be admitted
/// to level 0 (~1.05 simulated seconds). Heartbeats, CPU checks and
/// backoff probes all live well inside this band.
pub const SPAN_US: u64 = NUM_BUCKETS as u64 * BUCKET_US;

const RING_MASK: usize = NUM_BUCKETS - 1;
const WORDS: usize = NUM_BUCKETS / 64;
/// Warm-buffer pool cap. Must exceed the number of simultaneously occupied
/// buckets a workload sustains, or drained capacity gets dropped and then
/// re-learned — one realloc chain per window jump, forever. 128 buffers of
/// steady-state size is a few hundred KiB at worst.
const SPARE_CAP: usize = 128;

/// One queued item with its ordering key.
#[derive(Debug)]
struct Entry<T> {
    at_us: u64,
    /// Caller-supplied tie-break key (the engine's cause key).
    cause_seq: u64,
    item: T,
}

impl<T> Entry<T> {
    #[inline]
    fn key(&self) -> (u64, u64) {
        (self.at_us, self.cause_seq)
    }
}

// Overflow-heap ordering: min on (at_us, cause) via `Reverse`.
impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Two-level calendar queue with exact `(at_us, cause)` total order.
///
/// `cause` is supplied by the caller on every [`CalendarQueue::push`]; two
/// events at the same microsecond pop in ascending `cause` order.
pub struct CalendarQueue<T> {
    /// Level 0 ring; bucket `s & RING_MASK` holds slot `s`'s events,
    /// unsorted until the drain cursor reaches it.
    buckets: Vec<Vec<Entry<T>>>,
    /// Occupancy bitmap over ring positions (bit set ⇔ bucket non-empty).
    occupied: [u64; WORDS],
    /// Absolute slot (`at_us >> BUCKET_BITS`) currently being drained.
    cur_slot: u64,
    /// First slot *not* admitted to the wheel; events at `slot >=
    /// horizon_slot` go to the overflow level. Fixed between promotions.
    horizon_slot: u64,
    /// The in-flight bucket: sorted **descending** by `(at_us, cause)` so
    /// pops are `Vec::pop` from the tail.
    current: Vec<Entry<T>>,
    /// Level 1: far-future events, min-heap on `(at_us, cause)`.
    overflow: BinaryHeap<Reverse<Entry<T>>>,
    /// Warm drained-bucket buffers. A sim revisits nearby ring slots but
    /// (over a long horizon) rarely the *same* slot, so capacity is pooled
    /// here instead of stranded in slots that won't be hit again; a fresh
    /// bucket's first push grabs a warm buffer and steady state allocates
    /// nothing.
    spare: Vec<Vec<Entry<T>>>,
    len: usize,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// An empty queue starting at time 0.
    pub fn new() -> Self {
        Self {
            buckets: std::iter::repeat_with(Vec::new).take(NUM_BUCKETS).collect(),
            occupied: [0u64; WORDS],
            cur_slot: 0,
            horizon_slot: NUM_BUCKETS as u64,
            current: Vec::new(),
            overflow: BinaryHeap::new(),
            spare: Vec::new(),
            len: 0,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `item` at absolute time `at_us` with tie-break key `cause`;
    /// events at the same microsecond pop in ascending `cause` order.
    pub fn push(&mut self, at_us: u64, cause: u64, item: T) {
        let entry = Entry {
            at_us,
            cause_seq: cause,
            item,
        };
        let slot = at_us >> BUCKET_BITS;
        if slot <= self.cur_slot {
            // Lands in (or before) the bucket being drained: binary-search
            // into the sorted in-flight run. The tail past the insertion
            // point only holds events earlier than this one — at one
            // instant that is a handful at most.
            let key = entry.key();
            let idx = self.current.partition_point(|e| e.key() > key);
            self.current.insert(idx, entry);
        } else if slot < self.horizon_slot {
            let ring = (slot as usize) & RING_MASK;
            if self.buckets[ring].capacity() == 0 {
                if let Some(warm) = self.spare.pop() {
                    self.buckets[ring] = warm;
                }
            }
            self.buckets[ring].push(entry);
            self.occupied[ring / 64] |= 1u64 << (ring % 64);
        } else {
            self.overflow.push(Reverse(entry));
        }
        self.len += 1;
    }

    /// Timestamp of the earliest event, or `None` if empty. `&mut` because
    /// peeking may advance the drain cursor to (and sort) the next bucket.
    pub fn peek_time(&mut self) -> Option<u64> {
        if self.ensure_current() {
            self.current.last().map(|e| e.at_us)
        } else {
            None
        }
    }

    /// Remove and return the earliest event as `(at_us, cause, item)`.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        if !self.ensure_current() {
            return None;
        }
        let e = self.current.pop().expect("ensure_current guarantees one");
        self.len -= 1;
        Some((e.at_us, e.cause_seq, e.item))
    }

    /// Make `current` non-empty, advancing the cursor / promoting overflow
    /// as needed. Returns false iff the queue is empty.
    fn ensure_current(&mut self) -> bool {
        if !self.current.is_empty() {
            return true;
        }
        if self.len == 0 {
            return false;
        }
        loop {
            match self.next_occupied_slot() {
                Some(slot) => {
                    self.load_bucket(slot);
                    return true;
                }
                None => {
                    // Wheel dry: jump the window to the overflow's earliest
                    // slot and scatter everything now inside it.
                    let Some(Reverse(head)) = self.overflow.peek() else {
                        debug_assert_eq!(self.len, 0);
                        return false;
                    };
                    self.cur_slot = head.at_us >> BUCKET_BITS;
                    self.horizon_slot = self.cur_slot + NUM_BUCKETS as u64;
                    let bound = self.horizon_slot << BUCKET_BITS;
                    while let Some(Reverse(e)) = self.overflow.peek() {
                        if e.at_us >= bound {
                            break;
                        }
                        let Reverse(e) = self.overflow.pop().expect("peeked");
                        let ring = ((e.at_us >> BUCKET_BITS) as usize) & RING_MASK;
                        // Scatter through the warm pool too: a window jump
                        // refills dozens of cold buckets at once, and cold
                        // pushes here would re-allocate capacity the drain
                        // cursor just pooled.
                        if self.buckets[ring].capacity() == 0 {
                            if let Some(warm) = self.spare.pop() {
                                self.buckets[ring] = warm;
                            }
                        }
                        self.buckets[ring].push(e);
                        self.occupied[ring / 64] |= 1u64 << (ring % 64);
                    }
                    // cur_slot's bucket is now occupied; next loop loads it.
                }
            }
        }
    }

    /// The earliest occupied slot in `[cur_slot, horizon_slot)`, via the
    /// bitmap (word-skipping scan in ring order from the cursor).
    fn next_occupied_slot(&self) -> Option<u64> {
        let start = (self.cur_slot as usize) & RING_MASK;
        // First (possibly partial) word: bits at/after the cursor.
        let mut word_idx = start / 64;
        let mut word = self.occupied[word_idx] & (!0u64 << (start % 64));
        for step in 0..=WORDS {
            if word != 0 {
                let ring = word_idx * 64 + word.trailing_zeros() as usize;
                // Ring position → absolute slot within the window.
                let delta = (ring.wrapping_sub(start) & RING_MASK) as u64;
                let slot = self.cur_slot + delta;
                if slot < self.horizon_slot {
                    return Some(slot);
                }
                // Occupied but past the horizon cannot happen (admission
                // keeps wheel events inside the window); defensive only.
                debug_assert!(false, "occupied bucket beyond horizon");
                return None;
            }
            if step == WORDS {
                break;
            }
            word_idx = (word_idx + 1) % WORDS;
            word = self.occupied[word_idx];
            if word_idx == start / 64 {
                // Wrapped: only bits *before* the cursor remain.
                word &= !(!0u64 << (start % 64));
            }
        }
        None
    }

    /// Move the drain cursor to `slot`: sort its bucket descending (pops
    /// are `Vec::pop` from the tail) and swap it in as the in-flight run.
    /// The drained buffer's capacity goes to the spare pool for reuse.
    fn load_bucket(&mut self, slot: u64) {
        self.cur_slot = slot;
        let ring = (slot as usize) & RING_MASK;
        let bucket = &mut self.buckets[ring];
        // Pushes mostly arrive in ascending key order, so buckets are
        // usually already ascending (frequently one timestamp run): detect
        // that with one pass and reverse, instead of a full sort.
        if bucket.windows(2).all(|w| w[0].key() < w[1].key()) {
            bucket.reverse();
        } else {
            bucket.sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
        }
        debug_assert!(self.current.is_empty());
        std::mem::swap(&mut self.current, bucket);
        self.occupied[ring / 64] &= !(1u64 << (ring % 64));
        let warm = std::mem::take(bucket);
        if warm.capacity() > 0 && self.spare.len() < SPARE_CAP {
            self.spare.push(warm);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_cause_order() {
        let mut q = CalendarQueue::new();
        q.push(500, 1, "b");
        q.push(100, 2, "a");
        q.push(500, 3, "c");
        q.push(100, 4, "a2");
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek_time(), Some(100));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![(100, 2, "a"), (100, 4, "a2"), (500, 1, "b"), (500, 3, "c")]
        );
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cause_order_beats_push_order() {
        // The tie-break is the caller's key, not insertion order: pushing
        // the larger cause first must not change the pop order. This is
        // the property the sharded engine rests on — S queues push in
        // different interleavings but pop the same sequence.
        let mut q = CalendarQueue::new();
        q.push(100, 9, "late");
        q.push(100, 3, "early");
        assert_eq!(q.pop(), Some((100, 3, "early")));
        assert_eq!(q.pop(), Some((100, 9, "late")));
    }

    #[test]
    fn far_future_rides_the_overflow_level() {
        let mut q = CalendarQueue::new();
        // Beyond the wheel horizon → overflow, promoted on demand.
        q.push(3 * SPAN_US, 1, 1u32);
        q.push(10, 2, 0u32);
        q.push(7 * SPAN_US + 3, 3, 2u32);
        assert_eq!(q.pop(), Some((10, 2, 0)));
        assert_eq!(q.pop(), Some((3 * SPAN_US, 1, 1)));
        assert_eq!(q.pop(), Some((7 * SPAN_US + 3, 3, 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_instant_push_during_drain_keeps_order() {
        let mut q = CalendarQueue::new();
        q.push(100, 1, 0u32);
        q.push(100, 2, 1);
        assert_eq!(q.pop(), Some((100, 1, 0)));
        // Pushed mid-drain at the same instant: must pop after already
        // queued t=100 events (larger cause) but before t=101.
        q.push(100, 3, 2);
        q.push(101, 4, 3);
        assert_eq!(q.pop(), Some((100, 2, 1)));
        assert_eq!(q.pop(), Some((100, 3, 2)));
        assert_eq!(q.pop(), Some((101, 4, 3)));
        // And a mid-drain push with a *smaller* cause at the same instant
        // pops before larger-cause events still in flight.
        let mut q = CalendarQueue::new();
        q.push(200, 5, 0u32);
        q.push(200, 9, 1);
        assert_eq!(q.pop(), Some((200, 5, 0)));
        q.push(200, 7, 2);
        assert_eq!(q.pop(), Some((200, 7, 2)));
        assert_eq!(q.pop(), Some((200, 9, 1)));
    }

    #[test]
    fn interleaved_pushes_across_buckets() {
        let mut q = CalendarQueue::new();
        q.push(5 * BUCKET_US, 1, "far");
        q.push(1, 2, "near");
        assert_eq!(q.pop(), Some((1, 2, "near")));
        q.push(2 * BUCKET_US, 3, "mid");
        assert_eq!(q.pop(), Some((2 * BUCKET_US, 3, "mid")));
        assert_eq!(q.pop(), Some((5 * BUCKET_US, 1, "far")));
    }

    #[test]
    fn empty_then_reused_after_idle_gap() {
        let mut q = CalendarQueue::new();
        q.push(50, 1, ());
        assert_eq!(q.pop(), Some((50, 1, ())));
        assert_eq!(q.peek_time(), None);
        // Re-arm far past the original window (as run_until does after an
        // idle stretch).
        q.push(40 * SPAN_US, 2, ());
        q.push(40 * SPAN_US + BUCKET_US, 3, ());
        assert_eq!(q.pop(), Some((40 * SPAN_US, 2, ())));
        assert_eq!(q.pop(), Some((40 * SPAN_US + BUCKET_US, 3, ())));
    }
}
