//! Network latency/bandwidth model.
//!
//! A 1994 department LAN (the paper's testbed) is well modelled by a uniform
//! base latency plus a per-byte serialization cost; campus-scale VCEs add a
//! cluster structure (machines in the same machine room are closer). Both
//! are supported: nodes may be assigned to *sites*, with intra-site and
//! inter-site parameters.

use std::collections::BTreeMap;

use vce_net::NodeId;

/// Latency parameters for one link class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Fixed one-way latency in µs.
    pub base_us: u64,
    /// Serialization cost in µs per KiB.
    pub per_kib_us: u64,
}

impl LinkParams {
    /// 10BASE-T-era department LAN: ~1 ms base, ~0.8 ms/KiB.
    pub fn lan_1994() -> Self {
        Self {
            base_us: 1_000,
            per_kib_us: 800,
        }
    }

    /// Campus backbone between sites: ~5 ms base.
    pub fn campus_1994() -> Self {
        Self {
            base_us: 5_000,
            per_kib_us: 1_000,
        }
    }

    /// Latency of a `bytes`-byte message on this link.
    pub fn latency_us(&self, bytes: usize) -> u64 {
        self.base_us + (bytes as u64 * self.per_kib_us) / 1024
    }
}

/// Fleet communication topology.
#[derive(Debug, Clone)]
pub struct Topology {
    intra: LinkParams,
    inter: LinkParams,
    /// Site id per node; absent ⇒ site 0.
    sites: BTreeMap<NodeId, u32>,
    /// Loopback cost (same node), typically ~free.
    local_us: u64,
}

impl Default for Topology {
    fn default() -> Self {
        Self::uniform(LinkParams::lan_1994())
    }
}

impl Topology {
    /// Every pair of distinct nodes uses the same link parameters.
    pub fn uniform(params: LinkParams) -> Self {
        Self {
            intra: params,
            inter: params,
            sites: BTreeMap::new(),
            local_us: 10,
        }
    }

    /// Two-tier topology: `intra` within a site, `inter` across sites.
    pub fn two_tier(intra: LinkParams, inter: LinkParams) -> Self {
        Self {
            intra,
            inter,
            sites: BTreeMap::new(),
            local_us: 10,
        }
    }

    /// Assign a node to a site (default site is 0).
    pub fn set_site(&mut self, node: NodeId, site: u32) {
        if site == 0 {
            self.sites.remove(&node);
        } else {
            self.sites.insert(node, site);
        }
    }

    /// Site of a node.
    pub fn site_of(&self, node: NodeId) -> u32 {
        self.sites.get(&node).copied().unwrap_or(0)
    }

    /// The explicit node → site assignments (nodes absent from the map are
    /// site 0). The adaptive lookahead planner walks this at construction
    /// to learn which sites each shard could ever *deliver* to — including
    /// nodes that are assigned a site but never registered, whose traffic
    /// still routes to (and drops at) their modulo owner.
    pub(crate) fn site_map(&self) -> &BTreeMap<NodeId, u32> {
        &self.sites
    }

    /// One-way latency for a `bytes`-byte message from `src` to `dst`.
    ///
    /// Cross-node latency is clamped to ≥ 1 µs even if a caller constructs
    /// zero-cost [`LinkParams`] (the fields are public, so that is
    /// possible): the sharded engine's conservative lookahead window is
    /// derived from the minimum cross-node latency, and a zero-width window
    /// would wedge the barrier loop. One µs is also the physical floor —
    /// no 1994 network moved a datagram between machines in under a
    /// microsecond.
    pub fn latency_us(&self, src: NodeId, dst: NodeId, bytes: usize) -> u64 {
        if src == dst {
            return self.local_us;
        }
        let params = if self.site_of(src) == self.site_of(dst) {
            self.intra
        } else {
            self.inter
        };
        params.latency_us(bytes).max(1)
    }

    /// The minimum possible cross-node latency under this topology — the
    /// conservative lookahead used by the sharded engine: an event executed
    /// at time `t` can only cause another *node* to act at
    /// `t + min_cross_latency_us()` or later, so shards may advance through
    /// a window of that width without exchanging messages.
    ///
    /// Same-node loopback (`local_us`) does not participate: a node never
    /// changes shard, so loopback traffic can never cross a shard boundary.
    /// Never returns 0 (see [`Topology::latency_us`] for the clamp).
    pub fn min_cross_latency_us(&self) -> u64 {
        self.intra.base_us.min(self.inter.base_us).max(1)
    }

    /// The minimum latency any message from a node in site `a` to a node
    /// in site `b` can experience — the per-site-pair refinement of
    /// [`Topology::min_cross_latency_us`]. The adaptive lookahead planner
    /// (`crate::lookahead`) takes the minimum of this over the site pairs a
    /// shard pair can actually realize, which on clustered fleets is the
    /// inter-site base — a much wider conservative window than the global
    /// floor. Clamped to ≥ 1 µs like [`Topology::latency_us`], so the two
    /// can never disagree about a zero-cost link.
    pub fn min_site_pair_latency_us(&self, a: u32, b: u32) -> u64 {
        let params = if a == b { self.intra } else { self.inter };
        params.base_us.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_delivery_is_cheap() {
        let t = Topology::default();
        assert_eq!(t.latency_us(NodeId(1), NodeId(1), 10_000), 10);
    }

    #[test]
    fn size_increases_latency() {
        let t = Topology::default();
        let small = t.latency_us(NodeId(0), NodeId(1), 100);
        let big = t.latency_us(NodeId(0), NodeId(1), 100_000);
        assert!(big > small);
        assert_eq!(small, 1_000 + 100 * 800 / 1024);
    }

    #[test]
    fn two_tier_charges_more_across_sites() {
        let mut t = Topology::two_tier(LinkParams::lan_1994(), LinkParams::campus_1994());
        t.set_site(NodeId(1), 1);
        let same = t.latency_us(NodeId(0), NodeId(2), 0); // both site 0
        let cross = t.latency_us(NodeId(0), NodeId(1), 0);
        assert_eq!(same, 1_000);
        assert_eq!(cross, 5_000);
    }

    #[test]
    fn site_zero_is_default_and_resettable() {
        let mut t = Topology::default();
        assert_eq!(t.site_of(NodeId(9)), 0);
        t.set_site(NodeId(9), 3);
        assert_eq!(t.site_of(NodeId(9)), 3);
        t.set_site(NodeId(9), 0);
        assert_eq!(t.site_of(NodeId(9)), 0);
    }

    #[test]
    fn min_cross_latency_is_cheapest_link_class() {
        let t = Topology::two_tier(LinkParams::lan_1994(), LinkParams::campus_1994());
        assert_eq!(t.min_cross_latency_us(), 1_000);
        let u = Topology::default();
        assert_eq!(u.min_cross_latency_us(), 1_000);
    }

    #[test]
    fn zero_latency_links_clamp_to_one_microsecond() {
        // LinkParams fields are public, so a zero-cost link is
        // constructible; the lookahead (and the latency itself, for
        // consistency) must clamp to 1µs rather than 0, which would give
        // the sharded engine a zero-width window and wedge the barrier
        // loop.
        let zero = LinkParams {
            base_us: 0,
            per_kib_us: 0,
        };
        let t = Topology::uniform(zero);
        assert_eq!(t.min_cross_latency_us(), 1);
        assert_eq!(t.latency_us(NodeId(0), NodeId(1), 0), 1);
        // Same-site pairs in a two-tier topology with a zero-cost intra
        // link: still clamped.
        let mixed = Topology::two_tier(zero, LinkParams::campus_1994());
        assert_eq!(mixed.min_cross_latency_us(), 1);
        assert_eq!(mixed.latency_us(NodeId(0), NodeId(1), 0), 1);
        // Loopback is unaffected by the clamp and by the lookahead.
        assert_eq!(t.latency_us(NodeId(2), NodeId(2), 64), 10);
    }

    #[test]
    fn site_pair_minimum_matches_link_classes() {
        let t = Topology::two_tier(LinkParams::lan_1994(), LinkParams::campus_1994());
        assert_eq!(t.min_site_pair_latency_us(1, 1), 1_000);
        assert_eq!(t.min_site_pair_latency_us(0, 0), 1_000);
        assert_eq!(t.min_site_pair_latency_us(1, 2), 5_000);
        assert_eq!(t.min_site_pair_latency_us(2, 1), 5_000);
        // Zero-cost links clamp exactly like latency_us does.
        let zero = LinkParams {
            base_us: 0,
            per_kib_us: 0,
        };
        let z = Topology::two_tier(zero, zero);
        assert_eq!(z.min_site_pair_latency_us(3, 3), 1);
        assert_eq!(z.min_site_pair_latency_us(3, 4), 1);
        // The global floor is the min over all pairs, same or cross.
        assert_eq!(
            t.min_cross_latency_us(),
            t.min_site_pair_latency_us(1, 1)
                .min(t.min_site_pair_latency_us(1, 2))
        );
    }

    #[test]
    fn link_params_math() {
        let p = LinkParams {
            base_us: 100,
            per_kib_us: 1024,
        };
        assert_eq!(p.latency_us(0), 100);
        assert_eq!(p.latency_us(1024), 100 + 1024);
        assert_eq!(p.latency_us(512), 100 + 512);
    }
}
