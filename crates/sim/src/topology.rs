//! Network latency/bandwidth model.
//!
//! A 1994 department LAN (the paper's testbed) is well modelled by a uniform
//! base latency plus a per-byte serialization cost; campus-scale VCEs add a
//! cluster structure (machines in the same machine room are closer). Both
//! are supported: nodes may be assigned to *sites*, with intra-site and
//! inter-site parameters.

use std::collections::BTreeMap;

use vce_net::NodeId;

/// Latency parameters for one link class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Fixed one-way latency in µs.
    pub base_us: u64,
    /// Serialization cost in µs per KiB.
    pub per_kib_us: u64,
}

impl LinkParams {
    /// 10BASE-T-era department LAN: ~1 ms base, ~0.8 ms/KiB.
    pub fn lan_1994() -> Self {
        Self {
            base_us: 1_000,
            per_kib_us: 800,
        }
    }

    /// Campus backbone between sites: ~5 ms base.
    pub fn campus_1994() -> Self {
        Self {
            base_us: 5_000,
            per_kib_us: 1_000,
        }
    }

    /// Latency of a `bytes`-byte message on this link.
    pub fn latency_us(&self, bytes: usize) -> u64 {
        self.base_us + (bytes as u64 * self.per_kib_us) / 1024
    }
}

/// Fleet communication topology.
#[derive(Debug, Clone)]
pub struct Topology {
    intra: LinkParams,
    inter: LinkParams,
    /// Site id per node; absent ⇒ site 0.
    sites: BTreeMap<NodeId, u32>,
    /// Loopback cost (same node), typically ~free.
    local_us: u64,
}

impl Default for Topology {
    fn default() -> Self {
        Self::uniform(LinkParams::lan_1994())
    }
}

impl Topology {
    /// Every pair of distinct nodes uses the same link parameters.
    pub fn uniform(params: LinkParams) -> Self {
        Self {
            intra: params,
            inter: params,
            sites: BTreeMap::new(),
            local_us: 10,
        }
    }

    /// Two-tier topology: `intra` within a site, `inter` across sites.
    pub fn two_tier(intra: LinkParams, inter: LinkParams) -> Self {
        Self {
            intra,
            inter,
            sites: BTreeMap::new(),
            local_us: 10,
        }
    }

    /// Assign a node to a site (default site is 0).
    pub fn set_site(&mut self, node: NodeId, site: u32) {
        if site == 0 {
            self.sites.remove(&node);
        } else {
            self.sites.insert(node, site);
        }
    }

    /// Site of a node.
    pub fn site_of(&self, node: NodeId) -> u32 {
        self.sites.get(&node).copied().unwrap_or(0)
    }

    /// One-way latency for a `bytes`-byte message from `src` to `dst`.
    pub fn latency_us(&self, src: NodeId, dst: NodeId, bytes: usize) -> u64 {
        if src == dst {
            return self.local_us;
        }
        let params = if self.site_of(src) == self.site_of(dst) {
            self.intra
        } else {
            self.inter
        };
        params.latency_us(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_delivery_is_cheap() {
        let t = Topology::default();
        assert_eq!(t.latency_us(NodeId(1), NodeId(1), 10_000), 10);
    }

    #[test]
    fn size_increases_latency() {
        let t = Topology::default();
        let small = t.latency_us(NodeId(0), NodeId(1), 100);
        let big = t.latency_us(NodeId(0), NodeId(1), 100_000);
        assert!(big > small);
        assert_eq!(small, 1_000 + 100 * 800 / 1024);
    }

    #[test]
    fn two_tier_charges_more_across_sites() {
        let mut t = Topology::two_tier(LinkParams::lan_1994(), LinkParams::campus_1994());
        t.set_site(NodeId(1), 1);
        let same = t.latency_us(NodeId(0), NodeId(2), 0); // both site 0
        let cross = t.latency_us(NodeId(0), NodeId(1), 0);
        assert_eq!(same, 1_000);
        assert_eq!(cross, 5_000);
    }

    #[test]
    fn site_zero_is_default_and_resettable() {
        let mut t = Topology::default();
        assert_eq!(t.site_of(NodeId(9)), 0);
        t.set_site(NodeId(9), 3);
        assert_eq!(t.site_of(NodeId(9)), 3);
        t.set_site(NodeId(9), 0);
        assert_eq!(t.site_of(NodeId(9)), 0);
    }

    #[test]
    fn link_params_math() {
        let p = LinkParams {
            base_us: 100,
            per_kib_us: 1024,
        };
        assert_eq!(p.latency_us(0), 100);
        assert_eq!(p.latency_us(1024), 100 + 1024);
        assert_eq!(p.latency_us(512), 100 + 512);
    }
}
