//! Run trace: a time-stamped log of everything notable that happened.
//!
//! Experiments post-process traces to extract latencies (e.g. request→
//! allocation for the Fig. 3 bidding experiment) and to debug protocol
//! behaviour. Endpoints contribute lines via [`vce_net::Host::log`].

use std::fmt;

use vce_net::NodeId;

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation time, µs.
    pub at_us: u64,
    /// Node the event occurred on (or the engine's perspective node).
    pub node: NodeId,
    /// Free-form description, conventionally `component: detail`.
    pub line: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>12}µs {}] {}", self.at_us, self.node, self.line)
    }
}

/// Append-only run trace.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Trace {
    /// An enabled, empty trace.
    pub fn new() -> Self {
        Self {
            events: Vec::new(),
            enabled: true,
        }
    }

    /// A disabled trace (hot benchmark runs skip the allocations).
    pub fn disabled() -> Self {
        Self {
            events: Vec::new(),
            enabled: false,
        }
    }

    /// Whether records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append a record (no-op when disabled).
    pub fn push(&mut self, at_us: u64, node: NodeId, line: String) {
        if self.enabled {
            self.events.push(TraceEvent { at_us, node, line });
        }
    }

    /// All records, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Records whose line contains `needle`.
    pub fn grep<'a>(&'a self, needle: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.line.contains(needle))
    }

    /// Time of the first record matching `needle`, if any.
    pub fn first_time(&self, needle: &str) -> Option<u64> {
        self.grep(needle).next().map(|e| e.at_us)
    }

    /// Time of the last record matching `needle`, if any.
    pub fn last_time(&self, needle: &str) -> Option<u64> {
        self.grep(needle).last().map(|e| e.at_us)
    }

    /// Number of records matching `needle` — the cheap hook invariant
    /// checkers poll between observation quanta.
    pub fn count(&self, needle: &str) -> usize {
        self.grep(needle).count()
    }

    /// Render the last `n` records — the replayable tail a failing chaos
    /// seed reports (the full trace of a long campaign run is huge; the
    /// tail plus the seed reproduces the rest).
    pub fn dump_tail(&self, n: usize) -> String {
        let skip = self.events.len().saturating_sub(n);
        let mut s = String::new();
        for e in &self.events[skip..] {
            s.push_str(&e.to_string());
            s.push('\n');
        }
        s
    }

    /// Render the whole trace (for test diagnostics).
    pub fn dump(&self) -> String {
        let mut s = String::new();
        for e in &self.events {
            s.push_str(&e.to_string());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_grep() {
        let mut t = Trace::new();
        t.push(10, NodeId(0), "daemon: bid sent".into());
        t.push(20, NodeId(1), "leader: allocation done".into());
        t.push(30, NodeId(0), "daemon: task started".into());
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.grep("daemon").count(), 2);
        assert_eq!(t.first_time("allocation"), Some(20));
        assert_eq!(t.last_time("daemon"), Some(30));
        assert_eq!(t.first_time("nope"), None);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.push(1, NodeId(0), "x".into());
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn display_format() {
        let e = TraceEvent {
            at_us: 1500,
            node: NodeId(3),
            line: "hello".into(),
        };
        let s = e.to_string();
        assert!(s.contains("1500µs"));
        assert!(s.contains("n3"));
        assert!(s.contains("hello"));
    }

    #[test]
    fn dump_contains_all_lines() {
        let mut t = Trace::new();
        t.push(1, NodeId(0), "alpha".into());
        t.push(2, NodeId(1), "beta".into());
        let d = t.dump();
        assert!(d.contains("alpha") && d.contains("beta"));
        assert_eq!(d.lines().count(), 2);
    }
}
