#![warn(missing_docs)]
//! # vce-sim — the deterministic discrete-event cluster simulator
//!
//! The paper evaluated its prototype on a physical workstation LAN plus
//! (aspirationally) CM-5-class SIMD and MIMD machines. We do not have a 1994
//! machine room, so this crate is the substitution DESIGN.md documents: a
//! discrete-event simulation of a heterogeneous machine fleet that exposes
//! exactly the observables the VCE runtime bases decisions on —
//!
//! * per-machine **load** (runnable process count incl. background local
//!   users, the quantity §5's daemons put in their bids);
//! * **architecture class, speed and memory** per machine (the compilation
//!   manager's database, §3.1.2);
//! * **message latency** (LAN model + fault injection shared with
//!   `vce-net`);
//! * **compute progress** under processor sharing, so co-located tasks slow
//!   each other down and migration away from loaded machines actually pays.
//!
//! The protocol state machines from `vce-isis`/`vce-exm` run unmodified on
//! this engine via the [`vce_net::Endpoint`]/[`vce_net::Host`] traits. Every
//! run is a pure function of its seed: the event queue (a calendar queue,
//! [`queue::CalendarQueue`]) tie-breaks on insertion sequence and all
//! randomness derives from one master seed.
//!
//! ```
//! use vce_net::{Addr, Endpoint, Envelope, Host, MachineInfo, NodeId, PortId};
//! use vce_sim::{Sim, SimConfig};
//!
//! struct Nop;
//! impl Endpoint for Nop {
//!     fn on_envelope(&mut self, _e: Envelope, _h: &mut dyn Host) {}
//! }
//!
//! let mut sim = Sim::new(SimConfig::default());
//! sim.add_node(MachineInfo::workstation(NodeId(0), 100.0));
//! sim.add_endpoint(Addr::daemon(NodeId(0)), Box::new(Nop));
//! sim.run_until_idle();
//! assert_eq!(sim.now_us(), 0); // nothing ever happened
//! ```

pub mod cpu;
pub mod engine;
pub mod load;
mod lookahead;
pub mod metrics;
pub mod queue;
pub mod record;
mod shard;
mod sharded;
pub mod topology;
pub mod trace;

pub use cpu::Cpu;
pub use engine::{Sim, SimConfig};
pub use load::LoadTrace;
pub use metrics::NodeMetrics;
pub use record::{first_divergence, read_trace, read_trace_file, Divergence, RecordedTrace};
pub use topology::Topology;
pub use trace::{Trace, TraceEvent};
