//! The discrete-event engine: calendar-queue event core, dense per-node
//! dispatch tables, and the [`Host`] implementation endpoints run against.
//!
//! Determinism contract: a run is a pure function of (config seed, the
//! sequence of `add_*`/`kill_*`/`inject` calls). The event queue (a
//! two-level calendar queue, see [`crate::queue`]) orders by `(time,
//! insertion sequence)`, so simultaneous events fire in insertion order;
//! all randomness (fault judgments, per-node `rand_u64`) derives from the
//! master seed. The determinism integration test asserts bit-identical
//! traces across runs.
//!
//! Dispatch is table-driven rather than map-driven: nodes live in an
//! index-stable slab (`Vec<SimNode>`, nodes are never removed — crash
//! marks them dead in place) reached through a dense `NodeId → slot`
//! array, and each node's endpoints live in a small `Vec` sorted by
//! `PortId` with a one-entry lookup cache. The per-event cost is two array
//! indexes instead of a `HashMap` hash plus a `BTreeMap` walk.

use std::collections::HashMap;

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

use vce_net::fault::Delivery;
use vce_net::{
    Addr, Endpoint, Envelope, FaultPlan, Host, MachineInfo, MsgCategory, NetStats, NodeId, PortId,
};

use crate::cpu::Cpu;
use crate::load::LoadTrace;
use crate::metrics::NodeMetrics;
use crate::queue::CalendarQueue;
use crate::topology::Topology;
use crate::trace::Trace;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed; everything random in the run derives from it.
    pub seed: u64,
    /// Latency model.
    pub topology: Topology,
    /// Whether to keep a full trace (disable for hot benchmarks).
    pub trace_enabled: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            topology: Topology::default(),
            trace_enabled: true,
        }
    }
}

#[derive(Debug)]
enum EventKind {
    Start {
        port: PortId,
    },
    Deliver(Envelope),
    /// Several envelopes for the same node that would have occupied
    /// consecutive heap slots at the same timestamp (one callback sent them
    /// back-to-back) — coalesced into one heap entry to cut sift cost on
    /// burst traffic. Processing order is identical to the uncoalesced form.
    DeliverBatch(Vec<Envelope>),
    Timer {
        port: PortId,
        token: u64,
    },
    CpuCheck {
        generation: u64,
    },
    LoadChange {
        background: f64,
    },
    /// A scheduled fault-plan mutation (see [`Sim::schedule_fault`]).
    Fault(vce_net::FaultOp),
}

/// An event in the calendar queue; its `(at_us, seq)` ordering key lives in
/// the queue entry itself (see [`CalendarQueue`]).
#[derive(Debug)]
struct Event {
    node: NodeId,
    kind: EventKind,
}

struct SimNode {
    info: MachineInfo,
    cpu: Cpu,
    /// Kept **sorted by `PortId`** (the order the old `BTreeMap` iterated
    /// in): `kill_node`/`revive_node` replay `on_crash`/`on_start` in this
    /// order, which must not vary run to run. Nodes host a handful of
    /// endpoints, so lookup is a binary search over a short, contiguous
    /// array — cheaper and cache-friendlier than a tree walk.
    endpoints: Vec<(PortId, Box<dyn Endpoint>)>,
    /// Index of the last endpoint hit — a one-entry port→slot cache.
    /// Validated against the port on every use, so staleness is harmless.
    ep_cache: u32,
    rng: SmallRng,
    send_seq: u64,
    cancelled_timers: HashMap<(PortId, u64), u32>,
    /// Sum of the counts in `cancelled_timers`. While zero, timer pops fire
    /// directly without a hash lookup — the common case on nodes that never
    /// cancel (or whose cancellations have all been consumed).
    pending_cancels: u32,
    dead: bool,
}

impl SimNode {
    /// Endpoint slot for `port`: cache check, then binary search.
    #[inline]
    fn ep_slot(&mut self, port: PortId) -> Option<usize> {
        let c = self.ep_cache as usize;
        if let Some((p, _)) = self.endpoints.get(c) {
            if *p == port {
                return Some(c);
            }
        }
        match self.endpoints.binary_search_by_key(&port, |(p, _)| *p) {
            Ok(i) => {
                self.ep_cache = i as u32;
                Some(i)
            }
            Err(_) => None,
        }
    }
}

/// Dense `NodeId → slab slot` index. Node ids in every experiment are
/// small and dense, so the common path is a single array load; ids past
/// [`NodeSlots::DENSE_CAP`] (which would make the array wasteful) spill to
/// a side map.
#[derive(Default)]
struct NodeSlots {
    dense: Vec<u32>,
    spill: HashMap<u32, u32>,
}

impl NodeSlots {
    const DENSE_CAP: usize = 1 << 16;
    const EMPTY: u32 = u32::MAX;

    #[inline]
    fn get(&self, node: NodeId) -> Option<usize> {
        let id = node.0 as usize;
        if id < Self::DENSE_CAP {
            match self.dense.get(id) {
                Some(&s) if s != Self::EMPTY => Some(s as usize),
                _ => None,
            }
        } else {
            self.spill.get(&node.0).map(|&s| s as usize)
        }
    }

    /// Returns false if the node was already present.
    fn insert(&mut self, node: NodeId, slot: usize) -> bool {
        let id = node.0 as usize;
        if id < Self::DENSE_CAP {
            if self.dense.len() <= id {
                self.dense.resize(id + 1, Self::EMPTY);
            }
            if self.dense[id] != Self::EMPTY {
                return false;
            }
            self.dense[id] = slot as u32;
            true
        } else {
            self.spill.insert(node.0, slot as u32).is_none()
        }
    }
}

/// A work mutation, kept in issue order. Interleaving starts and cancels in
/// one list (rather than two) preserves the order the endpoint issued them:
/// `cancel(p)` then `start(p)` in one callback leaves `p` running, while
/// `start(p)` then `cancel(p)` leaves it stopped.
enum WorkOp {
    Start(u64, f64),
    Cancel(u64),
}

/// Deferred side effects collected while an endpoint runs.
///
/// One instance lives on the [`Sim`] and is lent to each dispatch in turn;
/// the vectors are drained (not dropped) when applied, so after warm-up the
/// hot path allocates nothing here.
#[derive(Default)]
struct Effects {
    sends: Vec<(Addr, Addr, Bytes, MsgCategory)>,
    timers: Vec<(u64, u64)>,
    timer_cancels: Vec<u64>,
    work_ops: Vec<WorkOp>,
    logs: Vec<String>,
}

struct HostCtx<'a> {
    now: u64,
    info: &'a MachineInfo,
    load: f64,
    /// CPU state advanced to `now`, for lazy job lookups.
    cpu: &'a Cpu,
    port: PortId,
    trace_on: bool,
    rng: &'a mut SmallRng,
    fx: &'a mut Effects,
}

impl Host for HostCtx<'_> {
    fn now_us(&self) -> u64 {
        self.now
    }
    fn send(&mut self, src: Addr, dst: Addr, payload: Bytes) {
        self.fx
            .sends
            .push((src, dst, payload, MsgCategory::Protocol));
    }
    fn send_category(&mut self, src: Addr, dst: Addr, payload: Bytes, category: MsgCategory) {
        self.fx.sends.push((src, dst, payload, category));
    }
    fn set_timer(&mut self, delay_us: u64, token: u64) {
        self.fx.timers.push((delay_us, token));
    }
    fn cancel_timer(&mut self, token: u64) {
        self.fx.timer_cancels.push(token);
    }
    fn start_work(&mut self, pid: u64, mops: f64) {
        self.load += 1.0; // reflect immediately in subsequent load() calls
        self.fx.work_ops.push(WorkOp::Start(pid, mops));
    }
    fn cancel_work(&mut self, pid: u64) {
        self.fx.work_ops.push(WorkOp::Cancel(pid));
    }
    fn work_remaining(&self, pid: u64) -> Option<f64> {
        // The latest mutation within this callback wins; otherwise consult
        // the CPU directly (advanced to `now` before the callback began).
        for op in self.fx.work_ops.iter().rev() {
            match *op {
                WorkOp::Start(p, m) if p == pid => return Some(m),
                WorkOp::Cancel(p) if p == pid => return None,
                _ => {}
            }
        }
        self.cpu.remaining((self.port, pid))
    }
    fn load(&self) -> f64 {
        self.load
    }
    fn machine(&self) -> &MachineInfo {
        self.info
    }
    fn rand_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
    fn log(&mut self, line: String) {
        if self.trace_on {
            self.fx.logs.push(line);
        }
    }
    fn log_enabled(&self) -> bool {
        self.trace_on
    }
}

/// Accumulator for coalescing consecutive deliverable sends into one
/// [`EventKind::DeliverBatch`] heap entry (see `Sim::route_send`).
enum PendingDelivery {
    None,
    One(u64, NodeId, Envelope),
    Many(u64, NodeId, Vec<Envelope>),
}

/// The simulator.
pub struct Sim {
    now: u64,
    events: CalendarQueue<Event>,
    /// Index-stable node slab: slots are assigned in registration order and
    /// never reused or removed (crash marks the node dead in place).
    nodes: Vec<SimNode>,
    slots: NodeSlots,
    fault: FaultPlan,
    topology: Topology,
    stats: NetStats,
    trace: Trace,
    master_rng: SmallRng,
    seed: u64,
    events_processed: u64,
    /// Scratch [`Effects`] reused across dispatches (capacity persists).
    /// Boxed so lending it to a callback is a pointer move, not a copy of
    /// five `Vec` headers; `None` only while a dispatch is borrowing it.
    scratch_fx: Option<Box<Effects>>,
    /// Recycled [`EventKind::DeliverBatch`] buffers: drained batches park
    /// here and `route_send` reuses them, so steady-state burst delivery
    /// allocates no fresh `Vec`s.
    batch_pool: Vec<Vec<Envelope>>,
}

impl Sim {
    /// Build an empty simulator.
    pub fn new(config: SimConfig) -> Self {
        Self {
            now: 0,
            events: CalendarQueue::new(),
            nodes: Vec::new(),
            slots: NodeSlots::default(),
            fault: FaultPlan::none(),
            topology: config.topology,
            stats: NetStats::new(),
            trace: if config.trace_enabled {
                Trace::new()
            } else {
                Trace::disabled()
            },
            master_rng: SmallRng::seed_from_u64(config.seed),
            seed: config.seed,
            events_processed: 0,
            scratch_fx: Some(Box::default()),
            batch_pool: Vec::new(),
        }
    }

    /// Current simulated time, µs.
    pub fn now_us(&self) -> u64 {
        self.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Network statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The run trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutate the fault plan (partitions, link faults). For whole-machine
    /// crash semantics prefer [`Sim::kill_node`], which also clears the CPU.
    pub fn with_fault_plan<T>(&mut self, f: impl FnOnce(&mut FaultPlan) -> T) -> T {
        f(&mut self.fault)
    }

    /// Register a machine with an idle background-load trace.
    pub fn add_node(&mut self, info: MachineInfo) {
        self.add_node_with_load(info, LoadTrace::idle());
    }

    /// Register a machine and schedule its background-load trace.
    pub fn add_node_with_load(&mut self, info: MachineInfo, load: LoadTrace) {
        let node = info.node;
        let node_seed = self.seed ^ (u64::from(node.0) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let cpu = Cpu::new(info.speed_mops);
        let slot = self.nodes.len();
        assert!(self.slots.insert(node, slot), "node {node} added twice");
        self.nodes.push(SimNode {
            info,
            cpu,
            endpoints: Vec::new(),
            ep_cache: 0,
            rng: SmallRng::seed_from_u64(node_seed),
            send_seq: 0,
            cancelled_timers: HashMap::new(),
            pending_cancels: 0,
            dead: false,
        });
        for &(at_us, background) in load.steps() {
            self.push_event(
                at_us.max(self.now),
                node,
                EventKind::LoadChange { background },
            );
        }
    }

    /// Register an endpoint; its `on_start` runs as the next event.
    pub fn add_endpoint(&mut self, addr: Addr, ep: Box<dyn Endpoint>) {
        let slot = self
            .slots
            .get(addr.node)
            .unwrap_or_else(|| panic!("endpoint on unknown node {}", addr.node));
        let node = &mut self.nodes[slot];
        match node.endpoints.binary_search_by_key(&addr.port, |(p, _)| *p) {
            Ok(_) => panic!("endpoint {addr} registered twice"),
            Err(i) => node.endpoints.insert(i, (addr.port, ep)),
        }
        self.push_event(self.now, addr.node, EventKind::Start { port: addr.port });
    }

    /// Inject an external envelope, delivered to `dst` at `at_us`
    /// (≥ now). Used by experiment harnesses to kick off scenarios.
    pub fn inject_at(&mut self, at_us: u64, src: Addr, dst: Addr, payload: Bytes) {
        let env = Envelope::new(src, dst, u64::MAX, payload);
        self.push_event(at_us.max(self.now), dst.node, EventKind::Deliver(env));
    }

    /// Encode and inject an external message for immediate delivery.
    pub fn inject<T: vce_codec::Codec>(&mut self, src: Addr, dst: Addr, msg: &T) {
        let mut enc = vce_codec::Encoder::with_capacity(64);
        msg.encode(&mut enc);
        self.inject_at(self.now, src, dst, enc.finish_bytes());
    }

    /// Crash a machine: connectivity drops, resident jobs are lost, timers
    /// go stale. Endpoint state survives for a later [`Sim::revive_node`]
    /// (a rebooted daemon restarting from scratch is modelled by the
    /// endpoint itself on `on_start`).
    pub fn kill_node(&mut self, node: NodeId) {
        // Sever connectivity first so anything `on_crash` tries to send is
        // dropped by the fault judge, then give each endpoint its crash
        // instant (stable stores settle which in-flight writes survive)
        // while the CPU still reflects pre-crash work.
        self.fault.kill(node);
        let slot = self.slots.get(node);
        let ports: Vec<PortId> = match slot {
            Some(s) if !self.nodes[s].dead => {
                self.nodes[s].endpoints.iter().map(|(p, _)| *p).collect()
            }
            _ => Vec::new(),
        };
        if let Some(s) = slot {
            for port in ports {
                self.dispatch(s, node, port, |ep, host| ep.on_crash(host));
            }
            let n = &mut self.nodes[s];
            n.dead = true;
            n.cpu.advance(self.now);
            n.cpu.clear();
        }
        if self.trace.is_enabled() {
            let now = self.now;
            self.trace.push(now, node, "engine: node killed".into());
        }
    }

    /// Revive a crashed machine and re-run `on_start` on its endpoints.
    pub fn revive_node(&mut self, node: NodeId) {
        self.fault.revive(node);
        let ports: Vec<PortId> = match self.slots.get(node) {
            Some(s) => {
                let n = &mut self.nodes[s];
                n.dead = false;
                // Sorted by port: the deterministic replay order the old
                // BTreeMap iteration gave us.
                n.endpoints.iter().map(|(p, _)| *p).collect()
            }
            None => Vec::new(),
        };
        for port in ports {
            self.push_event(self.now, node, EventKind::Start { port });
        }
        if self.trace.is_enabled() {
            let now = self.now;
            self.trace.push(now, node, "engine: node revived".into());
        }
    }

    /// Schedule a fault-plan mutation at absolute sim time `at_us` —
    /// crash/revive, partition/heal, or a default-link change. The op
    /// rides the ordinary event heap, so an entire chaos schedule queued
    /// up front interleaves deterministically with protocol traffic, and
    /// each application is visible in the trace for replay.
    pub fn schedule_fault(&mut self, at_us: u64, op: vce_net::FaultOp) {
        let node = match op {
            vce_net::FaultOp::Kill(n)
            | vce_net::FaultOp::Revive(n)
            | vce_net::FaultOp::Partition(n, _) => n,
            _ => NodeId(0),
        };
        self.push_event(at_us.max(self.now), node, EventKind::Fault(op));
    }

    fn apply_fault(&mut self, op: vce_net::FaultOp) {
        match op {
            vce_net::FaultOp::Kill(n) => self.kill_node(n),
            vce_net::FaultOp::Revive(n) => self.revive_node(n),
            vce_net::FaultOp::Partition(n, group) => {
                self.fault.set_partition(n, group);
                if self.trace.is_enabled() {
                    let now = self.now;
                    self.trace
                        .push(now, n, format!("engine: partition -> group {group}"));
                }
            }
            vce_net::FaultOp::Heal => {
                self.fault.heal_partitions();
                if self.trace.is_enabled() {
                    let now = self.now;
                    self.trace
                        .push(now, NodeId(0), "engine: partitions healed".into());
                }
            }
            vce_net::FaultOp::DefaultLink(lf) => {
                self.fault.default_link = lf;
                if self.trace.is_enabled() {
                    let now = self.now;
                    self.trace.push(
                        now,
                        NodeId(0),
                        format!(
                            "engine: default link drop={} dup={} delay={}µs+{}µs",
                            lf.drop_prob, lf.dup_prob, lf.extra_delay_us, lf.jitter_us
                        ),
                    );
                }
            }
        }
    }

    /// Immediately set a node's background load.
    pub fn set_background(&mut self, node: NodeId, background: f64) {
        self.push_event(self.now, node, EventKind::LoadChange { background });
    }

    /// Whether a node is currently crashed.
    pub fn is_node_dead(&self, node: NodeId) -> bool {
        self.node_is_dead(node)
    }

    /// A node's instantaneous load.
    pub fn node_load(&self, node: NodeId) -> f64 {
        self.slots
            .get(node)
            .map_or(0.0, |s| self.nodes[s].cpu.load())
    }

    /// Metrics snapshot for one node (advances its CPU accounting to now).
    pub fn metrics(&mut self, node: NodeId) -> Option<NodeMetrics> {
        let now = self.now;
        self.slots.get(node).map(|s| {
            let n = &mut self.nodes[s];
            n.cpu.advance(now);
            NodeMetrics {
                node,
                class: n.info.class,
                busy_us: n.cpu.busy_us(),
                elapsed_us: now,
                completed_jobs: n.cpu.completed_jobs(),
                mops_done: n.cpu.total_mops_done(),
                avg_load: if now == 0 {
                    0.0
                } else {
                    n.cpu.weighted_load_us() / now as f64
                },
                load_now: n.cpu.load(),
            }
        })
    }

    /// Metrics for every node, sorted by node id.
    pub fn all_metrics(&mut self) -> Vec<NodeMetrics> {
        let mut ids: Vec<NodeId> = self.nodes.iter().map(|n| n.info.node).collect();
        ids.sort();
        ids.into_iter().filter_map(|id| self.metrics(id)).collect()
    }

    /// Access an endpoint's concrete state (via its `as_any_mut` hook).
    pub fn with_endpoint_mut<E: 'static, T>(
        &mut self,
        addr: Addr,
        f: impl FnOnce(&mut E) -> T,
    ) -> Option<T> {
        let node = &mut self.nodes[self.slots.get(addr.node)?];
        let i = node.ep_slot(addr.port)?;
        let any = node.endpoints[i].1.as_any_mut()?;
        any.downcast_mut::<E>().map(f)
    }

    fn push_event(&mut self, at_us: u64, node: NodeId, kind: EventKind) {
        self.events.push(at_us, Event { node, kind });
    }

    /// Process one event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((at_us, ev)) = self.events.pop() else {
            return false;
        };
        debug_assert!(at_us >= self.now, "event queue went backwards");
        self.now = at_us;
        self.events_processed += 1;
        self.handle(ev);
        true
    }

    /// Run until the event heap is empty; returns the final time.
    ///
    /// **Only terminates for self-quenching scenarios.** Endpoints with
    /// periodic timers (every VCE daemon re-arms heartbeat/housekeeping
    /// ticks forever) keep the heap non-empty — drive those with
    /// [`Sim::run_until`]/[`Sim::run_for`] instead.
    pub fn run_until_idle(&mut self) -> u64 {
        while self.step() {}
        self.now
    }

    /// Run until simulated time reaches `t_us` (events at exactly `t_us`
    /// are processed); the clock advances to `t_us` even if the heap
    /// empties first.
    pub fn run_until(&mut self, t_us: u64) {
        while let Some(at) = self.events.peek_time() {
            if at > t_us {
                break;
            }
            self.step();
        }
        if self.now < t_us {
            self.now = t_us;
        }
    }

    /// Run for `d_us` more simulated microseconds.
    pub fn run_for(&mut self, d_us: u64) {
        let t = self.now + d_us;
        self.run_until(t);
    }

    fn handle(&mut self, ev: Event) {
        match ev.kind {
            EventKind::Start { port } => {
                let Some(slot) = self.live_slot(ev.node) else {
                    return;
                };
                self.dispatch(slot, ev.node, port, |ep, host| ep.on_start(host));
            }
            EventKind::Deliver(env) => self.deliver_one(ev.node, env),
            EventKind::DeliverBatch(mut envs) => {
                // Count each coalesced delivery like its uncoalesced form,
                // so `events_processed` is independent of batching.
                self.events_processed += envs.len() as u64 - 1;
                for env in envs.drain(..) {
                    self.deliver_one(ev.node, env);
                }
                // Park the drained buffer for route_send to reuse.
                if self.batch_pool.len() < 64 {
                    self.batch_pool.push(envs);
                }
            }
            EventKind::Timer { port, token } => {
                let Some(slot) = self.slots.get(ev.node) else {
                    return;
                };
                let n = &mut self.nodes[slot];
                if n.dead {
                    return;
                }
                // Fast path: with no cancellations outstanding anywhere on
                // this node, fire without hashing into the cancel map.
                if n.pending_cancels > 0 {
                    if let Some(c) = n.cancelled_timers.get_mut(&(port, token)) {
                        *c -= 1;
                        n.pending_cancels -= 1;
                        if *c == 0 {
                            n.cancelled_timers.remove(&(port, token));
                        }
                        return;
                    }
                }
                self.dispatch(slot, ev.node, port, move |ep, host| {
                    ep.on_timer(token, host)
                });
            }
            EventKind::CpuCheck { generation } => {
                let Some(slot) = self.live_slot(ev.node) else {
                    return;
                };
                let now = self.now;
                let completions: Vec<(PortId, u64)> = {
                    let n = &mut self.nodes[slot];
                    if n.cpu.generation != generation {
                        return; // stale prediction
                    }
                    n.cpu.advance(now);
                    // Everything numerically finished completes together.
                    let done = n.cpu.done_jobs();
                    for &key in &done {
                        n.cpu.remove_job(key);
                        n.cpu.note_completed();
                    }
                    done
                };
                for (port, pid) in completions {
                    self.dispatch(slot, ev.node, port, move |ep, host| {
                        ep.on_work_done(pid, host)
                    });
                }
                self.schedule_cpu_check(ev.node);
            }
            EventKind::Fault(op) => self.apply_fault(op),
            EventKind::LoadChange { background } => {
                if let Some(slot) = self.slots.get(ev.node) {
                    let now = self.now;
                    let n = &mut self.nodes[slot];
                    n.cpu.advance(now);
                    n.cpu.set_background(background);
                    if self.trace.is_enabled() {
                        self.trace.push(
                            now,
                            ev.node,
                            format!("engine: background load -> {background}"),
                        );
                    }
                    self.schedule_cpu_check(ev.node);
                }
            }
        }
    }

    fn deliver_one(&mut self, node: NodeId, env: Envelope) {
        // Specialised dispatch for the dominant event kind: one slab index
        // covers the liveness check, the endpoint lookup, and the callback
        // itself.
        let now = self.now;
        let trace_on = self.trace.is_enabled();
        let port = env.dst.port;
        let mut fx = self.scratch_fx.take().unwrap_or_default();
        {
            let Some(slot) = self.slots.get(node) else {
                self.scratch_fx = Some(fx);
                self.stats.record_dropped();
                return;
            };
            let n = &mut self.nodes[slot];
            // The destination may have died after the send was judged.
            if n.dead || self.fault.is_dead(env.dst.node) {
                self.scratch_fx = Some(fx);
                self.stats.record_dropped();
                return;
            }
            self.stats.record_delivered();
            let Some(i) = n.ep_slot(port) else {
                self.scratch_fx = Some(fx);
                if trace_on {
                    self.trace
                        .push(now, node, format!("engine: no endpoint for port {port:?}"));
                }
                return;
            };
            let SimNode {
                info,
                cpu,
                endpoints,
                rng,
                ..
            } = n;
            let ep = &mut endpoints[i].1;
            cpu.advance(now);
            let mut ctx = HostCtx {
                now,
                info,
                load: cpu.load(),
                cpu,
                port,
                trace_on,
                rng,
                fx: &mut fx,
            };
            ep.on_envelope(env, &mut ctx);
        }
        self.apply_effects(node, port, &mut fx);
        self.scratch_fx = Some(fx);
    }

    /// Slab slot of `node` if it exists and is alive.
    #[inline]
    fn live_slot(&self, node: NodeId) -> Option<usize> {
        self.slots.get(node).filter(|&s| !self.nodes[s].dead)
    }

    fn node_is_dead(&self, node: NodeId) -> bool {
        self.live_slot(node).is_none()
    }

    fn schedule_cpu_check(&mut self, node: NodeId) {
        let now = self.now;
        let next = self.slots.get(node).and_then(|s| {
            let n = &mut self.nodes[s];
            n.cpu
                .next_completion(now)
                .map(|(_, at)| (at, n.cpu.generation))
        });
        if let Some((at, generation)) = next {
            self.push_event(at, node, EventKind::CpuCheck { generation });
        }
    }

    /// Run one endpoint callback and apply its effects. `slot` must be
    /// `node_id`'s slab slot.
    fn dispatch(
        &mut self,
        slot: usize,
        node_id: NodeId,
        port: PortId,
        f: impl FnOnce(&mut dyn Endpoint, &mut dyn Host),
    ) {
        let now = self.now;
        let trace_on = self.trace.is_enabled();
        // Lend the shared scratch buffers to this callback; drained on
        // apply, returned below with their capacity intact. (apply_effects
        // never re-enters dispatch, so one scratch instance suffices.)
        let mut fx = self.scratch_fx.take().unwrap_or_default();
        {
            let node = &mut self.nodes[slot];
            let Some(i) = node.ep_slot(port) else {
                self.scratch_fx = Some(fx);
                return;
            };
            // Disjoint field borrows: the endpoint (mut) runs against its
            // node's info/cpu (shared) and rng (mut) with no clones and
            // without moving it out of the table.
            let SimNode {
                info,
                cpu,
                endpoints,
                rng,
                ..
            } = node;
            let ep = &mut endpoints[i].1;
            cpu.advance(now);
            let mut ctx = HostCtx {
                now,
                info,
                load: cpu.load(),
                cpu,
                port,
                trace_on,
                rng,
                fx: &mut fx,
            };
            f(ep.as_mut(), &mut ctx);
        }
        self.apply_effects(node_id, port, &mut fx);
        self.scratch_fx = Some(fx);
    }

    fn apply_effects(&mut self, node_id: NodeId, port: PortId, fx: &mut Effects) {
        let now = self.now;
        let slot = self.slots.get(node_id);
        for line in fx.logs.drain(..) {
            self.trace.push(now, node_id, line);
        }
        if !fx.timer_cancels.is_empty() {
            if let Some(s) = slot {
                let n = &mut self.nodes[s];
                for token in fx.timer_cancels.drain(..) {
                    *n.cancelled_timers.entry((port, token)).or_insert(0) += 1;
                    n.pending_cancels += 1;
                }
            } else {
                fx.timer_cancels.clear();
            }
        }
        for (delay, token) in fx.timers.drain(..) {
            self.push_event(now + delay, node_id, EventKind::Timer { port, token });
        }
        if !fx.work_ops.is_empty() {
            if let Some(s) = slot {
                let n = &mut self.nodes[s];
                n.cpu.advance(now);
                for op in fx.work_ops.drain(..) {
                    match op {
                        WorkOp::Start(pid, mops) => n.cpu.add_job((port, pid), mops),
                        WorkOp::Cancel(pid) => {
                            n.cpu.remove_job((port, pid));
                        }
                    }
                }
                self.schedule_cpu_check(node_id);
            } else {
                fx.work_ops.clear();
            }
        }
        if fx.sends.is_empty() {
            return;
        }
        let mut pending = PendingDelivery::None;
        // Sends from one callback almost always share the callback's own
        // node as source: bump that node's `send_seq` by the whole batch in
        // one slab hit and hand out the pre-assigned range. A send with a
        // foreign source address (possible, endpoints pick `src` freely)
        // falls back to the per-send lookup.
        if fx.sends.iter().all(|(s, ..)| s.node == node_id) {
            let base = match slot {
                Some(s) => {
                    let n = &mut self.nodes[s];
                    let b = n.send_seq;
                    n.send_seq += fx.sends.len() as u64;
                    b
                }
                None => 0,
            };
            for (i, (src, dst, payload, category)) in fx.sends.drain(..).enumerate() {
                self.route_send(src, dst, payload, category, base + i as u64, &mut pending);
            }
        } else {
            for (src, dst, payload, category) in fx.sends.drain(..) {
                let seq = match self.slots.get(src.node) {
                    Some(s) => {
                        let n = &mut self.nodes[s];
                        let b = n.send_seq;
                        n.send_seq += 1;
                        b
                    }
                    None => 0,
                };
                self.route_send(src, dst, payload, category, seq, &mut pending);
            }
        }
        self.flush_delivery(pending);
    }

    fn route_send(
        &mut self,
        src: Addr,
        dst: Addr,
        payload: Bytes,
        category: MsgCategory,
        seq: u64,
        pending: &mut PendingDelivery,
    ) {
        let env = Envelope::new(src, dst, seq, payload);
        self.stats.record_sent_category(env.wire_size(), category);
        let verdict = self.fault.judge(src.node, dst.node, &mut self.master_rng);
        let base = self
            .topology
            .latency_us(src.node, dst.node, env.wire_size());
        match verdict {
            Delivery::Drop => self.stats.record_dropped(),
            Delivery::Deliver { extra_delay_us } => {
                let at = self.now + base + extra_delay_us;
                // Coalesce with the previous deliverable send when both land
                // on the same node at the same instant: their heap slots
                // would be adjacent (consecutive push seqs, nothing pushed
                // between), so one batched entry fires in identical order.
                *pending = match std::mem::replace(pending, PendingDelivery::None) {
                    PendingDelivery::None => PendingDelivery::One(at, dst.node, env),
                    PendingDelivery::One(pat, pnode, penv) if pat == at && pnode == dst.node => {
                        // Reuse a drained batch buffer if one is parked.
                        let mut envs = self.batch_pool.pop().unwrap_or_default();
                        envs.push(penv);
                        envs.push(env);
                        PendingDelivery::Many(at, pnode, envs)
                    }
                    PendingDelivery::Many(pat, pnode, mut envs)
                        if pat == at && pnode == dst.node =>
                    {
                        envs.push(env);
                        PendingDelivery::Many(pat, pnode, envs)
                    }
                    other => {
                        self.flush_delivery(other);
                        PendingDelivery::One(at, dst.node, env)
                    }
                };
            }
            Delivery::Duplicate {
                first_us,
                second_us,
            } => {
                // Flush first so heap-insertion order matches the serial
                // (unbatched) push sequence exactly.
                self.flush_delivery(std::mem::replace(pending, PendingDelivery::None));
                self.stats.record_duplicated();
                self.push_event(
                    self.now + base + first_us,
                    dst.node,
                    EventKind::Deliver(env.clone()),
                );
                self.push_event(
                    self.now + base + second_us,
                    dst.node,
                    EventKind::Deliver(env),
                );
            }
        }
    }

    fn flush_delivery(&mut self, pending: PendingDelivery) {
        match pending {
            PendingDelivery::None => {}
            PendingDelivery::One(at, node, env) => {
                self.push_event(at, node, EventKind::Deliver(env));
            }
            PendingDelivery::Many(at, node, envs) => {
                self.push_event(at, node, EventKind::DeliverBatch(envs));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vce_net::send_msg;

    /// Echo endpoint: replies to every envelope with the same number + 1,
    /// until a cap.
    struct Counter {
        me: Addr,
        cap: u64,
        last_seen: u64,
        finish_time: Option<u64>,
    }

    impl Endpoint for Counter {
        fn on_envelope(&mut self, env: Envelope, host: &mut dyn Host) {
            let v: u64 = env.decode_payload().unwrap();
            self.last_seen = v;
            if v >= self.cap {
                self.finish_time = Some(host.now_us());
            } else {
                send_msg(host, self.me, env.src, &(v + 1));
            }
        }
        fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
            Some(self)
        }
    }

    fn two_node_sim() -> Sim {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(MachineInfo::workstation(NodeId(0), 100.0));
        sim.add_node(MachineInfo::workstation(NodeId(1), 100.0));
        sim
    }

    #[test]
    fn message_ping_pong_advances_time_by_latency() {
        let mut sim = two_node_sim();
        for n in [0u32, 1] {
            sim.add_endpoint(
                Addr::daemon(NodeId(n)),
                Box::new(Counter {
                    me: Addr::daemon(NodeId(n)),
                    cap: 10,
                    last_seen: 0,
                    finish_time: None,
                }),
            );
        }
        sim.inject(Addr::daemon(NodeId(0)), Addr::daemon(NodeId(1)), &0u64);
        sim.run_until_idle();
        let t = sim
            .with_endpoint_mut::<Counter, _>(Addr::daemon(NodeId(0)), |c| c.finish_time)
            .flatten()
            .or_else(|| {
                sim.with_endpoint_mut::<Counter, _>(Addr::daemon(NodeId(1)), |c| c.finish_time)
                    .flatten()
            })
            .expect("someone finished");
        // Ten hops at ~1ms base latency each.
        assert!(t >= 10_000, "time {t}");
        assert_eq!(sim.stats().delivered(), 11); // inject + 10 replies
    }

    #[test]
    fn deterministic_runs_produce_identical_traces() {
        let run = || {
            let mut sim = two_node_sim();
            for n in [0u32, 1] {
                sim.add_endpoint(
                    Addr::daemon(NodeId(n)),
                    Box::new(Counter {
                        me: Addr::daemon(NodeId(n)),
                        cap: 50,
                        last_seen: 0,
                        finish_time: None,
                    }),
                );
            }
            sim.inject(Addr::daemon(NodeId(0)), Addr::daemon(NodeId(1)), &0u64);
            sim.run_until_idle();
            (sim.now_us(), sim.events_processed(), sim.stats().snapshot())
        };
        assert_eq!(run(), run());
    }

    struct WorkOnce {
        mops: f64,
        done_at: Option<u64>,
    }
    impl Endpoint for WorkOnce {
        fn on_start(&mut self, host: &mut dyn Host) {
            host.start_work(1, self.mops);
        }
        fn on_envelope(&mut self, _env: Envelope, _host: &mut dyn Host) {}
        fn on_work_done(&mut self, _pid: u64, host: &mut dyn Host) {
            self.done_at = Some(host.now_us());
        }
        fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
            Some(self)
        }
    }

    #[test]
    fn work_completes_at_predicted_time() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(MachineInfo::workstation(NodeId(0), 200.0));
        sim.add_endpoint(
            Addr::daemon(NodeId(0)),
            Box::new(WorkOnce {
                mops: 100.0,
                done_at: None,
            }),
        );
        sim.run_until_idle();
        let done = sim
            .with_endpoint_mut::<WorkOnce, _>(Addr::daemon(NodeId(0)), |w| w.done_at)
            .flatten()
            .unwrap();
        assert_eq!(done, 500_000); // 100 Mops at 200 Mops/s
    }

    #[test]
    fn background_load_trace_slows_work() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node_with_load(
            MachineInfo::workstation(NodeId(0), 100.0),
            LoadTrace::constant(1.0),
        );
        sim.add_endpoint(
            Addr::daemon(NodeId(0)),
            Box::new(WorkOnce {
                mops: 50.0,
                done_at: None,
            }),
        );
        sim.run_until_idle();
        let done = sim
            .with_endpoint_mut::<WorkOnce, _>(Addr::daemon(NodeId(0)), |w| w.done_at)
            .flatten()
            .unwrap();
        assert_eq!(done, 1_000_000); // halved by one background job
        assert_eq!(sim.node_load(NodeId(0)), 1.0); // background remains
    }

    #[test]
    fn mid_run_load_change_repredicts_completion() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node_with_load(
            MachineInfo::workstation(NodeId(0), 100.0),
            LoadTrace::from_steps(vec![(250_000, 1.0)]),
        );
        sim.add_endpoint(
            Addr::daemon(NodeId(0)),
            Box::new(WorkOnce {
                mops: 50.0,
                done_at: None,
            }),
        );
        sim.run_until_idle();
        let done = sim
            .with_endpoint_mut::<WorkOnce, _>(Addr::daemon(NodeId(0)), |w| w.done_at)
            .flatten()
            .unwrap();
        // 25 Mops at full speed (250ms), then 25 Mops at half speed (500ms).
        assert_eq!(done, 750_000);
    }

    struct TimerEp {
        fired: Vec<(u64, u64)>,
    }
    impl Endpoint for TimerEp {
        fn on_start(&mut self, host: &mut dyn Host) {
            host.set_timer(100, 1);
            host.set_timer(50, 2);
            host.set_timer(200, 3);
            host.cancel_timer(3);
        }
        fn on_envelope(&mut self, _env: Envelope, _host: &mut dyn Host) {}
        fn on_timer(&mut self, token: u64, host: &mut dyn Host) {
            self.fired.push((host.now_us(), token));
        }
        fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
            Some(self)
        }
    }

    #[test]
    fn timers_fire_in_time_order_and_respect_cancel() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(MachineInfo::workstation(NodeId(0), 100.0));
        sim.add_endpoint(Addr::daemon(NodeId(0)), Box::new(TimerEp { fired: vec![] }));
        sim.run_until_idle();
        let fired = sim
            .with_endpoint_mut::<TimerEp, _>(Addr::daemon(NodeId(0)), |t| t.fired.clone())
            .unwrap();
        assert_eq!(fired, vec![(50, 2), (100, 1)]);
    }

    #[test]
    fn killed_node_stops_participating() {
        let mut sim = two_node_sim();
        for n in [0u32, 1] {
            sim.add_endpoint(
                Addr::daemon(NodeId(n)),
                Box::new(Counter {
                    me: Addr::daemon(NodeId(n)),
                    cap: 1_000_000,
                    last_seen: 0,
                    finish_time: None,
                }),
            );
        }
        sim.inject(Addr::daemon(NodeId(0)), Addr::daemon(NodeId(1)), &0u64);
        sim.run_until(20_000);
        sim.kill_node(NodeId(1));
        sim.run_until_idle();
        // The ping-pong stopped: far fewer than cap messages happened.
        let last = sim
            .with_endpoint_mut::<Counter, _>(Addr::daemon(NodeId(0)), |c| c.last_seen)
            .unwrap();
        assert!(last < 100, "last {last}");
        assert!(sim.stats().dropped() > 0);
    }

    #[test]
    fn revive_reruns_on_start() {
        struct Boot {
            boots: u32,
        }
        impl Endpoint for Boot {
            fn on_start(&mut self, _h: &mut dyn Host) {
                self.boots += 1;
            }
            fn on_envelope(&mut self, _env: Envelope, _h: &mut dyn Host) {}
            fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
                Some(self)
            }
        }
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(MachineInfo::workstation(NodeId(0), 100.0));
        sim.add_endpoint(Addr::daemon(NodeId(0)), Box::new(Boot { boots: 0 }));
        sim.run_until_idle();
        sim.kill_node(NodeId(0));
        sim.revive_node(NodeId(0));
        sim.run_until_idle();
        let boots = sim
            .with_endpoint_mut::<Boot, _>(Addr::daemon(NodeId(0)), |b| b.boots)
            .unwrap();
        assert_eq!(boots, 2);
    }

    #[test]
    fn kill_clears_cpu_jobs() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(MachineInfo::workstation(NodeId(0), 100.0));
        sim.add_endpoint(
            Addr::daemon(NodeId(0)),
            Box::new(WorkOnce {
                mops: 1000.0,
                done_at: None,
            }),
        );
        sim.run_until(1_000);
        assert_eq!(sim.node_load(NodeId(0)), 1.0);
        sim.kill_node(NodeId(0));
        assert_eq!(sim.node_load(NodeId(0)), 0.0);
        sim.run_until_idle();
        let done = sim
            .with_endpoint_mut::<WorkOnce, _>(Addr::daemon(NodeId(0)), |w| w.done_at)
            .unwrap();
        assert!(done.is_none());
    }

    #[test]
    fn metrics_report_utilization() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(MachineInfo::workstation(NodeId(0), 100.0));
        sim.add_node(MachineInfo::workstation(NodeId(1), 100.0));
        sim.add_endpoint(
            Addr::daemon(NodeId(0)),
            Box::new(WorkOnce {
                mops: 50.0,
                done_at: None,
            }),
        );
        sim.run_until(1_000_000);
        let m = sim.metrics(NodeId(0)).unwrap();
        assert_eq!(m.busy_us, 500_000);
        assert!((m.utilization() - 0.5).abs() < 1e-6);
        assert_eq!(m.completed_jobs, 1);
        let idle = sim.metrics(NodeId(1)).unwrap();
        assert_eq!(idle.utilization(), 0.0);
        let all = sim.all_metrics();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].node, NodeId(0));
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(MachineInfo::workstation(NodeId(0), 100.0));
        sim.run_until(5_000_000);
        assert_eq!(sim.now_us(), 5_000_000);
        sim.run_for(1_000);
        assert_eq!(sim.now_us(), 5_001_000);
    }

    #[test]
    #[should_panic(expected = "added twice")]
    fn duplicate_node_panics() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(MachineInfo::workstation(NodeId(0), 100.0));
        sim.add_node(MachineInfo::workstation(NodeId(0), 100.0));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_endpoint_panics() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(MachineInfo::workstation(NodeId(0), 100.0));
        sim.add_endpoint(Addr::daemon(NodeId(0)), Box::new(TimerEp { fired: vec![] }));
        sim.add_endpoint(Addr::daemon(NodeId(0)), Box::new(TimerEp { fired: vec![] }));
    }

    #[test]
    fn trace_records_engine_events() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(MachineInfo::workstation(NodeId(0), 100.0));
        sim.kill_node(NodeId(0));
        assert!(sim.trace().first_time("node killed").is_some());
    }
}
