//! The discrete-event engine facade: partitions nodes across shards,
//! schedules fault fences, and merges per-shard traces and statistics back
//! into one global-order view.
//!
//! Determinism contract: a run is a pure function of (config seed, the
//! sequence of `add_*`/`kill_*`/`inject` calls) — **independent of the
//! shard count**. Every event carries a *cause key* derived from its
//! creator (see [`crate::shard`]); the global total order is `(at_us,
//! cause)`, and shards advance in conservative time windows sized by the
//! adaptive lookahead plan (`crate::lookahead` — at least
//! [`Topology::min_cross_latency_us`], wider on clustered fleets) so
//! cross-shard events always land in a later window. Traces, experiment stdout and chaos invariants are
//! byte-identical for `shards` ∈ {1, 2, 4, 8}; with `shards = 1` the
//! facade compiles down to a plain serial event loop over one shard.
//!
//! Fault mutations (scheduled chaos ops and driver-time kills/revives) are
//! not ordinary events: they touch the *global* fault plan, which every
//! shard consults. They are kept as **fences** — a time-ordered side list
//! that caps window ends — and applied to every shard's plan replica at
//! window starts, before same-microsecond events, identically on every
//! shard count.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

use bytes::Bytes;

use vce_net::{Addr, Endpoint, Envelope, FaultPlan, MachineInfo, NetStats, NodeId};

use crate::load::LoadTrace;
use crate::lookahead::LookaheadPlan;
use crate::metrics::NodeMetrics;
use crate::record::{EventRecord, SnapshotRecord, TraceWriter};
use crate::shard::{apply_plan_op, cause_key, shard_of, Shard};
use crate::sharded;
use crate::topology::Topology;
use crate::trace::Trace;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed; everything random in the run derives from it.
    pub seed: u64,
    /// Latency model.
    pub topology: Topology,
    /// Whether to keep a full trace (disable for hot benchmarks).
    pub trace_enabled: bool,
    /// Number of shards the node slab is partitioned into (1–64). Output
    /// is byte-identical for every value; >1 engages the multi-core window
    /// runner when cores are available. Defaults from `VCE_SHARDS`.
    pub shards: usize,
}

impl SimConfig {
    /// Shard count from the `VCE_SHARDS` environment variable, clamped to
    /// 1–64; 1 (the serial engine) when unset or unparsable.
    pub fn shards_from_env() -> usize {
        std::env::var("VCE_SHARDS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .map_or(1, |n| n.clamp(1, 64))
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            topology: Topology::default(),
            trace_enabled: true,
            shards: Self::shards_from_env(),
        }
    }
}

/// The simulator: a facade over `shards` shard-local engines.
pub struct Sim {
    now: u64,
    shards: Vec<Shard>,
    topology: Arc<Topology>,
    /// Canonical fault plan (driver's view). Shards hold replicas, updated
    /// op-wise at fences; [`Sim::with_fault_plan`] re-clones wholesale.
    fault: FaultPlan,
    /// Pending fault fences, ordered by `(at_us, driver cause)`.
    fences: BTreeMap<(u64, u64), vce_net::FaultOp>,
    /// Driver cause counter (origin 0): injections, fences, driver kills.
    driver_seq: u64,
    /// Conservative window width: the cheapest latency any *realizable*
    /// cross-shard pair can achieve, per the site-occupancy plan below.
    /// Starts at the global floor ([`Topology::min_cross_latency_us`]) and
    /// is recomputed whenever a node registration grows a shard's site
    /// set; never narrower than the floor.
    lookahead: u64,
    /// Which sites each shard hosts (sources) and owns (destinations) —
    /// the adaptive-window planner behind `lookahead`.
    lookahead_plan: LookaheadPlan,
    /// Master trace, appended in global `(at_us, phase, cause)` order at
    /// every sync point.
    trace: Trace,
    /// Aggregate of the per-shard counters, rebuilt at sync points.
    /// Unused (never read) with one shard — `stats()` short-circuits.
    merged_stats: NetStats,
    trace_enabled: bool,
    /// Attached `.vct` recorder, if any (see [`crate::record`]).
    recorder: Option<Recorder>,
}

/// Live recording state: the streaming writer plus snapshot cadence.
/// Frames are written at sync points and snapshots at `finish_run` — both
/// driver-call boundaries, independent of the shard count, which is what
/// makes a `.vct` file byte-identical across `VCE_SHARDS` values.
struct Recorder {
    writer: TraceWriter,
    every_us: u64,
    /// Next sim time at or after which a snapshot is cut.
    next_at: u64,
    /// Events written so far (the index space snapshots refer into).
    event_index: u64,
    /// First write failure, if any; recording stops and the error
    /// resurfaces from [`Sim::finish_recording`].
    io_error: Option<String>,
}

/// Whole-sim digest: time, event index, and every per-node hash in node
/// order.
fn sim_hash_of(now: u64, event_index: u64, nodes: &[(NodeId, u64)]) -> u64 {
    let mut h = vce_net::Fnv64::new();
    h.write_u64(now)
        .write_u64(event_index)
        .write_u64(nodes.len() as u64);
    for &(n, hash) in nodes {
        h.write_u64(u64::from(n.0)).write_u64(hash);
    }
    h.finish()
}

impl Sim {
    /// Build an empty simulator.
    pub fn new(config: SimConfig) -> Self {
        let shards = config.shards.clamp(1, 64);
        let topology = Arc::new(config.topology);
        let lookahead_plan = LookaheadPlan::new(shards, &topology);
        // No node is registered yet, so the plan yields the global floor;
        // add_node_with_load widens it as site occupancy becomes known.
        let lookahead = lookahead_plan.window_us(&topology);
        Self {
            now: 0,
            shards: (0..shards)
                .map(|i| {
                    Shard::new(
                        i,
                        shards,
                        config.seed,
                        Arc::clone(&topology),
                        config.trace_enabled,
                    )
                })
                .collect(),
            topology,
            fault: FaultPlan::none(),
            fences: BTreeMap::new(),
            driver_seq: 0,
            lookahead,
            lookahead_plan,
            trace: if config.trace_enabled {
                Trace::new()
            } else {
                Trace::disabled()
            },
            merged_stats: NetStats::new(),
            trace_enabled: config.trace_enabled,
            recorder: None,
        }
    }

    // ---- record/replay (see `crate::record`) ----

    /// Start recording every event pop and periodic state snapshots to a
    /// `.vct` file at `path`. `scenario` is a free-form string a replay
    /// tool can use to reconstruct the run; `snapshot_every_us` is the
    /// snapshot cadence in sim time.
    pub fn record_to(
        &mut self,
        path: &Path,
        scenario: &str,
        snapshot_every_us: u64,
    ) -> io::Result<()> {
        let writer = TraceWriter::to_file(path, scenario, snapshot_every_us)?;
        self.attach_recorder(writer, snapshot_every_us);
        Ok(())
    }

    /// Start recording into memory; [`Sim::finish_recording`] returns the
    /// bytes.
    pub fn record_to_memory(&mut self, scenario: &str, snapshot_every_us: u64) {
        let writer = TraceWriter::to_memory(scenario, snapshot_every_us);
        self.attach_recorder(writer, snapshot_every_us);
    }

    fn attach_recorder(&mut self, writer: TraceWriter, every_us: u64) {
        assert!(self.recorder.is_none(), "a recording is already attached");
        for sh in &mut self.shards {
            sh.rec.set_enabled(true);
        }
        self.recorder = Some(Recorder {
            writer,
            every_us,
            next_at: 0,
            event_index: 0,
            io_error: None,
        });
        // Baseline snapshot at event index 0, so divergence before the
        // first cadence point is still bracketed from below.
        self.take_snapshot();
    }

    /// Whether a recorder is attached.
    pub fn is_recording(&self) -> bool {
        self.recorder.is_some()
    }

    /// Seal the recording with its `End` frame and detach the recorder.
    /// Memory recordings return their bytes; file recordings return
    /// `None`. Any write error swallowed mid-run resurfaces here.
    pub fn finish_recording(&mut self) -> io::Result<Option<Vec<u8>>> {
        assert!(self.recorder.is_some(), "no recording attached");
        self.sync();
        let mut nodes = Vec::new();
        for sh in &self.shards {
            sh.node_hashes(&mut nodes);
        }
        nodes.sort_unstable_by_key(|&(n, _)| n);
        for sh in &mut self.shards {
            sh.rec.set_enabled(false);
        }
        let Recorder {
            writer,
            event_index,
            io_error,
            ..
        } = self.recorder.take().expect("checked above");
        if let Some(e) = io_error {
            return Err(io::Error::other(e));
        }
        writer.finish(sim_hash_of(self.now, event_index, &nodes), self.now)
    }

    /// Cut a snapshot frame now (called at recording start and whenever
    /// `finish_run` crosses the cadence point).
    fn take_snapshot(&mut self) {
        let mut nodes = Vec::new();
        for sh in &self.shards {
            sh.node_hashes(&mut nodes);
        }
        nodes.sort_unstable_by_key(|&(n, _)| n);
        let now = self.now;
        let Some(r) = self.recorder.as_mut() else {
            return;
        };
        let snap = SnapshotRecord {
            at_us: now,
            event_index: r.event_index,
            sim_hash: sim_hash_of(now, r.event_index, &nodes),
            nodes,
        };
        if r.io_error.is_none() {
            if let Err(e) = r.writer.snapshot(&snap) {
                r.io_error = Some(e.to_string());
            }
        }
        r.next_at = now.saturating_add(r.every_us);
    }

    /// Current simulated time, µs.
    pub fn now_us(&self) -> u64 {
        self.now
    }

    /// Width of the conservative time window the sharded runner advances
    /// through per barrier round, in µs. At least
    /// [`Topology::min_cross_latency_us`]; wider when the registered fleet
    /// is clustered so that every realizable cross-shard message crosses a
    /// site boundary (see `crate::lookahead`). Purely diagnostic — output
    /// is byte-identical whatever the window width.
    pub fn window_lookahead_us(&self) -> u64 {
        self.lookahead
    }

    /// Number of shards the simulator is running with.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total events processed so far, summed across shards. Independent of
    /// the shard count (batched deliveries count per envelope).
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.events_processed).sum()
    }

    /// Network statistics (aggregated across shards as of the last sync
    /// point; every public mutating call syncs before returning).
    pub fn stats(&self) -> &NetStats {
        if self.shards.len() == 1 {
            &self.shards[0].stats
        } else {
            &self.merged_stats
        }
    }

    /// The run trace, in global `(time, cause)` order.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutate the fault plan (partitions, link faults). For whole-machine
    /// crash semantics prefer [`Sim::kill_node`], which also clears the CPU.
    pub fn with_fault_plan<T>(&mut self, f: impl FnOnce(&mut FaultPlan) -> T) -> T {
        let out = f(&mut self.fault);
        for sh in &mut self.shards {
            sh.fault = self.fault.clone();
        }
        out
    }

    /// Register a machine with an idle background-load trace.
    pub fn add_node(&mut self, info: MachineInfo) {
        self.add_node_with_load(info, LoadTrace::idle());
    }

    /// Register a machine and schedule its background-load trace.
    pub fn add_node_with_load(&mut self, info: MachineInfo, load: LoadTrace) {
        let owner = shard_of(info.node, self.shards.len());
        let site = self.topology.site_of(info.node);
        if self.lookahead_plan.note_node(owner, site) {
            self.lookahead = self.lookahead_plan.window_us(&self.topology);
        }
        let now = self.now;
        self.shards[owner].add_node_with_load(info, &load, now);
    }

    /// Register an endpoint; its `on_start` runs as the next event.
    pub fn add_endpoint(&mut self, addr: Addr, ep: Box<dyn Endpoint>) {
        let owner = shard_of(addr.node, self.shards.len());
        let now = self.now;
        self.shards[owner].add_endpoint(addr, ep, now);
    }

    /// Inject an external envelope, delivered to `dst` at `at_us`
    /// (≥ now). Used by experiment harnesses to kick off scenarios.
    pub fn inject_at(&mut self, at_us: u64, src: Addr, dst: Addr, payload: Bytes) {
        let env = Envelope::new(src, dst, u64::MAX, payload);
        let cause = self.next_driver_cause();
        let owner = shard_of(dst.node, self.shards.len());
        let at = at_us.max(self.now);
        self.shards[owner].push_driver_event(at, cause, dst.node, env);
    }

    /// Encode and inject an external message for immediate delivery.
    pub fn inject<T: vce_codec::Codec>(&mut self, src: Addr, dst: Addr, msg: &T) {
        let mut enc = vce_codec::Encoder::with_capacity(64);
        msg.encode(&mut enc);
        self.inject_at(self.now, src, dst, enc.finish_bytes());
    }

    /// Crash a machine immediately: connectivity drops, resident jobs are
    /// lost, timers go stale. Endpoint state survives for a later
    /// [`Sim::revive_node`] (a rebooted daemon restarting from scratch is
    /// modelled by the endpoint itself on `on_start`).
    pub fn kill_node(&mut self, node: NodeId) {
        self.apply_fence_now(vce_net::FaultOp::Kill(node));
    }

    /// Revive a crashed machine and re-run `on_start` on its endpoints.
    pub fn revive_node(&mut self, node: NodeId) {
        self.apply_fence_now(vce_net::FaultOp::Revive(node));
    }

    /// Degrade a machine's CPU immediately: work takes `factor`× longer
    /// (`factor == 1` restores full speed). The node stays alive.
    pub fn slow_node(&mut self, node: NodeId, factor: u32) {
        self.apply_fence_now(vce_net::FaultOp::SlowNode(node, factor));
    }

    /// Apply a fault op at driver time (now), on the canonical plan and
    /// every replica, then sync so its trace line is visible.
    fn apply_fence_now(&mut self, op: vce_net::FaultOp) {
        let cause = self.next_driver_cause();
        let now = self.now;
        apply_plan_op(&mut self.fault, &op);
        for sh in &mut self.shards {
            sh.apply_fence(now, cause, &op);
        }
        self.exchange_outboxes();
        self.sync();
    }

    /// Schedule a fault-plan mutation at absolute sim time `at_us` —
    /// crash/revive, partition/heal, or a default-link change. Ops become
    /// *fences*: they cap conservative windows and apply before
    /// same-microsecond events, so an entire chaos schedule queued up
    /// front interleaves deterministically with protocol traffic on any
    /// shard count, and each application is visible in the trace.
    pub fn schedule_fault(&mut self, at_us: u64, op: vce_net::FaultOp) {
        let cause = self.next_driver_cause();
        self.fences.insert((at_us.max(self.now), cause), op);
    }

    /// Immediately set a node's background load.
    pub fn set_background(&mut self, node: NodeId, background: f64) {
        let owner = shard_of(node, self.shards.len());
        let now = self.now;
        self.shards[owner].set_background(node, background, now);
    }

    /// Whether a node is currently crashed.
    pub fn is_node_dead(&self, node: NodeId) -> bool {
        let owner = shard_of(node, self.shards.len());
        self.shards[owner].node_is_dead(node)
    }

    /// A node's instantaneous load.
    pub fn node_load(&self, node: NodeId) -> f64 {
        let owner = shard_of(node, self.shards.len());
        self.shards[owner].node_load(node)
    }

    /// Metrics snapshot for one node (advances its CPU accounting to now).
    pub fn metrics(&mut self, node: NodeId) -> Option<NodeMetrics> {
        let owner = shard_of(node, self.shards.len());
        let now = self.now;
        self.shards[owner].metrics(node, now)
    }

    /// Metrics for every node, sorted by node id.
    pub fn all_metrics(&mut self) -> Vec<NodeMetrics> {
        let mut ids: Vec<NodeId> = self.shards.iter().flat_map(|s| s.node_ids()).collect();
        ids.sort();
        ids.into_iter().filter_map(|id| self.metrics(id)).collect()
    }

    /// Access an endpoint's concrete state (via its `as_any_mut` hook).
    pub fn with_endpoint_mut<E: 'static, T>(
        &mut self,
        addr: Addr,
        f: impl FnOnce(&mut E) -> T,
    ) -> Option<T> {
        let owner = shard_of(addr.node, self.shards.len());
        self.shards[owner].with_endpoint_mut(addr, f)
    }

    /// Advance the simulation by one unit: one event on the serial (1-shard)
    /// engine, one conservative window on a sharded one. Returns `false`
    /// when nothing (event or fence) remains.
    pub fn step(&mut self) -> bool {
        let progressed = if self.shards.len() == 1 {
            self.step_serial(u64::MAX)
        } else {
            self.run_one_window_inplace(u64::MAX)
        };
        self.finish_run(None);
        progressed
    }

    /// Run until the event heap is empty; returns the final time.
    ///
    /// **Only terminates for self-quenching scenarios.** Endpoints with
    /// periodic timers (every VCE daemon re-arms heartbeat/housekeeping
    /// ticks forever) keep the heap non-empty — drive those with
    /// [`Sim::run_until`]/[`Sim::run_for`] instead.
    pub fn run_until_idle(&mut self) -> u64 {
        self.run_bounded(u64::MAX);
        self.finish_run(None);
        self.now
    }

    /// Run until simulated time reaches `t_us` (events at exactly `t_us`
    /// are processed); the clock advances to `t_us` even if the heap
    /// empties first.
    pub fn run_until(&mut self, t_us: u64) {
        self.run_bounded(t_us);
        self.finish_run(Some(t_us));
    }

    /// Run for `d_us` more simulated microseconds.
    pub fn run_for(&mut self, d_us: u64) {
        let t = self.now + d_us;
        self.run_until(t);
    }

    // ---- run internals ----

    fn next_driver_cause(&mut self) -> u64 {
        let c = cause_key(0, self.driver_seq);
        self.driver_seq += 1;
        c
    }

    /// Run everything (events and fences) at or before `t`.
    fn run_bounded(&mut self, t: u64) {
        if self.shards.len() == 1 {
            while self.step_serial(t) {}
        } else if sharded::use_threads(self.shards.len()) {
            let fences = self.take_fences_through(t);
            sharded::run(&mut self.shards, &fences, self.lookahead, t);
        } else {
            // Single-core fallback: the identical window schedule, run
            // in-place — byte-identical output, no thread overhead.
            while self.run_one_window_inplace(t) {}
        }
    }

    /// Serial fast path (1 shard): interleave fences and events directly,
    /// no windows. A fence at time F applies before events at F — the same
    /// order the windowed paths produce.
    fn step_serial(&mut self, t: u64) -> bool {
        let next_fence = self.fences.keys().next().copied();
        let next_ev = self.shards[0].peek_time();
        if let Some((f_at, f_cause)) = next_fence {
            if f_at <= t && next_ev.is_none_or(|e| f_at <= e) {
                let op = self
                    .fences
                    .remove(&(f_at, f_cause))
                    .expect("fence vanished");
                apply_plan_op(&mut self.fault, &op);
                self.shards[0].apply_fence(f_at, f_cause, &op);
                return true;
            }
        }
        match next_ev {
            Some(e) if e <= t => self.shards[0].step_one(),
            _ => false,
        }
    }

    /// One conservative window across all shards, in-place (no threads).
    /// Returns `false` when nothing remains at or before `t`.
    fn run_one_window_inplace(&mut self, t: u64) -> bool {
        let next_fence = self.fences.keys().next().map(|&(at, _)| at);
        let next_ev = self.shards.iter_mut().filter_map(|s| s.peek_time()).min();
        let w_start = match (next_fence, next_ev) {
            (Some(f), Some(e)) => f.min(e),
            (Some(f), None) => f,
            (None, Some(e)) => e,
            (None, None) => return false,
        };
        if w_start > t {
            return false;
        }
        while let Some((&(f_at, f_cause), _)) = self.fences.iter().next() {
            if f_at != w_start {
                break;
            }
            let op = self
                .fences
                .remove(&(f_at, f_cause))
                .expect("fence vanished");
            apply_plan_op(&mut self.fault, &op);
            for sh in &mut self.shards {
                sh.apply_fence(f_at, f_cause, &op);
            }
        }
        let fence_cap = self.fences.keys().next().map_or(u64::MAX, |&(at, _)| at);
        let w_end = w_start
            .saturating_add(self.lookahead)
            .min(fence_cap)
            .min(t.saturating_add(1));
        for sh in &mut self.shards {
            sh.set_window(w_end);
            sh.run_window(w_end);
            sh.clear_window();
        }
        self.exchange_outboxes();
        true
    }

    /// Pop every fence at or before `t` (sorted), applying each to the
    /// canonical plan; the threaded runner applies them to the replicas.
    fn take_fences_through(&mut self, t: u64) -> Vec<(u64, u64, vce_net::FaultOp)> {
        let mut out = Vec::new();
        while let Some(&(f_at, f_cause)) = self.fences.keys().next() {
            if f_at > t {
                break;
            }
            let op = self
                .fences
                .remove(&(f_at, f_cause))
                .expect("fence vanished");
            apply_plan_op(&mut self.fault, &op);
            out.push((f_at, f_cause, op));
        }
        out
    }

    /// Move buffered cross-shard events to their owners' queues.
    fn exchange_outboxes(&mut self) {
        if self.shards.len() == 1 {
            return;
        }
        let mut mail: Vec<crate::shard::RemoteEvent> = Vec::new();
        for s in 0..self.shards.len() {
            for d in 0..self.shards.len() {
                if s == d || self.shards[s].outbox_is_empty(d) {
                    continue;
                }
                self.shards[s].drain_outbox_into(d, &mut mail);
                self.shards[d].enqueue_remote_drain(&mut mail);
            }
        }
    }

    /// Post-run bookkeeping: reconcile the global clock (optionally
    /// clamping up to a target time) and merge shard state.
    fn finish_run(&mut self, clamp_to: Option<u64>) {
        let latest = self.shards.iter().map(|s| s.now).max().unwrap_or(self.now);
        if latest > self.now {
            self.now = latest;
        }
        if let Some(t) = clamp_to {
            if self.now < t {
                self.now = t;
            }
        }
        let now = self.now;
        for sh in &mut self.shards {
            sh.advance_clock(now);
        }
        self.sync();
        if self
            .recorder
            .as_ref()
            .is_some_and(|r| now >= r.next_at && r.io_error.is_none())
        {
            self.take_snapshot();
        }
    }

    /// Merge per-shard statistics and splice per-shard trace buffers into
    /// the master trace in global `(at_us, phase, cause)` order.
    ///
    /// The batch is *sorted*, not concatenated, on every path including the
    /// serial one: a zero-delay timer can legitimately execute after a
    /// same-microsecond event with a larger cause (its key is assigned at
    /// creation, mid-microsecond), so execution order and key order can
    /// differ. Sorting by key yields one canonical order that every shard
    /// count agrees on; the sort is stable and key collisions only occur
    /// within a single callback's lines, which are already in order.
    fn sync(&mut self) {
        for sh in &mut self.shards {
            sh.flush_stats();
        }
        if self.shards.len() > 1 {
            let merged = NetStats::new();
            for sh in &self.shards {
                merged.absorb(&sh.stats);
            }
            self.merged_stats = merged;
        }
        if let Some(r) = self.recorder.as_mut() {
            let mut batch: Vec<(u64, u8, u64, EventRecord)> = Vec::new();
            for sh in &mut self.shards {
                batch.append(&mut sh.rec.buf);
            }
            batch.sort_by_key(|a| (a.0, a.1, a.2));
            let recs: Vec<EventRecord> = batch.into_iter().map(|(_, _, _, r)| r).collect();
            r.event_index += recs.len() as u64;
            if r.io_error.is_none() {
                if let Err(e) = r.writer.append_events(&recs) {
                    r.io_error = Some(e.to_string());
                }
            }
        }
        if !self.trace_enabled {
            return;
        }
        let mut batch = Vec::new();
        for sh in &mut self.shards {
            batch.append(&mut sh.trace.buf);
        }
        batch.sort_by_key(|a| (a.0, a.1, a.2));
        for (_, _, _, ev) in batch {
            self.trace.push(ev.at_us, ev.node, ev.line);
        }
    }

    /// The latency model in use.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vce_net::{send_msg, Host};

    /// Echo endpoint: replies to every envelope with the same number + 1,
    /// until a cap.
    struct Counter {
        me: Addr,
        cap: u64,
        last_seen: u64,
        finish_time: Option<u64>,
    }

    impl Endpoint for Counter {
        fn on_envelope(&mut self, env: Envelope, host: &mut dyn Host) {
            let v: u64 = env.decode_payload().unwrap();
            self.last_seen = v;
            if v >= self.cap {
                self.finish_time = Some(host.now_us());
            } else {
                send_msg(host, self.me, env.src, &(v + 1));
            }
        }
        fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
            Some(self)
        }
    }

    fn two_node_sim() -> Sim {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(MachineInfo::workstation(NodeId(0), 100.0));
        sim.add_node(MachineInfo::workstation(NodeId(1), 100.0));
        sim
    }

    #[test]
    fn message_ping_pong_advances_time_by_latency() {
        let mut sim = two_node_sim();
        for n in [0u32, 1] {
            sim.add_endpoint(
                Addr::daemon(NodeId(n)),
                Box::new(Counter {
                    me: Addr::daemon(NodeId(n)),
                    cap: 10,
                    last_seen: 0,
                    finish_time: None,
                }),
            );
        }
        sim.inject(Addr::daemon(NodeId(0)), Addr::daemon(NodeId(1)), &0u64);
        sim.run_until_idle();
        let t = sim
            .with_endpoint_mut::<Counter, _>(Addr::daemon(NodeId(0)), |c| c.finish_time)
            .flatten()
            .or_else(|| {
                sim.with_endpoint_mut::<Counter, _>(Addr::daemon(NodeId(1)), |c| c.finish_time)
                    .flatten()
            })
            .expect("someone finished");
        // Ten hops at ~1ms base latency each.
        assert!(t >= 10_000, "time {t}");
        assert_eq!(sim.stats().delivered(), 11); // inject + 10 replies
    }

    #[test]
    fn deterministic_runs_produce_identical_traces() {
        let run = || {
            let mut sim = two_node_sim();
            for n in [0u32, 1] {
                sim.add_endpoint(
                    Addr::daemon(NodeId(n)),
                    Box::new(Counter {
                        me: Addr::daemon(NodeId(n)),
                        cap: 50,
                        last_seen: 0,
                        finish_time: None,
                    }),
                );
            }
            sim.inject(Addr::daemon(NodeId(0)), Addr::daemon(NodeId(1)), &0u64);
            sim.run_until_idle();
            (sim.now_us(), sim.events_processed(), sim.stats().snapshot())
        };
        assert_eq!(run(), run());
    }

    /// A mesh scenario with faults, duplicates, background load and
    /// cross-node chatter, run at a given shard count.
    fn sharded_fingerprint(shards: usize) -> (u64, u64, vce_net::stats::StatsSnapshot, String) {
        let mut sim = Sim::new(SimConfig {
            seed: 7,
            topology: Topology::default(),
            trace_enabled: true,
            shards,
        });
        let n_nodes = 12u32;
        for n in 0..n_nodes {
            sim.add_node_with_load(
                MachineInfo::workstation(NodeId(n), 100.0),
                LoadTrace::from_steps(vec![(40_000 + u64::from(n) * 1_000, 0.5)]),
            );
        }
        for n in 0..n_nodes {
            sim.add_endpoint(
                Addr::daemon(NodeId(n)),
                Box::new(Counter {
                    me: Addr::daemon(NodeId(n)),
                    cap: 400,
                    last_seen: 0,
                    finish_time: None,
                }),
            );
        }
        // Lossy, duplicating default link so verdict RNG is exercised.
        sim.with_fault_plan(|p| {
            p.default_link.drop_prob = 0.05;
            p.default_link.dup_prob = 0.05;
            p.default_link.jitter_us = 500;
        });
        // Several interleaved ping-pong chains crossing shard boundaries.
        for n in 0..n_nodes {
            sim.inject(
                Addr::daemon(NodeId(n)),
                Addr::daemon(NodeId((n + 1) % n_nodes)),
                &0u64,
            );
        }
        // Chaos fences mid-run.
        sim.schedule_fault(120_000, vce_net::FaultOp::Kill(NodeId(3)));
        sim.schedule_fault(240_000, vce_net::FaultOp::Revive(NodeId(3)));
        sim.schedule_fault(180_000, vce_net::FaultOp::Partition(NodeId(5), 1));
        sim.schedule_fault(300_000, vce_net::FaultOp::Heal);
        sim.run_until(600_000);
        // Driver-time kill/revive as well.
        sim.kill_node(NodeId(7));
        sim.run_for(100_000);
        sim.revive_node(NodeId(7));
        sim.run_until_idle();
        (
            sim.now_us(),
            sim.events_processed(),
            sim.stats().snapshot(),
            sim.trace().dump(),
        )
    }

    #[test]
    fn shard_counts_produce_identical_runs() {
        // Force the real threaded runner even on 1-core CI, so the
        // barrier protocol (not just the in-place fallback) is what this
        // test certifies.
        std::env::set_var("VCE_SHARDS_THREADS", "1");
        let baseline = sharded_fingerprint(1);
        for shards in [2, 4, 8] {
            let got = sharded_fingerprint(shards);
            assert_eq!(baseline.0, got.0, "final time diverged at {shards} shards");
            assert_eq!(baseline.1, got.1, "event count diverged at {shards} shards");
            assert_eq!(baseline.2, got.2, "net stats diverged at {shards} shards");
            assert_eq!(baseline.3, got.3, "trace diverged at {shards} shards");
        }
    }

    /// A clustered campus fleet whose modulo shard assignment is site-pure
    /// (even ids = site 1, odd ids = site 2, two shards), run at a given
    /// shard count. On two shards the adaptive plan widens the window to
    /// the campus inter-site base; output must not care.
    fn clustered_fingerprint(shards: usize) -> (u64, u64, vce_net::stats::StatsSnapshot, String) {
        let mut topo = crate::topology::Topology::two_tier(
            crate::topology::LinkParams::lan_1994(),
            crate::topology::LinkParams::campus_1994(),
        );
        let n_nodes = 8u32;
        for n in 0..n_nodes {
            topo.set_site(NodeId(n), 1 + n % 2);
        }
        let mut sim = Sim::new(SimConfig {
            seed: 11,
            topology: topo,
            trace_enabled: true,
            shards,
        });
        for n in 0..n_nodes {
            sim.add_node(MachineInfo::workstation(NodeId(n), 100.0));
        }
        if shards == 2 {
            // Site-pure shards: every cross-shard hop crosses sites, so the
            // window is the campus base, 5× the global floor.
            assert_eq!(sim.window_lookahead_us(), 5_000);
        } else {
            assert!(sim.window_lookahead_us() >= 1_000);
        }
        for n in 0..n_nodes {
            sim.add_endpoint(
                Addr::daemon(NodeId(n)),
                Box::new(Counter {
                    me: Addr::daemon(NodeId(n)),
                    cap: 200,
                    last_seen: 0,
                    finish_time: None,
                }),
            );
        }
        sim.with_fault_plan(|p| {
            p.default_link.jitter_us = 700;
            p.default_link.dup_prob = 0.04;
        });
        // Chains that alternate sites every hop (odd stride) and chains
        // that stay within a site (even stride).
        for n in 0..n_nodes {
            sim.inject(
                Addr::daemon(NodeId(n)),
                Addr::daemon(NodeId((n + 1) % n_nodes)),
                &0u64,
            );
            sim.inject(
                Addr::daemon(NodeId(n)),
                Addr::daemon(NodeId((n + 2) % n_nodes)),
                &0u64,
            );
        }
        sim.schedule_fault(200_000, vce_net::FaultOp::Kill(NodeId(2)));
        sim.schedule_fault(400_000, vce_net::FaultOp::Revive(NodeId(2)));
        sim.run_until(900_000);
        sim.run_until_idle();
        (
            sim.now_us(),
            sim.events_processed(),
            sim.stats().snapshot(),
            sim.trace().dump(),
        )
    }

    #[test]
    fn adaptive_lookahead_widens_on_clustered_fleet_without_changing_output() {
        std::env::set_var("VCE_SHARDS_THREADS", "1");
        let baseline = clustered_fingerprint(1);
        assert!(baseline.1 > 0, "workload generated no events");
        for shards in [2, 4, 8] {
            let got = clustered_fingerprint(shards);
            assert_eq!(baseline.0, got.0, "final time diverged at {shards} shards");
            assert_eq!(baseline.1, got.1, "event count diverged at {shards} shards");
            assert_eq!(baseline.2, got.2, "net stats diverged at {shards} shards");
            assert_eq!(baseline.3, got.3, "trace diverged at {shards} shards");
        }
    }

    struct WorkOnce {
        mops: f64,
        done_at: Option<u64>,
    }
    impl Endpoint for WorkOnce {
        fn on_start(&mut self, host: &mut dyn Host) {
            host.start_work(1, self.mops);
        }
        fn on_envelope(&mut self, _env: Envelope, _host: &mut dyn Host) {}
        fn on_work_done(&mut self, _pid: u64, host: &mut dyn Host) {
            self.done_at = Some(host.now_us());
        }
        fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
            Some(self)
        }
    }

    #[test]
    fn work_completes_at_predicted_time() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(MachineInfo::workstation(NodeId(0), 200.0));
        sim.add_endpoint(
            Addr::daemon(NodeId(0)),
            Box::new(WorkOnce {
                mops: 100.0,
                done_at: None,
            }),
        );
        sim.run_until_idle();
        let done = sim
            .with_endpoint_mut::<WorkOnce, _>(Addr::daemon(NodeId(0)), |w| w.done_at)
            .flatten()
            .unwrap();
        assert_eq!(done, 500_000); // 100 Mops at 200 Mops/s
    }

    #[test]
    fn background_load_trace_slows_work() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node_with_load(
            MachineInfo::workstation(NodeId(0), 100.0),
            LoadTrace::constant(1.0),
        );
        sim.add_endpoint(
            Addr::daemon(NodeId(0)),
            Box::new(WorkOnce {
                mops: 50.0,
                done_at: None,
            }),
        );
        sim.run_until_idle();
        let done = sim
            .with_endpoint_mut::<WorkOnce, _>(Addr::daemon(NodeId(0)), |w| w.done_at)
            .flatten()
            .unwrap();
        assert_eq!(done, 1_000_000); // halved by one background job
        assert_eq!(sim.node_load(NodeId(0)), 1.0); // background remains
    }

    #[test]
    fn mid_run_load_change_repredicts_completion() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node_with_load(
            MachineInfo::workstation(NodeId(0), 100.0),
            LoadTrace::from_steps(vec![(250_000, 1.0)]),
        );
        sim.add_endpoint(
            Addr::daemon(NodeId(0)),
            Box::new(WorkOnce {
                mops: 50.0,
                done_at: None,
            }),
        );
        sim.run_until_idle();
        let done = sim
            .with_endpoint_mut::<WorkOnce, _>(Addr::daemon(NodeId(0)), |w| w.done_at)
            .flatten()
            .unwrap();
        // 25 Mops at full speed (250ms), then 25 Mops at half speed (500ms).
        assert_eq!(done, 750_000);
    }

    struct TimerEp {
        fired: Vec<(u64, u64)>,
    }
    impl Endpoint for TimerEp {
        fn on_start(&mut self, host: &mut dyn Host) {
            host.set_timer(100, 1);
            host.set_timer(50, 2);
            host.set_timer(200, 3);
            host.cancel_timer(3);
        }
        fn on_envelope(&mut self, _env: Envelope, _host: &mut dyn Host) {}
        fn on_timer(&mut self, token: u64, host: &mut dyn Host) {
            self.fired.push((host.now_us(), token));
        }
        fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
            Some(self)
        }
    }

    #[test]
    fn timers_fire_in_time_order_and_respect_cancel() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(MachineInfo::workstation(NodeId(0), 100.0));
        sim.add_endpoint(Addr::daemon(NodeId(0)), Box::new(TimerEp { fired: vec![] }));
        sim.run_until_idle();
        let fired = sim
            .with_endpoint_mut::<TimerEp, _>(Addr::daemon(NodeId(0)), |t| t.fired.clone())
            .unwrap();
        assert_eq!(fired, vec![(50, 2), (100, 1)]);
    }

    #[test]
    fn killed_node_stops_participating() {
        let mut sim = two_node_sim();
        for n in [0u32, 1] {
            sim.add_endpoint(
                Addr::daemon(NodeId(n)),
                Box::new(Counter {
                    me: Addr::daemon(NodeId(n)),
                    cap: 1_000_000,
                    last_seen: 0,
                    finish_time: None,
                }),
            );
        }
        sim.inject(Addr::daemon(NodeId(0)), Addr::daemon(NodeId(1)), &0u64);
        sim.run_until(20_000);
        sim.kill_node(NodeId(1));
        sim.run_until_idle();
        // The ping-pong stopped: far fewer than cap messages happened.
        let last = sim
            .with_endpoint_mut::<Counter, _>(Addr::daemon(NodeId(0)), |c| c.last_seen)
            .unwrap();
        assert!(last < 100, "last {last}");
        assert!(sim.stats().dropped() > 0);
    }

    #[test]
    fn revive_reruns_on_start() {
        struct Boot {
            boots: u32,
        }
        impl Endpoint for Boot {
            fn on_start(&mut self, _h: &mut dyn Host) {
                self.boots += 1;
            }
            fn on_envelope(&mut self, _env: Envelope, _h: &mut dyn Host) {}
            fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
                Some(self)
            }
        }
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(MachineInfo::workstation(NodeId(0), 100.0));
        sim.add_endpoint(Addr::daemon(NodeId(0)), Box::new(Boot { boots: 0 }));
        sim.run_until_idle();
        sim.kill_node(NodeId(0));
        sim.revive_node(NodeId(0));
        sim.run_until_idle();
        let boots = sim
            .with_endpoint_mut::<Boot, _>(Addr::daemon(NodeId(0)), |b| b.boots)
            .unwrap();
        assert_eq!(boots, 2);
    }

    #[test]
    fn kill_clears_cpu_jobs() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(MachineInfo::workstation(NodeId(0), 100.0));
        sim.add_endpoint(
            Addr::daemon(NodeId(0)),
            Box::new(WorkOnce {
                mops: 1000.0,
                done_at: None,
            }),
        );
        sim.run_until(1_000);
        assert_eq!(sim.node_load(NodeId(0)), 1.0);
        sim.kill_node(NodeId(0));
        assert_eq!(sim.node_load(NodeId(0)), 0.0);
        sim.run_until_idle();
        let done = sim
            .with_endpoint_mut::<WorkOnce, _>(Addr::daemon(NodeId(0)), |w| w.done_at)
            .unwrap();
        assert!(done.is_none());
    }

    #[test]
    fn metrics_report_utilization() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(MachineInfo::workstation(NodeId(0), 100.0));
        sim.add_node(MachineInfo::workstation(NodeId(1), 100.0));
        sim.add_endpoint(
            Addr::daemon(NodeId(0)),
            Box::new(WorkOnce {
                mops: 50.0,
                done_at: None,
            }),
        );
        sim.run_until(1_000_000);
        let m = sim.metrics(NodeId(0)).unwrap();
        assert_eq!(m.busy_us, 500_000);
        assert!((m.utilization() - 0.5).abs() < 1e-6);
        assert_eq!(m.completed_jobs, 1);
        let idle = sim.metrics(NodeId(1)).unwrap();
        assert_eq!(idle.utilization(), 0.0);
        let all = sim.all_metrics();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].node, NodeId(0));
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(MachineInfo::workstation(NodeId(0), 100.0));
        sim.run_until(5_000_000);
        assert_eq!(sim.now_us(), 5_000_000);
        sim.run_for(1_000);
        assert_eq!(sim.now_us(), 5_001_000);
    }

    #[test]
    #[should_panic(expected = "added twice")]
    fn duplicate_node_panics() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(MachineInfo::workstation(NodeId(0), 100.0));
        sim.add_node(MachineInfo::workstation(NodeId(0), 100.0));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_endpoint_panics() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(MachineInfo::workstation(NodeId(0), 100.0));
        sim.add_endpoint(Addr::daemon(NodeId(0)), Box::new(TimerEp { fired: vec![] }));
        sim.add_endpoint(Addr::daemon(NodeId(0)), Box::new(TimerEp { fired: vec![] }));
    }

    #[test]
    fn trace_records_engine_events() {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(MachineInfo::workstation(NodeId(0), 100.0));
        sim.kill_node(NodeId(0));
        assert!(sim.trace().first_time("node killed").is_some());
    }

    #[test]
    fn pooled_encode_roundtrips_through_sim_host() {
        struct EncodeOnStart {
            me: Addr,
            peer: Addr,
        }
        impl Endpoint for EncodeOnStart {
            fn on_start(&mut self, host: &mut dyn Host) {
                // Two encodes back-to-back: the pooled scratch must not
                // leak bytes between messages.
                send_msg(host, self.me, self.peer, &("first".to_string(), 1u64));
                send_msg(
                    host,
                    self.me,
                    self.peer,
                    &("second-longer".to_string(), 2u64),
                );
            }
            fn on_envelope(&mut self, _env: Envelope, _host: &mut dyn Host) {}
        }
        struct Collect {
            got: Vec<(String, u64)>,
        }
        impl Endpoint for Collect {
            fn on_envelope(&mut self, env: Envelope, _host: &mut dyn Host) {
                self.got.push(env.decode_payload().unwrap());
            }
            fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
                Some(self)
            }
        }
        let mut sim = two_node_sim();
        sim.add_endpoint(
            Addr::daemon(NodeId(0)),
            Box::new(EncodeOnStart {
                me: Addr::daemon(NodeId(0)),
                peer: Addr::daemon(NodeId(1)),
            }),
        );
        sim.add_endpoint(Addr::daemon(NodeId(1)), Box::new(Collect { got: vec![] }));
        sim.run_until_idle();
        let got = sim
            .with_endpoint_mut::<Collect, _>(Addr::daemon(NodeId(1)), |c| c.got.clone())
            .unwrap();
        assert_eq!(
            got,
            vec![("first".to_string(), 1), ("second-longer".to_string(), 2)]
        );
    }
}
