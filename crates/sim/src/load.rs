//! Background (local-user) load traces.
//!
//! §4.3 of the paper builds on Krueger's and Clark's observation that
//! workstations are idle most of the time but their owners' activity comes
//! and goes. A [`LoadTrace`] is a piecewise-constant schedule of "equivalent
//! background jobs" for one machine; the engine replays it as events. The
//! generators here produce the workloads the experiments sweep:
//! always-idle fleets (free parallelism), bursty owner activity
//! (migration/ripple experiments), and steady multiprogramming.

use rand::Rng;

/// A piecewise-constant background-load schedule.
///
/// Steps are `(at_us, background)` pairs sorted by time; the background
/// weight holds from its step until the next.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LoadTrace {
    steps: Vec<(u64, f64)>,
}

impl LoadTrace {
    /// The always-idle trace.
    pub fn idle() -> Self {
        Self::default()
    }

    /// A constant background weight from time zero.
    pub fn constant(background: f64) -> Self {
        Self {
            steps: vec![(0, background.max(0.0))],
        }
    }

    /// Build from explicit steps; they are sorted and deduplicated by time
    /// (last write wins).
    pub fn from_steps(mut steps: Vec<(u64, f64)>) -> Self {
        steps.sort_by_key(|&(t, _)| t);
        steps.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                // keep the later entry's value
                earlier.1 = later.1;
                true
            } else {
                false
            }
        });
        for s in &mut steps {
            s.1 = s.1.max(0.0);
        }
        Self { steps }
    }

    /// An on/off "owner at the keyboard" trace: alternating busy periods of
    /// weight `busy_weight` and idle periods, with exponentially distributed
    /// durations (means in µs), out to `horizon_us`.
    pub fn bursty<R: Rng + ?Sized>(
        rng: &mut R,
        mean_busy_us: f64,
        mean_idle_us: f64,
        busy_weight: f64,
        horizon_us: u64,
    ) -> Self {
        assert!(mean_busy_us > 0.0 && mean_idle_us > 0.0);
        let mut steps = Vec::new();
        let mut t = 0u64;
        // Start idle with a random phase so fleets are not synchronized.
        let mut busy = rng.gen_bool(mean_busy_us / (mean_busy_us + mean_idle_us));
        steps.push((0, if busy { busy_weight } else { 0.0 }));
        while t < horizon_us {
            let mean = if busy { mean_busy_us } else { mean_idle_us };
            // Inverse-CDF exponential draw.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let dur = (-mean * u.ln()).max(1.0) as u64;
            t = t.saturating_add(dur);
            busy = !busy;
            if t < horizon_us {
                steps.push((t, if busy { busy_weight } else { 0.0 }));
            }
        }
        Self::from_steps(steps)
    }

    /// The schedule's steps.
    pub fn steps(&self) -> &[(u64, f64)] {
        &self.steps
    }

    /// The background weight in effect at `t_us`.
    pub fn value_at(&self, t_us: u64) -> f64 {
        match self.steps.iter().rev().find(|&&(t, _)| t <= t_us) {
            Some(&(_, v)) => v,
            None => 0.0,
        }
    }

    /// Fraction of `[0, horizon_us)` spent with background > 0.
    pub fn busy_fraction(&self, horizon_us: u64) -> f64 {
        if horizon_us == 0 {
            return 0.0;
        }
        let mut busy = 0u64;
        for (i, &(t, v)) in self.steps.iter().enumerate() {
            if t >= horizon_us {
                break;
            }
            let end = self
                .steps
                .get(i + 1)
                .map(|&(t2, _)| t2)
                .unwrap_or(horizon_us)
                .min(horizon_us);
            if v > 0.0 {
                busy += end - t;
            }
        }
        busy as f64 / horizon_us as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn idle_is_empty() {
        let t = LoadTrace::idle();
        assert!(t.steps().is_empty());
        assert_eq!(t.value_at(5_000_000), 0.0);
        assert_eq!(t.busy_fraction(1_000_000), 0.0);
    }

    #[test]
    fn constant_holds_forever() {
        let t = LoadTrace::constant(1.5);
        assert_eq!(t.value_at(0), 1.5);
        assert_eq!(t.value_at(u64::MAX), 1.5);
        assert_eq!(t.busy_fraction(100), 1.0);
    }

    #[test]
    fn from_steps_sorts_and_dedups() {
        let t = LoadTrace::from_steps(vec![(10, 1.0), (0, 0.0), (10, 2.0), (20, -1.0)]);
        assert_eq!(t.steps(), &[(0, 0.0), (10, 2.0), (20, 0.0)]);
        assert_eq!(t.value_at(15), 2.0);
        assert_eq!(t.value_at(25), 0.0);
    }

    #[test]
    fn value_before_first_step_is_zero() {
        let t = LoadTrace::from_steps(vec![(100, 3.0)]);
        assert_eq!(t.value_at(50), 0.0);
        assert_eq!(t.value_at(100), 3.0);
    }

    #[test]
    fn bursty_is_deterministic_per_seed() {
        let a = LoadTrace::bursty(&mut SmallRng::seed_from_u64(5), 1e6, 3e6, 2.0, 60_000_000);
        let b = LoadTrace::bursty(&mut SmallRng::seed_from_u64(5), 1e6, 3e6, 2.0, 60_000_000);
        assert_eq!(a, b);
        let c = LoadTrace::bursty(&mut SmallRng::seed_from_u64(6), 1e6, 3e6, 2.0, 60_000_000);
        assert_ne!(a, c);
    }

    #[test]
    fn bursty_busy_fraction_tracks_duty_cycle() {
        // mean busy 1s, mean idle 3s → expect ~25% busy.
        let mut rng = SmallRng::seed_from_u64(42);
        let horizon = 600_000_000; // 600 s
        let t = LoadTrace::bursty(&mut rng, 1e6, 3e6, 2.0, horizon);
        let frac = t.busy_fraction(horizon);
        assert!((0.15..0.35).contains(&frac), "busy fraction {frac}");
    }

    #[test]
    fn bursty_alternates_weights() {
        let mut rng = SmallRng::seed_from_u64(1);
        let t = LoadTrace::bursty(&mut rng, 1e6, 1e6, 1.5, 30_000_000);
        for w in t.steps().windows(2) {
            assert_ne!(w[0].1 > 0.0, w[1].1 > 0.0, "must alternate busy/idle");
        }
        for &(_, v) in t.steps() {
            assert!(v == 0.0 || v == 1.5);
        }
    }

    #[test]
    fn busy_fraction_clips_to_horizon() {
        let t = LoadTrace::from_steps(vec![(0, 1.0), (50, 0.0), (200, 1.0)]);
        assert_eq!(t.busy_fraction(100), 0.5);
    }
}
