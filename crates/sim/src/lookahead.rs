//! Adaptive conservative-window sizing from the fleet's site structure.
//!
//! The sharded engine advances every shard through a shared lock-step
//! window `[w_start, w_start + L)`; correctness requires each cross-shard
//! message created inside a window to land at or after its end (the
//! always-on assert in `Shard::push_or_remote`). The seed engine used the
//! global floor `L = Topology::min_cross_latency_us()` — the cheapest link
//! class anywhere in the topology. But that floor is only *reachable*
//! between two nodes in the same site. When the fleet is clustered and the
//! modulo node→shard assignment happens to keep each site's nodes on one
//! shard, every message that actually crosses a shard boundary also
//! crosses a site boundary and pays the (larger) inter-site base — so the
//! window can be that wide, cutting the number of barrier rounds by the
//! intra/inter latency ratio with zero change to observable output.
//!
//! The plan computes, for every ordered shard pair `(s, d)`, the minimum
//! latency a message from a node on `s` to a node owned by `d` can
//! possibly experience, and sets the window to the minimum over all pairs.
//! Two asymmetries keep this sound:
//!
//! * **Sources** must be registered — only registered nodes execute
//!   endpoints, so only their sites can originate traffic. The source sets
//!   grow as `Sim::add_node*` registers machines (never shrink: a kill
//!   leaves the machine in place), so the window only tightens over a
//!   sim's lifetime and is recomputed on each registration.
//! * **Destinations** need not be registered — a send to a never-added
//!   node still routes to (and drops at) its modulo owner, carrying the
//!   latency of whatever site the topology assigns it. Each shard's
//!   destination set is therefore fixed at construction from the full
//!   topology site map, plus site 0, which every shard can receive for
//!   (unmapped node ids default to site 0 and ids are unbounded, so every
//!   residue class contains some).
//!
//! The result is never narrower than the global floor — every site-pair
//! minimum is one of the two link-class bases, each ≥ the floor — which
//! the `window_us` debug assert and the engine's proptest gate both pin.

use std::collections::BTreeSet;

use crate::shard::shard_of;
use crate::topology::Topology;

/// Per-shard site occupancy and the window math over it. Owned by
/// [`crate::engine::Sim`]; one instance per sim, sized to the shard count.
#[derive(Debug)]
pub(crate) struct LookaheadPlan {
    /// `src[s]` = distinct sites with at least one *registered* node on
    /// shard `s` — the sites shard `s` can originate traffic from.
    src: Vec<BTreeSet<u32>>,
    /// `dst[d]` = sites shard `d` can receive traffic for: site 0 plus the
    /// site of every topology-mapped node `d` owns, registered or not.
    /// Fixed at construction (the topology is immutable once the sim is
    /// built).
    dst: Vec<BTreeSet<u32>>,
}

impl LookaheadPlan {
    /// Build the (initially source-empty) plan for `shards` shards.
    pub(crate) fn new(shards: usize, topo: &Topology) -> Self {
        let mut dst: Vec<BTreeSet<u32>> = (0..shards).map(|_| BTreeSet::from([0])).collect();
        for (&node, &site) in topo.site_map() {
            dst[shard_of(node, shards)].insert(site);
        }
        Self {
            src: vec![BTreeSet::new(); shards],
            dst,
        }
    }

    /// Record a registered node on `shard`. Returns `true` when the
    /// shard's source-site set grew — the only case where the window can
    /// change, so the caller recomputes [`LookaheadPlan::window_us`] then
    /// and only then (re-registering the same site is free).
    pub(crate) fn note_node(&mut self, shard: usize, site: u32) -> bool {
        self.src[shard].insert(site)
    }

    /// The conservative window width: the minimum over ordered shard pairs
    /// `(s, d)`, `s ≠ d`, of the cheapest site pair `(a ∈ src[s],
    /// b ∈ dst[d])`. Falls back to the global floor when no cross-shard
    /// pair is realizable (single shard, or no registered node yet);
    /// otherwise the result is ≥ the floor by construction.
    pub(crate) fn window_us(&self, topo: &Topology) -> u64 {
        let floor = topo.min_cross_latency_us();
        if self.src.len() < 2 {
            return floor;
        }
        let mut best = u64::MAX;
        for (s, src) in self.src.iter().enumerate() {
            if src.is_empty() {
                continue;
            }
            for (d, dst) in self.dst.iter().enumerate() {
                if d == s {
                    continue;
                }
                for &a in src {
                    for &b in dst {
                        best = best.min(topo.min_site_pair_latency_us(a, b));
                    }
                }
            }
        }
        if best == u64::MAX {
            floor
        } else {
            debug_assert!(
                best >= floor,
                "adaptive window {best} narrower than floor {floor}"
            );
            best
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkParams;
    use vce_net::NodeId;

    fn campus() -> Topology {
        Topology::two_tier(LinkParams::lan_1994(), LinkParams::campus_1994())
    }

    /// Register `nodes` (id, site) pairs under modulo sharding.
    fn plan_with(topo: &Topology, shards: usize, nodes: &[(u32, u32)]) -> LookaheadPlan {
        let mut plan = LookaheadPlan::new(shards, topo);
        for &(id, site) in nodes {
            plan.note_node(shard_of(NodeId(id), shards), site);
        }
        plan
    }

    #[test]
    fn empty_or_single_shard_uses_global_floor() {
        let t = campus();
        assert_eq!(LookaheadPlan::new(2, &t).window_us(&t), 1_000);
        assert_eq!(plan_with(&t, 1, &[(0, 1), (1, 2)]).window_us(&t), 1_000);
    }

    #[test]
    fn site_pure_shards_widen_to_inter_site_base() {
        // Shard 0 = site 1 (even ids), shard 1 = site 2 (odd ids): every
        // cross-shard pair crosses sites, so the window is the campus base.
        let mut t = campus();
        for id in 0..4u32 {
            t.set_site(NodeId(id), 1 + id % 2);
        }
        let plan = plan_with(&t, 2, &[(0, 1), (2, 1), (1, 2), (3, 2)]);
        assert_eq!(plan.window_us(&t), 5_000);
    }

    #[test]
    fn shared_site_across_shards_keeps_intra_base() {
        // Site 1 has nodes on both shards: an intra-site message can cross
        // the shard boundary, so the window stays at the LAN base.
        let mut t = campus();
        for id in 0..4u32 {
            t.set_site(NodeId(id), 1);
        }
        let plan = plan_with(&t, 2, &[(0, 1), (1, 1)]);
        assert_eq!(plan.window_us(&t), 1_000);
    }

    #[test]
    fn site_zero_sources_keep_intra_base() {
        // A default-site source can reach a default-site destination on
        // any other shard (never-registered ids exist in every residue
        // class), so a site-0 source pins the window at the intra base.
        let mut t = campus();
        t.set_site(NodeId(1), 2);
        let plan = plan_with(&t, 2, &[(0, 0), (1, 2)]);
        assert_eq!(plan.window_us(&t), 1_000);
    }

    #[test]
    fn mapped_but_unregistered_destination_constrains_the_window() {
        // Node 3 is assigned site 1 but never registered; a shard-1-owned
        // drop target in site 1 makes intra-site cross-shard traffic
        // realizable from shard 0's site-1 source, even though every
        // *registered* pair crosses sites.
        let mut t = campus();
        t.set_site(NodeId(0), 1);
        t.set_site(NodeId(1), 2);
        t.set_site(NodeId(3), 1);
        let plan = plan_with(&t, 2, &[(0, 1), (1, 2)]);
        assert_eq!(plan.window_us(&t), 1_000);
        // Without the stale mapping the same fleet widens to the campus base.
        let mut t2 = campus();
        t2.set_site(NodeId(0), 1);
        t2.set_site(NodeId(1), 2);
        let plan2 = plan_with(&t2, 2, &[(0, 1), (1, 2)]);
        assert_eq!(plan2.window_us(&t2), 5_000);
    }

    #[test]
    fn uniform_topology_never_widens() {
        // intra == inter: nothing to gain, window equals the floor no
        // matter how sites are arranged.
        let mut t = Topology::default();
        t.set_site(NodeId(0), 1);
        t.set_site(NodeId(1), 2);
        let plan = plan_with(&t, 2, &[(0, 1), (1, 2)]);
        assert_eq!(plan.window_us(&t), 1_000);
    }

    #[test]
    fn zero_cost_links_clamp_to_one() {
        let zero = LinkParams {
            base_us: 0,
            per_kib_us: 0,
        };
        let mut t = Topology::two_tier(zero, LinkParams::campus_1994());
        t.set_site(NodeId(0), 1);
        t.set_site(NodeId(1), 2);
        let plan = plan_with(&t, 2, &[(0, 1), (1, 2)]);
        // Cross-shard pairs are all inter-site, so the window widens to
        // the campus base even though the intra link is degenerate…
        assert_eq!(plan.window_us(&t), 5_000);
        // …and a shared zero-cost site clamps at 1, the floor.
        let mut t2 = Topology::two_tier(zero, LinkParams::campus_1994());
        t2.set_site(NodeId(0), 1);
        t2.set_site(NodeId(1), 1);
        let plan2 = plan_with(&t2, 2, &[(0, 1), (1, 1)]);
        assert_eq!(plan2.window_us(&t2), 1);
    }

    #[test]
    fn window_is_never_narrower_than_global_floor() {
        // Sweep a grid of link costs and site layouts; the adaptive
        // window must dominate the floor everywhere.
        for (intra, inter) in [(0, 0), (1_000, 5_000), (5_000, 1_000), (250, 250)] {
            let mut t = Topology::two_tier(
                LinkParams {
                    base_us: intra,
                    per_kib_us: 0,
                },
                LinkParams {
                    base_us: inter,
                    per_kib_us: 0,
                },
            );
            for id in 0..6u32 {
                t.set_site(NodeId(id), id % 3);
            }
            for shards in [2usize, 3, 4] {
                let nodes: Vec<(u32, u32)> = (0..6u32).map(|id| (id, id % 3)).collect();
                let plan = plan_with(&t, shards, &nodes);
                assert!(plan.window_us(&t) >= t.min_cross_latency_us());
            }
        }
    }
}
