//! Integration gate for `.vct` record/replay: a recorded run is a pure
//! function of the scenario — identical runs produce byte-identical
//! recordings and zero divergence, the recording is byte-identical across
//! shard counts (frame and snapshot boundaries are driver-determined, so
//! the file never leaks the shard layout), and a deliberately perturbed
//! recording bisects to the exact first-divergence event window.

use vce_net::{send_msg, Addr, Endpoint, Envelope, Host, LinkFault, MachineInfo, NodeId};
use vce_sim::record::Divergence;
use vce_sim::{first_divergence, read_trace, RecordedTrace, Sim, SimConfig, Topology};

const HORIZON_US: u64 = 200_000;
const SNAPSHOT_EVERY_US: u64 = 20_000;

/// A chatty peer: periodic tick fanning out to two strided neighbours,
/// replying to every third message — enough cross-shard causality chains
/// that any recording nondeterminism would surface as a byte diff.
struct Peer {
    me: Addr,
    peers: Vec<Addr>,
    period_us: u64,
    ticks_left: u32,
    received: u64,
}

const TICK: u64 = 1;

impl Endpoint for Peer {
    fn on_start(&mut self, host: &mut dyn Host) {
        host.set_timer(self.period_us, TICK);
    }
    fn on_envelope(&mut self, env: Envelope, host: &mut dyn Host) {
        self.received += 1;
        if self.received.is_multiple_of(3) {
            send_msg(host, self.me, env.src, &self.received);
        }
    }
    fn on_timer(&mut self, _token: u64, host: &mut dyn Host) {
        if self.ticks_left == 0 {
            return;
        }
        for &p in &self.peers {
            send_msg(host, self.me, p, &self.received);
        }
        self.ticks_left -= 1;
        if self.ticks_left > 0 {
            host.set_timer(self.period_us, TICK);
        }
    }
    fn snapshot_hash(&self) -> u64 {
        // Deterministic endpoint digest so per-node hashes see state the
        // event stream alone wouldn't (exercises StateHash detection).
        vce_net::Fnv64::new()
            .write_u64(self.received)
            .write_u64(u64::from(self.ticks_left))
            .finish()
    }
}

/// Record one run of the fixed workload to memory and return the bytes.
fn record_run(shards: usize) -> Vec<u8> {
    // Force real worker threads even on 1-core CI so the threaded merge
    // path (not just the in-place fallback) is what produces the bytes.
    std::env::set_var("VCE_SHARDS_THREADS", "1");
    let n_nodes = 8u32;
    let mut sim = Sim::new(SimConfig {
        seed: 11,
        topology: Topology::default(),
        trace_enabled: false,
        shards,
    });
    // Lossy, duplicating, jittery default link so the verdict RNG and the
    // EV_FENCE link record are both exercised.
    sim.with_fault_plan(|p| {
        p.default_link = LinkFault {
            drop_prob: 0.05,
            dup_prob: 0.05,
            jitter_us: 300,
            extra_delay_us: 0,
        };
    });
    let addrs: Vec<Addr> = (0..n_nodes).map(|i| Addr::daemon(NodeId(i))).collect();
    for i in 0..n_nodes {
        sim.add_node(MachineInfo::workstation(NodeId(i), 100.0));
        sim.add_endpoint(
            addrs[i as usize],
            Box::new(Peer {
                me: addrs[i as usize],
                peers: vec![
                    addrs[((i + 1) % n_nodes) as usize],
                    addrs[((i + 3) % n_nodes) as usize],
                ],
                period_us: 700 + u64::from(i) * 137,
                ticks_left: 60,
                received: 0,
            }),
        );
    }
    // Chaos fences mid-run: every fence kind lands in the event stream.
    sim.schedule_fault(40_000, vce_net::FaultOp::Kill(NodeId(3)));
    sim.schedule_fault(90_000, vce_net::FaultOp::Revive(NodeId(3)));
    sim.schedule_fault(60_000, vce_net::FaultOp::Partition(NodeId(5), 1));
    sim.schedule_fault(120_000, vce_net::FaultOp::Heal);
    sim.record_to_memory("record_replay gate", SNAPSHOT_EVERY_US);
    // Snapshots are cut at driver-call boundaries (`finish_run`), so step
    // the horizon in snapshot-sized increments the way a real driver's
    // heartbeat loop does — the schedule is identical for every shard
    // count, which is what keeps the recording shard-invariant.
    let mut t = 0;
    while t < HORIZON_US {
        t += SNAPSHOT_EVERY_US;
        sim.run_until(t);
    }
    sim.finish_recording()
        .expect("memory recording cannot fail on io")
        .expect("memory recorder returns bytes")
}

fn parse(bytes: &[u8]) -> RecordedTrace {
    read_trace(bytes).expect("recording parses cleanly")
}

#[test]
fn identical_runs_record_identical_bytes_and_no_divergence() {
    let a = record_run(1);
    let b = record_run(1);
    assert_eq!(a, b, "same scenario, same binary, different bytes");
    let (ta, tb) = (parse(&a), parse(&b));
    assert!(ta.end.events > 500, "workload too small to be a real gate");
    assert!(
        ta.snapshots.len() >= 5,
        "expected several snapshots, got {}",
        ta.snapshots.len()
    );
    assert_eq!(first_divergence(&ta, &tb), Divergence::None);
    // The v2 delta-varint event records must actually compress: a real
    // recording has to land well under the fixed-width format's 37 bytes
    // per event (frame/snapshot overhead rides on top in both formats, so
    // beating the *record* payload alone is a conservative bound).
    let fixed_width_payload = ta.end.events * 37;
    assert!(
        (a.len() as u64) * 2 < fixed_width_payload,
        "v2 recording is {}B for {} events — not under half the {}B \
         fixed-width event payload",
        a.len(),
        ta.end.events,
        fixed_width_payload
    );
}

#[test]
fn recording_is_byte_identical_across_shard_counts() {
    let baseline = record_run(1);
    for shards in [2, 4, 8] {
        let got = record_run(shards);
        assert_eq!(
            baseline, got,
            "recording bytes diverged at {shards} shards — frame or snapshot \
             boundaries leaked the shard layout"
        );
    }
}

#[test]
fn perturbed_recording_bisects_to_the_exact_event_window() {
    let bytes = record_run(1);
    let original = parse(&bytes);
    // Doctor a real recording: flip one event mid-stream and poison every
    // snapshot hash taken after it (as a genuinely divergent run would).
    let mut doctored = original.clone();
    let victim = (original.snapshots[2].event_index + 5) as usize;
    assert!(victim < original.events.len());
    doctored.events[victim].a ^= 0xdead_beef;
    for s in &mut doctored.snapshots {
        if s.event_index > victim as u64 {
            s.sim_hash ^= 1;
        }
    }
    doctored.end.sim_hash ^= 1;
    match first_divergence(&doctored, &original) {
        Divergence::Event { index, window, .. } => {
            assert_eq!(index, victim as u64, "bisection found the wrong event");
            assert!(
                window.0 <= victim as u64 && (victim as u64) < window.1,
                "window [{}, {}) does not contain event {victim}",
                window.0,
                window.1
            );
            // The window is one snapshot interval, not the whole stream.
            assert_eq!(window.0, original.snapshots[2].event_index);
            assert_eq!(window.1, original.snapshots[3].event_index);
        }
        other => panic!("expected Event divergence, got {other:?}"),
    }
}

#[test]
fn silent_state_drift_reports_statehash_with_the_node() {
    let bytes = record_run(1);
    let original = parse(&bytes);
    // Same event stream, but one node's state hash drifts from snapshot 3
    // on — the divergence events can't explain.
    let mut doctored = original.clone();
    for s in &mut doctored.snapshots[3..] {
        s.sim_hash ^= 7;
        s.nodes[2].1 ^= 7;
    }
    doctored.end.sim_hash ^= 7;
    match first_divergence(&doctored, &original) {
        Divergence::StateHash { snapshot, node, .. } => {
            assert_eq!(snapshot, 3);
            assert_eq!(node, Some(original.snapshots[3].nodes[2].0));
        }
        other => panic!("expected StateHash divergence, got {other:?}"),
    }
}
