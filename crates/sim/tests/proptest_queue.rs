//! Oracle equivalence for the calendar-queue event core: random
//! push/pop/cancel schedules driven simultaneously through
//! [`CalendarQueue`] and a reference `BinaryHeap` keyed `(at_us, cause)` —
//! the structure it replaced in `Sim` — must produce identical pop
//! sequences, including same-timestamp cause-order tie-breaks and
//! interaction with lazy cancellation (cancelled entries stay queued and
//! are silently consumed at pop, exactly like the engine's cancelled-timer
//! filter).

use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use vce_sim::queue::{CalendarQueue, SPAN_US};

#[derive(Debug, Clone)]
enum Op {
    /// Push at this absolute time.
    Push(u64),
    /// Pop one observable (non-cancelled) event.
    Pop,
    /// Lazily cancel the most recently pushed still-live event.
    Cancel,
}

/// Times are drawn from three bands: a quantized near band (forcing many
/// same-timestamp ties), a mid band inside the wheel horizon, and a far
/// band beyond it (exercising the overflow level and promotion).
fn op_strategy() -> impl Strategy<Value = Op> {
    // (The vendored `prop_oneof!` is unweighted; arms are repeated to bias
    // toward tie-heavy near-band pushes and pops.)
    prop_oneof![
        (0u64..32).prop_map(|t| Op::Push(t * 64)),
        (0u64..32).prop_map(|t| Op::Push(t * 64)),
        (0u64..32).prop_map(|t| Op::Push(t * 64)),
        (0u64..SPAN_US).prop_map(Op::Push),
        (0u64..4000).prop_map(|r| Op::Push(SPAN_US + r * 731)),
        Just(Op::Pop),
        Just(Op::Pop),
        Just(Op::Pop),
        Just(Op::Cancel),
    ]
}

proptest! {
    #[test]
    fn wheel_matches_heap_oracle(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let mut wheel: CalendarQueue<u32> = CalendarQueue::new();
        // The reference: a min-heap on (at_us, cause). The caller-side
        // counter doubles as the cause key — monotone push order, exactly
        // the serial engine's old insertion-sequence tie-break.
        let mut heap: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut next_id = 0u32;
        let mut live: Vec<u32> = Vec::new();
        let mut cancelled: HashSet<u32> = HashSet::new();

        let pop_both = |wheel: &mut CalendarQueue<u32>,
                            heap: &mut BinaryHeap<Reverse<(u64, u64, u32)>>,
                            cancelled: &HashSet<u32>| {
            // Lazy-cancel drain: cancelled entries are consumed silently.
            let w = loop {
                match wheel.pop() {
                    None => break None,
                    Some((_, _, id)) if cancelled.contains(&id) => continue,
                    Some((at, _, id)) => break Some((at, id)),
                }
            };
            let h = loop {
                match heap.pop() {
                    None => break None,
                    Some(Reverse((_, _, id))) if cancelled.contains(&id) => continue,
                    Some(Reverse((at, _, id))) => break Some((at, id)),
                }
            };
            (w, h)
        };

        for op in ops {
            match op {
                Op::Push(at) => {
                    let id = next_id;
                    next_id += 1;
                    seq += 1;
                    wheel.push(at, seq, id);
                    heap.push(Reverse((at, seq, id)));
                    live.push(id);
                }
                Op::Cancel => {
                    if let Some(id) = live.pop() {
                        cancelled.insert(id);
                    }
                }
                Op::Pop => {
                    // Before popping, the earliest timestamps must agree
                    // (peek may see a cancelled entry — on both sides).
                    let heap_peek = heap.peek().map(|Reverse((at, _, _))| *at);
                    prop_assert_eq!(wheel.peek_time(), heap_peek);
                    let (w, h) = pop_both(&mut wheel, &mut heap, &cancelled);
                    prop_assert_eq!(w, h, "divergent pop");
                    if let Some((_, id)) = w {
                        live.retain(|&x| x != id);
                    }
                }
            }
            prop_assert_eq!(wheel.len(), heap.len(), "divergent len");
        }

        // Drain to empty: the full residual order must match too.
        loop {
            let (w, h) = pop_both(&mut wheel, &mut heap, &cancelled);
            prop_assert_eq!(w, h, "divergent drain");
            if w.is_none() {
                break;
            }
        }
        prop_assert!(wheel.is_empty());
    }
}
