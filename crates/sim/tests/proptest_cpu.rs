//! Property tests on the processor-sharing CPU model: work conservation,
//! prediction consistency, fairness.

use proptest::prelude::*;
use vce_net::PortId;
use vce_sim::Cpu;

const P: PortId = PortId(1000);

proptest! {
    #[test]
    fn work_is_conserved(
        speed in 10.0f64..1000.0,
        jobs in prop::collection::vec(1.0f64..500.0, 1..8),
        horizon_ms in 1u64..10_000,
    ) {
        let mut cpu = Cpu::new(speed);
        let total_submitted: f64 = jobs.iter().sum();
        for (i, &mops) in jobs.iter().enumerate() {
            cpu.add_job((P, i as u64), mops);
        }
        let horizon = horizon_ms * 1_000;
        cpu.advance(horizon);
        let remaining: f64 = (0..jobs.len())
            .filter_map(|i| cpu.remaining((P, i as u64)))
            .sum();
        let done = total_submitted - remaining;
        // Executed work never exceeds capacity × time (within fp slack)...
        let capacity = speed * horizon as f64 / 1e6;
        prop_assert!(done <= capacity + 1e-6, "done {done} > capacity {capacity}");
        // ...and never exceeds what was submitted.
        prop_assert!(done <= total_submitted + 1e-6);
        prop_assert!(done >= -1e-9);
    }

    #[test]
    fn equal_jobs_progress_equally(
        speed in 10.0f64..1000.0,
        mops in 10.0f64..500.0,
        n in 2usize..6,
        t_ms in 1u64..1_000,
    ) {
        let mut cpu = Cpu::new(speed);
        for i in 0..n {
            cpu.add_job((P, i as u64), mops);
        }
        cpu.advance(t_ms * 1_000);
        let rems: Vec<f64> = (0..n).map(|i| cpu.remaining((P, i as u64)).unwrap()).collect();
        for w in rems.windows(2) {
            prop_assert!((w[0] - w[1]).abs() < 1e-6, "unfair sharing: {rems:?}");
        }
    }

    #[test]
    fn prediction_matches_reality(
        speed in 10.0f64..1000.0,
        jobs in prop::collection::vec(1.0f64..200.0, 1..5),
    ) {
        // If nothing changes, advancing to the predicted completion time
        // really does finish the predicted job.
        let mut cpu = Cpu::new(speed);
        for (i, &mops) in jobs.iter().enumerate() {
            cpu.add_job((P, i as u64), mops);
        }
        let (key, at) = cpu.next_completion(0).expect("jobs present");
        cpu.advance(at);
        let done = cpu.done_jobs();
        prop_assert!(done.contains(&key), "predicted {key:?} not in {done:?}");
    }

    #[test]
    fn background_scales_slowdown(
        speed in 50.0f64..500.0,
        mops in 10.0f64..100.0,
        bg in prop_oneof![Just(0.0f64), Just(1.0), Just(3.0)],
    ) {
        let mut cpu = Cpu::new(speed);
        cpu.set_background(bg);
        cpu.add_job((P, 1), mops);
        let (_, at) = cpu.next_completion(0).unwrap();
        let expected = (mops / (speed / (1.0 + bg)) * 1e6).ceil() as u64;
        // ceil() introduces ≤1µs slack.
        prop_assert!(at.abs_diff(expected) <= 1, "at {at} expected {expected}");
    }

    #[test]
    fn interleaved_mutations_never_lose_or_invent_work(
        ops in prop::collection::vec((0u8..3, 1u64..5, 1.0f64..100.0, 1u64..500_000), 1..30),
    ) {
        // A random schedule of add/remove/advance keeps the accounting sane.
        let mut cpu = Cpu::new(100.0);
        let mut now = 0u64;
        let mut live_total = 0.0f64;
        for (op, pid, mops, dt) in ops {
            match op {
                0 => {
                    // (Re)start a job; replacing forgets the old remainder.
                    if let Some(old) = cpu.remaining((P, pid)) {
                        live_total -= old;
                    }
                    cpu.advance(now);
                    cpu.add_job((P, pid), mops);
                    live_total += mops;
                }
                1 => {
                    cpu.advance(now);
                    if let Some(rem) = cpu.remove_job((P, pid)) {
                        live_total -= rem;
                    }
                }
                _ => {
                    now += dt;
                    cpu.advance(now);
                }
            }
            // Recompute live_total against ground truth after each step.
            let actual: f64 = (0..6).filter_map(|p| cpu.remaining((P, p))).sum();
            prop_assert!(actual >= -1e-9);
            prop_assert!(actual <= live_total + 1e-6, "{actual} > {live_total}");
            live_total = actual;
        }
    }
}
