//! Property gate for the sharded engine: on **random topologies** (random
//! site assignments, random intra/inter link costs down to the zero-cost
//! degenerate case, random jitter/drop/duplicate link faults, random
//! crash/revive schedules) a sharded run must be indistinguishable from
//! the serial run — same event count, same final clock, same network
//! stats, same trace, byte for byte.
//!
//! The conservative-window invariant — *no cross-shard event ever lands
//! inside the window that produced it* — is enforced by an always-on
//! assert in the engine's cross-shard enqueue path (`push_or_remote` in
//! `shard.rs`), so every sharded case here is also a direct test of the
//! barrier rule: a topology whose minimum cross-node latency undercut the
//! lookahead would abort the run rather than silently diverge. Since the
//! lookahead is now *adaptive* (sized from per-shard site occupancy, see
//! `lookahead.rs`), the random site assignments here double as a property
//! gate on the planner: any window wider than a realizable cross-shard
//! latency aborts, and the explicit assertion below pins the other side
//! (never narrower than the global floor).

use proptest::prelude::*;
use vce_net::{send_msg, Addr, Endpoint, Envelope, Host, LinkFault, MachineInfo, NodeId};
use vce_sim::topology::LinkParams;
use vce_sim::{Sim, SimConfig, Topology};

const HORIZON_US: u64 = 120_000;

/// Everything a run can observe, rendered comparable.
fn fingerprint(sim: Sim) -> (u64, u64, String, String) {
    let events = sim.events_processed();
    let now = sim.now_us();
    let stats = format!("{:?}", sim.stats().snapshot());
    let trace = sim.trace().dump();
    (events, now, stats, trace)
}

/// A chatty peer: periodic tick, two strided sends per tick, reply to a
/// fraction of received messages (amplification), watchdog churn.
struct Peer {
    me: Addr,
    peers: Vec<Addr>,
    period_us: u64,
    ticks_left: u32,
    received: u64,
}

const TICK: u64 = 1;
const WATCHDOG: u64 = 2;

impl Endpoint for Peer {
    fn on_start(&mut self, host: &mut dyn Host) {
        host.set_timer(self.period_us, TICK);
        host.set_timer(self.period_us * 4, WATCHDOG);
    }
    fn on_envelope(&mut self, env: Envelope, host: &mut dyn Host) {
        self.received += 1;
        // Every third message is answered — cross-shard causality chains.
        if self.received.is_multiple_of(3) {
            send_msg(host, self.me, env.src, &self.received);
        }
    }
    fn on_timer(&mut self, token: u64, host: &mut dyn Host) {
        if token != TICK || self.ticks_left == 0 {
            // A revive re-runs on_start, which re-arms the tick after the
            // budget is spent — quiesce instead of underflowing.
            return;
        }
        for &p in &self.peers {
            send_msg(host, self.me, p, &self.received);
        }
        host.cancel_timer(WATCHDOG);
        host.set_timer(self.period_us * 4, WATCHDOG);
        self.ticks_left -= 1;
        if self.ticks_left > 0 {
            host.set_timer(self.period_us, TICK);
        }
    }
}

#[derive(Debug, Clone)]
struct Case {
    seed: u64,
    nodes: u32,
    shards: usize,
    sites: Vec<u32>,
    intra_base_us: u64,
    inter_base_us: u64,
    per_kib_us: u64,
    jitter_us: u64,
    drop_prob: f64,
    dup_prob: f64,
    /// (node index, kill at, revive at) — scheduled mid-run crash.
    crash: Option<(u32, u64, u64)>,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        any::<u64>(),
        3u32..=10,
        2usize..=8,
        proptest::collection::vec(0u32..3, 10),
        0u64..=2_000,
        0u64..=4_000,
        0u64..=64,
        (0u64..=1_500, 0.0f64..0.3, 0.0f64..0.3),
        proptest::option::of((0u32..10, 10_000u64..60_000, 60_000u64..110_000)),
    )
        .prop_map(
            |(
                seed,
                nodes,
                shards,
                sites,
                intra_base_us,
                inter_base_us,
                per_kib_us,
                (jitter_us, drop_prob, dup_prob),
                crash,
            )| Case {
                seed,
                nodes,
                shards,
                sites,
                intra_base_us,
                inter_base_us,
                per_kib_us,
                jitter_us,
                drop_prob,
                dup_prob,
                crash: crash.map(|(n, k, r)| (n % nodes, k, r)),
            },
        )
}

fn build_and_run(case: &Case, shards: usize) -> (u64, u64, String, String) {
    let mut topo = Topology::two_tier(
        LinkParams {
            base_us: case.intra_base_us,
            per_kib_us: case.per_kib_us,
        },
        LinkParams {
            base_us: case.inter_base_us,
            per_kib_us: case.per_kib_us,
        },
    );
    for i in 0..case.nodes {
        topo.set_site(NodeId(i), case.sites[i as usize]);
    }
    let mut sim = Sim::new(SimConfig {
        seed: case.seed,
        topology: topo,
        trace_enabled: true,
        shards,
    });
    sim.with_fault_plan(|p| {
        p.default_link = LinkFault {
            jitter_us: case.jitter_us,
            drop_prob: case.drop_prob,
            dup_prob: case.dup_prob,
            extra_delay_us: 0,
        };
    });
    let addrs: Vec<Addr> = (0..case.nodes).map(|i| Addr::daemon(NodeId(i))).collect();
    for i in 0..case.nodes {
        sim.add_node(MachineInfo::workstation(NodeId(i), 100.0));
        let far = 1 + (i as usize * 7) % (case.nodes as usize - 1);
        sim.add_endpoint(
            addrs[i as usize],
            Box::new(Peer {
                me: addrs[i as usize],
                peers: vec![
                    addrs[((i + 1) % case.nodes) as usize],
                    addrs[(i as usize + far) % case.nodes as usize],
                ],
                period_us: 400 + u64::from(i) * 37 % 1_100,
                ticks_left: 40,
                received: 0,
            }),
        );
    }
    // The adaptive window must dominate the global floor — narrower would
    // only add barrier rounds, and a window wider than some realizable
    // cross-shard latency would trip the push_or_remote assert mid-run,
    // so the run itself certifies the upper side.
    let floor = case.intra_base_us.min(case.inter_base_us).max(1);
    assert!(
        sim.window_lookahead_us() >= floor,
        "adaptive lookahead {} narrower than floor {}",
        sim.window_lookahead_us(),
        floor
    );
    if let Some((victim, kill_at, revive_at)) = case.crash {
        sim.schedule_fault(kill_at, vce_net::FaultOp::Kill(NodeId(victim)));
        sim.schedule_fault(revive_at, vce_net::FaultOp::Revive(NodeId(victim)));
    }
    sim.run_until(HORIZON_US);
    fingerprint(sim)
}

proptest! {
    #[test]
    fn sharded_runs_match_serial_on_random_topologies(case in case_strategy()) {
        // Real worker threads even on 1-core CI — the barrier protocol is
        // part of what's under test.
        std::env::set_var("VCE_SHARDS_THREADS", "1");
        let serial = build_and_run(&case, 1);
        prop_assert!(serial.0 > 0, "workload generated no events");
        let sharded = build_and_run(&case, case.shards);
        prop_assert_eq!(&sharded.0, &serial.0, "events diverged (S={})", case.shards);
        prop_assert_eq!(&sharded.1, &serial.1, "final time diverged");
        prop_assert_eq!(&sharded.2, &serial.2, "net stats diverged");
        prop_assert_eq!(&sharded.3, &serial.3, "trace diverged");
    }
}
