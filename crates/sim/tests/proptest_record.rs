//! Torn-tail property for the `.vct` reader, mirroring the storage layer's
//! journal contract: for any recorded trace and any truncation point, the
//! reader reports `Truncated { frames_read }` with `frames_read` equal to
//! the count of complete leading frames — it never panics, and it never
//! reports a torn prefix as a complete recording. A single flipped bit
//! anywhere breaks the CRC chain and is always rejected.

use proptest::prelude::*;
use vce_net::NodeId;
use vce_sim::record::{
    read_trace, EventRecord, ReadError, SnapshotRecord, TraceWriter, EV_DELIVER, EV_TIMER,
};
use vce_storage::FRAME_HEADER;

/// One writer step: a batch of events or a snapshot cut.
#[derive(Debug, Clone)]
enum Step {
    Events(Vec<EventRecord>),
    Snapshot(SnapshotRecord),
}

fn arb_event() -> impl Strategy<Value = EventRecord> {
    (
        0u64..1_000_000,
        any::<u64>(),
        0u32..16,
        any::<bool>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(at_us, cause, node, timer, a, b)| EventRecord {
            at_us,
            cause,
            node: NodeId(node),
            kind: if timer { EV_TIMER } else { EV_DELIVER },
            a,
            b,
        })
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        prop::collection::vec(arb_event(), 0..20).prop_map(Step::Events),
        (
            0u64..1_000_000,
            any::<u64>(),
            any::<u64>(),
            prop::collection::vec((0u32..16, any::<u64>()), 0..8),
        )
            .prop_map(|(at_us, event_index, sim_hash, nodes)| {
                Step::Snapshot(SnapshotRecord {
                    at_us,
                    event_index,
                    sim_hash,
                    nodes: nodes.into_iter().map(|(n, h)| (NodeId(n), h)).collect(),
                })
            }),
    ]
}

/// Write an arbitrary trace to memory. Snapshot/End bookkeeping is the
/// writer's own, so the full file always reads back `Ok`.
fn build_trace(scenario: &str, steps: &[Step]) -> Vec<u8> {
    let mut w = TraceWriter::to_memory(scenario, 10_000);
    for step in steps {
        match step {
            Step::Events(evs) => w.append_events(evs).expect("memory write"),
            Step::Snapshot(s) => w.snapshot(s).expect("memory write"),
        }
    }
    w.finish(0x1234_5678_9abc_def0, 999_999)
        .expect("memory write")
        .expect("memory writer returns bytes")
}

/// Walk the framing and count frames whose bytes are fully within `cut`.
fn complete_frames_before(bytes: &[u8], cut: usize) -> u64 {
    let mut off = 4; // magic
    let mut frames = 0;
    while off + FRAME_HEADER <= bytes.len() {
        let len = u32::from_be_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        let end = off + FRAME_HEADER + len;
        if end > cut {
            break;
        }
        frames += 1;
        off = end;
    }
    frames
}

proptest! {
    #[test]
    fn any_truncation_is_reported_as_exactly_the_complete_prefix(
        scenario in "[a-z =0-9]{0,40}",
        steps in prop::collection::vec(arb_step(), 0..10),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = build_trace(&scenario, &steps);
        prop_assert!(read_trace(&bytes).is_ok(), "full file must parse");

        // cut == len would be the untorn file; clamp to a strict prefix.
        let cut = (((bytes.len() as f64) * cut_frac) as usize).min(bytes.len() - 1);
        let torn = &bytes[..cut];
        match read_trace(torn) {
            Err(ReadError::BadMagic) => prop_assert!(cut < 4, "magic intact but BadMagic"),
            Err(ReadError::Truncated { frames_read }) => {
                prop_assert_eq!(
                    frames_read,
                    complete_frames_before(&bytes, cut),
                    "frames_read must count exactly the complete leading frames"
                );
            }
            Ok(_) => prop_assert!(false, "torn prefix ({cut} of {} bytes) reported complete", bytes.len()),
            Err(e) => prop_assert!(false, "truncation misreported as {e:?}"),
        }
    }

    #[test]
    fn every_cut_offset_never_panics_or_parses(
        steps in prop::collection::vec(arb_step(), 0..6),
    ) {
        // Exhaustive over offsets for one trace per case: the reader must
        // hold the prefix property at *every* byte boundary, not just the
        // sampled ones.
        let bytes = build_trace("exhaustive", &steps);
        for cut in 0..bytes.len() {
            match read_trace(&bytes[..cut]) {
                Ok(_) => prop_assert!(false, "prefix of {cut} bytes parsed as complete"),
                Err(ReadError::BadMagic) => prop_assert!(cut < 4),
                Err(ReadError::Truncated { frames_read }) => {
                    prop_assert_eq!(frames_read, complete_frames_before(&bytes, cut));
                }
                Err(e) => prop_assert!(false, "cut at {cut}: unexpected {e:?}"),
            }
        }
    }

    #[test]
    fn a_single_bit_flip_never_parses(
        steps in prop::collection::vec(arb_step(), 0..6),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let bytes = build_trace("bitflip", &steps);
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        let mut flipped = bytes.clone();
        flipped[pos] ^= 1 << bit;
        prop_assert!(
            read_trace(&flipped).is_err(),
            "bit {bit} of byte {pos} flipped and the file still parsed"
        );
    }
}
