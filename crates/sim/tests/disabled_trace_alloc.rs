//! Disabled trace allocates nothing: the `format!` arguments at every
//! `Host::log` / trace call site must sit behind the enabled check, so a
//! sim in its warmed steady state with tracing off performs **zero** heap
//! allocations per event. A single straggler site that builds its log
//! string eagerly fails this test.
//!
//! One `#[test]` only — the counting allocator is process-global and a
//! concurrent test would pollute the window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use vce_net::{Addr, Endpoint, Host, MachineInfo, NodeId};
use vce_sim::{Sim, SimConfig, Topology};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Timer-only endpoint that logs every tick through the gated idiom. With
/// the trace off, a warmed run of these is pure heap-pop/heap-push.
struct Ticker;

impl Endpoint for Ticker {
    fn on_start(&mut self, host: &mut dyn Host) {
        host.set_timer(1_000, 1);
    }
    fn on_envelope(&mut self, _env: vce_net::Envelope, _host: &mut dyn Host) {}
    fn on_timer(&mut self, token: u64, host: &mut dyn Host) {
        if host.log_enabled() {
            host.log(format!("tick {token} at {}µs", host.now_us()));
        }
        host.set_timer(1_000, token);
    }
}

fn steady_state_alloc_delta(trace_enabled: bool) -> u64 {
    let mut sim = Sim::new(SimConfig {
        seed: 5,
        topology: Topology::default(),
        trace_enabled,
        shards: 1,
    });
    for n in 0..4u32 {
        sim.add_node(MachineInfo::workstation(NodeId(n), 100.0));
        sim.add_endpoint(Addr::daemon(NodeId(n)), Box::new(Ticker));
    }
    // Warm up: the first ticks grow the timer heap and scratch buffers to
    // their steady-state capacity (the warmup horizon exceeds the measured
    // window so every amortised doubling lands before measurement starts).
    sim.run_until(1_200_000);
    let before = allocs();
    sim.run_until(2_200_000); // 4 endpoints × 1000 ticks
    allocs() - before
}

#[test]
fn disabled_trace_steady_state_allocates_nothing() {
    let disabled = steady_state_alloc_delta(false);
    let enabled = steady_state_alloc_delta(true);
    assert!(
        enabled > 1_000,
        "sanity: enabled trace should allocate a string per tick, got {enabled}"
    );
    // The calendar queue's wheel wrap (every 2^21 µs) may promote its
    // overflow heap once inside the window — an amortised infrastructure
    // allocation, not a per-event one. Anything beyond that handful means
    // some site allocates per event with the trace off.
    assert!(
        disabled <= 4,
        "trace is disabled but the steady-state window allocated {disabled} \
         times ({} events' worth) — a log/trace site builds its argument eagerly",
        disabled / 4
    );
}
