//! Golden-file tests for every vce-lint rule: a known-bad snippet that must
//! fire (positive), a near-miss that must not (negative), and a waived copy
//! that must be suppressed — plus the waiver grammar's own failure modes and
//! a self-test that the shipped workspace is clean.

use vce_lint::{lint_source, Finding};

/// Path inside a determinism-scoped crate; engages D001–D004.
const SIM: &str = "crates/sim/src/fake.rs";
/// Path on the protocol-handler list; engages P001 as well.
const P001: &str = "crates/isis/src/member.rs";
/// Path outside every scoped crate; no rules apply.
const UNSCOPED: &str = "crates/viz/src/fake.rs";

fn rules_fired(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

fn assert_fires(path: &str, src: &str, rule: &str) {
    let findings = lint_source(path, src);
    assert!(
        rules_fired(&findings).contains(&rule),
        "expected {rule} on {path}, got {findings:?}"
    );
}

fn assert_clean(path: &str, src: &str) {
    let findings = lint_source(path, src);
    assert!(findings.is_empty(), "expected clean, got {findings:?}");
}

// ---------------------------------------------------------------- D001

#[test]
fn d001_flags_wall_clock_types() {
    assert_fires(SIM, "use std::time::Instant;\n", "D001");
    assert_fires(
        SIM,
        "fn f() { let t = std::time::SystemTime::now(); }\n",
        "D001",
    );
    assert_fires(SIM, "use std::time::{Duration, Instant};\n", "D001");
}

#[test]
fn d001_ignores_duration_and_unscoped_crates() {
    // Duration is a plain value type: fine everywhere.
    assert_clean(SIM, "use std::time::Duration;\n");
    // Wall-clock reads are fine outside the deterministic crates.
    assert_clean(UNSCOPED, "use std::time::Instant;\n");
}

#[test]
fn d001_waived_is_suppressed() {
    assert_clean(
        SIM,
        "// vce-lint: allow(D001) live harness is wall-clock by design\n\
         use std::time::Instant;\n",
    );
}

// ---------------------------------------------------------------- D002

#[test]
fn d002_flags_hash_map_iteration() {
    let src = "\
use std::collections::HashMap;
struct S { m: HashMap<u32, u32> }
impl S {
    fn f(&self) {
        for (k, v) in &self.m { drop((k, v)); }
    }
}
";
    assert_fires(SIM, src, "D002");
    // Method-call form on a local binding.
    let src = "\
use std::collections::HashMap;
fn f() {
    let m: HashMap<u32, u32> = HashMap::new();
    for k in m.keys() { drop(k); }
}
";
    assert_fires(SIM, src, "D002");
}

#[test]
fn d002_ignores_lookups_and_btree_iteration() {
    // Point lookups on a HashMap are order-free.
    let src = "\
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> Option<&u32> { m.get(&1) }
";
    assert_clean(SIM, src);
    // BTreeMap iteration is deterministic.
    let src = "\
use std::collections::BTreeMap;
fn f(m: &BTreeMap<u32, u32>) { for k in m.keys() { drop(k); } }
";
    assert_clean(SIM, src);
}

#[test]
fn d002_waived_is_suppressed() {
    let src = "\
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> u32 {
    // vce-lint: allow(D002) order-insensitive: summing is commutative
    m.values().sum()
}
";
    assert_clean(SIM, src);
}

// ---------------------------------------------------------------- D003

#[test]
fn d003_flags_ambient_randomness() {
    assert_fires(SIM, "fn f() { let r = rand::thread_rng(); }\n", "D003");
    assert_fires(SIM, "fn f() -> u64 { rand::random() }\n", "D003");
}

#[test]
fn d003_ignores_seeded_rng_names() {
    // Explicitly seeded generators are the sanctioned path.
    assert_clean(
        SIM,
        "fn f(seed: u64) { let rng = SmallRng::seed_from_u64(seed); }\n",
    );
}

#[test]
fn d003_waived_is_suppressed() {
    assert_clean(
        SIM,
        "// vce-lint: allow(D003) jitter for a non-replayed backoff path\n\
         fn f() -> u64 { rand::random() }\n",
    );
}

// ---------------------------------------------------------------- D004

#[test]
fn d004_flags_threads_and_mpsc() {
    assert_fires(SIM, "fn f() { std::thread::spawn(|| {}); }\n", "D004");
    assert_fires(SIM, "use std::sync::mpsc;\n", "D004");
}

#[test]
fn d004_allows_threads_in_bench_and_tests() {
    // The bench crate is off the deterministic list entirely.
    assert_clean(
        "crates/bench/src/lib.rs",
        "fn f() { std::thread::spawn(|| {}); }\n",
    );
    // #[cfg(test)] modules are exempt from every rule.
    let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() { std::thread::spawn(|| {}).join().unwrap(); }
}
";
    assert_clean(SIM, src);
}

#[test]
fn d004_waived_is_suppressed() {
    assert_clean(
        SIM,
        "// vce-lint: allow(D004) one OS thread per node in live mode\n\
         fn f() { std::thread::spawn(|| {}); }\n",
    );
}

/// The sharded window runner's exact shape: one trailing waiver on the
/// `use std::thread;` line covers the module's scoped-thread usage
/// (`thread::scope` / `scope.spawn` are not import sites, so the single
/// reasoned waiver is the only one the module needs).
#[test]
fn d004_sharded_runner_waiver_shape() {
    let waived = "\
use std::thread; // vce-lint: allow(D004) conservative barriers keep the run deterministic

fn run() {
    thread::scope(|scope| {
        scope.spawn(move || {});
    });
}
";
    assert_clean(SIM, waived);
    // The same module without the waiver must fire on the import line.
    let unwaived = "\
use std::thread;

fn run() {
    thread::scope(|scope| {
        scope.spawn(move || {});
    });
}
";
    assert_fires(SIM, unwaived, "D004");
}

// ---------------------------------------------------------------- D005

#[test]
fn d005_flags_heap_element_without_seq_field() {
    let src = "\
use std::collections::BinaryHeap;
struct Ev { at_us: u64 }
struct Q { heap: BinaryHeap<Ev> }
";
    assert_fires(SIM, src, "D005");
    // Wrapped in Reverse<..> is still the same element.
    let src = "\
use std::cmp::Reverse;
use std::collections::BinaryHeap;
struct Ev { at_us: u64 }
fn f() { let h: BinaryHeap<Reverse<Ev>> = BinaryHeap::new(); drop(h); }
";
    assert_fires(SIM, src, "D005");
    // Tuples / foreign element types cannot be verified: flagged too.
    assert_fires(
        SIM,
        "fn f() { let h: std::collections::BinaryHeap<(u64, u64)> = Default::default(); drop(h); }\n",
        "D005",
    );
}

#[test]
fn d005_accepts_seq_tie_break_and_unscoped_crates() {
    // The `(at_us, seq)` contract: element carries an insertion counter.
    let src = "\
use std::cmp::Reverse;
use std::collections::BinaryHeap;
struct Deadline { at_us: u64, seq: u64 }
struct Q { heap: BinaryHeap<Reverse<Deadline>> }
";
    assert_clean(SIM, src);
    // A `seq`-ish name (e.g. `push_seq`) also satisfies the contract.
    let src = "\
use std::collections::BinaryHeap;
struct Ev { at_us: u64, push_seq: u64 }
struct Q { heap: BinaryHeap<Ev> }
";
    assert_clean(SIM, src);
    // Outside the deterministic crates, heaps are unconstrained.
    assert_clean(
        "crates/bench/src/lib.rs",
        "struct Ev { at_us: u64 }\nstruct Q { h: std::collections::BinaryHeap<Ev> }\n",
    );
    // Bare mentions (imports, `new()` without a typed binding) say nothing
    // about the element and are not flagged.
    assert_clean(SIM, "use std::collections::BinaryHeap;\n");
}

#[test]
fn d005_waived_is_suppressed() {
    assert_clean(
        SIM,
        "struct Ev { at_us: u64 }\n\
         // vce-lint: allow(D005) ties impossible: at_us strictly monotone by construction\n\
         struct Q { heap: std::collections::BinaryHeap<Ev> }\n",
    );
}

// ---------------------------------------------------------------- P001

#[test]
fn p001_flags_panics_in_protocol_files() {
    assert_fires(P001, "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n", "P001");
    assert_fires(
        P001,
        "fn f(x: Option<u32>) -> u32 { x.expect(\"present\") }\n",
        "P001",
    );
    assert_fires(P001, "fn f(v: &[u32]) -> u32 { v[0] }\n", "P001");
}

#[test]
fn p001_scoped_to_listed_files_only() {
    // Same code in a deterministic — but non-protocol — file is fine.
    assert_clean(SIM, "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n");
}

#[test]
fn p001_ignores_non_indexing_brackets() {
    // Attribute/macro/type brackets are not indexing expressions.
    assert_clean(P001, "fn f() -> Vec<u32> { vec![1, 2, 3] }\n");
    assert_clean(P001, "fn f(v: &mut [u32]) -> usize { v.len() }\n");
}

#[test]
fn p001_waived_is_suppressed() {
    assert_clean(
        P001,
        "fn f(x: Option<u32>) -> u32 {\n\
         // vce-lint: allow(P001) x is produced two lines up, never remote\n\
         x.unwrap()\n\
         }\n",
    );
}

// ------------------------------------------------------- waiver grammar

/// ISSUE regression test: an `allow` with no reason is itself an error,
/// and the finding it tried to cover still fires.
#[test]
fn waiver_without_reason_is_an_error_and_suppresses_nothing() {
    let src = "// vce-lint: allow(D001)\nuse std::time::Instant;\n";
    let fired = lint_source(SIM, src);
    let rules = rules_fired(&fired);
    assert!(
        rules.contains(&"W001"),
        "reasonless waiver must be W001: {fired:?}"
    );
    assert!(
        rules.contains(&"D001"),
        "unwaived finding must survive: {fired:?}"
    );
}

#[test]
fn waiver_with_malformed_directive_is_w001() {
    assert_fires(
        SIM,
        "// vce-lint: alow(D001) typo in verb\nfn f() {}\n",
        "W001",
    );
    assert_fires(
        SIM,
        "// vce-lint: allow D001 missing parens\nfn f() {}\n",
        "W001",
    );
}

#[test]
fn waiver_naming_unknown_rule_is_w002() {
    assert_fires(
        SIM,
        "// vce-lint: allow(D999) no such rule\nfn f() {}\n",
        "W002",
    );
}

#[test]
fn waiver_covering_nothing_is_w003() {
    assert_fires(
        SIM,
        "// vce-lint: allow(D001) but the next line is innocent\nfn f() {}\n",
        "W003",
    );
}

#[test]
fn trailing_waiver_covers_its_own_line() {
    assert_clean(
        SIM,
        "use std::time::Instant; // vce-lint: allow(D001) live-mode import\n",
    );
}

#[test]
fn doc_comments_quoting_the_marker_are_not_directives() {
    // Rendered docs may cite the syntax without being parsed as waivers.
    assert_clean(
        SIM,
        "/// Write `// vce-lint: allow(D001) reason` above the line.\nfn f() {}\n",
    );
}

#[test]
fn waiver_covers_multiple_rules_in_one_directive() {
    assert_clean(
        SIM,
        "// vce-lint: allow(D001,D004) live harness: threads + wall clock\n\
         fn f() { std::thread::spawn(|| { let _ = std::time::Instant::now(); }); }\n",
    );
}

// ---------------------------------------------------------- self-test

/// The shipped workspace must be clean: zero findings, every waiver used.
#[test]
fn shipped_workspace_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let report = vce_lint::lint_workspace(&root);
    assert!(
        report.findings.is_empty(),
        "workspace must lint clean:\n{:#?}",
        report.findings
    );
    assert!(report.files_scanned > 100, "walker saw the whole tree");
}
