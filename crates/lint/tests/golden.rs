//! Golden-file tests for every vce-lint rule: a known-bad snippet that must
//! fire (positive), a near-miss that must not (negative), and a waived copy
//! that must be suppressed — plus the waiver grammar's own failure modes and
//! a self-test that the shipped workspace is clean.

use vce_lint::{lint_source, Finding};

/// Path inside a determinism-scoped crate; engages D001–D004.
const SIM: &str = "crates/sim/src/fake.rs";
/// Path on the protocol-handler list; engages P001 as well.
const P001: &str = "crates/isis/src/member.rs";
/// Path outside every scoped crate; no rules apply.
const UNSCOPED: &str = "crates/viz/src/fake.rs";

fn rules_fired(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

fn assert_fires(path: &str, src: &str, rule: &str) {
    let findings = lint_source(path, src);
    assert!(
        rules_fired(&findings).contains(&rule),
        "expected {rule} on {path}, got {findings:?}"
    );
}

fn assert_clean(path: &str, src: &str) {
    let findings = lint_source(path, src);
    assert!(findings.is_empty(), "expected clean, got {findings:?}");
}

// ---------------------------------------------------------------- D001

#[test]
fn d001_flags_wall_clock_types() {
    assert_fires(SIM, "use std::time::Instant;\n", "D001");
    assert_fires(
        SIM,
        "fn f() { let t = std::time::SystemTime::now(); }\n",
        "D001",
    );
    assert_fires(SIM, "use std::time::{Duration, Instant};\n", "D001");
}

#[test]
fn d001_ignores_duration_and_unscoped_crates() {
    // Duration is a plain value type: fine everywhere.
    assert_clean(SIM, "use std::time::Duration;\n");
    // Wall-clock reads are fine outside the deterministic crates.
    assert_clean(UNSCOPED, "use std::time::Instant;\n");
}

#[test]
fn d001_waived_is_suppressed() {
    assert_clean(
        SIM,
        "// vce-lint: allow(D001) live harness is wall-clock by design\n\
         use std::time::Instant;\n",
    );
}

// ---------------------------------------------------------------- D002

#[test]
fn d002_flags_hash_map_iteration() {
    let src = "\
use std::collections::HashMap;
struct S { m: HashMap<u32, u32> }
impl S {
    fn f(&self) {
        for (k, v) in &self.m { drop((k, v)); }
    }
}
";
    assert_fires(SIM, src, "D002");
    // Method-call form on a local binding.
    let src = "\
use std::collections::HashMap;
fn f() {
    let m: HashMap<u32, u32> = HashMap::new();
    for k in m.keys() { drop(k); }
}
";
    assert_fires(SIM, src, "D002");
}

#[test]
fn d002_ignores_lookups_and_btree_iteration() {
    // Point lookups on a HashMap are order-free.
    let src = "\
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> Option<&u32> { m.get(&1) }
";
    assert_clean(SIM, src);
    // BTreeMap iteration is deterministic.
    let src = "\
use std::collections::BTreeMap;
fn f(m: &BTreeMap<u32, u32>) { for k in m.keys() { drop(k); } }
";
    assert_clean(SIM, src);
}

#[test]
fn d002_waived_is_suppressed() {
    let src = "\
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> u32 {
    // vce-lint: allow(D002) order-insensitive: summing is commutative
    m.values().sum()
}
";
    assert_clean(SIM, src);
}

// ---------------------------------------------------------------- D003

#[test]
fn d003_flags_ambient_randomness() {
    assert_fires(SIM, "fn f() { let r = rand::thread_rng(); }\n", "D003");
    assert_fires(SIM, "fn f() -> u64 { rand::random() }\n", "D003");
}

#[test]
fn d003_ignores_seeded_rng_names() {
    // Explicitly seeded generators are the sanctioned path.
    assert_clean(
        SIM,
        "fn f(seed: u64) { let rng = SmallRng::seed_from_u64(seed); }\n",
    );
}

#[test]
fn d003_waived_is_suppressed() {
    assert_clean(
        SIM,
        "// vce-lint: allow(D003) jitter for a non-replayed backoff path\n\
         fn f() -> u64 { rand::random() }\n",
    );
}

// ---------------------------------------------------------------- D004

#[test]
fn d004_flags_threads_and_mpsc() {
    assert_fires(SIM, "fn f() { std::thread::spawn(|| {}); }\n", "D004");
    assert_fires(SIM, "use std::sync::mpsc;\n", "D004");
}

#[test]
fn d004_allows_threads_in_bench_and_tests() {
    // The bench crate is off the deterministic list entirely.
    assert_clean(
        "crates/bench/src/lib.rs",
        "fn f() { std::thread::spawn(|| {}); }\n",
    );
    // #[cfg(test)] modules are exempt from every rule.
    let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() { std::thread::spawn(|| {}).join().unwrap(); }
}
";
    assert_clean(SIM, src);
}

#[test]
fn d004_waived_is_suppressed() {
    assert_clean(
        SIM,
        "// vce-lint: allow(D004) one OS thread per node in live mode\n\
         fn f() { std::thread::spawn(|| {}); }\n",
    );
}

/// The sharded window runner's exact shape: one trailing waiver on the
/// `use std::thread;` line covers the module's scoped-thread usage
/// (`thread::scope` / `scope.spawn` are not import sites, so the single
/// reasoned waiver is the only one the module needs).
#[test]
fn d004_sharded_runner_waiver_shape() {
    let waived = "\
use std::thread; // vce-lint: allow(D004) conservative barriers keep the run deterministic

fn run() {
    thread::scope(|scope| {
        scope.spawn(move || {});
    });
}
";
    assert_clean(SIM, waived);
    // The same module without the waiver must fire on the import line.
    let unwaived = "\
use std::thread;

fn run() {
    thread::scope(|scope| {
        scope.spawn(move || {});
    });
}
";
    assert_fires(SIM, unwaived, "D004");
}

// ---------------------------------------------------------------- D005

#[test]
fn d005_flags_heap_element_without_seq_field() {
    let src = "\
use std::collections::BinaryHeap;
struct Ev { at_us: u64 }
struct Q { heap: BinaryHeap<Ev> }
";
    assert_fires(SIM, src, "D005");
    // Wrapped in Reverse<..> is still the same element.
    let src = "\
use std::cmp::Reverse;
use std::collections::BinaryHeap;
struct Ev { at_us: u64 }
fn f() { let h: BinaryHeap<Reverse<Ev>> = BinaryHeap::new(); drop(h); }
";
    assert_fires(SIM, src, "D005");
    // Tuples / foreign element types cannot be verified: flagged too.
    assert_fires(
        SIM,
        "fn f() { let h: std::collections::BinaryHeap<(u64, u64)> = Default::default(); drop(h); }\n",
        "D005",
    );
}

#[test]
fn d005_accepts_seq_tie_break_and_unscoped_crates() {
    // The `(at_us, seq)` contract: element carries an insertion counter.
    let src = "\
use std::cmp::Reverse;
use std::collections::BinaryHeap;
struct Deadline { at_us: u64, seq: u64 }
struct Q { heap: BinaryHeap<Reverse<Deadline>> }
";
    assert_clean(SIM, src);
    // A `seq`-ish name (e.g. `push_seq`) also satisfies the contract.
    let src = "\
use std::collections::BinaryHeap;
struct Ev { at_us: u64, push_seq: u64 }
struct Q { heap: BinaryHeap<Ev> }
";
    assert_clean(SIM, src);
    // Outside the deterministic crates, heaps are unconstrained.
    assert_clean(
        "crates/bench/src/lib.rs",
        "struct Ev { at_us: u64 }\nstruct Q { h: std::collections::BinaryHeap<Ev> }\n",
    );
    // Bare mentions (imports, `new()` without a typed binding) say nothing
    // about the element and are not flagged.
    assert_clean(SIM, "use std::collections::BinaryHeap;\n");
}

#[test]
fn d005_waived_is_suppressed() {
    assert_clean(
        SIM,
        "struct Ev { at_us: u64 }\n\
         // vce-lint: allow(D005) ties impossible: at_us strictly monotone by construction\n\
         struct Q { heap: std::collections::BinaryHeap<Ev> }\n",
    );
}

// ---------------------------------------------------------------- P001

#[test]
fn p001_flags_panics_in_protocol_files() {
    assert_fires(P001, "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n", "P001");
    assert_fires(
        P001,
        "fn f(x: Option<u32>) -> u32 { x.expect(\"present\") }\n",
        "P001",
    );
    assert_fires(P001, "fn f(v: &[u32]) -> u32 { v[0] }\n", "P001");
}

#[test]
fn p001_scoped_to_listed_files_only() {
    // Same code in a deterministic — but non-protocol — file is fine.
    assert_clean(SIM, "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n");
}

#[test]
fn p001_ignores_non_indexing_brackets() {
    // Attribute/macro/type brackets are not indexing expressions.
    assert_clean(P001, "fn f() -> Vec<u32> { vec![1, 2, 3] }\n");
    assert_clean(P001, "fn f(v: &mut [u32]) -> usize { v.len() }\n");
}

#[test]
fn p001_waived_is_suppressed() {
    assert_clean(
        P001,
        "fn f(x: Option<u32>) -> u32 {\n\
         // vce-lint: allow(P001) x is produced two lines up, never remote\n\
         x.unwrap()\n\
         }\n",
    );
}

// ---------------------------------------------------------------- P005

#[test]
fn p005_flags_fresh_encoder_in_protocol_crates() {
    assert_fires(
        P001, // isis/member.rs — a P005-scoped crate too
        "fn send(host: &mut dyn Host) { let mut e = Encoder::new(); }\n",
        "P005",
    );
    assert_fires(
        "crates/exm/src/daemon.rs",
        "fn f() { let mut e = vce_codec::Encoder::new(); }\n",
        "P005",
    );
}

#[test]
fn p005_allows_sized_and_pooled_construction() {
    // Pre-sized, reused buffers are the sanctioned non-pooled form…
    assert_clean(P001, "fn f() { let mut e = Encoder::with_capacity(96); }\n");
    // …and the pooled path is the preferred one.
    assert_clean(
        P001,
        "fn f(host: &mut dyn Host) { let b = host.encode_with(&mut |e| m.encode(e)); }\n",
    );
    // Bare mentions without a call (imports, type positions) are fine.
    assert_clean(P001, "use vce_codec::Encoder;\n");
}

#[test]
fn p005_scoped_to_protocol_crates_only() {
    // The codec crate defines the encoder; the sim isn't a protocol crate.
    assert_clean(
        "crates/codec/src/lib.rs",
        "fn to_bytes() { let mut e = Encoder::new(); }\n",
    );
    assert_clean(SIM, "fn f() { let mut e = Encoder::new(); }\n");
}

#[test]
fn p005_test_modules_are_exempt() {
    assert_clean(
        P001,
        "#[cfg(test)]\n\
         mod tests {\n\
             fn roundtrip() { let mut e = Encoder::new(); }\n\
         }\n",
    );
}

#[test]
fn p005_waived_is_suppressed() {
    assert_clean(
        P001,
        "// vce-lint: allow(P005) once-per-join cold path, not message-rate\n\
         fn f() { let mut e = Encoder::new(); }\n",
    );
}

// ------------------------------------------------------- waiver grammar

/// ISSUE regression test: an `allow` with no reason is itself an error,
/// and the finding it tried to cover still fires.
#[test]
fn waiver_without_reason_is_an_error_and_suppresses_nothing() {
    let src = "// vce-lint: allow(D001)\nuse std::time::Instant;\n";
    let fired = lint_source(SIM, src);
    let rules = rules_fired(&fired);
    assert!(
        rules.contains(&"W001"),
        "reasonless waiver must be W001: {fired:?}"
    );
    assert!(
        rules.contains(&"D001"),
        "unwaived finding must survive: {fired:?}"
    );
}

#[test]
fn waiver_with_malformed_directive_is_w001() {
    assert_fires(
        SIM,
        "// vce-lint: alow(D001) typo in verb\nfn f() {}\n",
        "W001",
    );
    assert_fires(
        SIM,
        "// vce-lint: allow D001 missing parens\nfn f() {}\n",
        "W001",
    );
}

#[test]
fn waiver_naming_unknown_rule_is_w002() {
    assert_fires(
        SIM,
        "// vce-lint: allow(D999) no such rule\nfn f() {}\n",
        "W002",
    );
}

#[test]
fn waiver_covering_nothing_is_w003() {
    assert_fires(
        SIM,
        "// vce-lint: allow(D001) but the next line is innocent\nfn f() {}\n",
        "W003",
    );
}

#[test]
fn trailing_waiver_covers_its_own_line() {
    assert_clean(
        SIM,
        "use std::time::Instant; // vce-lint: allow(D001) live-mode import\n",
    );
}

#[test]
fn doc_comments_quoting_the_marker_are_not_directives() {
    // Rendered docs may cite the syntax without being parsed as waivers.
    assert_clean(
        SIM,
        "/// Write `// vce-lint: allow(D001) reason` above the line.\nfn f() {}\n",
    );
}

#[test]
fn waiver_covers_multiple_rules_in_one_directive() {
    assert_clean(
        SIM,
        "// vce-lint: allow(D001,D004) live harness: threads + wall clock\n\
         fn f() { std::thread::spawn(|| { let _ = std::time::Instant::now(); }); }\n",
    );
}

// ------------------------------------------------- cross-file helpers

/// Lint a synthetic multi-file workspace.
fn lint_multi(files: &[(&str, &str)]) -> Vec<Finding> {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    vce_lint::lint_files(&owned)
}

fn assert_fires_multi(files: &[(&str, &str)], rule: &str, in_file: &str) {
    let findings = lint_multi(files);
    assert!(
        findings.iter().any(|f| f.rule == rule && f.file == in_file),
        "expected {rule} in {in_file}, got {findings:?}"
    );
}

fn assert_clean_multi(files: &[(&str, &str)]) {
    let findings = lint_multi(files);
    assert!(findings.is_empty(), "expected clean, got {findings:?}");
}

// ------------------------------------------------- D002 (cross-file)

/// The PR-7 gap: a field declared `HashMap` in one file, iterated in
/// another. Single-file knowledge can't see the type; the workspace
/// registry can.
#[test]
fn d002_sees_hash_fields_across_files() {
    let decl = (
        "crates/sim/src/state.rs",
        "use std::collections::HashMap;\npub struct S { pub table: HashMap<u32, u32> }\n",
    );
    let for_loop = (
        "crates/sim/src/uses.rs",
        "pub fn f(s: &S) { for (k, v) in &s.table { drop((k, v)); } }\n",
    );
    assert_fires_multi(&[decl, for_loop], "D002", "crates/sim/src/uses.rs");
    let drain = (
        "crates/sim/src/uses.rs",
        "pub fn g(s: &mut S) { s.table.drain(); }\n",
    );
    assert_fires_multi(&[decl, drain], "D002", "crates/sim/src/uses.rs");
    let keys = (
        "crates/sim/src/uses.rs",
        "pub fn h(s: &S) -> usize { s.table.keys().count() }\n",
    );
    assert_fires_multi(&[decl, keys], "D002", "crates/sim/src/uses.rs");
}

#[test]
fn d002_cross_file_name_veto_and_lookups_stay_clean() {
    let decl = (
        "crates/sim/src/state.rs",
        "use std::collections::HashMap;\npub struct S { pub table: HashMap<u32, u32> }\n",
    );
    // The same field name declared with an ordered container anywhere in
    // the workspace makes the name ambiguous — no finding.
    let veto = (
        "crates/sim/src/other.rs",
        "pub struct T { pub table: Vec<u32> }\n",
    );
    let for_loop = (
        "crates/sim/src/uses.rs",
        "pub fn f(t: &T) { for v in &t.table { drop(v); } }\n",
    );
    assert_clean_multi(&[decl, veto, for_loop]);
    // Point lookups on a known hash field are fine; only iteration leaks
    // the hash order.
    let lookup = (
        "crates/sim/src/uses.rs",
        "pub fn f(s: &S) -> Option<&u32> { s.table.get(&1) }\n",
    );
    assert_clean_multi(&[decl, lookup]);
}

#[test]
fn d002_cross_file_waived_is_suppressed() {
    let decl = (
        "crates/sim/src/state.rs",
        "use std::collections::HashMap;\npub struct S { pub table: HashMap<u32, u32> }\n",
    );
    let waived = (
        "crates/sim/src/uses.rs",
        "// vce-lint: allow(D002) order-insensitive fold\n\
         pub fn f(s: &S) { for (k, v) in &s.table { drop((k, v)); } }\n",
    );
    assert_clean_multi(&[decl, waived]);
}

// ---------------------------------------------------------------- P002

/// A conformant single-tag registry: one const, one encode site, one
/// decode arm. The baseline every positive below perturbs.
const P002_OK: &str = "\
const T_PING: u8 = 1;
pub enum NodeMsg { Ping { n: u32 } }
pub fn enc(e: &mut Enc, m: &NodeMsg) {
    match m {
        NodeMsg::Ping { n } => { e.put_u8(T_PING); e.put_u32(*n); }
    }
}
pub fn dec(t: u8) {
    match t {
        T_PING => {}
        _ => {}
    }
}
";

#[test]
fn p002_conformant_registry_is_clean() {
    assert_clean(SIM, P002_OK);
}

#[test]
fn p002_flags_duplicate_tag_values() {
    let src = P002_OK.replace(
        "const T_PING: u8 = 1;",
        "const T_PING: u8 = 1;\nconst T_PONG: u8 = 1;\n// vce-lint: allow(P002) exercised below\nconst _X: u8 = 0;",
    );
    // T_PONG reuses value 1 (and is dead) — both findings are P002.
    let findings = lint_source(SIM, &src);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "P002" && f.msg.contains("reuses value")),
        "expected duplicate-value P002, got {findings:?}"
    );
}

#[test]
fn p002_flags_dead_tag_and_missing_decode_arm() {
    // Tag never encoded.
    let dead = P002_OK.replace("e.put_u8(T_PING); ", "");
    assert_fires(SIM, &dead, "P002");
    // Tag encoded but no decode arm.
    let undecoded = P002_OK.replace("        T_PING => {}\n", "");
    assert_fires(SIM, &undecoded, "P002");
}

#[test]
fn p002_flags_unhandled_wire_variant() {
    let proto = (
        "crates/isis/src/proto.rs",
        "\
const T_PING: u8 = 1;
pub enum IsisMsg { Ping { n: u32 } }
pub fn enc(e: &mut Enc, m: &IsisMsg) {
    match m {
        IsisMsg::Ping { n } => { e.put_u8(T_PING); e.put_u32(*n); }
    }
}
pub fn dec(t: u8) {
    match t {
        T_PING => {}
        _ => {}
    }
}
",
    );
    // Handler file present but no `IsisMsg::Ping` arm → uncovered variant.
    let deaf = ("crates/isis/src/member.rs", "pub fn on_msg() {}\n");
    assert_fires_multi(&[proto, deaf], "P002", "crates/isis/src/proto.rs");
    // Arm present → clean.
    let handles = (
        "crates/isis/src/member.rs",
        "pub fn on_msg(m: IsisMsg) {\n    match m {\n        IsisMsg::Ping { n } => drop(n),\n    }\n}\n",
    );
    assert_clean_multi(&[proto, handles]);
    // Handler file absent from the scan set → coverage not judged.
    assert_clean_multi(&[proto]);
}

#[test]
fn p002_flags_double_multiplex_route() {
    let src = "\
const T_ISIS: u8 = 9;
pub enum ExmMsg { Isis(IsisMsg), AlsoIsis(IsisMsg) }
pub fn enc(e: &mut Enc, m: &ExmMsg) {
    match m {
        ExmMsg::Isis(inner) => { e.put_u8(T_ISIS); drop(inner); }
        ExmMsg::AlsoIsis(inner) => drop(inner),
    }
}
pub fn dec(t: u8) {
    match t {
        T_ISIS => {}
        _ => {}
    }
}
";
    assert_fires_multi(
        &[("crates/exm/src/msg.rs", src)],
        "P002",
        "crates/exm/src/msg.rs",
    );
}

#[test]
fn p002_waived_is_suppressed() {
    let dead = P002_OK.replace(
        "const T_PING: u8 = 1;",
        "// vce-lint: allow(P002) tag reserved for the next protocol rev\nconst T_PING: u8 = 1;",
    )
    .replace("e.put_u8(T_PING); ", "");
    assert_clean(SIM, &dead);
}

// ---------------------------------------------------------------- P003

#[test]
fn p003_flags_overlapping_base_spaces() {
    // The daemon bug class this rule was built for: bases 2^20 apart with
    // a u32 payload.
    let src = "const TOKEN_A_BASE: u64 = 1 << 20;\nconst TOKEN_B_BASE: u64 = 2 << 20;\n";
    assert_fires(SIM, src, "P003");
}

#[test]
fn p003_accepts_tagged_encoding_and_well_known_points() {
    // tag<<32 spaces are disjoint by construction.
    let src = "\
const TOKEN_TAG_SHIFT: u32 = 32;
const TAG_A: u64 = 1;
const TAG_B: u64 = 2;
";
    assert_clean(SIM, src);
    // A point aliasing its own space's base is the idiomatic named head
    // (`TOKEN_PROBE = TAG_PROBE << SHIFT` in the executor).
    let src = "const TOKEN_X_BASE: u64 = 1 << 32;\nconst TOKEN_X_HEAD: u64 = 1 << 32;\n";
    assert_clean(SIM, src);
}

#[test]
fn p003_flags_point_inside_own_open_space() {
    // `BASE + k` claims the same token as payload id k: the sweep timer
    // here collides with whatever request gets seq 5.
    let src = "const TOKEN_X_BASE: u64 = 1 << 32;\nconst TOKEN_X_SWEEP: u64 = (1 << 32) + 5;\n";
    assert_fires(SIM, src, "P003");
}

#[test]
fn p003_accepts_the_isis_detector_layout() {
    // The member.rs shape: well-known singles (tick, quarantine sweep)
    // below the open collect space, which starts past the reserved head —
    // with the base resolved cross-file through the const evaluator.
    let lib = (
        "crates/isis/src/lib.rs",
        "pub const ISIS_TOKEN_BASE: u64 = 1 << 48;\n",
    );
    let member = (
        "crates/isis/src/member.rs",
        "const TOKEN_TICK: u64 = ISIS_TOKEN_BASE;\n\
         const TOKEN_QUARANTINE_SWEEP: u64 = ISIS_TOKEN_BASE + 1;\n\
         const TOKEN_COLLECT_BASE: u64 = ISIS_TOKEN_BASE + 16;\n",
    );
    assert_clean_multi(&[lib, member]);
    // Lowering the collect base under the sweep token must fire: collect
    // seq 1 would arm the quarantine sweep's token.
    let bad_member = (
        "crates/isis/src/member.rs",
        "const TOKEN_TICK: u64 = ISIS_TOKEN_BASE;\n\
         const TOKEN_QUARANTINE_SWEEP: u64 = ISIS_TOKEN_BASE + 1;\n\
         const TOKEN_COLLECT_BASE: u64 = ISIS_TOKEN_BASE;\n",
    );
    assert_fires_multi(&[lib, bad_member], "P003", "crates/isis/src/member.rs");
}

#[test]
fn p003_flags_cross_namespace_collision() {
    // daemon.rs and member.rs arrive at the same endpoint's on_timer.
    let daemon = (
        "crates/exm/src/daemon.rs",
        "const TOKEN_A_BASE: u64 = 1 << 20;\n",
    );
    let member = (
        "crates/isis/src/member.rs",
        "const TOKEN_COLLIDE: u64 = (1 << 20) + 7;\n",
    );
    let findings = lint_multi(&[daemon, member]);
    assert!(
        findings.iter().any(|f| f.rule == "P003"),
        "expected cross-namespace P003, got {findings:?}"
    );
    // Same pair of tokens in files that do NOT share an endpoint → clean.
    let a = (
        "crates/sim/src/a.rs",
        "const TOKEN_A_BASE: u64 = 1 << 20;\n",
    );
    let b = (
        "crates/sim/src/b.rs",
        "const TOKEN_B: u64 = (1 << 20) + 7;\n",
    );
    assert_clean_multi(&[a, b]);
}

#[test]
fn p003_waived_is_suppressed() {
    let src = "\
const TOKEN_A_BASE: u64 = 1 << 20;
// vce-lint: allow(P003) payload proven < 2^20 by the caller
const TOKEN_B_BASE: u64 = 2 << 20;
";
    assert_clean(SIM, src);
}

// ---------------------------------------------------------------- P004

const P004_WAL_OK: &str = "\
pub enum WalRecord { Loaded { n: u32 }, Gone { n: u32 } }
impl DaemonWal {
    pub fn recover(&mut self) {
        match r {
            WalRecord::Loaded { n } => drop(n),
            WalRecord::Gone { n } => drop(n),
        }
    }
}
";

#[test]
fn p004_journal_and_replay_in_balance_is_clean() {
    let wal = ("crates/exm/src/wal.rs", P004_WAL_OK);
    let daemon = (
        "crates/exm/src/daemon.rs",
        "pub fn j() { journal(&WalRecord::Loaded { n: 1 }); journal(&WalRecord::Gone { n: 2 }); }\n",
    );
    assert_clean_multi(&[wal, daemon]);
}

#[test]
fn p004_flags_journaled_but_never_replayed() {
    let wal = (
        "crates/exm/src/wal.rs",
        &*P004_WAL_OK.replace("            WalRecord::Gone { n } => drop(n),\n", ""),
    );
    let daemon = (
        "crates/exm/src/daemon.rs",
        "pub fn j() { journal(&WalRecord::Loaded { n: 1 }); journal(&WalRecord::Gone { n: 2 }); }\n",
    );
    assert_fires_multi(&[wal, daemon], "P004", "crates/exm/src/daemon.rs");
}

#[test]
fn p004_flags_replayed_but_never_journaled() {
    let wal = ("crates/exm/src/wal.rs", P004_WAL_OK);
    let daemon = (
        "crates/exm/src/daemon.rs",
        "pub fn j() { journal(&WalRecord::Loaded { n: 1 }); }\n",
    );
    assert_fires_multi(&[wal, daemon], "P004", "crates/exm/src/wal.rs");
}

#[test]
fn p004_waived_is_suppressed() {
    let wal = ("crates/exm/src/wal.rs", P004_WAL_OK);
    let daemon = (
        "crates/exm/src/daemon.rs",
        "// vce-lint: allow(P004) replay lands next PR with the schema bump\n\
         pub fn j() { journal(&WalRecord::Loaded { n: 1 }); journal(&WalRecord::Gone { n: 2 }); }\n",
    );
    let wal_short = (
        "crates/exm/src/wal.rs",
        &*P004_WAL_OK.replace("            WalRecord::Gone { n } => drop(n),\n", ""),
    );
    let _ = wal;
    assert_clean_multi(&[wal_short, daemon]);
}

/// Same-file journal mode (`include_same_file`): the `.vct` trace format
/// keeps writer and reader in one file, so constructor sites *outside*
/// the decode fn's span count as journal sites.
const P004_RECORD_OK: &str = "\
pub enum FrameKind { Header, Events, Snapshot, End }
impl TraceWriter {
    fn write_frame(&mut self) {
        emit(FrameKind::Header);
        emit(FrameKind::Events);
        emit(FrameKind::Snapshot);
        emit(FrameKind::End);
    }
}
fn decode_frame(kind: FrameKind) {
    match kind {
        FrameKind::Header => h(),
        FrameKind::Events => e(),
        FrameKind::Snapshot => s(),
        FrameKind::End => z(),
    }
}
";

#[test]
fn p004_same_file_writer_and_reader_in_balance_is_clean() {
    assert_clean_multi(&[("crates/sim/src/record.rs", P004_RECORD_OK)]);
}

#[test]
fn p004_same_file_flags_frame_written_but_never_decoded() {
    let src = P004_RECORD_OK.replace("        FrameKind::Snapshot => s(),\n", "");
    assert_fires_multi(
        &[("crates/sim/src/record.rs", &src)],
        "P004",
        "crates/sim/src/record.rs",
    );
}

#[test]
fn p004_same_file_flags_frame_decoded_but_never_written() {
    let src = P004_RECORD_OK.replace("        emit(FrameKind::End);\n", "");
    assert_fires_multi(
        &[("crates/sim/src/record.rs", &src)],
        "P004",
        "crates/sim/src/record.rs",
    );
}

#[test]
fn p004_same_file_arms_inside_decode_fn_are_not_journal_sites() {
    // Only the decode fn mentions the variants — every one should be
    // flagged as a dead record, not satisfied by its own match arms.
    let src = "\
pub enum FrameKind { Header, End }
fn decode_frame(kind: FrameKind) {
    match kind {
        FrameKind::Header => h(),
        FrameKind::End => z(),
    }
}
";
    assert_fires_multi(
        &[("crates/sim/src/record.rs", src)],
        "P004",
        "crates/sim/src/record.rs",
    );
}

// ---------------------------------------------------------------- D006

const D006_TAINTED_HELPER: (&str, &str) = (
    "crates/bench/src/util.rs",
    "pub fn stamp() -> u64 { let t = std::time::Instant::now(); drop(t); 0 }\n",
);

#[test]
fn d006_flags_cross_file_call_into_tainted_helper() {
    let caller = (
        "crates/sim/src/fake.rs",
        "pub fn caller() -> u64 { stamp() }\n",
    );
    assert_fires_multi(
        &[D006_TAINTED_HELPER, caller],
        "D006",
        "crates/sim/src/fake.rs",
    );
    // Transitively, through a clean middle function in a third file.
    let middle = (
        "crates/bench/src/mid.rs",
        "pub fn relay() -> u64 { stamp() }\n",
    );
    let caller2 = (
        "crates/sim/src/fake.rs",
        "pub fn caller() -> u64 { relay() }\n",
    );
    assert_fires_multi(
        &[D006_TAINTED_HELPER, middle, caller2],
        "D006",
        "crates/sim/src/fake.rs",
    );
}

#[test]
fn d006_method_and_type_qualified_calls_never_resolve() {
    // `x.stamp()` dispatches on a receiver type the lexer can't see —
    // flagging it on a name match would damn every `scope.spawn`.
    let method = (
        "crates/sim/src/fake.rs",
        "pub fn caller(x: &Clock) -> u64 { x.stamp() }\n",
    );
    assert_clean_multi(&[D006_TAINTED_HELPER, method]);
    let type_qualified = (
        "crates/sim/src/fake.rs",
        "pub fn caller() -> u64 { Clock::stamp() }\n",
    );
    assert_clean_multi(&[D006_TAINTED_HELPER, type_qualified]);
}

#[test]
fn d006_mixed_definition_sets_stay_silent() {
    // A second, clean definition of the same name makes bare-name
    // resolution ambiguous — no finding.
    let clean_twin = ("crates/sim/src/other.rs", "pub fn stamp() -> u64 { 0 }\n");
    let caller = (
        "crates/sim/src/fake.rs",
        "pub fn caller() -> u64 { stamp() }\n",
    );
    assert_clean_multi(&[D006_TAINTED_HELPER, clean_twin, caller]);
}

#[test]
fn d006_module_qualified_call_resolves_to_that_module() {
    // `util::stamp()` pins the callee to util.rs despite the clean twin.
    let clean_twin = ("crates/sim/src/other.rs", "pub fn stamp() -> u64 { 0 }\n");
    let caller = (
        "crates/sim/src/fake.rs",
        "pub fn caller() -> u64 { util::stamp() }\n",
    );
    assert_fires_multi(
        &[D006_TAINTED_HELPER, clean_twin, caller],
        "D006",
        "crates/sim/src/fake.rs",
    );
}

#[test]
fn d006_waived_is_suppressed() {
    let caller = (
        "crates/sim/src/fake.rs",
        "// vce-lint: allow(D006) diagnostics-only path, output not diffed\n\
         pub fn caller() -> u64 { stamp() }\n",
    );
    assert_clean_multi(&[D006_TAINTED_HELPER, caller]);
}

// ---------------------------------------------------------------- S001

#[test]
fn s001_flags_shared_mutable_statics() {
    assert_fires(SIM, "static mut COUNTER: u64 = 0;\n", "S001");
    assert_fires(
        SIM,
        "thread_local! { static SCRATCH: RefCell<Vec<u8>> = RefCell::new(Vec::new()); }\n",
        "S001",
    );
    assert_fires(SIM, "static N: AtomicU64 = AtomicU64::new(0);\n", "S001");
    assert_fires(
        SIM,
        "static Q: Mutex<Vec<u8>> = Mutex::new(Vec::new());\n",
        "S001",
    );
}

#[test]
fn s001_accepts_immutable_statics_and_unscoped_crates() {
    assert_clean(
        SIM,
        "static NAME: &str = \"vce\";\nstatic LIMIT: u64 = 8;\n",
    );
    assert_clean(UNSCOPED, "static mut COUNTER: u64 = 0;\n");
}

#[test]
fn s001_waived_is_suppressed() {
    assert_clean(
        SIM,
        "// vce-lint: allow(S001) write-once before any shard starts\n\
         static N: AtomicU64 = AtomicU64::new(0);\n",
    );
}

// ---------------------------------------------------------------- S002

#[test]
fn s002_flags_sync_primitives_outside_rendezvous_module() {
    assert_fires(SIM, "use std::sync::Mutex;\n", "S002");
    assert_fires(
        SIM,
        "use std::sync::atomic::{AtomicU64, Ordering};\n",
        "S002",
    );
    assert_fires(
        SIM,
        "pub fn f() { let m = std::sync::RwLock::new(0u32); drop(m); }\n",
        "S002",
    );
}

#[test]
fn s002_allows_arc_and_the_rendezvous_module_imports() {
    // Arc is sharing, not synchronization; mpsc is D004's finding.
    assert_clean(SIM, "use std::sync::Arc;\n");
    // The sanctioned rendezvous module may import sync primitives freely…
    assert_clean(
        "crates/sim/src/sharded.rs",
        "use std::sync::{Barrier, Mutex};\nuse std::sync::atomic::{AtomicU64, Ordering};\n",
    );
    assert_clean(UNSCOPED, "use std::sync::Mutex;\n");
}

#[test]
fn s002_rendezvous_module_rejects_relaxed_and_try_lock() {
    // …but inside it, the window protocol's failure modes are flagged:
    // Relaxed breaks the publish/acquire pairing, try_lock drops mail.
    assert_fires(
        "crates/sim/src/sharded.rs",
        "pub fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) }\n",
        "S002",
    );
    assert_fires(
        "crates/sim/src/sharded.rs",
        "pub fn f(m: &Mutex<u32>) { if let Ok(g) = m.try_lock() { drop(g); } }\n",
        "S002",
    );
}

#[test]
fn s002_waived_is_suppressed() {
    assert_clean(
        SIM,
        "// vce-lint: allow(S002) counters merged after the run, order-free\n\
         use std::sync::atomic::{AtomicU64, Ordering};\n",
    );
}

// ---------------------------------------------------------- self-test

/// The shipped workspace must be clean: zero findings, every waiver used.
#[test]
fn shipped_workspace_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let report = vce_lint::lint_workspace(&root);
    assert!(
        report.findings.is_empty(),
        "workspace must lint clean:\n{:#?}",
        report.findings
    );
    assert!(report.files_scanned > 100, "walker saw the whole tree");
}
