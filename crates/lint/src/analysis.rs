//! Phase 2 of the workspace analysis: cross-file rules over the phase-1
//! registries.
//!
//! | rule | checks |
//! |------|--------|
//! | P002 | wire-tag conformance: unique values, one encode site and one decode arm per tag, a handler arm per bound variant, single-route multiplexing |
//! | P003 | timer-token collision freedom within and across endpoint namespaces |
//! | P004 | WAL write/replay coverage: journaled ⇔ replayed |
//! | D006 | interprocedural determinism taint at cross-file call sites |
//!
//! All findings anchor at a line in some scanned file, so the inline
//! waiver policy (W001–W003) applies to them exactly as to per-line rules.

use crate::registry::{ConstEnv, FileFacts};
use crate::rules::{crate_of, Finding, DETERMINISTIC_CRATES};

/// Const-name prefixes that define a wire-tag registry in their file.
const TAG_PREFIXES: &[&str] = &["T_", "R_"];

/// Enums whose wire-bound variants must each have a pattern arm in one of
/// the listed handler files. Checked only when at least one handler file
/// is in the scan set, so partial scans (single-file mode, golden tests)
/// stay meaningful.
const P002_HANDLERS: &[(&str, &[&str])] = &[
    ("IsisMsg", &["crates/isis/src/member.rs"]),
    (
        "ExmMsg",
        &["crates/exm/src/daemon.rs", "crates/exm/src/executor.rs"],
    ),
    (
        "BaselineMsg",
        &[
            "crates/baselines/src/agent.rs",
            "crates/baselines/src/sched.rs",
        ],
    ),
];

/// (parent file, parent enum, multiplex tag, child enum): the child
/// protocol rides inside exactly one variant of the parent, so the two tag
/// spaces stay disjoint by framing. A second embedding variant would break
/// that.
const P002_MULTIPLEX: &[(&str, &str, &str, &str)] =
    &[("crates/exm/src/msg.rs", "ExmMsg", "T_ISIS", "IsisMsg")];

/// Files sharing one endpoint timer namespace: the daemon endpoint embeds
/// its Isis `GroupMember` (one `on_timer` dispatches both via
/// `is_isis_token`), and the executor endpoint defends against the Isis
/// base the same way.
const P003_NAMESPACES: &[&[&str]] = &[
    &["crates/exm/src/daemon.rs", "crates/isis/src/member.rs"],
    &["crates/exm/src/executor.rs", "crates/isis/src/member.rs"],
];

/// Payload width assumed for open token spaces (`*_BASE + id`,
/// `tag << SHIFT | id`): ids are u32 throughout the workspace, so a base
/// owns `[base, base + 2^32)`. A scheme whose bases sit closer than that
/// lets a large id bleed into the neighbouring space — the PR-3 executor
/// bug class.
const SPAN: u64 = 1 << 32;

/// (journal file, record enum, replay fn, include_same_file): every record
/// variant constructed outside the journal file must have a pattern arm
/// inside the replay fn. With `include_same_file` set, constructor sites in
/// the journal file itself (outside the replay fn) also count as journal
/// sites — for formats whose writer lives next to the reader, like the
/// `.vct` frame kinds in `vce_sim::record`.
const P004_JOURNALS: &[(&str, &str, &str, bool)] = &[
    ("crates/exm/src/wal.rs", "WalRecord", "recover", false),
    (
        "crates/sim/src/record.rs",
        "FrameKind",
        "decode_frame",
        true,
    ),
];

pub fn check_cross(files: &[(String, FileFacts)], findings: &mut Vec<Finding>) {
    let env_facts: Vec<FileFacts> = files.iter().map(|(_, f)| f.clone()).collect();
    let env = ConstEnv::new(&env_facts);
    check_p002(files, &env, findings);
    check_p003(files, &env, findings);
    check_p004(files, findings);
    check_d006(files, findings);
}

fn det(file: &str) -> bool {
    crate_of(file).is_some_and(|c| DETERMINISTIC_CRATES.contains(&c))
}

fn push(findings: &mut Vec<Finding>, file: &str, line: u32, rule: &'static str, msg: String) {
    findings.push(Finding {
        file: file.into(),
        line,
        rule,
        msg,
        hint: crate::rules::hint_of(rule),
    });
}

// ---------------------------------------------------------------- P002 --

fn check_p002(files: &[(String, FileFacts)], env: &ConstEnv, findings: &mut Vec<Finding>) {
    for (fi, (file, facts)) in files.iter().enumerate() {
        if !det(file) {
            continue;
        }
        for prefix in TAG_PREFIXES {
            let tags: Vec<_> = facts
                .consts
                .iter()
                .filter(|c| c.name.starts_with(prefix) && c.ty.as_deref() == Some("u8"))
                .collect();
            if tags.is_empty() {
                continue;
            }
            // Unique values within the registry.
            let mut seen: Vec<(u64, &str, u32)> = Vec::new();
            for c in &tags {
                if let Some(v) = env.eval(fi, c) {
                    if let Some((_, first, _)) = seen.iter().find(|(sv, _, _)| *sv == v) {
                        push(
                            findings,
                            file,
                            c.line,
                            "P002",
                            format!(
                                "wire tag `{}` reuses value {v} already taken by `{first}`",
                                c.name
                            ),
                        );
                    } else {
                        seen.push((v, &c.name, c.line));
                    }
                }
            }
            // Exactly one encode site and one decode arm per tag.
            for c in &tags {
                let encodes = facts.put_tags.iter().filter(|(n, _)| *n == c.name).count();
                let decodes = facts.tag_arms.iter().filter(|(n, _)| *n == c.name).count();
                if encodes == 0 {
                    push(
                        findings,
                        file,
                        c.line,
                        "P002",
                        format!("wire tag `{}` is never encoded (dead tag)", c.name),
                    );
                } else if encodes > 1 {
                    push(
                        findings,
                        file,
                        c.line,
                        "P002",
                        format!("wire tag `{}` is encoded at {encodes} sites", c.name),
                    );
                }
                if decodes == 0 {
                    push(
                        findings,
                        file,
                        c.line,
                        "P002",
                        format!("wire tag `{}` has no decode arm", c.name),
                    );
                } else if decodes > 1 {
                    push(
                        findings,
                        file,
                        c.line,
                        "P002",
                        format!("wire tag `{}` has {decodes} decode arms", c.name),
                    );
                }
            }
        }
        // Handler coverage: every wire-bound variant of a configured enum
        // must be matched (or explicitly wildcard-ignored) in a handler.
        for (enum_name, handler_files) in P002_HANDLERS {
            let Some(edef) = facts.enums.iter().find(|e| e.name == *enum_name) else {
                continue;
            };
            let present: Vec<&str> = handler_files
                .iter()
                .copied()
                .filter(|h| files.iter().any(|(f, _)| f == h))
                .collect();
            if present.is_empty() {
                continue;
            }
            for v in &edef.variants {
                let qualified = format!("{enum_name}::{}", v.name);
                let bound = facts.tag_bindings.iter().any(|(_, var)| *var == qualified);
                if !bound {
                    continue; // not a wire variant of this registry
                }
                let handled = files
                    .iter()
                    .filter(|(f, _)| present.contains(&f.as_str()))
                    .any(|(_, hf)| {
                        hf.variant_arms
                            .iter()
                            .any(|(en, var, _)| en == enum_name && var == &v.name)
                    });
                if !handled {
                    push(
                        findings,
                        file,
                        v.line,
                        "P002",
                        format!(
                            "wire variant `{qualified}` has no handler match arm in {}",
                            present.join(" or ")
                        ),
                    );
                }
            }
        }
        // Multiplex route uniqueness.
        for (pfile, penum, tag, cenum) in P002_MULTIPLEX {
            if file != pfile {
                continue;
            }
            let Some(edef) = facts.enums.iter().find(|e| e.name == *penum) else {
                continue;
            };
            let embedding: Vec<_> = edef
                .variants
                .iter()
                .filter(|v| v.payload_idents.iter().any(|t| t == cenum))
                .collect();
            if embedding.len() > 1 {
                for v in &embedding[1..] {
                    push(
                        findings,
                        file,
                        v.line,
                        "P002",
                        format!(
                            "`{penum}` multiplexes `{cenum}` through more than one variant \
                             (`{}` besides `{}`): the `{tag}` framing no longer keeps the \
                             tag spaces disjoint",
                            v.name, embedding[0].name
                        ),
                    );
                }
            }
            if !facts.consts.iter().any(|c| c.name == *tag) {
                push(
                    findings,
                    file,
                    edef.line,
                    "P002",
                    format!("multiplex tag `{tag}` for `{cenum}`-in-`{penum}` not found"),
                );
            }
        }
    }
}

// ---------------------------------------------------------------- P003 --

/// A token either names one instant (point) or owns a half-open range.
#[derive(Debug, Clone)]
struct TokenSpace {
    name: String,
    line: u32,
    lo: u64,
    /// Exclusive; `lo + 1` for point tokens.
    hi: u64,
    point: bool,
}

/// Extract the timer-token model of one file: `TOKEN_*` consts are points
/// (or `[v, v+2^32)` spaces when named `*_BASE`), and `TAG_*` consts
/// combined with the file's `*TAG_SHIFT` const own `[tag<<s, (tag+1)<<s)`.
fn token_spaces(fi: usize, facts: &FileFacts, env: &ConstEnv) -> Vec<TokenSpace> {
    let mut out = Vec::new();
    let shift = facts
        .consts
        .iter()
        .find(|c| c.name.ends_with("TAG_SHIFT"))
        .and_then(|c| env.eval(fi, c));
    for c in &facts.consts {
        let is_token = c.name.starts_with("TOKEN_") || c.name.contains("_TOKEN_");
        let is_tag = c.name.starts_with("TAG_");
        if !is_token && !is_tag {
            continue;
        }
        let Some(v) = env.eval(fi, c) else { continue };
        if is_tag {
            let Some(s) = shift else { continue };
            let Some(lo) = v.checked_shl(s as u32) else {
                continue;
            };
            let hi = (v + 1).checked_shl(s as u32).unwrap_or(u64::MAX);
            out.push(TokenSpace {
                name: c.name.clone(),
                line: c.line,
                lo,
                hi,
                point: false,
            });
        } else if c.name.ends_with("_BASE") {
            out.push(TokenSpace {
                name: c.name.clone(),
                line: c.line,
                lo: v,
                hi: v.saturating_add(SPAN),
                point: false,
            });
        } else {
            out.push(TokenSpace {
                name: c.name.clone(),
                line: c.line,
                lo: v,
                hi: v + 1,
                point: true,
            });
        }
    }
    out
}

fn check_p003(files: &[(String, FileFacts)], env: &ConstEnv, findings: &mut Vec<Finding>) {
    let spaces: Vec<Vec<TokenSpace>> = files
        .iter()
        .enumerate()
        .map(|(fi, (file, facts))| {
            if det(file) {
                token_spaces(fi, facts, env)
            } else {
                Vec::new()
            }
        })
        .collect();

    // Intra-file: two open spaces in one endpoint file must not overlap,
    // and a well-known point token must not sit *inside* an own-file open
    // space — `BASE + k` claims the same token as payload id k. A point
    // equal to the space's base is the idiomatic alias
    // (`TOKEN_PROBE = TAG_PROBE << SHIFT`) and stays legal; the isis
    // layout shows the safe shape for the rest: singles live below the
    // open space's base (`TOKEN_QUARANTINE_SWEEP = BASE + 1`, collect
    // space starting at `BASE + 16`).
    for (fi, (file, _)) in files.iter().enumerate() {
        let sp = &spaces[fi];
        for a in 0..sp.len() {
            for b in a + 1..sp.len() {
                let (x, y) = (&sp[a], &sp[b]);
                if x.point != y.point {
                    let (p, s) = if x.point { (x, y) } else { (y, x) };
                    if p.lo > s.lo && p.lo < s.hi {
                        push(
                            findings,
                            file,
                            p.line,
                            "P003",
                            format!(
                                "well-known timer token `{}` ({:#x}) sits inside the open \
                                 space `{}` [{:#x}, {:#x}): payload id {} arms the same \
                                 token — move the point below the base or raise the base \
                                 past the well-known block",
                                p.name,
                                p.lo,
                                s.name,
                                s.lo,
                                s.hi,
                                p.lo - s.lo
                            ),
                        );
                    }
                    continue;
                }
                if x.point {
                    continue;
                }
                if x.lo < y.hi && y.lo < x.hi {
                    push(
                        findings,
                        file,
                        x.line.max(y.line),
                        "P003",
                        format!(
                            "timer-token space `{}` [{:#x}, {:#x}) overlaps `{}` \
                             [{:#x}, {:#x}): an id ≥ the base gap bleeds into the \
                             neighbouring token range",
                            y.name, y.lo, y.hi, x.name, x.lo, x.hi
                        ),
                    );
                }
            }
        }
    }

    // Cross-file within each configured namespace.
    for ns in P003_NAMESPACES {
        let members: Vec<usize> = files
            .iter()
            .enumerate()
            .filter(|(_, (f, _))| ns.contains(&f.as_str()))
            .map(|(i, _)| i)
            .collect();
        for (ai, &a) in members.iter().enumerate() {
            for &b in &members[ai + 1..] {
                for x in &spaces[a] {
                    for y in &spaces[b] {
                        if x.lo < y.hi && y.lo < x.hi {
                            let (file, line) = (&files[b].0, y.line);
                            push(
                                findings,
                                file,
                                line,
                                "P003",
                                format!(
                                    "timer token `{}` [{:#x}, {:#x}) collides with `{}` \
                                     [{:#x}, {:#x}) from {} — both arrive at the same \
                                     endpoint's on_timer",
                                    y.name, y.lo, y.hi, x.name, x.lo, x.hi, files[a].0
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------- P004 --

fn check_p004(files: &[(String, FileFacts)], findings: &mut Vec<Finding>) {
    for &journal in P004_JOURNALS {
        check_p004_one(files, journal, findings);
    }
}

fn check_p004_one(
    files: &[(String, FileFacts)],
    (wal_file, record_enum, replay_fn, include_same_file): (&str, &str, &str, bool),
    findings: &mut Vec<Finding>,
) {
    let Some((_, wal)) = files.iter().find(|(f, _)| f == wal_file) else {
        return;
    };
    let Some(edef) = wal.enums.iter().find(|e| e.name == record_enum) else {
        return;
    };
    let Some(rf) = wal.fns.iter().find(|f| f.name == replay_fn) else {
        push(
            findings,
            wal_file,
            edef.line,
            "P004",
            format!("record enum `{record_enum}` has no `{replay_fn}()` in {wal_file}"),
        );
        return;
    };
    for v in &edef.variants {
        let journal_site = files
            .iter()
            .flat_map(|(f, facts)| {
                facts
                    .variant_ctors
                    .iter()
                    .filter(move |(en, var, line)| {
                        en == record_enum
                            && var == &v.name
                            && if f == wal_file {
                                // Sites in the journal file count only for
                                // co-located writer/reader formats, and the
                                // replay fn's own body never does.
                                include_same_file && !(*line >= rf.line && *line <= rf.end_line)
                            } else {
                                true
                            }
                    })
                    .map(move |(_, _, line)| (f.as_str(), *line))
            })
            .next();
        let replayed = wal.variant_arms.iter().any(|(en, var, line)| {
            en == record_enum && var == &v.name && *line >= rf.line && *line <= rf.end_line
        });
        match (journal_site, replayed) {
            (Some((jf, jl)), false) => push(
                findings,
                jf,
                jl,
                "P004",
                format!(
                    "`{record_enum}::{}` is journaled here but `{replay_fn}()` never \
                     replays it — state written to the WAL silently vanishes on recovery",
                    v.name
                ),
            ),
            (None, true) => {
                let line = wal
                    .variant_arms
                    .iter()
                    .find(|(en, var, _)| en == record_enum && var == &v.name)
                    .map(|(_, _, l)| *l)
                    .unwrap_or(v.line);
                push(
                    findings,
                    wal_file,
                    line,
                    "P004",
                    format!(
                        "`{record_enum}::{}` is replayed but never journaled (dead record)",
                        v.name
                    ),
                );
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------- D006 --

fn check_d006(files: &[(String, FileFacts)], findings: &mut Vec<Finding>) {
    use std::collections::BTreeMap;
    // fn name → [(file idx, fn idx)].
    let mut defs: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for (fi, (_, facts)) in files.iter().enumerate() {
        for (ni, f) in facts.fns.iter().enumerate() {
            defs.entry(f.name.as_str()).or_default().push((fi, ni));
        }
    }
    // File stems ("crates/sim/src/sharded.rs" → "sharded") let a
    // module-qualified call `sharded::run(..)` resolve to that module's
    // definitions only.
    let stems: Vec<&str> = files
        .iter()
        .map(|(f, _)| {
            f.rsplit('/')
                .next()
                .and_then(|b| b.strip_suffix(".rs"))
                .unwrap_or("")
        })
        .collect();
    // Name-based resolution is honest only for calls whose target set we
    // can actually bound: bare `f(..)` (any same-named fn) and
    // module-qualified `m::f(..)` (same-named fns in files named `m`).
    // Method calls `x.f(..)` and type-qualified `T::f(..)` dispatch on a
    // receiver type a token-level analysis can't see — `scope.spawn` is
    // std's, not ours — so they never resolve.
    let resolve = |c: &crate::registry::CallSite| -> Option<Vec<(usize, usize)>> {
        if c.method {
            return None;
        }
        let ds = defs.get(c.name.as_str())?;
        match &c.qualifier {
            None => Some(ds.clone()),
            Some(q) if q.chars().next().is_some_and(char::is_uppercase) => None,
            Some(q) => {
                let scoped: Vec<_> = ds
                    .iter()
                    .copied()
                    .filter(|(dfi, _)| stems[*dfi] == q.as_str())
                    .collect();
                (!scoped.is_empty()).then_some(scoped)
            }
        }
    };
    // Taint fixpoint: why[(fi, ni)] = human-readable chain to the source.
    let mut why: BTreeMap<(usize, usize), String> = BTreeMap::new();
    for (fi, (file, facts)) in files.iter().enumerate() {
        for (ni, f) in facts.fns.iter().enumerate() {
            if let Some(t) = &f.direct_taint {
                why.insert((fi, ni), format!("{t} ({file}:{})", f.line));
            }
        }
    }
    // A call propagates taint only when *every* resolved definition is
    // tainted — mixed sets (trait impls, common names) stay silent, which
    // keeps the name-based resolution from inventing false positives.
    let tainted_call =
        |why: &BTreeMap<(usize, usize), String>, c: &crate::registry::CallSite| -> Option<String> {
            let ds = resolve(c)?;
            ds.iter()
                .all(|k| why.contains_key(k))
                .then(|| why[&ds[0]].clone())
        };
    loop {
        let mut changed = false;
        for (fi, (_, facts)) in files.iter().enumerate() {
            for (ni, f) in facts.fns.iter().enumerate() {
                if why.contains_key(&(fi, ni)) {
                    continue;
                }
                for c in &f.calls {
                    if let Some(chain) = tainted_call(&why, c) {
                        why.insert((fi, ni), format!("calls `{}` → {chain}", c.name));
                        changed = true;
                        break;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Findings: cross-file call sites in deterministic crates. Same-file
    // helpers are already covered by D001/D003 at the source line, and a
    // directly-tainted caller is the source itself.
    for (fi, (file, facts)) in files.iter().enumerate() {
        if !det(file) {
            continue;
        }
        for f in &facts.fns {
            if f.direct_taint.is_some() {
                continue;
            }
            for c in &f.calls {
                let Some(ds) = resolve(c) else {
                    continue;
                };
                if !ds.iter().all(|k| why.contains_key(k)) {
                    continue;
                }
                if ds.iter().any(|(dfi, _)| *dfi == fi) {
                    continue; // same-file helper: D001/D003 own that file
                }
                push(
                    findings,
                    file,
                    c.line,
                    "D006",
                    format!(
                        "calls `{}()`, which transitively reaches a \
                         nondeterminism source: {}",
                        c.name, why[&ds[0]]
                    ),
                );
            }
        }
    }
}
