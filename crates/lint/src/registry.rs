//! Phase 1 of the workspace analysis: an item-level fact extractor.
//!
//! For each file the collector walks the token stream once and records the
//! facts the cross-file rules ([`crate::analysis`]) reason over: integer
//! consts with their value expressions, enum definitions with variants,
//! wire-tag encode sites (`enc.put_u8(T_X)`) and decode arms (`T_X =>`),
//! `Enum::Variant` constructions vs. pattern arms, function spans with
//! their call sites and direct nondeterminism facts, and hash-typed struct
//! fields (which make D002 receiver knowledge workspace-global).
//!
//! This stays an *item-level* parse on the lint lexer — no expression
//! grammar, no types — the same trade the per-line rules make: heuristic
//! token shapes, misses acceptable, false positives waivable.

use crate::lexer::{Tok, Token};
use std::collections::{BTreeMap, BTreeSet};

/// `const NAME: TY = <expr>;` — the expression is kept as tokens and
/// evaluated on demand against the workspace const environment.
#[derive(Debug, Clone)]
pub struct ConstDef {
    pub name: String,
    pub line: u32,
    /// First identifier of the ascribed type (`u8`, `u64`, ...).
    pub ty: Option<String>,
    /// Value tokens between `=` and `;`.
    pub expr: Vec<Token>,
}

/// One variant of an enum definition.
#[derive(Debug, Clone)]
pub struct VariantDef {
    pub name: String,
    pub line: u32,
    /// Identifiers appearing in the variant's payload (field types and
    /// names) — enough to ask "does this variant embed `IsisMsg`?".
    pub payload_idents: Vec<String>,
}

#[derive(Debug, Clone)]
pub struct EnumDef {
    pub name: String,
    pub line: u32,
    pub variants: Vec<VariantDef>,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub name: String,
    pub line: u32,
    /// `m` in `m::f(..)` — `None` for bare `f(..)` calls. An uppercase
    /// qualifier means a type-qualified call; a lowercase one names a
    /// module, which D006 can resolve to that module's file.
    pub qualifier: Option<String>,
    /// True for `x.f(..)` — the receiver type is unknowable to a
    /// token-level analysis, so method calls never *resolve*, they only
    /// exist for completeness.
    pub method: bool,
}

/// A function definition with the facts D006 needs.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    pub line: u32,
    pub end_line: u32,
    pub calls: Vec<CallSite>,
    /// A direct nondeterminism source inside the body, e.g.
    /// "reads the wall clock via `Instant::now()`".
    pub direct_taint: Option<String>,
}

/// Everything phase 1 learned about one file.
#[derive(Debug, Clone, Default)]
pub struct FileFacts {
    /// Integer consts by definition order.
    pub consts: Vec<ConstDef>,
    pub enums: Vec<EnumDef>,
    /// `enc.put_u8(NAME)` sites: (const name, line).
    pub put_tags: Vec<(String, u32)>,
    /// `NAME =>` match arms over SCREAMING_CASE consts: (name, line).
    pub tag_arms: Vec<(String, u32)>,
    /// (tag const, variant) bindings recovered from encode match arms —
    /// the `Enum::Variant { .. } => { enc.put_u8(T_X); ... }` shape.
    pub tag_bindings: Vec<(String, String)>,
    /// `Enum::Variant` value constructions: (enum, variant, line).
    pub variant_ctors: Vec<(String, String, u32)>,
    /// `Enum::Variant` pattern arms: (enum, variant, line).
    pub variant_arms: Vec<(String, String, u32)>,
    pub fns: Vec<FnDef>,
    /// Names declared as `HashMap`/`HashSet` struct fields.
    pub hash_fields: BTreeSet<String>,
    /// Names declared with a *non*-hash container type anywhere — these
    /// veto workspace-global hash-field matches of the same name.
    pub nonhash_names: BTreeSet<String>,
}

fn ident(t: Option<&Token>) -> Option<&str> {
    match t.map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(t: Option<&Token>, c: char) -> bool {
    matches!(t.map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// Keywords and control-flow words that look like calls (`if (..)`).
const NON_CALLEES: &[&str] = &[
    "if",
    "while",
    "for",
    "match",
    "return",
    "loop",
    "fn",
    "let",
    "in",
    "as",
    "move",
    "unsafe",
    "else",
    "break",
    "continue",
    "where",
    "impl",
    "dyn",
    "ref",
    "mut",
    "pub",
    "use",
    "mod",
    "assert",
    "debug_assert",
    "matches",
    "Some",
    "Ok",
    "Err",
];

/// Is this a SCREAMING_SNAKE_CASE const-style name?
fn is_const_name(s: &str) -> bool {
    s.chars().any(|c| c.is_ascii_uppercase())
        && s.chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

fn starts_upper(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

/// Collect facts from a token stream. `exempt` are `#[cfg(test)]` line
/// ranges — tokens inside them are invisible to the registry, so test-only
/// consts, ctors and calls never feed cross-file rules.
pub fn collect(toks: &[Token], exempt: &[(u32, u32)]) -> FileFacts {
    let toks: Vec<Token> = toks
        .iter()
        .filter(|t| !exempt.iter().any(|&(a, b)| t.line >= a && t.line <= b))
        .cloned()
        .collect();
    let toks = &toks[..];
    let mut f = FileFacts::default();

    collect_consts(toks, &mut f);
    collect_enums(toks, &mut f);
    collect_tags(toks, &mut f);
    collect_variant_uses(toks, &mut f);
    collect_fns(toks, &mut f);
    collect_container_names(toks, &mut f);
    f
}

fn collect_consts(toks: &[Token], f: &mut FileFacts) {
    let mut i = 0usize;
    while i < toks.len() {
        if ident(toks.get(i)) != Some("const") {
            i += 1;
            continue;
        }
        let Some(name) = ident(toks.get(i + 1)) else {
            i += 1;
            continue;
        };
        if !is_punct(toks.get(i + 2), ':') || is_punct(toks.get(i + 3), ':') {
            i += 1; // `const { .. }` block or path — not a named const
            continue;
        }
        let name = name.to_string();
        let line = toks[i + 1].line;
        // Type tokens up to `=` at depth 0; first ident is the type head.
        let mut j = i + 3;
        let mut ty = None;
        let mut depth = 0i32;
        while j < toks.len() {
            match &toks[j].tok {
                Tok::Punct('<' | '[' | '(') => depth += 1,
                Tok::Punct('>' | ']' | ')') => depth -= 1,
                Tok::Punct('=') if depth == 0 => break,
                Tok::Punct(';') if depth == 0 => break,
                Tok::Ident(s) if ty.is_none() => ty = Some(s.clone()),
                _ => {}
            }
            j += 1;
        }
        if !is_punct(toks.get(j), '=') {
            i = j;
            continue; // associated const declaration without a value
        }
        // Expression tokens up to `;` at depth 0.
        let mut expr = Vec::new();
        let mut k = j + 1;
        let mut d = 0i32;
        while k < toks.len() {
            match &toks[k].tok {
                Tok::Punct('(' | '[' | '{') => d += 1,
                Tok::Punct(')' | ']' | '}') => d -= 1,
                Tok::Punct(';') if d == 0 => break,
                _ => {}
            }
            expr.push(toks[k].clone());
            k += 1;
        }
        f.consts.push(ConstDef {
            name,
            line,
            ty,
            expr,
        });
        i = k;
    }
}

fn collect_enums(toks: &[Token], f: &mut FileFacts) {
    let mut i = 0usize;
    while i < toks.len() {
        if ident(toks.get(i)) != Some("enum") {
            i += 1;
            continue;
        }
        let Some(name) = ident(toks.get(i + 1)) else {
            i += 1;
            continue;
        };
        let mut def = EnumDef {
            name: name.to_string(),
            line: toks[i + 1].line,
            variants: Vec::new(),
        };
        // Skip generics to the body `{`.
        let mut j = i + 2;
        let mut angle = 0i32;
        while j < toks.len() {
            match &toks[j].tok {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') => angle -= 1,
                Tok::Punct('{') if angle == 0 => break,
                Tok::Punct(';') if angle == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if !is_punct(toks.get(j), '{') {
            i = j + 1;
            continue;
        }
        // Body at depth 1: variants are idents at depth 1 followed by
        // `,` / `}` / `(` / `{` / `=`; `#[..]` attributes are skipped.
        let mut depth = 1i32;
        let mut k = j + 1;
        while k < toks.len() && depth > 0 {
            match &toks[k].tok {
                Tok::Punct('#') if depth == 1 && is_punct(toks.get(k + 1), '[') => {
                    let mut d = 0i32;
                    k += 1;
                    while k < toks.len() {
                        match &toks[k].tok {
                            Tok::Punct('[') => d += 1,
                            Tok::Punct(']') => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
                Tok::Punct('{' | '(') => depth += 1,
                Tok::Punct('}' | ')') => depth -= 1,
                Tok::Ident(s) if depth == 1 && starts_upper(s) => {
                    let mut v = VariantDef {
                        name: s.clone(),
                        line: toks[k].line,
                        payload_idents: Vec::new(),
                    };
                    // Payload group, if any.
                    if is_punct(toks.get(k + 1), '{') || is_punct(toks.get(k + 1), '(') {
                        let mut d = 0i32;
                        let mut m = k + 1;
                        while m < toks.len() {
                            match &toks[m].tok {
                                Tok::Punct('{' | '(') => d += 1,
                                Tok::Punct('}' | ')') => {
                                    d -= 1;
                                    if d == 0 {
                                        break;
                                    }
                                }
                                Tok::Ident(id) => v.payload_idents.push(id.clone()),
                                _ => {}
                            }
                            m += 1;
                        }
                        k = m;
                    }
                    def.variants.push(v);
                }
                _ => {}
            }
            k += 1;
        }
        f.enums.push(def);
        i = k;
    }
}

fn collect_tags(toks: &[Token], f: &mut FileFacts) {
    for i in 0..toks.len() {
        // `. put_u8 ( NAME )`
        if ident(toks.get(i)) == Some("put_u8")
            && i >= 1
            && is_punct(toks.get(i - 1), '.')
            && is_punct(toks.get(i + 1), '(')
            && is_punct(toks.get(i + 3), ')')
        {
            if let Some(arg) = ident(toks.get(i + 2)) {
                if is_const_name(arg) {
                    f.put_tags.push((arg.to_string(), toks[i].line));
                    // Bind the tag to the variant of the enclosing encode
                    // match arm: scan back for the nearest `=>` and read
                    // the `Enum::Variant` pattern before it.
                    if let Some((en, var)) = enclosing_arm_pattern(toks, i) {
                        f.tag_bindings
                            .push((arg.to_string(), format!("{en}::{var}")));
                    }
                }
            }
        }
        // `NAME =>` where NAME is const-style (decode match arm).
        if let Some(name) = ident(toks.get(i)) {
            if is_const_name(name)
                && is_punct(toks.get(i + 1), '=')
                && is_punct(toks.get(i + 2), '>')
                && !(i >= 1 && is_punct(toks.get(i - 1), ':'))
            {
                f.tag_arms.push((name.to_string(), toks[i].line));
            }
        }
    }
}

/// From a token inside a match-arm body, find the `Enum::Variant` pattern
/// of the nearest preceding `=>`.
fn enclosing_arm_pattern(toks: &[Token], from: usize) -> Option<(String, String)> {
    let mut i = from;
    while i >= 2 {
        if is_punct(toks.get(i), '>') && is_punct(toks.get(i - 1), '=') {
            // Walk back over an optional payload group to the path.
            let mut j = i - 2;
            if is_punct(toks.get(j), '}') || is_punct(toks.get(j), ')') {
                let close = match &toks[j].tok {
                    Tok::Punct('}') => '{',
                    _ => '(',
                };
                let open = match close {
                    '{' => '}',
                    _ => ')',
                };
                let mut d = 0i32;
                while j > 0 {
                    if is_punct(toks.get(j), open) {
                        d += 1;
                    } else if is_punct(toks.get(j), close) {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    j -= 1;
                }
                j = j.checked_sub(1)?;
            }
            let var = ident(toks.get(j))?;
            if j >= 3
                && is_punct(toks.get(j - 1), ':')
                && is_punct(toks.get(j - 2), ':')
                && starts_upper(var)
            {
                let en = ident(toks.get(j - 3))?;
                return Some((en.to_string(), var.to_string()));
            }
            return None;
        }
        i -= 1;
    }
    None
}

fn collect_variant_uses(toks: &[Token], f: &mut FileFacts) {
    let mut i = 0usize;
    while i + 3 < toks.len() {
        let (Some(en), Some(var)) = (ident(toks.get(i)), ident(toks.get(i + 3))) else {
            i += 1;
            continue;
        };
        if !(starts_upper(en)
            && starts_upper(var)
            && is_punct(toks.get(i + 1), ':')
            && is_punct(toks.get(i + 2), ':')
            && !(i >= 1 && is_punct(toks.get(i - 1), ':')))
        {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        // Optional payload group after the variant.
        let mut j = i + 4;
        let mut payload_has_rest = false;
        if is_punct(toks.get(j), '{') || is_punct(toks.get(j), '(') {
            let mut d = 0i32;
            while j < toks.len() {
                match &toks[j].tok {
                    Tok::Punct('{' | '(') => d += 1,
                    Tok::Punct('}' | ')') => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    Tok::Punct('.')
                        if d == 1
                            && is_punct(toks.get(j + 1), '.')
                            && !is_punct(toks.get(j + 2), '.') =>
                    {
                        payload_has_rest = true;
                    }
                    _ => {}
                }
                j += 1;
            }
            j += 1;
        }
        // Pattern position: an or-pattern bar or match arrow follows (or a
        // guard `if`), a bar precedes, or the payload used a `..` rest
        // pattern (which cannot appear in an expression).
        let followed_by_arrow = is_punct(toks.get(j), '=') && is_punct(toks.get(j + 1), '>');
        let followed_by_bar = is_punct(toks.get(j), '|') && !is_punct(toks.get(j + 1), '|');
        let preceded_by_bar = i >= 1 && is_punct(toks.get(i - 1), '|');
        let guard = ident(toks.get(j)) == Some("if");
        let is_arm =
            followed_by_arrow || followed_by_bar || preceded_by_bar || guard || payload_has_rest;
        let entry = (en.to_string(), var.to_string(), line);
        if is_arm {
            f.variant_arms.push(entry);
        } else {
            f.variant_ctors.push(entry);
        }
        i += 4;
    }
}

fn collect_fns(toks: &[Token], f: &mut FileFacts) {
    // A stack of open function bodies: (FnDef, brace depth at entry).
    let mut stack: Vec<(FnDef, i32)> = Vec::new();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                while let Some((fd, d)) = stack.last() {
                    if depth < *d {
                        let mut fd = fd.clone();
                        fd.end_line = toks[i].line;
                        f.fns.push(fd);
                        stack.pop();
                    } else {
                        break;
                    }
                }
            }
            Tok::Ident(kw) if kw == "fn" => {
                if let Some(name) = ident(toks.get(i + 1)) {
                    // Find the body `{` (or a `;` for a bodyless trait fn)
                    // at bracket depth 0 from the signature.
                    let mut j = i + 2;
                    let mut d = 0i32;
                    let mut has_body = false;
                    while j < toks.len() {
                        match &toks[j].tok {
                            Tok::Punct('(' | '[' | '<') => d += 1,
                            Tok::Punct(')' | ']' | '>') => d -= 1,
                            Tok::Punct('{') if d <= 0 => {
                                has_body = true;
                                break;
                            }
                            Tok::Punct(';') if d <= 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    if has_body {
                        stack.push((
                            FnDef {
                                name: name.to_string(),
                                line: toks[i + 1].line,
                                end_line: toks[i + 1].line,
                                calls: Vec::new(),
                                direct_taint: None,
                            },
                            depth + 1,
                        ));
                        depth += 1;
                        i = j + 1;
                        continue;
                    }
                }
            }
            Tok::Ident(name) => {
                if let Some((fd, _)) = stack.last_mut() {
                    // Direct taint sources.
                    let taint = match name.as_str() {
                        "Instant" | "SystemTime"
                            if is_punct(toks.get(i + 1), ':')
                                && is_punct(toks.get(i + 2), ':')
                                && ident(toks.get(i + 3)) == Some("now") =>
                        {
                            Some(format!("reads the wall clock via `{name}::now()`"))
                        }
                        "thread_rng" => Some("draws from the unseeded `thread_rng()`".into()),
                        "from_entropy" => Some("seeds an RNG from OS entropy".into()),
                        "random"
                            if i >= 3
                                && is_punct(toks.get(i - 1), ':')
                                && is_punct(toks.get(i - 2), ':')
                                && ident(toks.get(i - 3)) == Some("rand") =>
                        {
                            Some("uses `rand::random()`".to_string())
                        }
                        _ => None,
                    };
                    if let Some(t) = taint {
                        if fd.direct_taint.is_none() {
                            fd.direct_taint = Some(t);
                        }
                    } else if is_punct(toks.get(i + 1), '(')
                        && !NON_CALLEES.contains(&name.as_str())
                        && !(i >= 1 && is_punct(toks.get(i - 1), '!'))
                    {
                        let method = i >= 1 && is_punct(toks.get(i - 1), '.');
                        let qualifier = (i >= 3
                            && is_punct(toks.get(i - 1), ':')
                            && is_punct(toks.get(i - 2), ':'))
                        .then(|| ident(toks.get(i - 3)).map(str::to_string))
                        .flatten();
                        fd.calls.push(CallSite {
                            name: name.clone(),
                            line: toks[i].line,
                            qualifier,
                            method,
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    // Close anything left open (unbalanced file): attribute the last line.
    let last_line = toks.last().map_or(0, |t| t.line);
    while let Some((mut fd, _)) = stack.pop() {
        fd.end_line = last_line;
        f.fns.push(fd);
    }
}

/// Hash-typed struct fields and non-hash container declarations, for the
/// workspace-global D002 receiver set.
fn collect_container_names(toks: &[Token], f: &mut FileFacts) {
    const NONHASH: &[&str] = &[
        "BTreeMap",
        "BTreeSet",
        "Vec",
        "VecDeque",
        "BinaryHeap",
        "Box",
    ];
    // Struct bodies: `struct X { .. }` — fields are `name : Type` at depth 1.
    let mut i = 0usize;
    while i < toks.len() {
        if ident(toks.get(i)) == Some("struct") {
            let mut j = i + 2;
            let mut angle = 0i32;
            while j < toks.len() {
                match &toks[j].tok {
                    Tok::Punct('<') => angle += 1,
                    Tok::Punct('>') => angle -= 1,
                    Tok::Punct('{') if angle == 0 => break,
                    Tok::Punct(';' | '(') if angle == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if is_punct(toks.get(j), '{') {
                let mut d = 1i32;
                let mut k = j + 1;
                while k < toks.len() && d > 0 {
                    match &toks[k].tok {
                        Tok::Punct('{') => d += 1,
                        Tok::Punct('}') => d -= 1,
                        Tok::Ident(fname)
                            if d == 1
                                && is_punct(toks.get(k + 1), ':')
                                && !is_punct(toks.get(k + 2), ':') =>
                        {
                            // First type ident after the colon (skipping a
                            // path prefix) classifies the field.
                            let mut m = k + 2;
                            let mut head: Option<&str> = None;
                            while m < toks.len() {
                                match &toks[m].tok {
                                    Tok::Ident(t) => {
                                        if is_punct(toks.get(m + 1), ':')
                                            && is_punct(toks.get(m + 2), ':')
                                        {
                                            m += 3;
                                            continue;
                                        }
                                        head = Some(t.as_str());
                                        break;
                                    }
                                    Tok::Punct('&') | Tok::Lifetime => m += 1,
                                    _ => break,
                                }
                            }
                            match head {
                                Some("HashMap" | "HashSet") => {
                                    f.hash_fields.insert(fname.clone());
                                }
                                Some(h) if NONHASH.contains(&h) => {
                                    f.nonhash_names.insert(fname.clone());
                                }
                                _ => {}
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }
    // Any `name : NonHashContainer` declaration vetoes the name globally.
    for i in 0..toks.len() {
        if let Some(t) = ident(toks.get(i)) {
            if NONHASH.contains(&t)
                && i >= 2
                && is_punct(toks.get(i - 1), ':')
                && !is_punct(toks.get(i - 2), ':')
            {
                if let Some(name) = ident(toks.get(i - 2)) {
                    f.nonhash_names.insert(name.to_string());
                }
            }
        }
    }
}

/// Strip `_` separators and a type suffix, parse decimal/hex/octal/binary.
pub fn parse_int(text: &str) -> Option<u64> {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    let strip = |s: &str| {
        for suf in [
            "usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
        ] {
            if let Some(p) = s.strip_suffix(suf) {
                return p.to_string();
            }
        }
        s.to_string()
    };
    let t = strip(&t);
    if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(h, 16).ok()
    } else if let Some(o) = t.strip_prefix("0o") {
        u64::from_str_radix(o, 8).ok()
    } else if let Some(b) = t.strip_prefix("0b") {
        u64::from_str_radix(b, 2).ok()
    } else {
        t.parse().ok()
    }
}

/// The workspace const environment: name → (file index, const), with
/// ambiguous (multiply-defined) names resolvable only from their own file.
pub struct ConstEnv<'a> {
    /// Uniquely-named consts across the workspace.
    global: BTreeMap<&'a str, &'a ConstDef>,
    /// Per-file name → const (local names shadow the global table).
    local: Vec<BTreeMap<&'a str, &'a ConstDef>>,
}

impl<'a> ConstEnv<'a> {
    pub fn new(files: &'a [FileFacts]) -> Self {
        let mut global: BTreeMap<&str, &ConstDef> = BTreeMap::new();
        let mut dup: BTreeSet<&str> = BTreeSet::new();
        let mut local = Vec::with_capacity(files.len());
        for f in files {
            let mut l = BTreeMap::new();
            for c in &f.consts {
                l.insert(c.name.as_str(), c);
                if global.insert(c.name.as_str(), c).is_some() {
                    dup.insert(c.name.as_str());
                }
            }
            local.push(l);
        }
        for d in dup {
            global.remove(d);
        }
        ConstEnv { global, local }
    }

    /// Evaluate a const of file `fi` to a `u64`, resolving identifier
    /// references through the file's own consts first, then the global
    /// table. `None` when anything is out of grammar (calls, floats,
    /// ambiguous names, cycles).
    pub fn eval(&self, fi: usize, c: &ConstDef) -> Option<u64> {
        self.eval_expr(fi, &c.expr, 0)
    }

    fn resolve(&self, fi: usize, name: &str, depth: usize) -> Option<u64> {
        if depth > 32 {
            return None;
        }
        let c = self
            .local
            .get(fi)
            .and_then(|l| l.get(name))
            .or_else(|| self.global.get(name))?;
        self.eval_expr(fi, &c.expr, depth + 1)
    }

    fn eval_expr(&self, fi: usize, toks: &[Token], depth: usize) -> Option<u64> {
        let mut pos = 0usize;
        let v = self.parse_or(fi, toks, &mut pos, depth)?;
        (pos == toks.len()).then_some(v)
    }

    fn parse_or(&self, fi: usize, t: &[Token], p: &mut usize, d: usize) -> Option<u64> {
        let mut v = self.parse_and(fi, t, p, d)?;
        while matches!(t.get(*p).map(|t| &t.tok), Some(Tok::Punct('|')))
            && !matches!(t.get(*p + 1).map(|t| &t.tok), Some(Tok::Punct('|')))
        {
            *p += 1;
            v |= self.parse_and(fi, t, p, d)?;
        }
        Some(v)
    }

    fn parse_and(&self, fi: usize, t: &[Token], p: &mut usize, d: usize) -> Option<u64> {
        let mut v = self.parse_shift(fi, t, p, d)?;
        while matches!(t.get(*p).map(|t| &t.tok), Some(Tok::Punct('&')))
            && !matches!(t.get(*p + 1).map(|t| &t.tok), Some(Tok::Punct('&')))
        {
            *p += 1;
            v &= self.parse_shift(fi, t, p, d)?;
        }
        Some(v)
    }

    fn parse_shift(&self, fi: usize, t: &[Token], p: &mut usize, d: usize) -> Option<u64> {
        let mut v = self.parse_add(fi, t, p, d)?;
        loop {
            let (a, b) = (t.get(*p).map(|t| &t.tok), t.get(*p + 1).map(|t| &t.tok));
            match (a, b) {
                (Some(Tok::Punct('<')), Some(Tok::Punct('<'))) => {
                    *p += 2;
                    let rhs = self.parse_add(fi, t, p, d)?;
                    v = v.checked_shl(u32::try_from(rhs).ok()?)?;
                }
                (Some(Tok::Punct('>')), Some(Tok::Punct('>'))) => {
                    *p += 2;
                    let rhs = self.parse_add(fi, t, p, d)?;
                    v = v.checked_shr(u32::try_from(rhs).ok()?)?;
                }
                _ => return Some(v),
            }
        }
    }

    fn parse_add(&self, fi: usize, t: &[Token], p: &mut usize, d: usize) -> Option<u64> {
        let mut v = self.parse_mul(fi, t, p, d)?;
        loop {
            match t.get(*p).map(|t| &t.tok) {
                Some(Tok::Punct('+')) => {
                    *p += 1;
                    v = v.checked_add(self.parse_mul(fi, t, p, d)?)?;
                }
                Some(Tok::Punct('-')) => {
                    *p += 1;
                    v = v.checked_sub(self.parse_mul(fi, t, p, d)?)?;
                }
                _ => return Some(v),
            }
        }
    }

    fn parse_mul(&self, fi: usize, t: &[Token], p: &mut usize, d: usize) -> Option<u64> {
        let mut v = self.parse_primary(fi, t, p, d)?;
        while matches!(t.get(*p).map(|t| &t.tok), Some(Tok::Punct('*'))) {
            *p += 1;
            v = v.checked_mul(self.parse_primary(fi, t, p, d)?)?;
        }
        Some(v)
    }

    fn parse_primary(&self, fi: usize, t: &[Token], p: &mut usize, d: usize) -> Option<u64> {
        match t.get(*p).map(|t| &t.tok) {
            Some(Tok::Num(s)) => {
                *p += 1;
                // An `as u64` style cast may follow; swallow it.
                self.swallow_cast(t, p);
                parse_int(s)
            }
            Some(Tok::Punct('(')) => {
                *p += 1;
                let v = self.parse_or(fi, t, p, d)?;
                if !matches!(t.get(*p).map(|t| &t.tok), Some(Tok::Punct(')'))) {
                    return None;
                }
                *p += 1;
                self.swallow_cast(t, p);
                Some(v)
            }
            Some(Tok::Ident(name)) => {
                // Bare const reference only — paths / calls are out of
                // grammar and poison the expression.
                if matches!(t.get(*p + 1).map(|t| &t.tok), Some(Tok::Punct(':' | '('))) {
                    return None;
                }
                let name = name.clone();
                *p += 1;
                self.swallow_cast(t, p);
                self.resolve(fi, &name, d)
            }
            _ => None,
        }
    }

    fn swallow_cast(&self, t: &[Token], p: &mut usize) {
        if matches!(t.get(*p).map(|t| &t.tok), Some(Tok::Ident(k)) if k == "as")
            && matches!(t.get(*p + 1).map(|t| &t.tok), Some(Tok::Ident(_)))
        {
            *p += 2;
        }
    }
}
