//! CLI entry point: lint the workspace, print diagnostics, exit nonzero on
//! any unwaived finding.
//!
//! Usage: `cargo run -p vce-lint [-- <root>] [--format text|json]`.
//!
//! `--format json` emits one machine-readable object for CI annotation:
//! `{"files_scanned": N, "findings": [{file, line, rule, msg, hint}, ..]}`.
//! The exit code is the same in both modes.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--format" => {
                json = matches!(args.next().as_deref(), Some("json"));
            }
            "--format=json" => json = true,
            "--format=text" => json = false,
            other => root = Some(PathBuf::from(other)),
        }
    }
    let root = root.unwrap_or_else(|| {
        // crates/lint/../.. == the workspace root, wherever the binary
        // was built from.
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
    });
    let report = vce_lint::lint_workspace(&root);
    if json {
        println!("{}", to_json(&report));
    } else {
        for f in &report.findings {
            println!("{}:{}: {}: {} [{}]", f.file, f.line, f.rule, f.msg, f.hint);
        }
        if report.findings.is_empty() {
            println!("vce-lint: {} files clean", report.files_scanned);
        } else {
            println!(
                "vce-lint: {} finding(s) in {} files — fix, or waive with `// vce-lint: allow(RULE) reason`",
                report.findings.len(),
                report.files_scanned
            );
        }
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Hand-rolled JSON: the lint crate is dependency-free by design (it lints
/// the workspace that builds it), so no serde.
fn to_json(report: &vce_lint::Report) -> String {
    let mut s = String::with_capacity(256 + report.findings.len() * 160);
    s.push_str(&format!(
        "{{\"files_scanned\":{},\"findings\":[",
        report.files_scanned
    ));
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"file\":{},\"line\":{},\"rule\":{},\"msg\":{},\"hint\":{}}}",
            json_str(&f.file),
            f.line,
            json_str(f.rule),
            json_str(&f.msg),
            json_str(f.hint)
        ));
    }
    s.push_str("]}");
    s
}

fn json_str(v: &str) -> String {
    let mut s = String::with_capacity(v.len() + 2);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
    s
}
