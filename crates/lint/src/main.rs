//! CLI entry point: lint the workspace, print `file:line` diagnostics,
//! exit nonzero on any unwaived finding.
//!
//! Usage: `cargo run -p vce-lint` (optionally `-- <root>`).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // crates/lint/../.. == the workspace root, wherever the binary
            // was built from.
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
        });
    let report = vce_lint::lint_workspace(&root);
    for f in &report.findings {
        println!("{}:{}: {}: {} [{}]", f.file, f.line, f.rule, f.msg, f.hint);
    }
    if report.findings.is_empty() {
        println!("vce-lint: {} files clean", report.files_scanned);
        ExitCode::SUCCESS
    } else {
        println!(
            "vce-lint: {} finding(s) in {} files — fix, or waive with `// vce-lint: allow(RULE) reason`",
            report.findings.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}
