//! A minimal Rust lexer: just enough to token-match lint rules without a
//! full parser (the build container has no crates registry, so no `syn`).
//!
//! Produces identifiers, single-char punctuation, opaque literals and
//! lifetimes, each tagged with a 1-based line number. Comments are lexed
//! into a separate stream so the waiver parser can see them while the rule
//! matchers see only code. String/char literals are consumed opaquely so a
//! forbidden name inside a string (e.g. a log message mentioning
//! "thread_rng") never trips a rule.

/// One code token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`HashMap`, `for`, `self`, ...).
    Ident(String),
    /// Single punctuation character (`:`, `.`, `(`, ...). Multi-char
    /// operators arrive as consecutive tokens (`::` is `:`, `:`).
    Punct(char),
    /// String / raw-string / byte-string / char literal (contents
    /// deliberately discarded so a forbidden name inside a string never
    /// trips a rule).
    Literal,
    /// Numeric literal with its spelling preserved (`0x1f`, `1_000u64`):
    /// the registry's const-expression evaluator needs the value, which
    /// no rule ever needs from a string.
    Num(String),
    /// A lifetime such as `'a`.
    Lifetime,
}

#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// A comment, line or block, tagged with its starting line. Block comments
/// keep their full text; the waiver parser scans per physical line.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// Lexed file: code tokens plus the comment stream.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

pub fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            let start = i;
            while i < n && bytes[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line,
                text: bytes[start..i].iter().collect(),
            });
            continue;
        }
        if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if bytes[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            out.comments.push(Comment {
                line: start_line,
                text: bytes[start..i].iter().collect(),
            });
            continue;
        }
        // Identifiers — with lookahead for raw strings / raw identifiers /
        // byte strings whose prefix lexes like an identifier.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_cont(bytes[i]) {
                i += 1;
            }
            let word: String = bytes[start..i].iter().collect();
            let next = bytes.get(i).copied();
            if matches!(word.as_str(), "r" | "b" | "br" | "rb") && matches!(next, Some('"' | '#')) {
                // Raw / byte string: r"..", r#".."#, br#".."#, b"..".
                let raw = word.contains('r');
                let mut hashes = 0usize;
                while raw && bytes.get(i) == Some(&'#') {
                    hashes += 1;
                    i += 1;
                }
                if bytes.get(i) == Some(&'"') {
                    i += 1;
                    if raw {
                        // Scan for `"` followed by `hashes` hashes.
                        'raw: while i < n {
                            if bytes[i] == '\n' {
                                line += 1;
                            } else if bytes[i] == '"' {
                                let mut k = 0usize;
                                while k < hashes && bytes.get(i + 1 + k) == Some(&'#') {
                                    k += 1;
                                }
                                if k == hashes {
                                    i += 1 + hashes;
                                    break 'raw;
                                }
                            }
                            i += 1;
                        }
                    } else {
                        consume_quoted(&bytes, &mut i, &mut line, '"');
                    }
                    out.tokens.push(Token {
                        tok: Tok::Literal,
                        line,
                    });
                    continue;
                }
                if word == "r" && hashes == 1 && bytes.get(i).copied().is_some_and(is_ident_start) {
                    // Raw identifier `r#type`: emit the bare identifier.
                    let s = i;
                    while i < n && is_ident_cont(bytes[i]) {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        tok: Tok::Ident(bytes[s..i].iter().collect()),
                        line,
                    });
                    continue;
                }
                // `r #` that was neither: re-emit what we consumed.
                out.tokens.push(Token {
                    tok: Tok::Ident(word),
                    line,
                });
                for _ in 0..hashes {
                    out.tokens.push(Token {
                        tok: Tok::Punct('#'),
                        line,
                    });
                }
                continue;
            }
            out.tokens.push(Token {
                tok: Tok::Ident(word),
                line,
            });
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            let one = bytes.get(i + 1).copied();
            let two = bytes.get(i + 2).copied();
            if one.is_some_and(is_ident_start) && two != Some('\'') {
                i += 1;
                while i < n && is_ident_cont(bytes[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Lifetime,
                    line,
                });
            } else {
                i += 1;
                consume_quoted(&bytes, &mut i, &mut line, '\'');
                out.tokens.push(Token {
                    tok: Tok::Literal,
                    line,
                });
            }
            continue;
        }
        // String literal.
        if c == '"' {
            i += 1;
            consume_quoted(&bytes, &mut i, &mut line, '"');
            out.tokens.push(Token {
                tok: Tok::Literal,
                line,
            });
            continue;
        }
        // Number literal: digits plus alphanumeric tail (hex, suffixes,
        // exponents); a `.` joins only when followed by a digit so `1.max()`
        // still lexes the method call.
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < n {
                let d = bytes[i];
                if d.is_alphanumeric() || d == '_' {
                    i += 1;
                } else if d == '.' && bytes.get(i + 1).is_some_and(|e| e.is_ascii_digit()) {
                    i += 2;
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                tok: Tok::Num(bytes[start..i].iter().collect()),
                line,
            });
            continue;
        }
        out.tokens.push(Token {
            tok: Tok::Punct(c),
            line,
        });
        i += 1;
    }
    out
}

/// Consume the remainder of a quoted literal (after the opening quote),
/// honoring backslash escapes, leaving `i` past the closing quote.
fn consume_quoted(bytes: &[char], i: &mut usize, line: &mut u32, quote: char) {
    while *i < bytes.len() {
        let c = bytes[*i];
        if c == '\\' {
            *i += 2;
            continue;
        }
        if c == '\n' {
            *line += 1;
        }
        *i += 1;
        if c == quote {
            return;
        }
    }
}
