//! Rule definitions and the token-stream matchers behind them.
//!
//! Rules are deliberately heuristic: they match token shapes, not types.
//! A miss is acceptable (reviewers still exist); a false positive is
//! waivable inline with a written reason. What is *not* acceptable is a
//! silent nondeterminism source in a sim-deterministic crate, which is
//! exactly what each D-rule exists to keep out.

use crate::lexer::{lex, Lexed, Tok, Token};
use crate::registry::FileFacts;
use crate::waiver::{parse_comments, WaiverIssue};
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose `src/` must stay sim-deterministic. `lint` polices itself.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "sim",
    "isis",
    "exm",
    "net",
    "sdm",
    "channels",
    "taskgraph",
    "script",
    "baselines",
    "workloads",
    "core",
    "lint",
    "storage",
];

/// Files whose message-handling paths must not panic on remote input.
pub const P001_FILES: &[&str] = &[
    "crates/isis/src/member.rs",
    "crates/exm/src/daemon.rs",
    "crates/exm/src/executor.rs",
    "crates/exm/src/policy.rs",
    "crates/exm/src/wal.rs",
    "crates/storage/src/lib.rs",
];

/// Crates whose `src/` trees are protocol hot paths for P005: every
/// message they encode rides the simulated (or live) wire, so a fresh
/// `Encoder::new()` there is a per-message heap allocation the pooled
/// encode path (`Host::encode_with`) exists to eliminate. `codec` itself
/// is exempt — it defines the encoder and its convenience wrappers.
pub const P005_CRATES: &[&str] = &["isis", "exm", "channels", "sdm", "baselines"];

/// Files allowed to hold cross-thread synchronization primitives (S002):
/// the sharded engine's rendezvous module, where the window barriers make
/// the sharing deterministic. Inside them S002 still rejects
/// `Ordering::Relaxed` and `try_lock` — every cross-shard access must be
/// a blocking, Release/Acquire-ordered rendezvous.
pub const S002_RENDEZVOUS_FILES: &[&str] = &["crates/sim/src/sharded.rs"];

pub const RULE_IDS: &[&str] = &[
    "D001", "D002", "D003", "D004", "D005", "D006", "P001", "P002", "P003", "P004", "P005", "S001",
    "S002", "W001", "W002", "W003",
];

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub msg: String,
    pub hint: &'static str,
}

const HINT_D001: &str = "use sim time (Host::now_us); wall-clock belongs to live mode, waive it";
const HINT_D002: &str =
    "switch to BTreeMap/BTreeSet, or waive with an order-insensitivity argument";
const HINT_D003: &str = "seed the RNG explicitly (e.g. SmallRng::seed_from_u64 from config)";
const HINT_D004: &str =
    "sim-deterministic code is single-threaded; threads live in vce-bench or live drivers (waive)";
const HINT_D005: &str = "give the element a `seq` field assigned from a monotone insertion counter and include it in `Ord` (the `(at_us, seq)` contract), or waive with an ordering argument";
const HINT_D006: &str = "route time/randomness through the Host (sim time, seeded RNG) or break the call chain; live-mode plumbing is waivable with a reason";
const HINT_P001: &str = "remote input must not panic a node: drop/log or reply with an error, or waive with an invariant argument";
const HINT_P002: &str = "a wire tag must be unique, encoded once, decoded once, and its variant handled somewhere; fix the registry or waive with a protocol argument";
const HINT_P003: &str = "re-encode tokens as tag<<32|payload (docs/PROTOCOL.md token table) so id growth cannot bleed across token spaces";
const HINT_P004: &str = "replay the record in recover() or delete it; a diagnostic-only record is waivable with a reason";
const HINT_P005: &str = "encode through the pooled path (Host::encode_with) or pre-size a reused buffer (Encoder::with_capacity); a genuinely cold path is waivable with a reason";
const HINT_S001: &str =
    "shard workers share no mutable statics; thread the state through Shard or the per-window plan";
const HINT_S002: &str = "cross-shard state belongs to the sanctioned rendezvous module, synchronized Release/Acquire at the window barriers";
const HINT_W001: &str = "write `// vce-lint: allow(RULE) reason`";
const HINT_W002: &str = "valid rules: D001-D006 P001-P005 S001 S002";
const HINT_W003: &str = "the waived line is clean — delete the waiver";

pub(crate) fn hint_of(rule: &str) -> &'static str {
    match rule {
        "D001" => HINT_D001,
        "D002" => HINT_D002,
        "D003" => HINT_D003,
        "D004" => HINT_D004,
        "D005" => HINT_D005,
        "D006" => HINT_D006,
        "P002" => HINT_P002,
        "P003" => HINT_P003,
        "P004" => HINT_P004,
        "P005" => HINT_P005,
        "S001" => HINT_S001,
        "S002" => HINT_S002,
        "W001" => HINT_W001,
        "W002" => HINT_W002,
        "W003" => HINT_W003,
        _ => HINT_P001,
    }
}

/// Lint one file's source. `relpath` is workspace-relative and drives
/// per-crate scoping (e.g. `crates/sim/src/engine.rs`). Single-file mode
/// runs the full pipeline over a one-file "workspace": cross-file rules
/// whose registries live entirely in this file (tag conformance,
/// intra-file token spaces) still apply.
pub fn lint_source(relpath: &str, src: &str) -> Vec<Finding> {
    lint_files(&[(relpath.to_string(), src.to_string())])
}

/// The two-phase pipeline over a set of files.
///
/// Phase 1 lexes each file once and builds its fact registry
/// ([`crate::registry`]); the per-line rules (D001–D005, P001, S001–S002)
/// then run per file, with D002's receiver knowledge widened by the
/// workspace-global hash-field set. Phase 2 runs the cross-file rules
/// ([`crate::analysis`]: P002–P004, D006) over all registries at once.
/// Only then are `#[cfg(test)]` exemptions and inline waivers applied, per
/// file — so a cross-file finding is waivable at the line it anchors to,
/// exactly like a per-line one.
pub fn lint_files(files: &[(String, String)]) -> Vec<Finding> {
    struct Prep {
        lexed: Lexed,
        exempt: Vec<(u32, u32)>,
    }
    let mut preps: Vec<Prep> = Vec::with_capacity(files.len());
    let mut facts: Vec<(String, FileFacts)> = Vec::with_capacity(files.len());
    for (rel, src) in files {
        let lexed = lex(src);
        let exempt = test_module_ranges(&lexed.tokens);
        facts.push((
            rel.clone(),
            crate::registry::collect(&lexed.tokens, &exempt),
        ));
        preps.push(Prep { lexed, exempt });
    }

    // Workspace-global hash-typed field names: a field declared
    // `HashMap`/`HashSet` in one file is hash-ordered wherever it is
    // iterated. Names also declared with a non-hash container anywhere
    // are ambiguous and vetoed.
    let mut global_hash: BTreeSet<String> = BTreeSet::new();
    for (_, f) in &facts {
        global_hash.extend(f.hash_fields.iter().cloned());
    }
    for (_, f) in &facts {
        for v in &f.nonhash_names {
            global_hash.remove(v);
        }
    }

    let mut findings: Vec<Finding> = Vec::new();
    for ((rel, _), p) in files.iter().zip(&preps) {
        let in_scope = crate_of(rel).is_some_and(|c| DETERMINISTIC_CRATES.contains(&c));
        if in_scope {
            check_d001(rel, &p.lexed.tokens, &mut findings);
            check_d002(rel, &p.lexed.tokens, &global_hash, &mut findings);
            check_d003(rel, &p.lexed.tokens, &mut findings);
            check_d004(rel, &p.lexed.tokens, &mut findings);
            check_d005(rel, &p.lexed.tokens, &mut findings);
            check_s001(rel, &p.lexed.tokens, &mut findings);
            check_s002(rel, &p.lexed.tokens, &mut findings);
        }
        if P001_FILES.contains(&rel.as_str()) {
            check_p001(rel, &p.lexed.tokens, &mut findings);
        }
        if crate_of(rel).is_some_and(|c| P005_CRATES.contains(&c)) {
            check_p005(rel, &p.lexed.tokens, &mut findings);
        }
    }
    crate::analysis::check_cross(&facts, &mut findings);

    let mut out: Vec<Finding> = Vec::new();
    for ((rel, _), p) in files.iter().zip(&preps) {
        let mut fs: Vec<Finding> = findings
            .iter()
            .filter(|f| &f.file == rel)
            .cloned()
            .collect();
        fs.retain(|f| !p.exempt.iter().any(|&(a, b)| f.line >= a && f.line <= b));
        fs.sort();
        fs.dedup();
        out.extend(apply_waivers(rel, &p.lexed, fs));
    }
    out.sort();
    out
}

/// Validate this file's waiver directives and apply them to its findings.
/// Runs after both phases so cross-file findings are waivable too.
fn apply_waivers(relpath: &str, lexed: &Lexed, mut findings: Vec<Finding>) -> Vec<Finding> {
    let (waivers, issues) = parse_comments(&lexed.comments);
    for WaiverIssue { line, detail } in issues {
        findings.push(Finding {
            file: relpath.into(),
            line,
            rule: "W001",
            msg: format!("malformed waiver: {detail}"),
            hint: HINT_W001,
        });
    }
    // Per-line code presence, for waiver targeting.
    let code_lines: BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    for w in &waivers {
        for r in &w.rules {
            if !RULE_IDS.contains(&r.as_str()) || r.starts_with('W') {
                findings.push(Finding {
                    file: relpath.into(),
                    line: w.line,
                    rule: "W002",
                    msg: format!("waiver names unknown rule `{r}`"),
                    hint: HINT_W002,
                });
            }
        }
    }
    // A waiver sharing its line with code guards that line; one on its own
    // line guards the next code line.
    let mut used: BTreeMap<usize, bool> = BTreeMap::new();
    for (wi, w) in waivers.iter().enumerate() {
        let target = if code_lines.contains(&w.line) {
            Some(w.line)
        } else {
            code_lines.range(w.line + 1..).next().copied()
        };
        used.insert(wi, false);
        if let Some(t) = target {
            let before = findings.len();
            findings.retain(|f| {
                !(f.line == t && w.rules.iter().any(|r| r == f.rule) && !f.rule.starts_with('W'))
            });
            if findings.len() != before {
                used.insert(wi, true);
            }
        }
    }
    for (wi, w) in waivers.iter().enumerate() {
        let fine = w
            .rules
            .iter()
            .all(|r| RULE_IDS.contains(&r.as_str()) && !r.starts_with('W'));
        if fine && !used[&wi] {
            findings.push(Finding {
                file: relpath.into(),
                line: w.line,
                rule: "W003",
                msg: format!("unused waiver for {}", w.rules.join(",")),
                hint: HINT_W003,
            });
        }
    }
    findings.sort();
    findings
}

/// `crates/<name>/src/...` → `<name>`.
pub(crate) fn crate_of(relpath: &str) -> Option<&str> {
    let mut parts = relpath.split('/');
    if parts.next() != Some("crates") {
        return None;
    }
    let name = parts.next()?;
    if parts.next() != Some("src") {
        return None;
    }
    Some(name)
}

fn ident(t: &Token) -> Option<&str> {
    match &t.tok {
        Tok::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(t: &Token, c: char) -> bool {
    t.tok == Tok::Punct(c)
}

/// Does `toks[i..]` start with the given idents separated by `::`?
fn path_at(toks: &[Token], i: usize, segs: &[&str]) -> bool {
    let mut j = i;
    for (k, seg) in segs.iter().enumerate() {
        if ident(toks.get(j).unwrap_or(&NIL)) != Some(seg) {
            return false;
        }
        j += 1;
        if k + 1 < segs.len() {
            if !(is_punct(toks.get(j).unwrap_or(&NIL), ':')
                && is_punct(toks.get(j + 1).unwrap_or(&NIL), ':'))
            {
                return false;
            }
            j += 2;
        }
    }
    true
}

static NIL: Token = Token {
    tok: Tok::Punct('\0'),
    line: 0,
};

/// Line ranges (inclusive) covered by `#[cfg(test)]` items. Rules do not
/// apply inside test modules: tests of the live (threaded, wall-clock)
/// components are wall-clock by nature, and test-local ordering cannot leak
/// into experiment output.
fn test_module_ranges(toks: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        // `# [ ... ]` attribute?
        if !(is_punct(&toks[i], '#') && toks.get(i + 1).is_some_and(|t| is_punct(t, '['))) {
            i += 1;
            continue;
        }
        let attr_start_line = toks[i].line;
        // Find the matching `]`, remembering whether `cfg` and `test`
        // both appear inside (covers `cfg(test)` and `cfg(all(test, ..))`).
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut saw_cfg = false;
        let mut saw_test = false;
        while j < toks.len() {
            match &toks[j].tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Ident(s) if s == "cfg" => saw_cfg = true,
                Tok::Ident(s) if s == "test" => saw_test = true,
                _ => {}
            }
            j += 1;
        }
        if !(saw_cfg && saw_test) {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then swallow the annotated item:
        // up to `;` (use/extern) or through its brace-matched body.
        let mut k = j + 1;
        while k < toks.len() && is_punct(&toks[k], '#') {
            let mut d = 0usize;
            k += 1;
            while k < toks.len() {
                if is_punct(&toks[k], '[') {
                    d += 1;
                } else if is_punct(&toks[k], ']') {
                    d -= 1;
                    if d == 0 {
                        k += 1;
                        break;
                    }
                }
                k += 1;
            }
        }
        let mut end_line = attr_start_line;
        let mut brace = 0usize;
        while k < toks.len() {
            if is_punct(&toks[k], '{') {
                brace += 1;
            } else if is_punct(&toks[k], '}') {
                if brace <= 1 {
                    end_line = toks[k].line;
                    break;
                }
                brace -= 1;
            } else if is_punct(&toks[k], ';') && brace == 0 {
                end_line = toks[k].line;
                break;
            }
            k += 1;
        }
        ranges.push((attr_start_line, end_line));
        i = k + 1;
    }
    ranges
}

fn push(findings: &mut Vec<Finding>, file: &str, line: u32, rule: &'static str, msg: String) {
    findings.push(Finding {
        file: file.into(),
        line,
        rule,
        msg,
        hint: hint_of(rule),
    });
}

/// D001: no wall-clock time. Flags `use std::time::{..}` items importing
/// `Instant`/`SystemTime`, fully-qualified `std::time::Instant` paths, and
/// `Instant::now()` / `SystemTime::now()` construction sites. Bare type
/// mentions (struct fields) ride on their import's waiver.
fn check_d001(file: &str, toks: &[Token], findings: &mut Vec<Finding>) {
    let mut i = 0usize;
    while i < toks.len() {
        if ident(&toks[i]) == Some("use") && path_at(toks, i + 1, &["std", "time"]) {
            // Scan the use-item for the forbidden names.
            let mut j = i + 1;
            while j < toks.len() && !is_punct(&toks[j], ';') {
                if let Some(name @ ("Instant" | "SystemTime")) = ident(&toks[j]) {
                    push(
                        findings,
                        file,
                        toks[j].line,
                        "D001",
                        format!(
                            "imports wall-clock `std::time::{name}` in a sim-deterministic crate"
                        ),
                    );
                }
                j += 1;
            }
            i = j;
            continue;
        }
        if path_at(toks, i, &["std", "time"]) {
            // The segment after `std::time::` sits past the two colons.
            if let Some(name @ ("Instant" | "SystemTime")) =
                (is_punct(toks.get(i + 4).unwrap_or(&NIL), ':')
                    && is_punct(toks.get(i + 5).unwrap_or(&NIL), ':'))
                .then(|| ident(toks.get(i + 6).unwrap_or(&NIL)))
                .flatten()
            {
                push(
                    findings,
                    file,
                    toks[i].line,
                    "D001",
                    format!("uses wall-clock `std::time::{name}`"),
                );
                i += 7;
                continue;
            }
        }
        if let Some(name @ ("Instant" | "SystemTime")) = ident(&toks[i]) {
            if is_punct(toks.get(i + 1).unwrap_or(&NIL), ':')
                && is_punct(toks.get(i + 2).unwrap_or(&NIL), ':')
                && ident(toks.get(i + 3).unwrap_or(&NIL)) == Some("now")
                && !preceded_by_path(toks, i)
            {
                push(
                    findings,
                    file,
                    toks[i].line,
                    "D001",
                    format!("reads the wall clock via `{name}::now()`"),
                );
            }
        }
        i += 1;
    }
}

/// True when `toks[i]` is itself a path segment (preceded by `::`), so the
/// qualified-path matcher already judged it.
fn preceded_by_path(toks: &[Token], i: usize) -> bool {
    i >= 2 && is_punct(&toks[i - 1], ':') && is_punct(&toks[i - 2], ':')
}

/// Methods whose results expose hash-table ordering.
const ORDER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// D002: no iteration over `HashMap`/`HashSet`. Two passes: learn which
/// names in this file are hash-typed (field/param/let declarations and
/// `type` aliases), then flag order-exposing method calls and `for` loops
/// over those names. `global_hash` carries hash-typed *field* names from
/// the whole workspace, so `self.table` iterated two files away from its
/// struct definition is still caught (the PR-7 D002 gap).
fn check_d002(
    file: &str,
    toks: &[Token],
    global_hash: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    let mut hash_names: BTreeSet<String> = global_hash.clone();
    let mut hash_types: BTreeSet<String> = BTreeSet::new();
    hash_types.insert("HashMap".into());
    hash_types.insert("HashSet".into());

    // Aliases first: `type X = HashMap<..>` anywhere in the file.
    for i in 0..toks.len() {
        if ident(&toks[i]) == Some("type")
            && ident(toks.get(i + 1).unwrap_or(&NIL)).is_some()
            && is_punct(toks.get(i + 2).unwrap_or(&NIL), '=')
        {
            let mut j = i + 3;
            // Skip a path prefix (`std :: collections ::`).
            while j < toks.len() && !is_punct(&toks[j], ';') {
                if let Some(s) = ident(&toks[j]) {
                    if s == "HashMap" || s == "HashSet" {
                        hash_types.insert(ident(&toks[i + 1]).unwrap().to_string());
                        break;
                    }
                }
                j += 1;
            }
        }
    }
    // Declarations: `name : [&] [mut] [path ::] HashType [<..]`.
    for i in 0..toks.len() {
        let Some(t) = ident(&toks[i]) else { continue };
        if !hash_types.contains(t) {
            continue;
        }
        // Walk back over a path prefix and `&`/`mut`/lifetime noise to the
        // `:` that binds a name.
        let mut j = i;
        while j >= 2 && is_punct(&toks[j - 1], ':') && is_punct(&toks[j - 2], ':') {
            if ident(&toks[j - 3]).is_some() {
                j -= 3;
            } else {
                break;
            }
        }
        let mut k = j;
        while k >= 1 {
            match &toks[k - 1].tok {
                Tok::Punct('&') | Tok::Lifetime => k -= 1,
                Tok::Ident(s) if s == "mut" => k -= 1,
                _ => break,
            }
        }
        if k >= 2 && is_punct(&toks[k - 1], ':') && !is_punct(&toks[k - 2], ':') {
            if let Some(name) = ident(&toks[k - 2]) {
                hash_names.insert(name.to_string());
            }
        }
        // `let [mut] name = HashType :: new(..)` without annotation.
        if is_punct(toks.get(i.wrapping_sub(1)).unwrap_or(&NIL), '=') {
            let b = i - 1;
            if b >= 2
                && ident(&toks[b - 1]).is_some()
                && ident(&toks[b - 2]).is_some_and(|s| s == "let" || s == "mut")
            {
                hash_names.insert(ident(&toks[b - 1]).unwrap().to_string());
            }
        }
    }

    // Findings: `name.order_method(` …
    for i in 2..toks.len() {
        let Some(m) = ident(&toks[i]) else { continue };
        if !ORDER_METHODS.contains(&m) {
            continue;
        }
        if !is_punct(&toks[i - 1], '.') || !is_punct(toks.get(i + 1).unwrap_or(&NIL), '(') {
            continue;
        }
        if let Some(recv) = ident(&toks[i - 2]) {
            if hash_names.contains(recv) {
                push(
                    findings,
                    file,
                    toks[i].line,
                    "D002",
                    format!("iterates hash-ordered `{recv}` via `.{m}()`"),
                );
            }
        }
    }
    // … and `for pat in [&][mut] [self.]name {`.
    let mut i = 0usize;
    while i < toks.len() {
        if ident(&toks[i]) != Some("for") {
            i += 1;
            continue;
        }
        // Find `in` at bracket depth 0.
        let mut j = i + 1;
        let mut depth = 0i32;
        while j < toks.len() {
            match &toks[j].tok {
                Tok::Punct('(' | '[') => depth += 1,
                Tok::Punct(')' | ']') => depth -= 1,
                Tok::Ident(s) if s == "in" && depth == 0 => break,
                Tok::Punct('{') => break, // not a loop header
                _ => {}
            }
            j += 1;
        }
        if ident(toks.get(j).unwrap_or(&NIL)) != Some("in") {
            i = j;
            continue;
        }
        // Collect the iterated expression up to the loop `{`.
        let mut k = j + 1;
        let mut simple = true;
        let mut last_ident: Option<&str> = None;
        while k < toks.len() && !is_punct(&toks[k], '{') {
            match &toks[k].tok {
                Tok::Ident(s) if s == "mut" || s == "self" => last_ident = None,
                Tok::Ident(s) => last_ident = Some(s.as_str()),
                Tok::Punct('&' | '.') => {}
                _ => simple = false,
            }
            k += 1;
        }
        if simple {
            if let Some(name) = last_ident {
                if hash_names.contains(name) {
                    push(
                        findings,
                        file,
                        toks[j].line,
                        "D002",
                        format!("`for` loop iterates hash-ordered `{name}`"),
                    );
                }
            }
        }
        i = k;
    }
}

/// D003: RNGs must be seeded.
fn check_d003(file: &str, toks: &[Token], findings: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        match ident(&toks[i]) {
            Some("thread_rng") => push(
                findings,
                file,
                toks[i].line,
                "D003",
                "uses `thread_rng()` — OS-entropy RNG is unseeded".into(),
            ),
            Some("from_entropy") => push(
                findings,
                file,
                toks[i].line,
                "D003",
                "seeds an RNG from OS entropy (`from_entropy`)".into(),
            ),
            Some("rand") if path_at(toks, i, &["rand", "random"]) => push(
                findings,
                file,
                toks[i].line,
                "D003",
                "uses `rand::random()` — implicitly thread-local RNG".into(),
            ),
            _ => {}
        }
    }
}

/// D004: no OS threads or mpsc channels in sim-deterministic code.
fn check_d004(file: &str, toks: &[Token], findings: &mut Vec<Finding>) {
    let mut thread_imported = false;
    for i in 0..toks.len() {
        if ident(&toks[i]) == Some("use") && path_at(toks, i + 1, &["std", "thread"]) {
            thread_imported = true;
        }
        if path_at(toks, i, &["std", "thread"]) && !preceded_by_path(toks, i) {
            push(
                findings,
                file,
                toks[i].line,
                "D004",
                "uses `std::thread` in a sim-deterministic crate".into(),
            );
        }
        if path_at(toks, i, &["std", "sync", "mpsc"]) && !preceded_by_path(toks, i) {
            push(
                findings,
                file,
                toks[i].line,
                "D004",
                "uses `std::sync::mpsc` in a sim-deterministic crate".into(),
            );
        }
        if thread_imported && path_at(toks, i, &["thread", "spawn"]) && !preceded_by_path(toks, i) {
            push(
                findings,
                file,
                toks[i].line,
                "D004",
                "spawns an OS thread (`thread::spawn`)".into(),
            );
        }
    }
}

/// Idents that are wrapper/path noise around a heap's element type, not
/// the element itself.
const D005_SKIP: &[&str] = &[
    "Reverse",
    "std",
    "core",
    "cmp",
    "collections",
    "Box",
    "Rc",
    "Arc",
];

/// D005: ad-hoc priority queues must carry an insertion-order tie-break.
/// The event-core contract is that heap pop order is a *total* order —
/// `(at_us, seq)` with `seq` a monotone insertion counter — because
/// same-key ties otherwise pop in heap-internal (layout-dependent) order,
/// which is invisible until a refactor reshuffles sift paths and every
/// golden trace shifts. Heuristic: a `BinaryHeap<..>` element in a
/// sim-deterministic crate should be a struct defined in the same file
/// with a `seq`-named field; heaps of tuples, primitives or foreign types
/// cannot be verified and are flagged for an explicit waiver.
fn check_d005(file: &str, toks: &[Token], findings: &mut Vec<Finding>) {
    // Pass 1: structs defined in this file, and which of them have a field
    // whose name contains `seq`.
    let mut all_structs: BTreeSet<&str> = BTreeSet::new();
    let mut seq_structs: BTreeSet<&str> = BTreeSet::new();
    for i in 0..toks.len() {
        if ident(&toks[i]) != Some("struct") {
            continue;
        }
        let Some(name) = ident(toks.get(i + 1).unwrap_or(&NIL)) else {
            continue;
        };
        all_structs.insert(name);
        // Walk past generics to the field block; `struct X;` / tuple
        // structs have no named fields and never qualify.
        let mut j = i + 2;
        let mut angle = 0i32;
        while j < toks.len() {
            if is_punct(&toks[j], '<') {
                angle += 1;
            } else if is_punct(&toks[j], '>') {
                angle -= 1;
            } else if angle == 0 && (is_punct(&toks[j], ';') || is_punct(&toks[j], '(')) {
                break;
            } else if angle == 0 && is_punct(&toks[j], '{') {
                // Field block: look for `<ident containing seq> :` (and not
                // `::`, which would be a path, not a field type binding).
                let mut depth = 1i32;
                let mut k = j + 1;
                while k < toks.len() && depth > 0 {
                    if is_punct(&toks[k], '{') {
                        depth += 1;
                    } else if is_punct(&toks[k], '}') {
                        depth -= 1;
                    } else if depth == 1 {
                        if let Some(f) = ident(&toks[k]) {
                            if f.contains("seq")
                                && is_punct(toks.get(k + 1).unwrap_or(&NIL), ':')
                                && !is_punct(toks.get(k + 2).unwrap_or(&NIL), ':')
                            {
                                seq_structs.insert(name);
                            }
                        }
                    }
                    k += 1;
                }
                break;
            }
            j += 1;
        }
    }

    // Pass 2: typed `BinaryHeap<..>` mentions (incl. turbofish).
    let mut i = 0usize;
    while i < toks.len() {
        if ident(&toks[i]) != Some("BinaryHeap") {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        let mut g = i + 1;
        if is_punct(toks.get(g).unwrap_or(&NIL), ':')
            && is_punct(toks.get(g + 1).unwrap_or(&NIL), ':')
        {
            g += 2; // turbofish `BinaryHeap::<..>`
        }
        if !is_punct(toks.get(g).unwrap_or(&NIL), '<') {
            i += 1;
            continue; // bare mention (`use`, `BinaryHeap::new()`): no type info
        }
        // First non-wrapper ident inside the generic args is the element.
        let mut depth = 1i32;
        let mut j = g + 1;
        let mut elem: Option<&str> = None;
        while j < toks.len() && depth > 0 {
            if is_punct(&toks[j], '<') {
                depth += 1;
            } else if is_punct(&toks[j], '>') {
                depth -= 1;
            } else if elem.is_none() {
                if let Some(s) = ident(&toks[j]) {
                    if !D005_SKIP.contains(&s) {
                        elem = Some(s);
                    }
                }
            }
            j += 1;
        }
        match elem {
            Some(e) if seq_structs.contains(e) => {}
            Some(e) if all_structs.contains(e) => push(
                findings,
                file,
                line,
                "D005",
                format!(
                    "priority-queue element `{e}` has no insertion-seq field: \
                     same-key ties pop in heap-internal order"
                ),
            ),
            Some(e) => push(
                findings,
                file,
                line,
                "D005",
                format!(
                    "cannot verify the insertion-order tie-break for \
                     `BinaryHeap` element `{e}` (not defined in this file)"
                ),
            ),
            None => push(
                findings,
                file,
                line,
                "D005",
                "`BinaryHeap` of primitives/tuples has no insertion-order tie-break".into(),
            ),
        }
        i = j;
    }
}

/// Types whose presence in a `static` means shared mutable state.
const S001_INTERIOR_MUT: &[&str] = &[
    "Mutex",
    "RwLock",
    "Condvar",
    "Barrier",
    "Once",
    "OnceLock",
    "OnceCell",
    "LazyLock",
    "Cell",
    "RefCell",
    "UnsafeCell",
];

/// S001: no shared mutable statics in sim-deterministic crates. A
/// `static mut`, a `thread_local!`, or a `static` of an interior-mutable
/// type is process-global state: shard workers would observe each other's
/// writes in thread-timing order, outside the window rendezvous that makes
/// the sharded runner deterministic.
fn check_s001(file: &str, toks: &[Token], findings: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        match ident(&toks[i]) {
            Some("thread_local") if is_punct(toks.get(i + 1).unwrap_or(&NIL), '!') => {
                push(
                    findings,
                    file,
                    toks[i].line,
                    "S001",
                    "`thread_local!` state diverges across shard workers".into(),
                );
            }
            Some("static") => {
                if ident(toks.get(i + 1).unwrap_or(&NIL)) == Some("mut") {
                    push(
                        findings,
                        file,
                        toks[i].line,
                        "S001",
                        "`static mut` is shared mutable state across shard workers".into(),
                    );
                    continue;
                }
                // `static NAME : TYPE = ..;` — scan the type for an
                // interior-mutable head (atomics included).
                if ident(toks.get(i + 1).unwrap_or(&NIL)).is_none()
                    || !is_punct(toks.get(i + 2).unwrap_or(&NIL), ':')
                {
                    continue;
                }
                let mut j = i + 3;
                let mut depth = 0i32;
                while j < toks.len() {
                    match &toks[j].tok {
                        Tok::Punct('<' | '[' | '(') => depth += 1,
                        Tok::Punct('>' | ']' | ')') => depth -= 1,
                        Tok::Punct('=' | ';') if depth <= 0 => break,
                        Tok::Ident(t)
                            if S001_INTERIOR_MUT.contains(&t.as_str())
                                || t.starts_with("Atomic") =>
                        {
                            push(
                                findings,
                                file,
                                toks[i].line,
                                "S001",
                                format!(
                                    "interior-mutable `static` (`{t}`) is shared mutable \
                                     state across shard workers"
                                ),
                            );
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            _ => {}
        }
    }
}

/// `std::sync` items that mean cross-thread synchronization (Arc and Weak
/// are immutable sharing and stay legal; mpsc is D004's).
const S002_SYNC_PRIMS: &[&str] = &[
    "Mutex", "RwLock", "Condvar", "Barrier", "Once", "OnceLock", "LazyLock", "atomic",
];

/// S002: cross-thread synchronization primitives are confined to the
/// sanctioned rendezvous module(s). Flagged at the point the name enters
/// scope — the `use std::sync::..` item or a fully-qualified path — so a
/// sanctioned or live-mode file carries one reasoned waiver per import,
/// mirroring D004's treatment of `use std::thread`. Inside a rendezvous
/// file the rule instead polices the access discipline: `Ordering::Relaxed`
/// and `try_lock` are non-rendezvous accesses (unordered, or racing past
/// a barrier) and are flagged per site.
fn check_s002(file: &str, toks: &[Token], findings: &mut Vec<Finding>) {
    let rendezvous = S002_RENDEZVOUS_FILES.contains(&file);
    let mut i = 0usize;
    while i < toks.len() {
        if rendezvous {
            if path_at(toks, i, &["Ordering", "Relaxed"]) && !preceded_by_path(toks, i) {
                push(
                    findings,
                    file,
                    toks[i].line,
                    "S002",
                    "`Ordering::Relaxed` in the rendezvous module: cross-shard state must \
                     publish Release/Acquire at the window barriers"
                        .into(),
                );
            }
            if ident(&toks[i]) == Some("try_lock")
                && i >= 1
                && is_punct(&toks[i - 1], '.')
                && is_punct(toks.get(i + 1).unwrap_or(&NIL), '(')
            {
                push(
                    findings,
                    file,
                    toks[i].line,
                    "S002",
                    "`try_lock` races the window rendezvous: lock blocking or restructure \
                     so the access happens between barriers"
                        .into(),
                );
            }
            i += 1;
            continue;
        }
        if path_at(toks, i, &["std", "sync"]) && !preceded_by_path(toks, i) {
            // Collect the names this item brings in: to `;` for a `use`
            // item, else along the `::` path chain.
            let is_use = i >= 1 && ident(&toks[i - 1]) == Some("use");
            let mut names: Vec<&str> = Vec::new();
            let mut j = i + 3; // at the `sync` segment
            if is_use {
                j += 1;
                while j < toks.len() && !is_punct(&toks[j], ';') {
                    if let Some(n) = ident(&toks[j]) {
                        names.push(n);
                    }
                    j += 1;
                }
            } else {
                // Follow the `:: Name` chain of a qualified path.
                while is_punct(toks.get(j + 1).unwrap_or(&NIL), ':')
                    && is_punct(toks.get(j + 2).unwrap_or(&NIL), ':')
                {
                    if let Some(n) = ident(toks.get(j + 3).unwrap_or(&NIL)) {
                        names.push(n);
                        j += 3;
                    } else {
                        break;
                    }
                }
            }
            let prims: Vec<&str> = names
                .iter()
                .copied()
                .filter(|n| S002_SYNC_PRIMS.contains(n) || n.starts_with("Atomic"))
                .collect();
            if !prims.is_empty() {
                push(
                    findings,
                    file,
                    toks[i].line,
                    "S002",
                    format!(
                        "brings cross-thread synchronization (`{}`) into a \
                         sim-deterministic crate outside the sanctioned rendezvous module",
                        prims.join("`, `")
                    ),
                );
            }
            i = j;
            continue;
        }
        i += 1;
    }
}

/// P005: no fresh `Encoder::new()` on protocol paths. The pooled encode
/// path exists precisely so a steady-state protocol round performs zero
/// transient heap allocations; one forgotten `Encoder::new()` in a
/// handler silently reintroduces a per-message malloc that no test
/// notices until the allocation-gate benchmark regresses. Matches
/// `Encoder::new(` and `vce_codec::Encoder::new(` call sites; sized
/// construction (`with_capacity`, reused across calls) is deliberate and
/// allowed. Test modules are exempt via the shared `#[cfg(test)]` pass.
fn check_p005(file: &str, toks: &[Token], findings: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if ident(&toks[i]) != Some("Encoder") || !path_at(toks, i, &["Encoder", "new"]) {
            continue;
        }
        // `Encoder :: new (` — the `(` sits past the two colons and `new`.
        if is_punct(toks.get(i + 4).unwrap_or(&NIL), '(') {
            push(
                findings,
                file,
                toks[i].line,
                "P005",
                "allocates a fresh `Encoder` on a protocol path".into(),
            );
        }
    }
}

/// P001: no `unwrap()`/`expect()`/indexing in protocol message handlers —
/// scoped to the handler files; remote bytes reach every path in them.
fn check_p001(file: &str, toks: &[Token], findings: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if let Some(m @ ("unwrap" | "expect")) = ident(&toks[i]) {
            if i >= 1
                && is_punct(&toks[i - 1], '.')
                && is_punct(toks.get(i + 1).unwrap_or(&NIL), '(')
            {
                push(
                    findings,
                    file,
                    toks[i].line,
                    "P001",
                    format!("`.{m}()` can panic a node on remote input"),
                );
            }
        }
        if is_punct(&toks[i], '[') && i >= 1 {
            // Indexing = `[` directly after a value (identifier or closing
            // bracket). `vec![` has a `!` before it; `#[`, `: [u8; 4]` and
            // slice patterns have punctuation — none of those match.
            let panics = match &toks[i - 1].tok {
                Tok::Ident(s) => !matches!(s.as_str(), "mut" | "in" | "dyn" | "where"),
                Tok::Punct(')') | Tok::Punct(']') => true,
                _ => false,
            };
            if panics {
                push(
                    findings,
                    file,
                    toks[i].line,
                    "P001",
                    "indexing can panic a node on remote input".into(),
                );
            }
        }
    }
}
