//! Rule definitions and the token-stream matchers behind them.
//!
//! Rules are deliberately heuristic: they match token shapes, not types.
//! A miss is acceptable (reviewers still exist); a false positive is
//! waivable inline with a written reason. What is *not* acceptable is a
//! silent nondeterminism source in a sim-deterministic crate, which is
//! exactly what each D-rule exists to keep out.

use crate::lexer::{lex, Tok, Token};
use crate::waiver::{parse_comments, WaiverIssue};
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose `src/` must stay sim-deterministic. `lint` polices itself.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "sim",
    "isis",
    "exm",
    "net",
    "sdm",
    "channels",
    "taskgraph",
    "script",
    "baselines",
    "workloads",
    "core",
    "lint",
    "storage",
];

/// Files whose message-handling paths must not panic on remote input.
pub const P001_FILES: &[&str] = &[
    "crates/isis/src/member.rs",
    "crates/exm/src/daemon.rs",
    "crates/exm/src/executor.rs",
    "crates/exm/src/policy.rs",
    "crates/exm/src/wal.rs",
    "crates/storage/src/lib.rs",
];

pub const RULE_IDS: &[&str] = &[
    "D001", "D002", "D003", "D004", "D005", "P001", "W001", "W002", "W003",
];

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub msg: String,
    pub hint: &'static str,
}

const HINT_D001: &str = "use sim time (Host::now_us); wall-clock belongs to live mode, waive it";
const HINT_D002: &str =
    "switch to BTreeMap/BTreeSet, or waive with an order-insensitivity argument";
const HINT_D003: &str = "seed the RNG explicitly (e.g. SmallRng::seed_from_u64 from config)";
const HINT_D004: &str =
    "sim-deterministic code is single-threaded; threads live in vce-bench or live drivers (waive)";
const HINT_D005: &str = "give the element a `seq` field assigned from a monotone insertion counter and include it in `Ord` (the `(at_us, seq)` contract), or waive with an ordering argument";
const HINT_P001: &str = "remote input must not panic a node: drop/log or reply with an error, or waive with an invariant argument";
const HINT_W001: &str = "write `// vce-lint: allow(RULE) reason`";
const HINT_W002: &str = "valid rules: D001 D002 D003 D004 D005 P001";
const HINT_W003: &str = "the waived line is clean — delete the waiver";

/// Lint one file's source. `relpath` is workspace-relative and drives
/// per-crate scoping (e.g. `crates/sim/src/engine.rs`).
pub fn lint_source(relpath: &str, src: &str) -> Vec<Finding> {
    let lexed = lex(src);
    let crate_name = crate_of(relpath);
    let in_scope = crate_name.is_some_and(|c| DETERMINISTIC_CRATES.contains(&c));
    let exempt = test_module_ranges(&lexed.tokens);
    let is_exempt = |line: u32| exempt.iter().any(|&(a, b)| line >= a && line <= b);

    let mut findings: Vec<Finding> = Vec::new();
    if in_scope {
        check_d001(relpath, &lexed.tokens, &mut findings);
        check_d002(relpath, &lexed.tokens, &mut findings);
        check_d003(relpath, &lexed.tokens, &mut findings);
        check_d004(relpath, &lexed.tokens, &mut findings);
        check_d005(relpath, &lexed.tokens, &mut findings);
    }
    if P001_FILES.contains(&relpath) {
        check_p001(relpath, &lexed.tokens, &mut findings);
    }
    findings.retain(|f| !is_exempt(f.line));
    findings.sort();
    findings.dedup();

    // Waivers.
    let (waivers, issues) = parse_comments(&lexed.comments);
    for WaiverIssue { line, detail } in issues {
        findings.push(Finding {
            file: relpath.into(),
            line,
            rule: "W001",
            msg: format!("malformed waiver: {detail}"),
            hint: HINT_W001,
        });
    }
    // Per-line code presence, for waiver targeting.
    let code_lines: BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    for w in &waivers {
        for r in &w.rules {
            if !RULE_IDS.contains(&r.as_str()) || r.starts_with('W') {
                findings.push(Finding {
                    file: relpath.into(),
                    line: w.line,
                    rule: "W002",
                    msg: format!("waiver names unknown rule `{r}`"),
                    hint: HINT_W002,
                });
            }
        }
    }
    // A waiver sharing its line with code guards that line; one on its own
    // line guards the next code line.
    let mut used: BTreeMap<usize, bool> = BTreeMap::new();
    for (wi, w) in waivers.iter().enumerate() {
        let target = if code_lines.contains(&w.line) {
            Some(w.line)
        } else {
            code_lines.range(w.line + 1..).next().copied()
        };
        used.insert(wi, false);
        if let Some(t) = target {
            let before = findings.len();
            findings.retain(|f| {
                !(f.line == t && w.rules.iter().any(|r| r == f.rule) && !f.rule.starts_with('W'))
            });
            if findings.len() != before {
                used.insert(wi, true);
            }
        }
    }
    for (wi, w) in waivers.iter().enumerate() {
        let fine = w
            .rules
            .iter()
            .all(|r| RULE_IDS.contains(&r.as_str()) && !r.starts_with('W'));
        if fine && !used[&wi] {
            findings.push(Finding {
                file: relpath.into(),
                line: w.line,
                rule: "W003",
                msg: format!("unused waiver for {}", w.rules.join(",")),
                hint: HINT_W003,
            });
        }
    }
    findings.sort();
    findings
}

/// `crates/<name>/src/...` → `<name>`.
fn crate_of(relpath: &str) -> Option<&str> {
    let mut parts = relpath.split('/');
    if parts.next() != Some("crates") {
        return None;
    }
    let name = parts.next()?;
    if parts.next() != Some("src") {
        return None;
    }
    Some(name)
}

fn ident(t: &Token) -> Option<&str> {
    match &t.tok {
        Tok::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(t: &Token, c: char) -> bool {
    t.tok == Tok::Punct(c)
}

/// Does `toks[i..]` start with the given idents separated by `::`?
fn path_at(toks: &[Token], i: usize, segs: &[&str]) -> bool {
    let mut j = i;
    for (k, seg) in segs.iter().enumerate() {
        if ident(toks.get(j).unwrap_or(&NIL)) != Some(seg) {
            return false;
        }
        j += 1;
        if k + 1 < segs.len() {
            if !(is_punct(toks.get(j).unwrap_or(&NIL), ':')
                && is_punct(toks.get(j + 1).unwrap_or(&NIL), ':'))
            {
                return false;
            }
            j += 2;
        }
    }
    true
}

static NIL: Token = Token {
    tok: Tok::Punct('\0'),
    line: 0,
};

/// Line ranges (inclusive) covered by `#[cfg(test)]` items. Rules do not
/// apply inside test modules: tests of the live (threaded, wall-clock)
/// components are wall-clock by nature, and test-local ordering cannot leak
/// into experiment output.
fn test_module_ranges(toks: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        // `# [ ... ]` attribute?
        if !(is_punct(&toks[i], '#') && toks.get(i + 1).is_some_and(|t| is_punct(t, '['))) {
            i += 1;
            continue;
        }
        let attr_start_line = toks[i].line;
        // Find the matching `]`, remembering whether `cfg` and `test`
        // both appear inside (covers `cfg(test)` and `cfg(all(test, ..))`).
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut saw_cfg = false;
        let mut saw_test = false;
        while j < toks.len() {
            match &toks[j].tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Ident(s) if s == "cfg" => saw_cfg = true,
                Tok::Ident(s) if s == "test" => saw_test = true,
                _ => {}
            }
            j += 1;
        }
        if !(saw_cfg && saw_test) {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then swallow the annotated item:
        // up to `;` (use/extern) or through its brace-matched body.
        let mut k = j + 1;
        while k < toks.len() && is_punct(&toks[k], '#') {
            let mut d = 0usize;
            k += 1;
            while k < toks.len() {
                if is_punct(&toks[k], '[') {
                    d += 1;
                } else if is_punct(&toks[k], ']') {
                    d -= 1;
                    if d == 0 {
                        k += 1;
                        break;
                    }
                }
                k += 1;
            }
        }
        let mut end_line = attr_start_line;
        let mut brace = 0usize;
        while k < toks.len() {
            if is_punct(&toks[k], '{') {
                brace += 1;
            } else if is_punct(&toks[k], '}') {
                if brace <= 1 {
                    end_line = toks[k].line;
                    break;
                }
                brace -= 1;
            } else if is_punct(&toks[k], ';') && brace == 0 {
                end_line = toks[k].line;
                break;
            }
            k += 1;
        }
        ranges.push((attr_start_line, end_line));
        i = k + 1;
    }
    ranges
}

fn push(findings: &mut Vec<Finding>, file: &str, line: u32, rule: &'static str, msg: String) {
    let hint = match rule {
        "D001" => HINT_D001,
        "D002" => HINT_D002,
        "D003" => HINT_D003,
        "D004" => HINT_D004,
        "D005" => HINT_D005,
        _ => HINT_P001,
    };
    findings.push(Finding {
        file: file.into(),
        line,
        rule,
        msg,
        hint,
    });
}

/// D001: no wall-clock time. Flags `use std::time::{..}` items importing
/// `Instant`/`SystemTime`, fully-qualified `std::time::Instant` paths, and
/// `Instant::now()` / `SystemTime::now()` construction sites. Bare type
/// mentions (struct fields) ride on their import's waiver.
fn check_d001(file: &str, toks: &[Token], findings: &mut Vec<Finding>) {
    let mut i = 0usize;
    while i < toks.len() {
        if ident(&toks[i]) == Some("use") && path_at(toks, i + 1, &["std", "time"]) {
            // Scan the use-item for the forbidden names.
            let mut j = i + 1;
            while j < toks.len() && !is_punct(&toks[j], ';') {
                if let Some(name @ ("Instant" | "SystemTime")) = ident(&toks[j]) {
                    push(
                        findings,
                        file,
                        toks[j].line,
                        "D001",
                        format!(
                            "imports wall-clock `std::time::{name}` in a sim-deterministic crate"
                        ),
                    );
                }
                j += 1;
            }
            i = j;
            continue;
        }
        if path_at(toks, i, &["std", "time"]) {
            // The segment after `std::time::` sits past the two colons.
            if let Some(name @ ("Instant" | "SystemTime")) =
                (is_punct(toks.get(i + 4).unwrap_or(&NIL), ':')
                    && is_punct(toks.get(i + 5).unwrap_or(&NIL), ':'))
                .then(|| ident(toks.get(i + 6).unwrap_or(&NIL)))
                .flatten()
            {
                push(
                    findings,
                    file,
                    toks[i].line,
                    "D001",
                    format!("uses wall-clock `std::time::{name}`"),
                );
                i += 7;
                continue;
            }
        }
        if let Some(name @ ("Instant" | "SystemTime")) = ident(&toks[i]) {
            if is_punct(toks.get(i + 1).unwrap_or(&NIL), ':')
                && is_punct(toks.get(i + 2).unwrap_or(&NIL), ':')
                && ident(toks.get(i + 3).unwrap_or(&NIL)) == Some("now")
                && !preceded_by_path(toks, i)
            {
                push(
                    findings,
                    file,
                    toks[i].line,
                    "D001",
                    format!("reads the wall clock via `{name}::now()`"),
                );
            }
        }
        i += 1;
    }
}

/// True when `toks[i]` is itself a path segment (preceded by `::`), so the
/// qualified-path matcher already judged it.
fn preceded_by_path(toks: &[Token], i: usize) -> bool {
    i >= 2 && is_punct(&toks[i - 1], ':') && is_punct(&toks[i - 2], ':')
}

/// Methods whose results expose hash-table ordering.
const ORDER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// D002: no iteration over `HashMap`/`HashSet`. Two passes: learn which
/// names in this file are hash-typed (field/param/let declarations and
/// `type` aliases), then flag order-exposing method calls and `for` loops
/// over those names.
fn check_d002(file: &str, toks: &[Token], findings: &mut Vec<Finding>) {
    let mut hash_names: BTreeSet<String> = BTreeSet::new();
    let mut hash_types: BTreeSet<String> = BTreeSet::new();
    hash_types.insert("HashMap".into());
    hash_types.insert("HashSet".into());

    // Aliases first: `type X = HashMap<..>` anywhere in the file.
    for i in 0..toks.len() {
        if ident(&toks[i]) == Some("type")
            && ident(toks.get(i + 1).unwrap_or(&NIL)).is_some()
            && is_punct(toks.get(i + 2).unwrap_or(&NIL), '=')
        {
            let mut j = i + 3;
            // Skip a path prefix (`std :: collections ::`).
            while j < toks.len() && !is_punct(&toks[j], ';') {
                if let Some(s) = ident(&toks[j]) {
                    if s == "HashMap" || s == "HashSet" {
                        hash_types.insert(ident(&toks[i + 1]).unwrap().to_string());
                        break;
                    }
                }
                j += 1;
            }
        }
    }
    // Declarations: `name : [&] [mut] [path ::] HashType [<..]`.
    for i in 0..toks.len() {
        let Some(t) = ident(&toks[i]) else { continue };
        if !hash_types.contains(t) {
            continue;
        }
        // Walk back over a path prefix and `&`/`mut`/lifetime noise to the
        // `:` that binds a name.
        let mut j = i;
        while j >= 2 && is_punct(&toks[j - 1], ':') && is_punct(&toks[j - 2], ':') {
            if ident(&toks[j - 3]).is_some() {
                j -= 3;
            } else {
                break;
            }
        }
        let mut k = j;
        while k >= 1 {
            match &toks[k - 1].tok {
                Tok::Punct('&') | Tok::Lifetime => k -= 1,
                Tok::Ident(s) if s == "mut" => k -= 1,
                _ => break,
            }
        }
        if k >= 2 && is_punct(&toks[k - 1], ':') && !is_punct(&toks[k - 2], ':') {
            if let Some(name) = ident(&toks[k - 2]) {
                hash_names.insert(name.to_string());
            }
        }
        // `let [mut] name = HashType :: new(..)` without annotation.
        if is_punct(toks.get(i.wrapping_sub(1)).unwrap_or(&NIL), '=') {
            let b = i - 1;
            if b >= 2
                && ident(&toks[b - 1]).is_some()
                && ident(&toks[b - 2]).is_some_and(|s| s == "let" || s == "mut")
            {
                hash_names.insert(ident(&toks[b - 1]).unwrap().to_string());
            }
        }
    }

    // Findings: `name.order_method(` …
    for i in 2..toks.len() {
        let Some(m) = ident(&toks[i]) else { continue };
        if !ORDER_METHODS.contains(&m) {
            continue;
        }
        if !is_punct(&toks[i - 1], '.') || !is_punct(toks.get(i + 1).unwrap_or(&NIL), '(') {
            continue;
        }
        if let Some(recv) = ident(&toks[i - 2]) {
            if hash_names.contains(recv) {
                push(
                    findings,
                    file,
                    toks[i].line,
                    "D002",
                    format!("iterates hash-ordered `{recv}` via `.{m}()`"),
                );
            }
        }
    }
    // … and `for pat in [&][mut] [self.]name {`.
    let mut i = 0usize;
    while i < toks.len() {
        if ident(&toks[i]) != Some("for") {
            i += 1;
            continue;
        }
        // Find `in` at bracket depth 0.
        let mut j = i + 1;
        let mut depth = 0i32;
        while j < toks.len() {
            match &toks[j].tok {
                Tok::Punct('(' | '[') => depth += 1,
                Tok::Punct(')' | ']') => depth -= 1,
                Tok::Ident(s) if s == "in" && depth == 0 => break,
                Tok::Punct('{') => break, // not a loop header
                _ => {}
            }
            j += 1;
        }
        if ident(toks.get(j).unwrap_or(&NIL)) != Some("in") {
            i = j;
            continue;
        }
        // Collect the iterated expression up to the loop `{`.
        let mut k = j + 1;
        let mut simple = true;
        let mut last_ident: Option<&str> = None;
        while k < toks.len() && !is_punct(&toks[k], '{') {
            match &toks[k].tok {
                Tok::Ident(s) if s == "mut" || s == "self" => last_ident = None,
                Tok::Ident(s) => last_ident = Some(s.as_str()),
                Tok::Punct('&' | '.') => {}
                _ => simple = false,
            }
            k += 1;
        }
        if simple {
            if let Some(name) = last_ident {
                if hash_names.contains(name) {
                    push(
                        findings,
                        file,
                        toks[j].line,
                        "D002",
                        format!("`for` loop iterates hash-ordered `{name}`"),
                    );
                }
            }
        }
        i = k;
    }
}

/// D003: RNGs must be seeded.
fn check_d003(file: &str, toks: &[Token], findings: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        match ident(&toks[i]) {
            Some("thread_rng") => push(
                findings,
                file,
                toks[i].line,
                "D003",
                "uses `thread_rng()` — OS-entropy RNG is unseeded".into(),
            ),
            Some("from_entropy") => push(
                findings,
                file,
                toks[i].line,
                "D003",
                "seeds an RNG from OS entropy (`from_entropy`)".into(),
            ),
            Some("rand") if path_at(toks, i, &["rand", "random"]) => push(
                findings,
                file,
                toks[i].line,
                "D003",
                "uses `rand::random()` — implicitly thread-local RNG".into(),
            ),
            _ => {}
        }
    }
}

/// D004: no OS threads or mpsc channels in sim-deterministic code.
fn check_d004(file: &str, toks: &[Token], findings: &mut Vec<Finding>) {
    let mut thread_imported = false;
    for i in 0..toks.len() {
        if ident(&toks[i]) == Some("use") && path_at(toks, i + 1, &["std", "thread"]) {
            thread_imported = true;
        }
        if path_at(toks, i, &["std", "thread"]) && !preceded_by_path(toks, i) {
            push(
                findings,
                file,
                toks[i].line,
                "D004",
                "uses `std::thread` in a sim-deterministic crate".into(),
            );
        }
        if path_at(toks, i, &["std", "sync", "mpsc"]) && !preceded_by_path(toks, i) {
            push(
                findings,
                file,
                toks[i].line,
                "D004",
                "uses `std::sync::mpsc` in a sim-deterministic crate".into(),
            );
        }
        if thread_imported && path_at(toks, i, &["thread", "spawn"]) && !preceded_by_path(toks, i) {
            push(
                findings,
                file,
                toks[i].line,
                "D004",
                "spawns an OS thread (`thread::spawn`)".into(),
            );
        }
    }
}

/// Idents that are wrapper/path noise around a heap's element type, not
/// the element itself.
const D005_SKIP: &[&str] = &[
    "Reverse",
    "std",
    "core",
    "cmp",
    "collections",
    "Box",
    "Rc",
    "Arc",
];

/// D005: ad-hoc priority queues must carry an insertion-order tie-break.
/// The event-core contract is that heap pop order is a *total* order —
/// `(at_us, seq)` with `seq` a monotone insertion counter — because
/// same-key ties otherwise pop in heap-internal (layout-dependent) order,
/// which is invisible until a refactor reshuffles sift paths and every
/// golden trace shifts. Heuristic: a `BinaryHeap<..>` element in a
/// sim-deterministic crate should be a struct defined in the same file
/// with a `seq`-named field; heaps of tuples, primitives or foreign types
/// cannot be verified and are flagged for an explicit waiver.
fn check_d005(file: &str, toks: &[Token], findings: &mut Vec<Finding>) {
    // Pass 1: structs defined in this file, and which of them have a field
    // whose name contains `seq`.
    let mut all_structs: BTreeSet<&str> = BTreeSet::new();
    let mut seq_structs: BTreeSet<&str> = BTreeSet::new();
    for i in 0..toks.len() {
        if ident(&toks[i]) != Some("struct") {
            continue;
        }
        let Some(name) = ident(toks.get(i + 1).unwrap_or(&NIL)) else {
            continue;
        };
        all_structs.insert(name);
        // Walk past generics to the field block; `struct X;` / tuple
        // structs have no named fields and never qualify.
        let mut j = i + 2;
        let mut angle = 0i32;
        while j < toks.len() {
            if is_punct(&toks[j], '<') {
                angle += 1;
            } else if is_punct(&toks[j], '>') {
                angle -= 1;
            } else if angle == 0 && (is_punct(&toks[j], ';') || is_punct(&toks[j], '(')) {
                break;
            } else if angle == 0 && is_punct(&toks[j], '{') {
                // Field block: look for `<ident containing seq> :` (and not
                // `::`, which would be a path, not a field type binding).
                let mut depth = 1i32;
                let mut k = j + 1;
                while k < toks.len() && depth > 0 {
                    if is_punct(&toks[k], '{') {
                        depth += 1;
                    } else if is_punct(&toks[k], '}') {
                        depth -= 1;
                    } else if depth == 1 {
                        if let Some(f) = ident(&toks[k]) {
                            if f.contains("seq")
                                && is_punct(toks.get(k + 1).unwrap_or(&NIL), ':')
                                && !is_punct(toks.get(k + 2).unwrap_or(&NIL), ':')
                            {
                                seq_structs.insert(name);
                            }
                        }
                    }
                    k += 1;
                }
                break;
            }
            j += 1;
        }
    }

    // Pass 2: typed `BinaryHeap<..>` mentions (incl. turbofish).
    let mut i = 0usize;
    while i < toks.len() {
        if ident(&toks[i]) != Some("BinaryHeap") {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        let mut g = i + 1;
        if is_punct(toks.get(g).unwrap_or(&NIL), ':')
            && is_punct(toks.get(g + 1).unwrap_or(&NIL), ':')
        {
            g += 2; // turbofish `BinaryHeap::<..>`
        }
        if !is_punct(toks.get(g).unwrap_or(&NIL), '<') {
            i += 1;
            continue; // bare mention (`use`, `BinaryHeap::new()`): no type info
        }
        // First non-wrapper ident inside the generic args is the element.
        let mut depth = 1i32;
        let mut j = g + 1;
        let mut elem: Option<&str> = None;
        while j < toks.len() && depth > 0 {
            if is_punct(&toks[j], '<') {
                depth += 1;
            } else if is_punct(&toks[j], '>') {
                depth -= 1;
            } else if elem.is_none() {
                if let Some(s) = ident(&toks[j]) {
                    if !D005_SKIP.contains(&s) {
                        elem = Some(s);
                    }
                }
            }
            j += 1;
        }
        match elem {
            Some(e) if seq_structs.contains(e) => {}
            Some(e) if all_structs.contains(e) => push(
                findings,
                file,
                line,
                "D005",
                format!(
                    "priority-queue element `{e}` has no insertion-seq field: \
                     same-key ties pop in heap-internal order"
                ),
            ),
            Some(e) => push(
                findings,
                file,
                line,
                "D005",
                format!(
                    "cannot verify the insertion-order tie-break for \
                     `BinaryHeap` element `{e}` (not defined in this file)"
                ),
            ),
            None => push(
                findings,
                file,
                line,
                "D005",
                "`BinaryHeap` of primitives/tuples has no insertion-order tie-break".into(),
            ),
        }
        i = j;
    }
}

/// P001: no `unwrap()`/`expect()`/indexing in protocol message handlers —
/// scoped to the handler files; remote bytes reach every path in them.
fn check_p001(file: &str, toks: &[Token], findings: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if let Some(m @ ("unwrap" | "expect")) = ident(&toks[i]) {
            if i >= 1
                && is_punct(&toks[i - 1], '.')
                && is_punct(toks.get(i + 1).unwrap_or(&NIL), '(')
            {
                push(
                    findings,
                    file,
                    toks[i].line,
                    "P001",
                    format!("`.{m}()` can panic a node on remote input"),
                );
            }
        }
        if is_punct(&toks[i], '[') && i >= 1 {
            // Indexing = `[` directly after a value (identifier or closing
            // bracket). `vec![` has a `!` before it; `#[`, `: [u8; 4]` and
            // slice patterns have punctuation — none of those match.
            let panics = match &toks[i - 1].tok {
                Tok::Ident(s) => !matches!(s.as_str(), "mut" | "in" | "dyn" | "where"),
                Tok::Punct(')') | Tok::Punct(']') => true,
                _ => false,
            };
            if panics {
                push(
                    findings,
                    file,
                    toks[i].line,
                    "P001",
                    "indexing can panic a node on remote input".into(),
                );
            }
        }
    }
}
