//! Inline waiver directives.
//!
//! Grammar (inside any comment):
//!
//! ```text
//! // vce-lint: allow(D002) iteration feeds a sort two lines down
//! // vce-lint: allow(D001,D004) live driver is wall-clock by design
//! ```
//!
//! A waiver on its own line suppresses the named rules on the next code
//! line; a trailing waiver (sharing a line with code) suppresses its own
//! line. The reason is mandatory: a reasonless or malformed directive is
//! itself a finding (W001), and a waiver that suppresses nothing is too
//! (W003) — waivers must pull their weight or leave the tree.
//!
//! Cross-file findings (P002–P004, D006) anchor at a line in some scanned
//! file — the const, the call site, the journal site — so the same
//! mechanics cover them; waivers apply after the cross-file pass.

use crate::lexer::Comment;

#[derive(Debug, Clone)]
pub struct Waiver {
    /// Line the directive appears on.
    pub line: u32,
    pub rules: Vec<String>,
    pub reason: String,
}

/// W001: directive present but unparseable or missing its reason.
/// (Unknown rule ids are validated against the rule table in `rules`.)
#[derive(Debug, Clone)]
pub struct WaiverIssue {
    pub line: u32,
    pub detail: String,
}

pub const MARKER: &str = "vce-lint:";

/// Extract waivers (and malformed-directive issues) from a comment stream.
/// Multi-line block comments are scanned per physical line. Doc comments
/// (`///`, `//!`, `/**`) are rendered documentation, not directives — they
/// are skipped so docs may quote waiver syntax verbatim.
pub fn parse_comments(comments: &[Comment]) -> (Vec<Waiver>, Vec<WaiverIssue>) {
    let mut waivers = Vec::new();
    let mut issues = Vec::new();
    for c in comments {
        let t = c.text.trim_start();
        if t.starts_with("///")
            || t.starts_with("//!")
            || t.starts_with("/**")
            || t.starts_with("/*!")
        {
            continue;
        }
        for (off, text) in c.text.lines().enumerate() {
            let line = c.line + off as u32;
            let Some(pos) = text.find(MARKER) else {
                continue;
            };
            match parse_directive(&text[pos + MARKER.len()..]) {
                Ok((rules, reason)) => waivers.push(Waiver {
                    line,
                    rules,
                    reason,
                }),
                Err(detail) => issues.push(WaiverIssue { line, detail }),
            }
        }
    }
    (waivers, issues)
}

/// Parse the text after `vce-lint:`. Returns (rule ids, reason).
fn parse_directive(rest: &str) -> Result<(Vec<String>, String), String> {
    let rest = rest.trim_start();
    let Some(body) = rest.strip_prefix("allow(") else {
        return Err("expected `allow(RULE[,RULE]) reason`".into());
    };
    let Some(close) = body.find(')') else {
        return Err("unclosed `allow(`".into());
    };
    let ids: Vec<String> = body[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .collect();
    if ids.iter().any(String::is_empty) {
        return Err("empty rule id in `allow(...)`".into());
    }
    let reason = body[close + 1..].trim();
    if reason.is_empty() {
        return Err("waiver has no reason — say why the rule is safe to break here".into());
    }
    Ok((ids, reason.to_string()))
}
