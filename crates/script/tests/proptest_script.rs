//! Property tests: parser totality on arbitrary input, and the
//! parse∘pretty fixpoint on arbitrary ASTs.

use proptest::prelude::*;
use vce_script::{parse, pretty, CmpOp, Cond, CountSpec, Script, Stmt, TargetClass, Var};

fn arb_target() -> impl Strategy<Value = TargetClass> {
    prop_oneof![
        Just("ASYNC"),
        Just("SYNC"),
        Just("LSYNC"),
        Just("WORKSTATION"),
        Just("SIMD"),
        Just("MIMD"),
        Just("VECTOR"),
    ]
    .prop_map(|kw| TargetClass::from_keyword(kw).unwrap())
}

fn arb_count() -> impl Strategy<Value = CountSpec> {
    prop_oneof![
        (1u32..50).prop_map(CountSpec::exact),
        (2u32..50).prop_map(CountSpec::up_to),
        (2u32..20, 0u32..20).prop_map(|(min, extra)| CountSpec::range(min, min + extra)),
    ]
}

fn arb_path() -> impl Strategy<Value = String> {
    "[a-z/_.]{1,24}"
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (
        arb_target(),
        prop_oneof![
            Just(CmpOp::Ge),
            Just(CmpOp::Le),
            Just(CmpOp::Gt),
            Just(CmpOp::Lt),
            Just(CmpOp::Eq),
            Just(CmpOp::Ne)
        ],
        0u64..100,
        any::<bool>(),
    )
        .prop_map(|(t, op, value, idle)| Cond {
            var: if idle { Var::Idle(t) } else { Var::Total(t) },
            op,
            value,
        })
}

fn arb_stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let leaf = prop_oneof![
        (arb_target(), arb_count(), arb_path()).prop_map(|(target, count, path)| Stmt::Remote {
            target,
            count,
            path
        }),
        arb_path().prop_map(|path| Stmt::Local { path }),
        (arb_path(), arb_path(), 0u64..10_000).prop_map(|(from, to, kib)| Stmt::Connect {
            from,
            to,
            kib
        }),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        prop_oneof![
            leaf,
            (
                arb_cond(),
                prop::collection::vec(arb_stmt(depth - 1), 1..3),
                prop::collection::vec(arb_stmt(depth - 1), 0..3),
            )
                .prop_map(|(cond, then, els)| Stmt::If { cond, then, els }),
        ]
        .boxed()
    }
}

proptest! {
    #[test]
    fn parser_never_panics_on_arbitrary_text(src in ".{0,200}") {
        let _ = parse(&src);
    }

    #[test]
    fn parser_never_panics_on_directive_shaped_text(
        src in "(ASYNC|SYNC|LOCAL|IF|END|ELSE|CONNECT|WORKSTATION)[ 0-9,\\-\"a-z()<>=!\n]{0,80}"
    ) {
        let _ = parse(&src);
    }

    #[test]
    fn pretty_parse_is_identity_on_asts(stmts in prop::collection::vec(arb_stmt(2), 0..6)) {
        let script = Script::new(stmts);
        let printed = pretty(&script);
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{e}\n---\n{printed}"));
        prop_assert_eq!(reparsed, script);
    }
}
