//! The lexer.

use crate::error::{ErrorKind, ScriptError};

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// A bare word: directive keywords, variable names.
    Word(String),
    /// An unsigned integer.
    Int(u32),
    /// A quoted string (quotes stripped).
    Str(String),
    /// `-` (open range suffix).
    Dash,
    /// `,` (range separator).
    Comma,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// Comparison operator as written.
    Cmp(&'static str),
    /// End of line (statements are line-oriented).
    Newline,
    /// End of input.
    Eof,
}

/// A token plus its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Tokenize a script. Comments (`#` to end of line) are skipped; runs of
/// blank lines collapse to single newlines.
pub fn lex(src: &str) -> Result<Vec<Spanned>, ScriptError> {
    let mut out = Vec::new();
    let mut line = 1u32;
    let mut col = 1u32;
    let mut chars = src.chars().peekable();

    macro_rules! push {
        ($tok:expr, $c:expr) => {
            out.push(Spanned {
                tok: $tok,
                line,
                col: $c,
            })
        };
    }

    while let Some(&c) = chars.peek() {
        let start_col = col;
        match c {
            '\n' => {
                chars.next();
                // Collapse duplicate newlines.
                if !matches!(
                    out.last().map(|s: &Spanned| &s.tok),
                    Some(Tok::Newline) | None
                ) {
                    push!(Tok::Newline, start_col);
                }
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                chars.next();
                col += 1;
            }
            '#' => {
                while let Some(&c2) = chars.peek() {
                    if c2 == '\n' {
                        break;
                    }
                    chars.next();
                    col += 1;
                }
            }
            '"' => {
                chars.next();
                col += 1;
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => {
                            col += 1;
                            break;
                        }
                        Some('\n') | None => {
                            return Err(ScriptError::new(
                                line,
                                start_col,
                                ErrorKind::UnterminatedString,
                            ))
                        }
                        Some(c2) => {
                            s.push(c2);
                            col += 1;
                        }
                    }
                }
                push!(Tok::Str(s), start_col);
            }
            '-' => {
                chars.next();
                col += 1;
                push!(Tok::Dash, start_col);
            }
            ',' => {
                chars.next();
                col += 1;
                push!(Tok::Comma, start_col);
            }
            '(' => {
                chars.next();
                col += 1;
                push!(Tok::LParen, start_col);
            }
            ')' => {
                chars.next();
                col += 1;
                push!(Tok::RParen, start_col);
            }
            '>' | '<' | '=' | '!' => {
                chars.next();
                col += 1;
                let two = chars.peek() == Some(&'=');
                let op = match (c, two) {
                    ('>', true) => ">=",
                    ('<', true) => "<=",
                    ('=', true) => "==",
                    ('!', true) => "!=",
                    ('>', false) => ">",
                    ('<', false) => "<",
                    _ => {
                        return Err(ScriptError::new(
                            line,
                            start_col,
                            ErrorKind::UnexpectedChar(c),
                        ))
                    }
                };
                if two {
                    chars.next();
                    col += 1;
                }
                push!(Tok::Cmp(op), start_col);
            }
            '0'..='9' => {
                let mut v: u64 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(digit) = d.to_digit(10) {
                        v = v * 10 + u64::from(digit);
                        if v > u64::from(u32::MAX) {
                            return Err(ScriptError::new(
                                line,
                                start_col,
                                ErrorKind::NumberTooLarge,
                            ));
                        }
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                push!(Tok::Int(v as u32), start_col);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut w = String::new();
                while let Some(&c2) = chars.peek() {
                    if c2.is_ascii_alphanumeric() || c2 == '_' {
                        w.push(c2);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                push!(Tok::Word(w), start_col);
            }
            other => {
                return Err(ScriptError::new(
                    line,
                    start_col,
                    ErrorKind::UnexpectedChar(other),
                ))
            }
        }
    }
    // Terminate the final statement.
    if !matches!(
        out.last().map(|s: &Spanned| &s.tok),
        Some(Tok::Newline) | None
    ) {
        out.push(Spanned {
            tok: Tok::Newline,
            line,
            col,
        });
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn paper_line_lexes() {
        assert_eq!(
            toks("ASYNC 2 \"/apps/snow/collector.vce\""),
            vec![
                Tok::Word("ASYNC".into()),
                Tok::Int(2),
                Tok::Str("/apps/snow/collector.vce".into()),
                Tok::Newline,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn ranges_and_punctuation() {
        assert_eq!(
            toks("SYNC 5,10\nASYNC 5-"),
            vec![
                Tok::Word("SYNC".into()),
                Tok::Int(5),
                Tok::Comma,
                Tok::Int(10),
                Tok::Newline,
                Tok::Word("ASYNC".into()),
                Tok::Int(5),
                Tok::Dash,
                Tok::Newline,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            toks("IF IDLE(WORKSTATION) >= 4"),
            vec![
                Tok::Word("IF".into()),
                Tok::Word("IDLE".into()),
                Tok::LParen,
                Tok::Word("WORKSTATION".into()),
                Tok::RParen,
                Tok::Cmp(">="),
                Tok::Int(4),
                Tok::Newline,
                Tok::Eof,
            ]
        );
        assert_eq!(toks("a < 1")[1], Tok::Cmp("<"));
        assert_eq!(toks("a != 1")[1], Tok::Cmp("!="));
        assert_eq!(toks("a == 1")[1], Tok::Cmp("=="));
    }

    #[test]
    fn comments_and_blanks_skipped() {
        assert_eq!(
            toks("# header\n\n\nLOCAL \"x\" # trailing\n"),
            vec![
                Tok::Word("LOCAL".into()),
                Tok::Str("x".into()),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_reports_position() {
        let e = lex("LOCAL \"oops").unwrap_err();
        assert_eq!(e.kind, ErrorKind::UnterminatedString);
        assert_eq!((e.line, e.col), (1, 7));
    }

    #[test]
    fn bad_char_rejected() {
        let e = lex("ASYNC 2 @").unwrap_err();
        assert_eq!(e.kind, ErrorKind::UnexpectedChar('@'));
    }

    #[test]
    fn huge_number_rejected() {
        let e = lex("ASYNC 99999999999").unwrap_err();
        assert_eq!(e.kind, ErrorKind::NumberTooLarge);
    }

    #[test]
    fn lone_bang_rejected() {
        let e = lex("a ! b").unwrap_err();
        assert_eq!(e.kind, ErrorKind::UnexpectedChar('!'));
    }
}
