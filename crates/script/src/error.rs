//! Script diagnostics with source positions.

use std::fmt;

/// What went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// A character the lexer cannot start a token with.
    UnexpectedChar(char),
    /// A string literal without a closing quote.
    UnterminatedString,
    /// A number too large for the count field.
    NumberTooLarge,
    /// The parser expected something else here.
    Expected {
        /// What was required.
        wanted: &'static str,
        /// What was found.
        found: String,
    },
    /// `ELSE`/`END` without an open `IF`, or `IF` without `END`.
    UnbalancedIf,
    /// A count range with min > max (`SYNC 10,5`).
    EmptyRange {
        /// Range minimum.
        min: u32,
        /// Range maximum.
        max: u32,
    },
    /// Count of zero instances.
    ZeroCount,
}

/// An error with its source location (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptError {
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// The problem.
    pub kind: ErrorKind,
}

impl ScriptError {
    pub(crate) fn new(line: u32, col: u32, kind: ErrorKind) -> Self {
        Self { line, col, kind }
    }
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "script error at {}:{}: ", self.line, self.col)?;
        match &self.kind {
            ErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            ErrorKind::UnterminatedString => write!(f, "unterminated string literal"),
            ErrorKind::NumberTooLarge => write!(f, "number too large"),
            ErrorKind::Expected { wanted, found } => {
                write!(f, "expected {wanted}, found {found}")
            }
            ErrorKind::UnbalancedIf => write!(f, "unbalanced IF/ELSE/END"),
            ErrorKind::EmptyRange { min, max } => {
                write!(f, "empty instance range {min},{max}")
            }
            ErrorKind::ZeroCount => write!(f, "instance count must be at least 1"),
        }
    }
}

impl std::error::Error for ScriptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_position() {
        let e = ScriptError::new(3, 7, ErrorKind::UnterminatedString);
        let s = e.to_string();
        assert!(s.contains("3:7"));
        assert!(s.contains("unterminated"));
    }

    #[test]
    fn expected_formats_both_sides() {
        let e = ScriptError::new(
            1,
            1,
            ErrorKind::Expected {
                wanted: "a path string",
                found: "NEWLINE".into(),
            },
        );
        let s = e.to_string();
        assert!(s.contains("a path string") && s.contains("NEWLINE"));
    }
}
