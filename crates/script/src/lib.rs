#![warn(missing_docs)]
//! # vce-script — the application description language
//!
//! §5 of the paper drives the prototype scheduler/dispatcher with a script:
//!
//! ```text
//! ASYNC 2 "/apps/snow/collector.vce"
//! WORKSTATION 1 "/apps/snow/usercollect.vce"
//! SYNC 1 "/apps/snow/predictor.vce"
//! LOCAL "/apps/snow/display.vce"
//! ```
//!
//! and promises extensions: *"constructs like `ASYNC 5-` to indicate five or
//! less remote instances are required, `SYNC 5,10` to indicate between five
//! and 10 remote instances and so on. Conditional statements and statements
//! describing the communication requirements of the application will also
//! be added."* This crate implements the published syntax **and** those
//! promised extensions:
//!
//! * count ranges: `ASYNC 5-` (up to five), `SYNC 5,10` (five to ten);
//! * conditionals: `IF IDLE(WORKSTATION) >= 4 ... ELSE ... END`, over the
//!   runtime quantities `IDLE(class)` and `TOTAL(class)`;
//! * communication statements: `CONNECT "a" "b" 64` declares a 64 KiB/step
//!   channel between two named programs;
//! * `#` comments and blank lines.
//!
//! Targets may be problem-architecture classes (`ASYNC`, `SYNC`, `LSYNC`)
//! or machine classes (`WORKSTATION`, `SIMD`, `MIMD`, `VECTOR`) — the paper
//! mixes both in its example.
//!
//! ```
//! use vce_script::{parse, WEATHER_SCRIPT};
//! let script = parse(WEATHER_SCRIPT).unwrap();
//! assert_eq!(script.statements().len(), 4);
//! ```

pub mod ast;
pub mod error;
pub mod eval;
pub mod parser;
pub mod pretty;
pub mod token;

pub use ast::{CmpOp, Cond, CountSpec, Script, Stmt, TargetClass, Var};
pub use error::{ErrorKind, ScriptError};
pub use eval::{evaluate, EvalEnv, Evaluated, LocalRun, PlacementRequest};
pub use parser::parse;
pub use pretty::pretty;

/// The exact weather-forecasting script from §5 of the paper.
pub const WEATHER_SCRIPT: &str = r#"ASYNC 2 "/apps/snow/collector.vce"
WORKSTATION 1 "/apps/snow/usercollect.vce"
SYNC 1 "/apps/snow/predictor.vce"
LOCAL "/apps/snow/display.vce"
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weather_script_parses_to_four_statements() {
        let s = parse(WEATHER_SCRIPT).unwrap();
        assert_eq!(s.statements().len(), 4);
    }
}
