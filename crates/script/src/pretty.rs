//! Pretty-printer: renders an AST back to canonical script source.
//!
//! `parse(pretty(parse(src))) == parse(src)` — the property test in
//! `tests/proptest_script.rs` holds the printer and parser to that law.

use std::fmt::Write as _;

use crate::ast::{Cond, CountSpec, Script, Stmt, Var};

/// Render a script AST as canonical source text.
pub fn pretty(script: &Script) -> String {
    let mut s = String::new();
    emit(script.statements(), 0, &mut s);
    s
}

fn emit(stmts: &[Stmt], indent: usize, out: &mut String) {
    for stmt in stmts {
        for _ in 0..indent {
            out.push_str("  ");
        }
        match stmt {
            Stmt::Remote {
                target,
                count,
                path,
            } => {
                let _ = writeln!(
                    out,
                    "{} {} \"{}\"",
                    target.keyword(),
                    fmt_count(count),
                    path
                );
            }
            Stmt::Local { path } => {
                let _ = writeln!(out, "LOCAL \"{path}\"");
            }
            Stmt::Connect { from, to, kib } => {
                let _ = writeln!(out, "CONNECT \"{from}\" \"{to}\" {kib}");
            }
            Stmt::If { cond, then, els } => {
                let _ = writeln!(out, "IF {}", fmt_cond(cond));
                emit(then, indent + 1, out);
                if !els.is_empty() {
                    for _ in 0..indent {
                        out.push_str("  ");
                    }
                    out.push_str("ELSE\n");
                    emit(els, indent + 1, out);
                }
                for _ in 0..indent {
                    out.push_str("  ");
                }
                out.push_str("END\n");
            }
        }
    }
}

fn fmt_count(c: &CountSpec) -> String {
    if c.min == c.max {
        format!("{}", c.min)
    } else if c.min == 1 {
        format!("{}-", c.max)
    } else {
        format!("{},{}", c.min, c.max)
    }
}

fn fmt_cond(c: &Cond) -> String {
    let var = match c.var {
        Var::Idle(t) => format!("IDLE({})", t.keyword()),
        Var::Total(t) => format!("TOTAL({})", t.keyword()),
    };
    format!("{var} {} {}", c.op.spelling(), c.value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::WEATHER_SCRIPT;

    #[test]
    fn weather_round_trips() {
        let ast = parse(WEATHER_SCRIPT).unwrap();
        let printed = pretty(&ast);
        assert_eq!(parse(&printed).unwrap(), ast);
    }

    #[test]
    fn conditional_round_trips_with_indent() {
        let src = "IF IDLE(SIMD) > 0\nSIMD 1 \"f\"\nELSE\nLOCAL \"s\"\nEND\n";
        let ast = parse(src).unwrap();
        let printed = pretty(&ast);
        assert!(printed.contains("  SIMD 1 \"f\""));
        assert_eq!(parse(&printed).unwrap(), ast);
    }

    #[test]
    fn ranges_print_canonically() {
        let ast = parse("ASYNC 5- \"a\"\nSYNC 5,10 \"b\"\nMIMD 3 \"c\"\n").unwrap();
        let printed = pretty(&ast);
        assert!(printed.contains("ASYNC 5- \"a\""));
        assert!(printed.contains("SYNC 5,10 \"b\""));
        assert!(printed.contains("MIMD 3 \"c\""));
        assert_eq!(parse(&printed).unwrap(), ast);
    }
}
