//! Recursive-descent parser (line-oriented).

use crate::ast::{CmpOp, Cond, CountSpec, Script, Stmt, TargetClass, Var};
use crate::error::{ErrorKind, ScriptError};
use crate::token::{lex, Spanned, Tok};

/// Parse a script source into an AST.
pub fn parse(src: &str) -> Result<Script, ScriptError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let stmts = p.block(/*top_level=*/ true)?;
    Ok(Script::new(stmts))
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Spanned {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn next(&mut self) -> Spanned {
        let s = self.toks[self.pos.min(self.toks.len() - 1)].clone();
        self.pos = (self.pos + 1).min(self.toks.len() - 1);
        s
    }

    fn err(&self, wanted: &'static str) -> ScriptError {
        let s = self.peek();
        ScriptError::new(
            s.line,
            s.col,
            ErrorKind::Expected {
                wanted,
                found: format!("{:?}", s.tok),
            },
        )
    }

    fn eat_newlines(&mut self) {
        while matches!(self.peek().tok, Tok::Newline) {
            self.next();
        }
    }

    fn expect_newline(&mut self) -> Result<(), ScriptError> {
        match self.peek().tok {
            Tok::Newline | Tok::Eof => {
                self.next();
                Ok(())
            }
            _ => Err(self.err("end of line")),
        }
    }

    fn expect_str(&mut self) -> Result<String, ScriptError> {
        match self.next().tok {
            Tok::Str(s) => Ok(s),
            _ => {
                self.pos -= 1;
                Err(self.err("a quoted path"))
            }
        }
    }

    fn expect_int(&mut self) -> Result<(u32, Spanned), ScriptError> {
        let s = self.next();
        match s.tok {
            Tok::Int(n) => Ok((n, s)),
            _ => {
                self.pos -= 1;
                Err(self.err("a number"))
            }
        }
    }

    /// Parse statements until `ELSE`/`END` (nested) or EOF (top level).
    fn block(&mut self, top_level: bool) -> Result<Vec<Stmt>, ScriptError> {
        let mut stmts = Vec::new();
        loop {
            self.eat_newlines();
            let s = self.peek().clone();
            match &s.tok {
                Tok::Eof => {
                    if top_level {
                        return Ok(stmts);
                    }
                    return Err(ScriptError::new(s.line, s.col, ErrorKind::UnbalancedIf));
                }
                Tok::Word(w) if w == "ELSE" || w == "END" => {
                    if top_level {
                        return Err(ScriptError::new(s.line, s.col, ErrorKind::UnbalancedIf));
                    }
                    return Ok(stmts);
                }
                _ => stmts.push(self.statement()?),
            }
        }
    }

    fn statement(&mut self) -> Result<Stmt, ScriptError> {
        let s = self.next();
        let word = match &s.tok {
            Tok::Word(w) => w.clone(),
            _ => {
                self.pos -= 1;
                return Err(self.err("a directive keyword"));
            }
        };
        match word.as_str() {
            "LOCAL" => {
                let path = self.expect_str()?;
                self.expect_newline()?;
                Ok(Stmt::Local { path })
            }
            "CONNECT" => {
                let from = self.expect_str()?;
                let to = self.expect_str()?;
                let (kib, _) = self.expect_int()?;
                self.expect_newline()?;
                Ok(Stmt::Connect {
                    from,
                    to,
                    kib: u64::from(kib),
                })
            }
            "IF" => {
                let cond = self.cond()?;
                self.expect_newline()?;
                let then = self.block(false)?;
                let mut els = Vec::new();
                let kw = self.next();
                match &kw.tok {
                    Tok::Word(w) if w == "ELSE" => {
                        self.expect_newline()?;
                        els = self.block(false)?;
                        let end = self.next();
                        match &end.tok {
                            Tok::Word(w2) if w2 == "END" => {}
                            _ => {
                                return Err(ScriptError::new(
                                    end.line,
                                    end.col,
                                    ErrorKind::UnbalancedIf,
                                ))
                            }
                        }
                    }
                    Tok::Word(w) if w == "END" => {}
                    _ => return Err(ScriptError::new(kw.line, kw.col, ErrorKind::UnbalancedIf)),
                }
                self.expect_newline()?;
                Ok(Stmt::If { cond, then, els })
            }
            other => {
                let Some(target) = TargetClass::from_keyword(other) else {
                    self.pos -= 1;
                    return Err(self.err("a directive keyword (ASYNC/SYNC/LSYNC/WORKSTATION/SIMD/MIMD/VECTOR/LOCAL/CONNECT/IF)"));
                };
                let count = self.count_spec()?;
                let path = self.expect_str()?;
                self.expect_newline()?;
                Ok(Stmt::Remote {
                    target,
                    count,
                    path,
                })
            }
        }
    }

    fn count_spec(&mut self) -> Result<CountSpec, ScriptError> {
        let (n, span) = self.expect_int()?;
        if n == 0 {
            return Err(ScriptError::new(span.line, span.col, ErrorKind::ZeroCount));
        }
        match self.peek().tok {
            Tok::Dash => {
                self.next();
                Ok(CountSpec::up_to(n))
            }
            Tok::Comma => {
                self.next();
                let (m, span2) = self.expect_int()?;
                if m < n {
                    return Err(ScriptError::new(
                        span2.line,
                        span2.col,
                        ErrorKind::EmptyRange { min: n, max: m },
                    ));
                }
                Ok(CountSpec::range(n, m))
            }
            _ => Ok(CountSpec::exact(n)),
        }
    }

    fn cond(&mut self) -> Result<Cond, ScriptError> {
        let s = self.next();
        let func = match &s.tok {
            Tok::Word(w) => w.clone(),
            _ => {
                self.pos -= 1;
                return Err(self.err("IDLE or TOTAL"));
            }
        };
        if !matches!(self.next().tok, Tok::LParen) {
            self.pos -= 1;
            return Err(self.err("'('"));
        }
        let cls = self.next();
        let target = match &cls.tok {
            Tok::Word(w) => TargetClass::from_keyword(w).ok_or_else(|| {
                ScriptError::new(
                    cls.line,
                    cls.col,
                    ErrorKind::Expected {
                        wanted: "a class keyword",
                        found: w.clone(),
                    },
                )
            })?,
            _ => {
                self.pos -= 1;
                return Err(self.err("a class keyword"));
            }
        };
        if !matches!(self.next().tok, Tok::RParen) {
            self.pos -= 1;
            return Err(self.err("')'"));
        }
        let var = match func.as_str() {
            "IDLE" => Var::Idle(target),
            "TOTAL" => Var::Total(target),
            _ => {
                return Err(ScriptError::new(
                    s.line,
                    s.col,
                    ErrorKind::Expected {
                        wanted: "IDLE or TOTAL",
                        found: func,
                    },
                ))
            }
        };
        let opt = self.next();
        let op = match &opt.tok {
            Tok::Cmp(">=") => CmpOp::Ge,
            Tok::Cmp("<=") => CmpOp::Le,
            Tok::Cmp(">") => CmpOp::Gt,
            Tok::Cmp("<") => CmpOp::Lt,
            Tok::Cmp("==") => CmpOp::Eq,
            Tok::Cmp("!=") => CmpOp::Ne,
            _ => {
                self.pos -= 1;
                return Err(self.err("a comparison operator"));
            }
        };
        let (value, _) = self.expect_int()?;
        Ok(Cond {
            var,
            op,
            value: u64::from(value),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WEATHER_SCRIPT;
    use vce_net::MachineClass;
    use vce_taskgraph::ProblemClass;

    #[test]
    fn parses_the_paper_script_exactly() {
        let s = parse(WEATHER_SCRIPT).unwrap();
        let st = s.statements();
        assert_eq!(st.len(), 4);
        assert_eq!(
            st[0],
            Stmt::Remote {
                target: TargetClass::Problem(ProblemClass::Asynchronous),
                count: CountSpec::exact(2),
                path: "/apps/snow/collector.vce".into(),
            }
        );
        assert_eq!(
            st[1],
            Stmt::Remote {
                target: TargetClass::Machine(MachineClass::Workstation),
                count: CountSpec::exact(1),
                path: "/apps/snow/usercollect.vce".into(),
            }
        );
        assert_eq!(
            st[2],
            Stmt::Remote {
                target: TargetClass::Problem(ProblemClass::Synchronous),
                count: CountSpec::exact(1),
                path: "/apps/snow/predictor.vce".into(),
            }
        );
        assert_eq!(
            st[3],
            Stmt::Local {
                path: "/apps/snow/display.vce".into()
            }
        );
    }

    #[test]
    fn future_work_ranges() {
        let s = parse("ASYNC 5- \"a\"\nSYNC 5,10 \"b\"\n").unwrap();
        assert_eq!(
            s.statements()[0],
            Stmt::Remote {
                target: TargetClass::Problem(ProblemClass::Asynchronous),
                count: CountSpec::up_to(5),
                path: "a".into()
            }
        );
        assert_eq!(
            s.statements()[1],
            Stmt::Remote {
                target: TargetClass::Problem(ProblemClass::Synchronous),
                count: CountSpec::range(5, 10),
                path: "b".into()
            }
        );
    }

    #[test]
    fn conditionals_with_else() {
        let src = r#"IF IDLE(WORKSTATION) >= 4
WORKSTATION 4 "par"
ELSE
LOCAL "seq"
END
"#;
        let s = parse(src).unwrap();
        match &s.statements()[0] {
            Stmt::If { cond, then, els } => {
                assert_eq!(cond.op, CmpOp::Ge);
                assert_eq!(cond.value, 4);
                assert!(matches!(
                    cond.var,
                    Var::Idle(TargetClass::Machine(MachineClass::Workstation))
                ));
                assert_eq!(then.len(), 1);
                assert_eq!(els.len(), 1);
            }
            other => panic!("expected If, got {other:?}"),
        }
    }

    #[test]
    fn conditional_without_else_and_nested() {
        let src = r#"IF TOTAL(SIMD) > 0
IF IDLE(SIMD) > 0
SIMD 1 "fast"
END
END
"#;
        let s = parse(src).unwrap();
        match &s.statements()[0] {
            Stmt::If { then, els, .. } => {
                assert!(els.is_empty());
                assert!(matches!(then[0], Stmt::If { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn connect_statement() {
        let s = parse("CONNECT \"a\" \"b\" 64\n").unwrap();
        assert_eq!(
            s.statements()[0],
            Stmt::Connect {
                from: "a".into(),
                to: "b".into(),
                kib: 64
            }
        );
    }

    #[test]
    fn comments_and_blank_lines_ok() {
        let s = parse("# weather app\n\nLOCAL \"d\" # display\n\n").unwrap();
        assert_eq!(s.statements().len(), 1);
    }

    #[test]
    fn error_zero_count() {
        let e = parse("ASYNC 0 \"x\"\n").unwrap_err();
        assert_eq!(e.kind, ErrorKind::ZeroCount);
    }

    #[test]
    fn error_empty_range() {
        let e = parse("ASYNC 10,5 \"x\"\n").unwrap_err();
        assert_eq!(e.kind, ErrorKind::EmptyRange { min: 10, max: 5 });
    }

    #[test]
    fn error_missing_path() {
        let e = parse("ASYNC 2\n").unwrap_err();
        assert!(matches!(e.kind, ErrorKind::Expected { wanted, .. } if wanted.contains("path")));
    }

    #[test]
    fn error_unknown_keyword() {
        let e = parse("FROBNICATE 1 \"x\"\n").unwrap_err();
        assert!(matches!(e.kind, ErrorKind::Expected { .. }));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn error_unbalanced_if() {
        assert_eq!(
            parse("IF IDLE(SIMD) > 0\nSIMD 1 \"x\"\n").unwrap_err().kind,
            ErrorKind::UnbalancedIf
        );
        assert_eq!(parse("END\n").unwrap_err().kind, ErrorKind::UnbalancedIf);
        assert_eq!(parse("ELSE\n").unwrap_err().kind, ErrorKind::UnbalancedIf);
    }

    #[test]
    fn error_trailing_garbage_on_line() {
        let e = parse("LOCAL \"x\" 5\n").unwrap_err();
        assert!(matches!(e.kind, ErrorKind::Expected { wanted, .. } if wanted == "end of line"));
    }

    #[test]
    fn empty_script_is_valid_and_empty() {
        assert!(parse("").unwrap().statements().is_empty());
        assert!(parse("\n\n# nothing\n").unwrap().statements().is_empty());
    }
}
