//! Abstract syntax of application-description scripts.

use vce_net::MachineClass;
use vce_taskgraph::ProblemClass;

/// A directive's target: either a problem-architecture class (the design
/// stage's vocabulary) or a concrete machine class — the paper's example
/// mixes both (`ASYNC ...` and `WORKSTATION ...`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetClass {
    /// Route by problem architecture (compilation manager picks machines).
    Problem(ProblemClass),
    /// Route to a specific hardware group.
    Machine(MachineClass),
}

impl TargetClass {
    /// Parse a directive keyword.
    pub fn from_keyword(word: &str) -> Option<Self> {
        Some(match word {
            "ASYNC" => TargetClass::Problem(ProblemClass::Asynchronous),
            "SYNC" => TargetClass::Problem(ProblemClass::Synchronous),
            "LSYNC" => TargetClass::Problem(ProblemClass::LooselySynchronous),
            "WORKSTATION" => TargetClass::Machine(MachineClass::Workstation),
            "SIMD" => TargetClass::Machine(MachineClass::Simd),
            "MIMD" => TargetClass::Machine(MachineClass::Mimd),
            "VECTOR" => TargetClass::Machine(MachineClass::Vector),
            _ => return None,
        })
    }

    /// The keyword for this target.
    pub fn keyword(self) -> &'static str {
        match self {
            TargetClass::Problem(p) => p.script_keyword(),
            TargetClass::Machine(m) => m.script_keyword(),
        }
    }

    /// The machine classes this target can use, in preference order.
    pub fn machine_classes(self) -> Vec<MachineClass> {
        match self {
            TargetClass::Problem(p) => p.machine_preferences().to_vec(),
            TargetClass::Machine(m) => vec![m],
        }
    }
}

/// Instance count specification.
///
/// `N` ⇒ exactly N; `N-` ⇒ one to N ("five or less", §5's planned
/// extension); `N,M` ⇒ N to M.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountSpec {
    /// Minimum acceptable instances.
    pub min: u32,
    /// Maximum useful instances.
    pub max: u32,
}

impl CountSpec {
    /// Exactly `n`.
    pub fn exact(n: u32) -> Self {
        Self { min: n, max: n }
    }

    /// Up to `n` (`"n-"`).
    pub fn up_to(n: u32) -> Self {
        Self { min: 1, max: n }
    }

    /// Between `min` and `max` (`"min,max"`).
    pub fn range(min: u32, max: u32) -> Self {
        Self { min, max }
    }
}

/// Comparison operators in conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `>=`
    Ge,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Apply the comparison.
    pub fn eval(self, lhs: u64, rhs: u64) -> bool {
        match self {
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
        }
    }

    /// Source spelling.
    pub fn spelling(self) -> &'static str {
        match self {
            CmpOp::Ge => ">=",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Lt => "<",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }
}

/// Runtime quantities conditions may test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Var {
    /// Idle machines of a class.
    Idle(TargetClass),
    /// All machines of a class.
    Total(TargetClass),
}

/// A condition: `VAR op CONST`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cond {
    /// Left-hand variable.
    pub var: Var,
    /// Operator.
    pub op: CmpOp,
    /// Right-hand constant.
    pub value: u64,
}

/// One statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Remote execution request: `CLASS countspec "path"`.
    Remote {
        /// Where to run.
        target: TargetClass,
        /// How many instances.
        count: CountSpec,
        /// Program path.
        path: String,
    },
    /// `LOCAL "path"`: run on the submitting workstation after remote
    /// executions have begun (§5).
    Local {
        /// Program path.
        path: String,
    },
    /// `CONNECT "a" "b" kib`: communication requirement between programs.
    Connect {
        /// Sender program path.
        from: String,
        /// Receiver program path.
        to: String,
        /// Volume per step, KiB.
        kib: u64,
    },
    /// `IF cond ... [ELSE ...] END`.
    If {
        /// The condition.
        cond: Cond,
        /// Statements when true.
        then: Vec<Stmt>,
        /// Statements when false.
        els: Vec<Stmt>,
    },
}

/// A parsed script.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Script {
    stmts: Vec<Stmt>,
}

impl Script {
    /// Wrap parsed statements.
    pub fn new(stmts: Vec<Stmt>) -> Self {
        Self { stmts }
    }

    /// Top-level statements.
    pub fn statements(&self) -> &[Stmt] {
        &self.stmts
    }

    /// All program paths mentioned anywhere (for anticipatory compilation).
    pub fn all_paths(&self) -> Vec<&str> {
        fn walk<'a>(stmts: &'a [Stmt], out: &mut Vec<&'a str>) {
            for s in stmts {
                match s {
                    Stmt::Remote { path, .. } | Stmt::Local { path } => out.push(path),
                    Stmt::Connect { .. } => {}
                    Stmt::If { then, els, .. } => {
                        walk(then, out);
                        walk(els, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.stmts, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [
            "ASYNC",
            "SYNC",
            "LSYNC",
            "WORKSTATION",
            "SIMD",
            "MIMD",
            "VECTOR",
        ] {
            let t = TargetClass::from_keyword(kw).unwrap();
            assert_eq!(t.keyword(), kw);
        }
        assert!(TargetClass::from_keyword("BOGUS").is_none());
    }

    #[test]
    fn machine_classes_expand_problem_targets() {
        let t = TargetClass::Problem(ProblemClass::Synchronous);
        assert_eq!(t.machine_classes()[0], MachineClass::Simd);
        let m = TargetClass::Machine(MachineClass::Vector);
        assert_eq!(m.machine_classes(), vec![MachineClass::Vector]);
    }

    #[test]
    fn count_specs() {
        assert_eq!(CountSpec::exact(3), CountSpec { min: 3, max: 3 });
        assert_eq!(CountSpec::up_to(5), CountSpec { min: 1, max: 5 });
        assert_eq!(CountSpec::range(5, 10), CountSpec { min: 5, max: 10 });
    }

    #[test]
    fn cmp_ops_eval() {
        assert!(CmpOp::Ge.eval(4, 4));
        assert!(CmpOp::Le.eval(3, 4));
        assert!(CmpOp::Gt.eval(5, 4));
        assert!(CmpOp::Lt.eval(3, 4));
        assert!(CmpOp::Eq.eval(4, 4));
        assert!(CmpOp::Ne.eval(3, 4));
        assert!(!CmpOp::Gt.eval(4, 4));
    }

    #[test]
    fn all_paths_walks_conditionals() {
        let s = Script::new(vec![
            Stmt::Local { path: "d".into() },
            Stmt::If {
                cond: Cond {
                    var: Var::Idle(TargetClass::Machine(MachineClass::Workstation)),
                    op: CmpOp::Ge,
                    value: 1,
                },
                then: vec![Stmt::Remote {
                    target: TargetClass::Machine(MachineClass::Workstation),
                    count: CountSpec::exact(1),
                    path: "a".into(),
                }],
                els: vec![Stmt::Local { path: "a".into() }],
            },
        ]);
        assert_eq!(s.all_paths(), vec!["a", "d"]);
    }
}
