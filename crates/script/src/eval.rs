//! Script evaluation: resolve conditionals against the runtime environment
//! and flatten the script into the requests the execution program sends to
//! group leaders (§5's `SendRequestToSpecifiedGroup` loop).

use std::collections::BTreeMap;

use vce_net::MachineClass;

use crate::ast::{CountSpec, Script, Stmt, TargetClass, Var};

/// Snapshot of the fleet the conditional variables read.
#[derive(Debug, Clone, Default)]
pub struct EvalEnv {
    /// Idle machines per class.
    pub idle: BTreeMap<MachineClass, u64>,
    /// Total machines per class.
    pub total: BTreeMap<MachineClass, u64>,
}

impl EvalEnv {
    /// Empty environment (all counts zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set counts for one class.
    pub fn with_class(mut self, class: MachineClass, idle: u64, total: u64) -> Self {
        self.idle.insert(class, idle);
        self.total.insert(class, total);
        self
    }

    fn idle_of(&self, t: TargetClass) -> u64 {
        t.machine_classes()
            .iter()
            .map(|c| self.idle.get(c).copied().unwrap_or(0))
            .sum()
    }

    fn total_of(&self, t: TargetClass) -> u64 {
        t.machine_classes()
            .iter()
            .map(|c| self.total.get(c).copied().unwrap_or(0))
            .sum()
    }

    fn var(&self, v: Var) -> u64 {
        match v {
            Var::Idle(t) => self.idle_of(t),
            Var::Total(t) => self.total_of(t),
        }
    }
}

/// One flattened remote-execution request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementRequest {
    /// Target class as written in the script.
    pub target: TargetClass,
    /// Instance count range.
    pub count: CountSpec,
    /// Program path.
    pub path: String,
}

/// One `LOCAL` run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalRun {
    /// Program path.
    pub path: String,
}

/// A flattened, condition-resolved script.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Evaluated {
    /// Remote requests in script order.
    pub remote: Vec<PlacementRequest>,
    /// Local runs in script order.
    pub local: Vec<LocalRun>,
    /// Declared channels `(from, to, kib)`.
    pub channels: Vec<(String, String, u64)>,
}

/// Evaluate a script against an environment snapshot.
pub fn evaluate(script: &Script, env: &EvalEnv) -> Evaluated {
    let mut out = Evaluated::default();
    eval_block(script.statements(), env, &mut out);
    out
}

fn eval_block(stmts: &[Stmt], env: &EvalEnv, out: &mut Evaluated) {
    for s in stmts {
        match s {
            Stmt::Remote {
                target,
                count,
                path,
            } => out.remote.push(PlacementRequest {
                target: *target,
                count: *count,
                path: path.clone(),
            }),
            Stmt::Local { path } => out.local.push(LocalRun { path: path.clone() }),
            Stmt::Connect { from, to, kib } => out.channels.push((from.clone(), to.clone(), *kib)),
            Stmt::If { cond, then, els } => {
                let lhs = env.var(cond.var);
                if cond.op.eval(lhs, cond.value) {
                    eval_block(then, env, out);
                } else {
                    eval_block(els, env, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::WEATHER_SCRIPT;

    fn env() -> EvalEnv {
        EvalEnv::new()
            .with_class(MachineClass::Workstation, 5, 10)
            .with_class(MachineClass::Simd, 1, 1)
            .with_class(MachineClass::Mimd, 0, 2)
    }

    #[test]
    fn weather_script_flattens() {
        let s = parse(WEATHER_SCRIPT).unwrap();
        let e = evaluate(&s, &env());
        assert_eq!(e.remote.len(), 3);
        assert_eq!(e.local.len(), 1);
        assert_eq!(e.local[0].path, "/apps/snow/display.vce");
        assert!(e.channels.is_empty());
    }

    #[test]
    fn conditional_picks_then_branch() {
        let src = r#"IF IDLE(WORKSTATION) >= 4
WORKSTATION 4 "par"
ELSE
LOCAL "seq"
END
"#;
        let s = parse(src).unwrap();
        let e = evaluate(&s, &env()); // 5 idle workstations
        assert_eq!(e.remote.len(), 1);
        assert!(e.local.is_empty());
    }

    #[test]
    fn conditional_picks_else_branch() {
        let src = r#"IF IDLE(MIMD) > 0
MIMD 1 "par"
ELSE
LOCAL "seq"
END
"#;
        let s = parse(src).unwrap();
        let e = evaluate(&s, &env()); // 0 idle MIMD
        assert!(e.remote.is_empty());
        assert_eq!(e.local.len(), 1);
    }

    #[test]
    fn problem_targets_aggregate_over_preferred_machines() {
        // IDLE(SYNC) = idle SIMD + idle VECTOR + idle MIMD = 1 + 0 + 0.
        let src = "IF IDLE(SYNC) == 1\nLOCAL \"yes\"\nEND\n";
        let s = parse(src).unwrap();
        let e = evaluate(&s, &env());
        assert_eq!(e.local.len(), 1);
    }

    #[test]
    fn total_var_and_channels() {
        let src = r#"IF TOTAL(WORKSTATION) >= 10
CONNECT "a" "b" 128
END
"#;
        let s = parse(src).unwrap();
        let e = evaluate(&s, &env());
        assert_eq!(e.channels, vec![("a".to_string(), "b".to_string(), 128)]);
    }

    #[test]
    fn unknown_classes_count_zero() {
        let src = "IF IDLE(VECTOR) == 0\nLOCAL \"v\"\nEND\n";
        let s = parse(src).unwrap();
        let e = evaluate(&s, &EvalEnv::new());
        assert_eq!(e.local.len(), 1);
    }

    #[test]
    fn nested_conditionals() {
        let src = r#"IF TOTAL(WORKSTATION) > 0
IF IDLE(WORKSTATION) > 100
LOCAL "inner-no"
ELSE
LOCAL "inner-yes"
END
END
"#;
        let s = parse(src).unwrap();
        let e = evaluate(&s, &env());
        assert_eq!(e.local.len(), 1);
        assert_eq!(e.local[0].path, "inner-yes");
    }
}
