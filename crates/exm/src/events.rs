//! Application timeline events — what experiments read from the executor.

use vce_net::NodeId;

use crate::migrate::MigrationTechnique;
use crate::msg::{InstanceKey, ReqId};

/// One time-stamped application event.
#[derive(Debug, Clone, PartialEq)]
pub enum AppEvent {
    /// A resource request was (re)sent to a group.
    RequestSent {
        /// The request.
        req: ReqId,
    },
    /// An allocation arrived.
    Allocated {
        /// The request.
        req: ReqId,
        /// Machines granted.
        nodes: Vec<NodeId>,
    },
    /// The group refused the request.
    AllocFailed {
        /// The request.
        req: ReqId,
        /// Leader's reason.
        reason: String,
    },
    /// A program was sent to a machine.
    Loaded {
        /// The instance.
        key: InstanceKey,
        /// The machine.
        node: NodeId,
    },
    /// An instance finished.
    InstanceDone {
        /// The instance.
        key: InstanceKey,
        /// Where it finished.
        node: NodeId,
    },
    /// An instance was evicted and is being recovered.
    InstanceEvicted {
        /// The instance.
        key: InstanceKey,
        /// The machine that evicted it.
        node: NodeId,
    },
    /// An instance changed machines.
    InstanceMoved {
        /// The instance.
        key: InstanceKey,
        /// New machine.
        to: NodeId,
    },
    /// The straggler watchdog judged an instance's primary copy stalled and
    /// speculatively requested a redundant copy elsewhere.
    InstanceHedged {
        /// The instance.
        key: InstanceKey,
        /// The host whose progress stalled.
        node: NodeId,
    },
    /// A whole task (all instances) completed.
    TaskComplete {
        /// Task id in the graph.
        task: u32,
    },
    /// The application finished; termination was broadcast.
    AppDone,
}

/// A recorded timeline.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    events: Vec<(u64, AppEvent)>,
}

impl Timeline {
    /// Record an event at `now_us`.
    pub fn push(&mut self, now_us: u64, event: AppEvent) {
        self.events.push((now_us, event));
    }

    /// All events in order.
    pub fn events(&self) -> &[(u64, AppEvent)] {
        &self.events
    }

    /// Time of the first event matching the predicate.
    pub fn first_time(&self, pred: impl Fn(&AppEvent) -> bool) -> Option<u64> {
        self.events.iter().find(|(_, e)| pred(e)).map(|(t, _)| *t)
    }

    /// Time of [`AppEvent::AppDone`] (the application makespan).
    pub fn done_at(&self) -> Option<u64> {
        self.first_time(|e| matches!(e, AppEvent::AppDone))
    }

    /// Count events matching a predicate.
    pub fn count(&self, pred: impl Fn(&AppEvent) -> bool) -> usize {
        self.events.iter().filter(|(_, e)| pred(e)).count()
    }

    /// Request→allocation latency for one request, µs.
    pub fn allocation_latency(&self, req: ReqId) -> Option<u64> {
        let sent =
            self.first_time(|e| matches!(e, AppEvent::RequestSent { req: r } if *r == req))?;
        let alloc =
            self.first_time(|e| matches!(e, AppEvent::Allocated { req: r, .. } if *r == req))?;
        Some(alloc.saturating_sub(sent))
    }
}

/// A migration observed by the daemon side, for experiment accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationRecord {
    /// What moved.
    pub key: InstanceKey,
    /// Technique used.
    pub technique: MigrationTechnique,
    /// Source machine.
    pub from: NodeId,
    /// Destination machine.
    pub to: NodeId,
    /// When the source killed the job, µs.
    pub out_at_us: u64,
    /// State volume moved, KiB.
    pub state_kib: u64,
    /// Work re-executed due to rollback, Mops.
    pub lost_mops: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::AppId;

    #[test]
    fn timeline_queries() {
        let req = ReqId {
            app: AppId(1),
            seq: 0,
        };
        let mut t = Timeline::default();
        t.push(10, AppEvent::RequestSent { req });
        t.push(
            250,
            AppEvent::Allocated {
                req,
                nodes: vec![NodeId(1)],
            },
        );
        t.push(900, AppEvent::AppDone);
        assert_eq!(t.allocation_latency(req), Some(240));
        assert_eq!(t.done_at(), Some(900));
        assert_eq!(t.count(|e| matches!(e, AppEvent::Allocated { .. })), 1);
        assert_eq!(t.events().len(), 3);
    }

    #[test]
    fn missing_events_yield_none() {
        let t = Timeline::default();
        assert_eq!(t.done_at(), None);
        assert_eq!(
            t.allocation_latency(ReqId {
                app: AppId(1),
                seq: 9
            }),
            None
        );
    }
}
