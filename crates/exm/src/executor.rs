//! The execution program (§5's `execute()` pseudocode) — one per
//! application, running on the submitting user's workstation.
//!
//! It walks the (coding-complete) task graph: for every dispatchable task
//! it sends a resource request to the appropriate class group, loads the
//! program on the allocated machines, tracks instance completions (and
//! evictions, and moves), charges dataflow transfer time before dependents
//! dispatch, runs `LOCAL` tasks on the user's own workstation, and
//! broadcasts termination when everything is done.
//!
//! One deliberate generalization over the 1994 pseudocode: the prototype
//! allocated *everything* up front and then started execution; we dispatch
//! tasks as their dataflow predecessors finish (the paper's own §4
//! describes exactly this dynamic behaviour as the goal). Retries make the
//! executor robust to leader failover: requests are idempotent and
//! re-sent until answered.

use std::collections::{BTreeMap, BTreeSet};

use vce_channels::registry::{ChannelId, ChannelRegistry, PortId as ChanPortId, Role};
use vce_codec::Codec;
use vce_net::{Addr, Endpoint, Envelope, Host, MachineClass, NodeId, NodeList};
use vce_sdm::MachineDb;
use vce_taskgraph::{algo, TaskGraph, TaskId};

use crate::backoff::backoff_delay_us;
use crate::config::ExmConfig;
use crate::events::{AppEvent, Timeline};
use crate::msg::{AppId, ExmMsg, InstanceKey, LoadProgram, ReqId};

/// Timer tokens carry a kind tag in bits 32.. and a 32-bit payload (task
/// id or request seq) in the low bits, so the *full* `u32` id space is
/// collision-free. (The previous scheme added ids to bases spaced 2^20
/// apart, so a task id ≥ 2^20 bled into the probe token and beyond.) Tags
/// stay far below the isis namespace at 2^48 — see docs/PROTOCOL.md. The
/// daemon uses the same encoding since PR 7, and vce-lint P003 now
/// enforces space disjointness statically (it caught the daemon carrying
/// this file's pre-fix scheme).
const TOKEN_TAG_SHIFT: u32 = 32;
const TAG_RETRY: u64 = 1;
const TAG_DISPATCH: u64 = 2;
const TAG_PROBE: u64 = 3;
const TOKEN_PROBE: u64 = TAG_PROBE << TOKEN_TAG_SHIFT;
const LOCAL_PID_BASE: u64 = 1 << 16;

/// Retry timer for request `seq`.
fn retry_token(seq: u32) -> u64 {
    (TAG_RETRY << TOKEN_TAG_SHIFT) | u64::from(seq)
}

/// Dispatch (dataflow-delay) timer for `task`.
fn dispatch_token(task: TaskId) -> u64 {
    (TAG_DISPATCH << TOKEN_TAG_SHIFT) | u64::from(task.0)
}

/// Split a token into its kind tag and 32-bit payload.
fn decode_token(token: u64) -> (u64, u32) {
    (token >> TOKEN_TAG_SHIFT, token as u32)
}
/// Unanswered probes before an instance is declared lost.
const PROBE_MISS_LIMIT: u32 = 3;

#[derive(Debug)]
struct PendingReq {
    task: TaskId,
    /// Instance slots this request will fill.
    slots: Vec<u32>,
    class: MachineClass,
    allocated: bool,
    retries: u32,
    /// Speculative straggler hedge: the granted copies load as *redundant*
    /// so the stalling primary keeps running and the first finisher wins
    /// (never two non-redundant copies of one instance).
    hedge: bool,
}

/// Progress estimate for one instance's primary copy, built from probe
/// replies (`TaskStatusReply.remaining_mops`). The rate over the whole
/// sample span — not adjacent samples — damps processor-sharing jitter.
#[derive(Debug)]
struct ProgressTrack {
    node: NodeId,
    first_at_us: u64,
    first_remaining: f64,
    last_at_us: u64,
    last_remaining: f64,
    samples: u32,
}

#[derive(Debug, Default)]
struct TaskRun {
    /// Number of instances this task runs with (fixed at first allocation
    /// for divisible tasks).
    instances_total: u32,
    /// Work per instance, Mops.
    per_instance_mops: f64,
    done_instances: BTreeSet<u32>,
    /// Live copies per instance (redundant execution).
    copies: BTreeMap<u32, BTreeSet<NodeId>>,
}

/// The executor endpoint.
pub struct ExecutorEndpoint {
    me: Addr,
    app: AppId,
    graph: TaskGraph,
    db: MachineDb,
    cfg: ExmConfig,
    /// §4.5 anticipatory processing on/off.
    anticipate: bool,
    task_state: BTreeMap<TaskId, TaskRun>,
    completed: BTreeSet<TaskId>,
    dispatched: BTreeSet<TaskId>,
    next_req_seq: u32,
    requests: BTreeMap<ReqId, PendingReq>,
    local_pids: BTreeMap<u64, TaskId>,
    next_local_pid: u64,
    /// Where each instance currently runs (primary copy).
    pub placements: BTreeMap<InstanceKey, NodeId>,
    /// Recorded run history for experiments.
    pub timeline: Timeline,
    /// Set when the application cannot proceed (allocation refused).
    pub failed: Option<String>,
    /// Watchdog: unanswered probes per outstanding instance.
    probe_misses: BTreeMap<InstanceKey, u32>,
    /// Straggler hedging: per-instance progress estimate of the primary
    /// copy, fed by probe replies.
    progress: BTreeMap<InstanceKey, ProgressTrack>,
    /// Instances already hedged (at most one speculative copy each).
    hedged: BTreeSet<InstanceKey>,
    /// Copies written off by the watchdog whose hosts may in fact be alive
    /// behind a partition (§5's false-suspicion case). Until the instance
    /// completes we keep sending kills so a healed stale copy cannot keep
    /// running a SYNC task concurrently with its replacement.
    superseded: BTreeMap<InstanceKey, BTreeSet<NodeId>>,
    /// §4.2 channel bookkeeping: one channel per stream arc, one port per
    /// connected instance, redirected as instances move.
    pub channels: ChannelRegistry,
    /// Channel per stream arc `(from task, to task)`.
    stream_channels: Vec<(TaskId, TaskId, ChannelId)>,
    /// The port each instance connects through.
    port_of: BTreeMap<InstanceKey, ChanPortId>,
    done: bool,
}

impl ExecutorEndpoint {
    /// Build an executor for `app` at endpoint `me` (conventionally
    /// `Addr::executor(user_node)`; concurrent applications from one
    /// workstation use distinct ports). The graph must be coding-complete
    /// (`vce_taskgraph::validate`).
    pub fn new(app: AppId, me: Addr, graph: TaskGraph, db: MachineDb, cfg: ExmConfig) -> Self {
        debug_assert!(vce_taskgraph::validate(&graph).is_ok());
        // Provision one channel per stream arc up front; ports attach as
        // instances are placed ("the runtime system will be responsible for
        // the creation, placement, and destruction of ports", §4.2).
        let mut channels = ChannelRegistry::new();
        let stream_channels: Vec<(TaskId, TaskId, ChannelId)> = graph
            .arcs()
            .iter()
            .filter(|a| a.kind == vce_taskgraph::ArcKind::Stream)
            .map(|a| (a.from, a.to, channels.create_channel()))
            .collect();
        Self {
            me,
            app,
            graph,
            db,
            cfg,
            anticipate: false,
            task_state: BTreeMap::new(),
            completed: BTreeSet::new(),
            dispatched: BTreeSet::new(),
            next_req_seq: 0,
            requests: BTreeMap::new(),
            local_pids: BTreeMap::new(),
            next_local_pid: LOCAL_PID_BASE,
            placements: BTreeMap::new(),
            timeline: Timeline::default(),
            failed: None,
            probe_misses: BTreeMap::new(),
            progress: BTreeMap::new(),
            hedged: BTreeSet::new(),
            superseded: BTreeMap::new(),
            channels,
            stream_channels,
            port_of: BTreeMap::new(),
            done: false,
        }
    }

    /// Connect a placed instance's port to every stream channel its task
    /// participates in, at its current machine.
    fn wire_ports(&mut self, key: InstanceKey, node: NodeId) {
        let task = TaskId(key.task);
        let involved: Vec<(ChannelId, Role)> = self
            .stream_channels
            .iter()
            .filter_map(|&(from, to, ch)| {
                if from == task {
                    Some((ch, Role::Sender))
                } else if to == task {
                    Some((ch, Role::Receiver))
                } else {
                    None
                }
            })
            .collect();
        if involved.is_empty() {
            return;
        }
        let port = *self
            .port_of
            .entry(key)
            .or_insert_with(|| self.channels.create_port(Addr::daemon(node)));
        let _ = self.channels.move_port(port, Addr::daemon(node));
        for (ch, role) in involved {
            let _ = self.channels.attach(port, ch, role);
        }
    }

    /// Redirect an instance's port after a move (§4.2: "monitor, redirect,
    /// and move connections between tasks").
    fn redirect_port(&mut self, key: InstanceKey, to: NodeId) {
        if let Some(&port) = self.port_of.get(&key) {
            let _ = self.channels.move_port(port, Addr::daemon(to));
        }
    }

    /// Destroy an instance's port when it finishes.
    fn retire_port(&mut self, key: InstanceKey) {
        if let Some(port) = self.port_of.remove(&key) {
            let _ = self.channels.destroy_port(port);
        }
    }

    /// Enable §4.5 anticipatory processing (pre-compilation and input-file
    /// replication for dataflow-blocked tasks).
    pub fn with_anticipation(mut self, on: bool) -> Self {
        self.anticipate = on;
        self
    }

    /// Application finished (successfully or not)?
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Makespan, µs, once done.
    pub fn makespan_us(&self) -> Option<u64> {
        self.timeline.done_at()
    }

    fn send(&self, host: &mut dyn Host, dst: Addr, msg: &ExmMsg) {
        // Pooled encode: see ExmDaemon::send.
        let payload = host.encode_with(&mut |enc| msg.encode(enc));
        host.send(self.me, dst, payload);
    }

    fn class_daemons(&self, class: MachineClass) -> Vec<Addr> {
        self.db
            .by_class(class)
            .map(|m| Addr::daemon(m.node))
            .collect()
    }

    /// Spec lookup. `None` for an id the graph does not know — task ids
    /// in remote messages (`InstanceKey::task`) are untrusted, and a bogus
    /// one must not panic the executor.
    fn spec(&self, task: TaskId) -> Option<&vce_taskgraph::TaskSpec> {
        self.graph.get(task)
    }

    // ------------------------------------------------------------------
    // Dispatch
    // ------------------------------------------------------------------

    fn dispatch_ready(&mut self, host: &mut dyn Host) {
        let running: BTreeSet<TaskId> = self.dispatched.iter().copied().collect();
        let mut ready = algo::ready_set(&self.graph, &self.completed, &running);
        // §3.1.1's hint: "dispatching of the longer job can be given higher
        // priority so opportunities for parallel execution will be
        // maximized" — request resources for dominant tasks first.
        ready.sort_by_key(|&t| {
            let dominance = self.graph.get(t).map_or(0, |s| s.hints.expected_dominance);
            (std::cmp::Reverse(dominance), t)
        });
        for task in ready {
            // Charge the dataflow transfer time from finished predecessors
            // before the dependent may start.
            let delay: u64 = self
                .graph
                .arcs()
                .iter()
                .filter(|a| a.kind == vce_taskgraph::ArcKind::DataFlow && a.to == task)
                .map(|a| a.data_kib * self.cfg.transfer_us_per_kib)
                .max()
                .unwrap_or(0);
            self.dispatched.insert(task);
            if delay > 0 {
                host.set_timer(delay, dispatch_token(task));
            } else {
                self.dispatch_task(task, host);
            }
        }
    }

    fn dispatch_task(&mut self, task: TaskId, host: &mut dyn Host) {
        let Some(spec) = self.spec(task).cloned() else {
            return;
        };
        if spec.local_only {
            // Run on the user's workstation (§5 LOCAL).
            let run = self.task_state.entry(task).or_default();
            run.instances_total = spec.instances;
            run.per_instance_mops = spec.work_mops;
            for i in 0..spec.instances {
                let pid = self.next_local_pid;
                self.next_local_pid += 1;
                self.local_pids.insert(pid, task);
                host.start_work(pid, spec.work_mops);
                let key = InstanceKey {
                    app: self.app,
                    task: task.0,
                    instance: i,
                };
                let node = host.machine().node;
                self.placements.insert(key, node);
                self.timeline
                    .push(host.now_us(), AppEvent::Loaded { key, node });
            }
            return;
        }
        let classes = self.db.feasible_classes(&spec);
        let Some(&class) = classes.first() else {
            self.fail(host, format!("no feasible machines for task {task:?}"));
            return;
        };
        let (count_min, count_max) = if spec.divisible {
            (1, spec.instances)
        } else {
            (
                spec.instances_min.min(spec.instances),
                spec.instances * self.cfg.redundancy.max(1),
            )
        };
        let slots: Vec<u32> = (0..spec.instances).collect();
        self.send_request(task, class, slots, count_min, count_max, host);
    }

    fn send_request(
        &mut self,
        task: TaskId,
        class: MachineClass,
        slots: Vec<u32>,
        count_min: u32,
        count_max: u32,
        host: &mut dyn Host,
    ) {
        self.send_request_with(task, class, slots, count_min, count_max, false, host);
    }

    #[allow(clippy::too_many_arguments)]
    fn send_request_with(
        &mut self,
        task: TaskId,
        class: MachineClass,
        slots: Vec<u32>,
        count_min: u32,
        count_max: u32,
        hedge: bool,
        host: &mut dyn Host,
    ) {
        let Some(spec) = self.spec(task).cloned() else {
            return;
        };
        let req = ReqId {
            app: self.app,
            seq: self.next_req_seq,
        };
        self.next_req_seq += 1;
        self.requests.insert(
            req,
            PendingReq {
                task,
                slots,
                class,
                allocated: false,
                retries: 0,
                hedge,
            },
        );
        let msg = ExmMsg::ResourceRequest {
            req,
            class,
            count_min,
            count_max,
            mem_mb: spec.mem_mb,
            unit: spec.name.clone(),
            priority_boost: spec.hints.priority_boost,
            reply_to: self.me,
        };
        for d in self.class_daemons(class) {
            self.send(host, d, &msg);
        }
        self.timeline
            .push(host.now_us(), AppEvent::RequestSent { req });
        host.set_timer(self.cfg.request_retry_us, retry_token(req.seq));
    }

    fn handle_allocation(&mut self, req: ReqId, nodes: NodeList, host: &mut dyn Host) {
        let Some(pending) = self.requests.get_mut(&req) else {
            return;
        };
        if pending.allocated || nodes.is_empty() {
            return; // duplicate (leader retry / failover re-allocation)
        }
        pending.allocated = true;
        let task = pending.task;
        let slots = pending.slots.clone();
        let hedge = pending.hedge;
        self.timeline.push(
            host.now_us(),
            AppEvent::Allocated {
                req,
                nodes: nodes.as_slice().to_vec(),
            },
        );
        let Some(spec) = self.spec(task).cloned() else {
            return;
        };
        let run = self.task_state.entry(task).or_default();
        // Instance plan: divisible tasks split work across what we got;
        // others replicate, with surplus machines as redundant copies.
        let (assignments, per_instance): (Vec<(u32, NodeId, bool)>, f64) = if spec.divisible {
            let n = nodes.len().min(slots.len()).max(1);
            // Only the first allocation fixes the work split. A later
            // re-request for a *lost* slot arrives here with slots=[that
            // slot]; reuse the established plan — resetting it used to
            // relaunch slot 0 with the whole task's work and shrink
            // instances_total, so the task never converged (found by the
            // exp_chaos eviction/re-request schedules).
            let per = if run.instances_total == 0 {
                run.instances_total = n as u32;
                spec.work_mops / n as f64
            } else {
                run.per_instance_mops
            };
            (
                slots
                    .iter()
                    .zip(nodes.iter())
                    .take(n)
                    // A hedge copy is redundant by construction: the
                    // stalling primary stays the one non-redundant
                    // incarnation, whoever finishes first wins.
                    .map(|(&slot, &node)| (slot, node, hedge))
                    .collect(),
                per,
            )
        } else {
            // Ranged requests (`SYNC 5,10`) accept fewer primaries than the
            // maximum: instances_total becomes what the group granted (at
            // least instances_min — the leader enforced count_min).
            let primaries = slots.len().min(nodes.len()).max(1);
            run.instances_total = run.instances_total.max(primaries as u32);
            let redundant = nodes.len() > primaries;
            let mut v = Vec::new();
            for (i, &slot) in slots.iter().take(primaries).enumerate() {
                if let Some(&node) = nodes.as_slice().get(i) {
                    v.push((slot, node, redundant));
                }
            }
            // Surplus machines host redundant copies, round-robin. The
            // node list came off the wire: index defensively rather than
            // trusting its length arithmetic.
            for (j, &node) in nodes.iter().enumerate().skip(primaries) {
                let Some(&slot) = slots.get((j - primaries) % primaries) else {
                    break;
                };
                v.push((slot, node, true));
            }
            (v, spec.work_mops)
        };
        run.per_instance_mops = per_instance;
        for (slot, node, redundant) in assignments {
            let key = InstanceKey {
                app: self.app,
                task: task.0,
                instance: slot,
            };
            let run = self.task_state.entry(task).or_default();
            run.copies.entry(slot).or_default().insert(node);
            // The node legitimately hosts this instance again — don't keep
            // killing its fresh copy.
            if let Some(set) = self.superseded.get_mut(&key) {
                set.remove(&node);
                if set.is_empty() {
                    self.superseded.remove(&key);
                }
            }
            self.placements.entry(key).or_insert(node);
            if !hedge {
                // A hedge copy must not steal the primary's stream ports.
                self.wire_ports(key, node);
            }
            let lp = LoadProgram {
                key,
                unit: spec.name.clone(),
                work_mops: per_instance,
                mem_mb: spec.mem_mb,
                checkpoints: spec.migration.checkpoints,
                checkpoint_interval_us: u64::from(spec.migration.checkpoint_interval_s) * 1_000_000,
                restartable: spec.migration.restartable,
                core_dumpable: spec.migration.core_dumpable,
                redundant,
                input_files: spec.input_files.clone(),
                reply_to: self.me,
            };
            self.send(host, Addr::daemon(node), &ExmMsg::Load(lp));
            self.timeline
                .push(host.now_us(), AppEvent::Loaded { key, node });
        }
    }

    fn instance_done(&mut self, key: InstanceKey, node: NodeId, host: &mut dyn Host) {
        let task = TaskId(key.task);
        let Some(run) = self.task_state.get_mut(&task) else {
            return;
        };
        if !run.done_instances.insert(key.instance) {
            return; // duplicate completion (redundant copy raced the kill)
        }
        // Kill surviving redundant copies of this instance, plus any
        // written-off copy on a host that may still be alive behind a
        // partition.
        let mut doomed: BTreeSet<NodeId> = run.copies.remove(&key.instance).unwrap_or_default();
        doomed.extend(self.superseded.remove(&key).unwrap_or_default());
        doomed.remove(&node);
        let others: Vec<NodeId> = doomed.into_iter().collect();
        self.placements.insert(key, node);
        self.retire_port(key);
        self.progress.remove(&key);
        self.hedged.remove(&key);
        self.timeline
            .push(host.now_us(), AppEvent::InstanceDone { key, node });
        for other in others {
            self.send(host, Addr::daemon(other), &ExmMsg::KillTask { key });
        }
        let Some(run) = self.task_state.get(&task) else {
            return;
        };
        if run.done_instances.len() as u32 >= run.instances_total {
            self.completed.insert(task);
            self.timeline
                .push(host.now_us(), AppEvent::TaskComplete { task: task.0 });
            if self.completed.len() == self.graph.len() {
                self.finish(host);
            } else {
                if self.anticipate {
                    self.send_anticipations(host);
                }
                self.dispatch_ready(host);
            }
        }
    }

    fn instance_evicted(&mut self, key: InstanceKey, node: NodeId, host: &mut dyn Host) {
        let task = TaskId(key.task);
        // Whatever copy survives, its progress history starts over.
        self.progress.remove(&key);
        self.timeline
            .push(host.now_us(), AppEvent::InstanceEvicted { key, node });
        let Some(run) = self.task_state.get_mut(&task) else {
            return;
        };
        if run.done_instances.contains(&key.instance) {
            return;
        }
        let copies = run.copies.entry(key.instance).or_default();
        copies.remove(&node);
        if let Some(&next) = copies.iter().next() {
            // A redundant copy survives: it becomes the primary the
            // watchdog follows.
            self.placements.insert(key, next);
            return;
        }
        if copies.is_empty() {
            // Last incarnation gone: re-request one machine for this slot.
            let Some(spec) = self.spec(task).cloned() else {
                return;
            };
            let classes = self.db.feasible_classes(&spec);
            if let Some(&class) = classes.first() {
                self.send_request(task, class, vec![key.instance], 1, 1, host);
            }
        }
    }

    fn finish(&mut self, host: &mut dyn Host) {
        if self.done {
            return;
        }
        self.done = true;
        self.timeline.push(host.now_us(), AppEvent::AppDone);
        // "When an application terminates, the execution program notifies
        // all machines working on the application to terminate." (§5)
        let app = self.app;
        let daemons: Vec<Addr> = self
            .db
            .machines()
            .iter()
            .map(|m| Addr::daemon(m.node))
            .collect();
        for d in daemons {
            self.send(host, d, &ExmMsg::Terminate { app });
        }
    }

    fn fail(&mut self, host: &mut dyn Host, reason: String) {
        if host.log_enabled() {
            host.log(format!("executor: application failed: {reason}"));
        }
        self.failed = Some(reason);
        self.finish(host);
    }

    /// §4.5: ask idle machines to pre-compile blocked tasks' programs and
    /// pre-stage their input files.
    fn send_anticipations(&mut self, host: &mut dyn Host) {
        let blocked: Vec<TaskId> = self
            .graph
            .ids()
            .filter(|t| !self.completed.contains(t) && !self.dispatched.contains(t))
            .filter(|&t| {
                self.graph
                    .predecessors(t)
                    .any(|p| !self.completed.contains(&p))
            })
            .collect();
        for task in blocked {
            let Some(spec) = self.spec(task).cloned() else {
                continue;
            };
            for class in self.db.feasible_classes(&spec) {
                // Fund a couple of *candidate* machines per class, not the
                // whole group: anticipation must not steal cycles from the
                // machines about to run the current frontier. Prefer the
                // high end of the class (placement ties break low), and
                // avoid our own workstation.
                let mut targets = self.class_daemons(class);
                targets.retain(|d| d.node != self.me.node);
                targets.reverse();
                targets.truncate(2);
                if targets.is_empty() {
                    targets = self.class_daemons(class);
                    targets.truncate(1);
                }
                for d in targets {
                    self.send(
                        host,
                        d,
                        &ExmMsg::AnticipateCompile {
                            unit: spec.name.clone(),
                            compile_mops: self.cfg.dispatch_compile_mops,
                        },
                    );
                    for f in &spec.input_files {
                        self.send(
                            host,
                            d,
                            &ExmMsg::AnticipateFile {
                                file: f.clone(),
                                kib: self.cfg.input_file_kib,
                            },
                        );
                    }
                }
            }
        }
    }
}

/// Watchdog helper block.
impl ExecutorEndpoint {
    fn instance_outstanding(&self, key: &InstanceKey) -> bool {
        let task = TaskId(key.task);
        if self.completed.contains(&task) {
            return false;
        }
        !self
            .task_state
            .get(&task)
            .is_some_and(|r| r.done_instances.contains(&key.instance))
    }

    /// Fold a probe reply's remaining-work report into the instance's
    /// progress estimate and hedge if the primary copy has stalled
    /// (CPU-degraded host, gray failure): speculatively request one more
    /// machine, loading the copy as *redundant* so the duplicate-execution
    /// invariant is preserved and the first finisher kills the loser.
    fn note_progress(
        &mut self,
        key: InstanceKey,
        node: NodeId,
        remaining: f64,
        host: &mut dyn Host,
    ) {
        if !self.cfg.hedge_enabled || !self.instance_outstanding(&key) {
            return;
        }
        // Only the primary copy's progress drives hedging.
        if self.placements.get(&key) != Some(&node) {
            return;
        }
        let now = host.now_us();
        let (samples, first_at_us, first_remaining) = match self.progress.get_mut(&key) {
            Some(t) if t.node == node => {
                t.samples += 1;
                t.last_at_us = now;
                t.last_remaining = remaining;
                (t.samples, t.first_at_us, t.first_remaining)
            }
            _ => {
                // First sample for this host (or the primary moved):
                // (re)base the estimate.
                self.progress.insert(
                    key,
                    ProgressTrack {
                        node,
                        first_at_us: now,
                        first_remaining: remaining,
                        last_at_us: now,
                        last_remaining: remaining,
                        samples: 1,
                    },
                );
                return;
            }
        };
        if samples < self.cfg.hedge_min_samples
            || self.hedged.contains(&key)
            || remaining <= self.cfg.hedge_min_remaining_mops
        {
            return;
        }
        let elapsed = now.saturating_sub(first_at_us);
        if elapsed == 0 {
            return;
        }
        let rate = (first_remaining - remaining).max(0.0) / elapsed as f64;
        // Nominal: the host's full per-job speed. Processor sharing divides
        // it, so the stall fraction must sit below 1/(plausible co-runners).
        let Some(nominal) = self.db.get(node).map(|m| m.speed_mops / 1e6) else {
            return;
        };
        if rate * 1000.0 >= nominal * f64::from(self.cfg.hedge_stall_permille) {
            return;
        }
        let task = TaskId(key.task);
        let Some(spec) = self.spec(task).cloned() else {
            return;
        };
        if !spec.divisible {
            // Non-divisible tasks already have the redundancy knob; hedging
            // targets divisible slots whose work split is fixed.
            return;
        }
        let classes = self.db.feasible_classes(&spec);
        let Some(&class) = classes.first() else {
            return;
        };
        self.hedged.insert(key);
        if host.log_enabled() {
            host.log(format!(
                "executor: instance {key:?} stalled on {node} (rate {:.3}/{:.3} Mops/ms), hedging",
                rate * 1000.0,
                nominal * 1000.0
            ));
        }
        self.timeline
            .push(now, AppEvent::InstanceHedged { key, node });
        self.send_request_with(task, class, vec![key.instance], 1, 1, true, host);
    }

    fn run_probes(&mut self, host: &mut dyn Host) {
        let my_node = self.me.node;
        let targets: Vec<(InstanceKey, NodeId)> = self
            .placements
            .iter()
            .filter(|(k, &n)| n != my_node && self.instance_outstanding(k))
            .map(|(&k, &n)| (k, n))
            .collect();
        for (key, node) in targets {
            let misses = self.probe_misses.entry(key).or_insert(0);
            *misses += 1;
            if *misses > PROBE_MISS_LIMIT {
                // Host presumed dead: recover the instance. Suspicion can
                // be wrong (partition, not crash), so remember the node and
                // keep killing the possibly-live stale copy below.
                self.probe_misses.remove(&key);
                self.superseded.entry(key).or_default().insert(node);
                if host.log_enabled() {
                    host.log(format!("executor: instance {key:?} lost on {node}"));
                }
                self.instance_evicted(key, node, host);
            } else {
                self.send(
                    host,
                    Addr::daemon(node),
                    &ExmMsg::ProbeTask {
                        key,
                        reply_to: self.me,
                    },
                );
            }
        }
        // Re-kill written-off copies: the KillTask is dropped while the
        // host is dead or partitioned away, so one shot is not enough. A
        // heal delivers the next round within one probe period, bounding
        // how long a stale copy can run concurrently with its replacement.
        let stale: Vec<(InstanceKey, NodeId)> = self
            .superseded
            .iter()
            .flat_map(|(&k, nodes)| nodes.iter().map(move |&n| (k, n)))
            .collect();
        for (key, node) in stale {
            self.send(host, Addr::daemon(node), &ExmMsg::KillTask { key });
        }
    }
}

impl Endpoint for ExecutorEndpoint {
    fn on_start(&mut self, host: &mut dyn Host) {
        // Revive hardening: a crash killed every pending timer and local
        // work item, so restart from surviving in-memory state *before*
        // dispatching new work. All three sets are empty on a first boot,
        // so fair-weather behaviour is unchanged.
        let unanswered: Vec<u32> = self
            .requests
            .iter()
            .filter(|(_, p)| !p.allocated)
            .map(|(r, _)| r.seq)
            .collect();
        let stuck: Vec<TaskId> = self
            .dispatched
            .iter()
            .copied()
            .filter(|t| !self.completed.contains(t))
            .filter(|t| !self.task_state.contains_key(t))
            .filter(|t| !self.requests.values().any(|p| p.task == *t && !p.allocated))
            .collect();
        let local_restart: Vec<(u64, TaskId)> = self
            .local_pids
            .iter()
            .map(|(&p, &t)| (p, t))
            .filter(|(_, t)| !self.completed.contains(t))
            .collect();
        for seq in unanswered {
            host.set_timer(self.cfg.request_retry_us, retry_token(seq));
        }
        for task in stuck {
            // Its dataflow-delay timer died with the node: dispatch now.
            self.dispatch_task(task, host);
        }
        for (pid, task) in local_restart {
            if host.work_remaining(pid).is_none() {
                if let Some(spec) = self.spec(task) {
                    host.start_work(pid, spec.work_mops);
                }
            }
        }

        if self.anticipate {
            self.send_anticipations(host);
        }
        self.dispatch_ready(host);
        host.set_timer(self.cfg.probe_period_us, TOKEN_PROBE);
    }

    fn on_envelope(&mut self, env: Envelope, host: &mut dyn Host) {
        let Ok(msg) = vce_codec::from_backing::<ExmMsg>(&env.payload) else {
            return;
        };
        match msg {
            ExmMsg::Allocation { req, nodes } => self.handle_allocation(req, nodes, host),
            ExmMsg::AllocError { req, reason } => {
                self.timeline.push(
                    host.now_us(),
                    AppEvent::AllocFailed {
                        req,
                        reason: reason.clone(),
                    },
                );
                if self.requests.get(&req).is_some_and(|p| !p.allocated) {
                    self.fail(host, reason);
                }
            }
            ExmMsg::TaskDone { key, node } => self.instance_done(key, node, host),
            ExmMsg::TaskEvicted { key, node } => self.instance_evicted(key, node, host),
            ExmMsg::TaskMoved { key, to } => {
                self.placements.insert(key, to);
                self.redirect_port(key, to);
                self.probe_misses.remove(&key);
                self.progress.remove(&key);
                self.timeline
                    .push(host.now_us(), AppEvent::InstanceMoved { key, to });
            }
            ExmMsg::RequestQueued { req } => {
                // The group has the request; a queue wait is not a failure.
                if let Some(p) = self.requests.get_mut(&req) {
                    if !p.allocated {
                        p.retries = 0;
                    }
                }
            }
            ExmMsg::RecoveredTask { key, node } => {
                // A crashed-and-revived daemon replayed its journal and
                // restarted this instance. The recovered copy defers to
                // the live view: keep it only if this node still
                // legitimately hosts the instance and it is still wanted.
                let keep = self.instance_outstanding(&key)
                    && self
                        .task_state
                        .get(&TaskId(key.task))
                        .and_then(|r| r.copies.get(&key.instance))
                        .is_some_and(|set| set.contains(&node))
                    && !self.superseded.get(&key).is_some_and(|s| s.contains(&node));
                if keep {
                    // The incarnation resumed from its checkpoint; give the
                    // watchdog a fresh budget.
                    self.probe_misses.remove(&key);
                    self.timeline
                        .push(host.now_us(), AppEvent::Loaded { key, node });
                } else {
                    self.send(host, Addr::daemon(node), &ExmMsg::KillTask { key });
                }
            }
            ExmMsg::TaskStatusReply {
                key,
                running,
                node,
                remaining_mops,
            } => {
                if running {
                    self.probe_misses.remove(&key);
                    self.note_progress(key, node, remaining_mops, host);
                } else if self.instance_outstanding(&key) {
                    // The daemon is alive but no longer hosts it (e.g. a
                    // Load lost to a crash window): recover now.
                    self.probe_misses.remove(&key);
                    self.instance_evicted(key, node, host);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, host: &mut dyn Host) {
        if self.done {
            return;
        }
        let (tag, payload) = decode_token(token);
        if tag == TAG_PROBE {
            self.run_probes(host);
            host.set_timer(self.cfg.probe_period_us, TOKEN_PROBE);
        } else if tag == TAG_DISPATCH {
            self.dispatch_task(TaskId(payload), host);
        } else if tag == TAG_RETRY {
            let seq = payload;
            let req = ReqId { app: self.app, seq };
            let state = self.requests.get(&req).map(|p| (p.allocated, p.retries));
            match state {
                None | Some((true, _)) => return,
                Some((false, retries)) if retries >= 10 => {
                    // A request unanswered through ten retry windows means
                    // the group is unreachable (every daemon dead or
                    // partitioned away): surface it instead of hanging.
                    self.fail(
                        host,
                        format!("request {req:?} unanswered after {retries} retries"),
                    );
                    return;
                }
                Some((false, _)) => {}
            }
            {
                let (class, min, max, spec_mem, boost, unit) = {
                    let Some(p) = self.requests.get_mut(&req) else {
                        return; // request retired between the check and here
                    };
                    p.retries += 1;
                    let Some(spec) = self.graph.get(p.task) else {
                        return;
                    };
                    let slots = p.slots.len() as u32;
                    let (min, max) = if spec.divisible {
                        (1, slots)
                    } else {
                        (
                            spec.instances_min.min(slots),
                            slots * self.cfg.redundancy.max(1),
                        )
                    };
                    (
                        p.class,
                        min,
                        max,
                        spec.mem_mb,
                        spec.hints.priority_boost,
                        spec.name.clone(),
                    )
                };
                let msg = ExmMsg::ResourceRequest {
                    req,
                    class,
                    count_min: min,
                    count_max: max,
                    mem_mb: spec_mem,
                    unit,
                    priority_boost: boost,
                    reply_to: self.me,
                };
                for d in self.class_daemons(class) {
                    self.send(host, d, &msg);
                }
                self.timeline
                    .push(host.now_us(), AppEvent::RequestSent { req });
                // Exponential backoff with seeded jitter: a dead or
                // partitioned group is retried at a decaying rate instead
                // of full-rate lockstep (RequestQueued resets `retries`,
                // so a live-but-busy leader keeps the fast interval).
                let retries = self.requests.get(&req).map_or(0, |p| p.retries);
                let delay = backoff_delay_us(
                    self.cfg.request_retry_us,
                    self.cfg.request_retry_cap_us,
                    retries,
                    host.rand_u64(),
                );
                host.set_timer(delay, token);
            }
        }
    }

    fn on_work_done(&mut self, pid: u64, host: &mut dyn Host) {
        if let Some(&task) = self.local_pids.get(&pid) {
            // Determine which instance finished: local instances complete
            // in pid order; use the count of done instances as the slot.
            let node = host.machine().node;
            let instance = self
                .task_state
                .get(&task)
                .map(|r| r.done_instances.len() as u32)
                .unwrap_or(0);
            let key = InstanceKey {
                app: self.app,
                task: task.0,
                instance,
            };
            self.instance_done(key, node, host);
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    fn snapshot_hash(&self) -> u64 {
        let mut h = vce_net::Fnv64::new();
        h.write_u64(self.app.0)
            .write_bool(self.done)
            .write_bool(self.failed.is_some())
            .write_u64(u64::from(self.next_req_seq))
            .write_u64(self.next_local_pid)
            .write_u64(self.requests.len() as u64)
            .write_u64(self.completed.len() as u64);
        for t in &self.completed {
            h.write_u64(u64::from(t.0));
        }
        for t in &self.dispatched {
            h.write_u64(u64::from(t.0));
        }
        h.write_u64(self.placements.len() as u64);
        for (key, node) in &self.placements {
            h.write_u64(u64::from(key.task))
                .write_u64(u64::from(key.instance))
                .write_u64(u64::from(node.0));
        }
        h.write_u64(self.superseded.len() as u64)
            .write_u64(self.probe_misses.len() as u64);
        h.write_u64(self.hedged.len() as u64);
        for key in &self.hedged {
            h.write_u64(u64::from(key.task))
                .write_u64(u64::from(key.instance));
        }
        h.write_u64(self.progress.len() as u64);
        for (key, t) in &self.progress {
            h.write_u64(u64::from(key.task))
                .write_u64(u64::from(key.instance))
                .write_u64(u64::from(t.node.0))
                .write_u64(t.last_at_us)
                .write_u64(t.last_remaining.to_bits())
                .write_u64(u64::from(t.samples));
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use vce_net::MachineInfo;
    use vce_taskgraph::{Language, ProblemClass, TaskSpec};

    /// Records timer/send effects so token routing is observable.
    struct RecordingHost {
        info: MachineInfo,
        now: u64,
        timers: Vec<(u64, u64)>,
        sent: Vec<(Addr, Addr, Bytes)>,
    }

    impl RecordingHost {
        fn new() -> Self {
            Self {
                info: MachineInfo::workstation(NodeId(0), 100.0),
                now: 0,
                timers: Vec::new(),
                sent: Vec::new(),
            }
        }

        /// Messages sent to `dst`, decoded.
        fn msgs_to(&self, dst: Addr) -> Vec<ExmMsg> {
            self.sent
                .iter()
                .filter(|(_, d, _)| *d == dst)
                .filter_map(|(_, _, p)| vce_codec::from_bytes(p).ok())
                .collect()
        }
    }

    impl vce_net::Host for RecordingHost {
        fn now_us(&self) -> u64 {
            self.now
        }
        fn send(&mut self, src: Addr, dst: Addr, payload: Bytes) {
            self.sent.push((src, dst, payload));
        }
        fn set_timer(&mut self, delay_us: u64, token: u64) {
            self.timers.push((delay_us, token));
        }
        fn cancel_timer(&mut self, _token: u64) {}
        fn start_work(&mut self, _pid: u64, _mops: f64) {}
        fn cancel_work(&mut self, _pid: u64) {}
        fn work_remaining(&self, _pid: u64) -> Option<f64> {
            None
        }
        fn load(&self) -> f64 {
            0.0
        }
        fn machine(&self) -> &MachineInfo {
            &self.info
        }
        fn rand_u64(&mut self) -> u64 {
            0
        }
        fn log(&mut self, _line: String) {}
        fn log_enabled(&self) -> bool {
            false
        }
    }

    fn tiny_executor() -> ExecutorEndpoint {
        let mut g = TaskGraph::new("t");
        g.add_task(
            TaskSpec::new("job")
                .with_class(ProblemClass::Asynchronous)
                .with_language(Language::C)
                .with_work(10.0),
        );
        let mut db = MachineDb::new();
        db.register(MachineInfo::workstation(NodeId(0), 100.0));
        let me = Addr::executor(NodeId(0));
        ExecutorEndpoint::new(AppId(1), me, g, db, ExmConfig::default())
    }

    /// The old additive scheme (`2<<20 + task.0`) made the dispatch token
    /// for task id 2^20 numerically equal to the probe token; every id
    /// beyond kept bleeding into foreign ranges. The tagged encoding must
    /// keep the full u32 id space distinct across kinds.
    #[test]
    fn token_kinds_stay_distinct_across_the_full_id_space() {
        for id in [0u32, 1, (1 << 20) - 1, 1 << 20, (1 << 20) + 1, u32::MAX] {
            assert_ne!(dispatch_token(TaskId(id)), TOKEN_PROBE, "id {id}");
            assert_ne!(retry_token(id), TOKEN_PROBE, "id {id}");
            assert_ne!(dispatch_token(TaskId(id)), retry_token(id), "id {id}");
            assert_eq!(decode_token(dispatch_token(TaskId(id))), (TAG_DISPATCH, id));
            assert_eq!(decode_token(retry_token(id)), (TAG_RETRY, id));
        }
        assert_eq!(decode_token(TOKEN_PROBE).0, TAG_PROBE);
        // Stay inside the documented exm timer namespace, below isis'.
        const { assert!(TOKEN_PROBE < vce_isis::ISIS_TOKEN_BASE) };
        assert!(retry_token(u32::MAX) < vce_isis::ISIS_TOKEN_BASE);
    }

    /// One divisible task, executor on node 0, workers on 1 and 2. Returns
    /// the executor already started and allocated to node 1 only, with the
    /// start-up traffic drained from the host.
    fn hedge_fixture(host: &mut RecordingHost) -> (ExecutorEndpoint, InstanceKey) {
        let mut g = TaskGraph::new("t");
        let t = g.add_task(
            TaskSpec::new("solver")
                .with_class(ProblemClass::Asynchronous)
                .with_language(Language::C)
                .with_work(10_000.0)
                .with_instances(1)
                .divisible(),
        );
        let mut db = MachineDb::new();
        db.register(MachineInfo::workstation(NodeId(0), 100.0));
        db.register(MachineInfo::workstation(NodeId(1), 100.0));
        db.register(MachineInfo::workstation(NodeId(2), 100.0));
        let me = Addr::executor(NodeId(0));
        let mut exec = ExecutorEndpoint::new(AppId(1), me, g, db, ExmConfig::default());
        exec.on_start(host);
        let req = ReqId {
            app: AppId(1),
            seq: 0,
        };
        deliver(
            &mut exec,
            host,
            &ExmMsg::Allocation {
                req,
                nodes: vec![NodeId(1)].into(),
            },
        );
        let key = InstanceKey {
            app: AppId(1),
            task: t.0,
            instance: 0,
        };
        assert_eq!(exec.placements.get(&key), Some(&NodeId(1)));
        host.sent.clear();
        (exec, key)
    }

    fn deliver(exec: &mut ExecutorEndpoint, host: &mut RecordingHost, msg: &ExmMsg) {
        let env = Envelope {
            src: Addr::daemon(NodeId(1)),
            dst: Addr::executor(NodeId(0)),
            seq: 0,
            payload: crate::msg::encode_msg(msg),
        };
        exec.on_envelope(env, host);
    }

    fn status(key: InstanceKey, node: NodeId, remaining: f64) -> ExmMsg {
        ExmMsg::TaskStatusReply {
            key,
            running: true,
            node,
            remaining_mops: remaining,
        }
    }

    /// A primary whose probe replies show <30% of the host's nominal rate
    /// gets hedged exactly once: a 1-machine re-request for its slot whose
    /// granted copy loads as *redundant* (the stalling primary stays the
    /// only non-redundant incarnation), and the primary placement is kept.
    #[test]
    fn stalled_primary_hedges_once_with_a_redundant_copy() {
        let mut host = RecordingHost::new();
        let (mut exec, key) = hedge_fixture(&mut host);
        // Node 1 nominal: 100 Mops/s. Two samples 2 s apart showing only
        // 20 Mops done = 10 Mops/s = 10% — well under the 30% stall line.
        host.now = 2_000_000;
        deliver(&mut exec, &mut host, &status(key, NodeId(1), 9_000.0));
        host.now = 4_000_000;
        deliver(&mut exec, &mut host, &status(key, NodeId(1), 8_980.0));
        assert_eq!(
            exec.timeline
                .count(|e| matches!(e, AppEvent::InstanceHedged { .. })),
            1
        );
        let hedge_req = ReqId {
            app: AppId(1),
            seq: 1,
        };
        assert!(
            exec.requests.contains_key(&hedge_req),
            "hedge must re-request the stalled slot"
        );
        // A third stalled sample must not hedge again.
        host.now = 6_000_000;
        deliver(&mut exec, &mut host, &status(key, NodeId(1), 8_960.0));
        assert_eq!(exec.requests.len(), 2, "at most one hedge per instance");
        // Grant the hedge on node 2: the copy loads redundant, primary stays.
        host.sent.clear();
        deliver(
            &mut exec,
            &mut host,
            &ExmMsg::Allocation {
                req: hedge_req,
                nodes: vec![NodeId(2)].into(),
            },
        );
        let loads: Vec<LoadProgram> = host
            .msgs_to(Addr::daemon(NodeId(2)))
            .into_iter()
            .filter_map(|m| match m {
                ExmMsg::Load(lp) => Some(lp),
                _ => None,
            })
            .collect();
        assert_eq!(loads.len(), 1);
        assert!(loads[0].redundant, "hedge copies must load redundant");
        assert_eq!(loads[0].work_mops, 10_000.0, "established split reused");
        assert_eq!(exec.placements.get(&key), Some(&NodeId(1)));
        // First finisher wins: the hedge completing kills the straggler.
        host.sent.clear();
        deliver(
            &mut exec,
            &mut host,
            &ExmMsg::TaskDone {
                key,
                node: NodeId(2),
            },
        );
        let kills = host
            .msgs_to(Addr::daemon(NodeId(1)))
            .into_iter()
            .filter(|m| matches!(m, ExmMsg::KillTask { .. }))
            .count();
        assert_eq!(kills, 1, "losing straggler copy must be killed");
        assert!(exec.is_done());
    }

    /// Healthy progress (at/above nominal) must never trigger a hedge, and
    /// neither must a stall whose remaining work is under the floor.
    #[test]
    fn healthy_or_nearly_done_instances_are_not_hedged() {
        let mut host = RecordingHost::new();
        let (mut exec, key) = hedge_fixture(&mut host);
        // Full-rate progress: 100 Mops/s on a 100 Mops/s host.
        host.now = 2_000_000;
        deliver(&mut exec, &mut host, &status(key, NodeId(1), 9_800.0));
        host.now = 4_000_000;
        deliver(&mut exec, &mut host, &status(key, NodeId(1), 9_600.0));
        host.now = 6_000_000;
        deliver(&mut exec, &mut host, &status(key, NodeId(1), 9_400.0));
        assert_eq!(
            exec.timeline
                .count(|e| matches!(e, AppEvent::InstanceHedged { .. })),
            0
        );
        // Stalled but nearly done (< hedge_min_remaining_mops): pointless.
        host.now = 8_000_000;
        deliver(&mut exec, &mut host, &status(key, NodeId(1), 40.0));
        host.now = 10_000_000;
        deliver(&mut exec, &mut host, &status(key, NodeId(1), 39.9));
        assert_eq!(
            exec.timeline
                .count(|e| matches!(e, AppEvent::InstanceHedged { .. })),
            0
        );
        assert_eq!(exec.requests.len(), 1, "no hedge requests were sent");
    }

    /// Disabling the knob turns the whole path off even under a blatant
    /// stall — the F-family baseline arm.
    #[test]
    fn hedging_respects_the_config_knob() {
        let mut host = RecordingHost::new();
        let (mut exec, key) = hedge_fixture(&mut host);
        exec.cfg.hedge_enabled = false;
        host.now = 2_000_000;
        deliver(&mut exec, &mut host, &status(key, NodeId(1), 9_000.0));
        host.now = 4_000_000;
        deliver(&mut exec, &mut host, &status(key, NodeId(1), 8_999.0));
        assert!(exec.progress.is_empty());
        assert_eq!(exec.requests.len(), 1);
    }

    /// Boundary regression: a dispatch timer for task id 2^20 must route to
    /// dispatch handling (a no-op for an unknown task), not masquerade as
    /// the probe timer. On the pre-fix encoding this token *was*
    /// `TOKEN_PROBE`, so `on_timer` re-armed the probe timer — which this
    /// test rejects.
    #[test]
    fn boundary_dispatch_token_is_not_misrouted_to_the_watchdog() {
        let mut exec = tiny_executor();
        let mut host = RecordingHost::new();
        exec.on_timer(dispatch_token(TaskId(1 << 20)), &mut host);
        assert!(
            host.timers.is_empty() && host.sent.is_empty(),
            "dispatch timer for an unknown task must be inert, got timers \
             {:?} / sends {:?}",
            host.timers,
            host.sent
        );
    }
}
