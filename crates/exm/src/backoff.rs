//! Seeded, bounded exponential backoff.
//!
//! The executor's allocation-request retry and the leader's bid-collection
//! deadline were fixed-interval: under a long outage every retry fired in
//! lockstep at the same cost, and a fleet of executors hammered a dead
//! group in phase. Retries now double per attempt up to a cap, with ±12.5%
//! jitter drawn from the seeded sim RNG so repeated failures decorrelate
//! across nodes while staying deterministic per seed.

/// Delay before attempt `attempt` (0-based), in µs.
///
/// Attempt 0 returns exactly `base` — fair-weather timings (and every
/// experiment table that depends on them) are unchanged. Later attempts
/// double the interval, saturate at `cap`, then add jitter in
/// `[-cap/8, +cap/8)` from `rand` (a raw `Host::rand_u64` draw).
pub(crate) fn backoff_delay_us(base: u64, cap: u64, attempt: u32, rand: u64) -> u64 {
    if attempt == 0 {
        return base;
    }
    let cap = cap.max(base);
    let doubled = base.saturating_mul(1u64.checked_shl(attempt.min(20)).unwrap_or(u64::MAX));
    let d = doubled.min(cap);
    let spread = (d / 4).max(1);
    (d - d / 8 + rand % spread).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempt_zero_is_exactly_base() {
        assert_eq!(backoff_delay_us(1_000, 8_000, 0, 0xDEAD_BEEF), 1_000);
    }

    #[test]
    fn doubles_then_saturates_at_cap() {
        // Jitter-free midpoint check: rand = spread/2 gives d - d/8 + d/8 = d.
        for (attempt, want) in [(1, 2_000), (2, 4_000), (3, 8_000), (4, 8_000), (30, 8_000)] {
            let d = backoff_delay_us(1_000, 8_000, attempt, 0);
            assert!(
                d >= want - want / 8 && d < want + want / 8,
                "attempt {attempt}: {d}"
            );
        }
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        for r in [0u64, 1, 7, u64::MAX, 0x9E37_79B9] {
            let d = backoff_delay_us(1_000, 8_000, 10, r);
            assert!((7_000..9_000).contains(&d), "{d}");
            assert_eq!(d, backoff_delay_us(1_000, 8_000, 10, r));
        }
    }

    #[test]
    fn degenerate_inputs_never_zero_or_overflow() {
        assert!(backoff_delay_us(0, 0, 5, 0) >= 1);
        assert!(backoff_delay_us(u64::MAX, 1, 63, u64::MAX) >= 1);
        assert!(backoff_delay_us(1, u64::MAX, u32::MAX, u64::MAX) >= 1);
    }

    #[test]
    fn cap_below_base_is_lifted_to_base() {
        let d = backoff_delay_us(1_000, 10, 3, 0);
        assert!(d >= 875, "{d}"); // behaves as cap == base
    }
}
