//! Runtime configuration knobs shared by daemons and executors.

use crate::policy::PlacementPolicy;

/// Execution-module configuration.
#[derive(Debug, Clone)]
pub struct ExmConfig {
    /// Leader placement policy (§4.3).
    pub policy: PlacementPolicy,
    /// Bid-collection deadline, µs (the leader allocates with whatever
    /// arrived when it expires).
    pub bid_timeout_us: u64,
    /// Upper bound the bid-collection deadline backs off to when collects
    /// keep coming back short (members crashed or partitioned away).
    pub bid_timeout_cap_us: u64,
    /// Executor's resource-request retry timeout, µs (covers leader
    /// failover windows). This is the *initial* interval; retries back off
    /// exponentially (with seeded jitter) up to `request_retry_cap_us`.
    pub request_retry_us: u64,
    /// Upper bound the resource-request retry interval backs off to.
    pub request_retry_cap_us: u64,
    /// Queue requests the group cannot satisfy now instead of returning
    /// AllocError (`false` reproduces the §5 prototype's behaviour).
    pub queue_insufficient: bool,
    /// Priority-aging quantum, µs (§4.3 starvation prevention).
    pub aging_quantum_us: u64,
    /// Leader's rebalance period, µs (load-balancing sweep, §4.4).
    pub rebalance_period_us: u64,
    /// Background load at/above which a machine counts as reclaimed by its
    /// owner (eviction/migration trigger).
    pub owner_busy_threshold: f64,
    /// Load at/below which a machine is a migration target.
    pub idle_threshold: f64,
    /// Load at/above which a daemon declines to bid ("not already
    /// excessively loaded", §5). Lower it to 1.0 for strict
    /// one-job-per-machine scheduling.
    pub overload_threshold: f64,
    /// Enable leader-driven migration (§4.4).
    pub migration_enabled: bool,
    /// Minimum time between migrations of the same instance, µs —
    /// hysteresis against thrashing when owners churn everywhere.
    pub migration_cooldown_us: u64,
    /// Redundant incarnations dispatched per instance (1 = none extra;
    /// §4.4 migration-through-redundant-execution).
    pub redundancy: u32,
    /// State-transfer modelling: µs charged per KiB of migrated state.
    pub transfer_us_per_kib: u64,
    /// Compile cost charged when a daemon must compile a missing binary at
    /// dispatch time, as compiler-work Mops (§4.5 anticipatory
    /// compilation removes this from the critical path).
    pub dispatch_compile_mops: f64,
    /// Fetch cost per input file not already replicated, KiB.
    pub input_file_kib: u64,
    /// Placement breaks load ties toward machines advertising the unit's
    /// staged binary (the §4.5 payoff path). Ablation knob — see
    /// `exp_ablation`.
    pub prefer_staged_binaries: bool,
    /// Leader inflates the bids of just-allocated machines for ~1 s so a
    /// burst of requests doesn't pile onto one machine between state
    /// disclosures. Ablation knob.
    pub soft_reservations: bool,
    /// Executor watchdog probe period, µs (host-crash detection latency is
    /// roughly `probe_period_us × (miss limit + 1)`).
    pub probe_period_us: u64,
    /// Per-node stable storage behind the daemon's write-ahead log:
    /// write latency and crash-fault probabilities.
    pub storage: vce_storage::StorageConfig,
    /// Journal daemon state changes and recover them on revive. `false`
    /// reproduces the pre-WAL daemon (total amnesia on reboot) — the
    /// baseline arm of `exp_recovery`.
    pub wal_enabled: bool,
    /// Use the adaptive phi-accrual failure detector + flap-damping
    /// quarantine in the daemons' Isis groups. `false` reproduces the flat
    /// fixed-timeout detector — the baseline arm of `exp_graydetect` (F6).
    pub adaptive_detection: bool,
    /// Straggler hedging: when a divisible task's instance stalls below
    /// `hedge_stall_fraction` of its expected progress rate, the executor
    /// speculatively re-requests a redundant copy elsewhere.
    pub hedge_enabled: bool,
    /// Progress-rate fraction (per-mille, integer for determinism) below
    /// which an instance counts as stalled. 300 = hedging kicks in under
    /// 30% of the nominal per-job rate on its host.
    pub hedge_stall_permille: u32,
    /// Probe-reply samples required before an instance can be judged
    /// stalled (one sample gives no rate; more damp transients).
    pub hedge_min_samples: u32,
    /// Remaining work, Mops, below which hedging is pointless (the
    /// original will finish before a hedge could spin up).
    pub hedge_min_remaining_mops: f64,
}

impl Default for ExmConfig {
    fn default() -> Self {
        Self {
            policy: PlacementPolicy::UtilizationFirst,
            bid_timeout_us: 800_000,
            bid_timeout_cap_us: 2_400_000,
            request_retry_us: 3_000_000,
            request_retry_cap_us: 12_000_000,
            queue_insufficient: true,
            aging_quantum_us: 2_000_000,
            rebalance_period_us: 2_000_000,
            owner_busy_threshold: 1.0,
            idle_threshold: 0.5,
            overload_threshold: 3.0,
            migration_enabled: true,
            migration_cooldown_us: 30_000_000,
            redundancy: 1,
            transfer_us_per_kib: 800, // 1994 LAN: ~1.25 MB/s effective
            dispatch_compile_mops: 200.0,
            input_file_kib: 1024,
            prefer_staged_binaries: true,
            soft_reservations: true,
            probe_period_us: 2_000_000,
            storage: vce_storage::StorageConfig::default(),
            wal_enabled: true,
            adaptive_detection: true,
            hedge_enabled: true,
            hedge_stall_permille: 300,
            hedge_min_samples: 2,
            hedge_min_remaining_mops: 50.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_coherent() {
        let c = ExmConfig::default();
        assert!(c.bid_timeout_us < c.request_retry_us);
        assert!(c.bid_timeout_us <= c.bid_timeout_cap_us);
        assert!(c.request_retry_us <= c.request_retry_cap_us);
        // Even a fully backed-off collect stays shorter than one retry
        // interval, so a leader answers before the executor gives up on it.
        assert!(c.bid_timeout_cap_us < c.request_retry_us);
        assert!(c.idle_threshold < c.owner_busy_threshold);
        assert!(c.redundancy >= 1);
        assert_eq!(c.policy, PlacementPolicy::UtilizationFirst);
        assert!(c.adaptive_detection);
        assert!(c.hedge_enabled);
        // A stalled instance must be detectably below full speed.
        assert!(c.hedge_stall_permille < 1000);
        // Rate estimation needs at least two probe samples.
        assert!(c.hedge_min_samples >= 2);
        assert!(c.hedge_min_remaining_mops > 0.0);
    }
}
