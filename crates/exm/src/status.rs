//! The bid payload: what a daemon discloses about its machine.
//!
//! §5: "Each machine, based on current load and availability, sends a
//! 'bid' back to the group leader ... Each bid includes the current load
//! of the bidding machine." Ours also lists the resident VCE tasks so the
//! leader can make §4.4 migration decisions from the same disclosures.

use vce_codec::{Codec, Decoder, Encoder, Result};
use vce_net::{MachineClass, NodeId};

use crate::msg::InstanceKey;

/// One resident task as disclosed in a bid.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidentTask {
    /// Instance identity.
    pub key: InstanceKey,
    /// Program unit.
    pub unit: String,
    /// Remaining work, Mops.
    pub remaining_mops: f64,
    /// Migration cooperation flags.
    pub checkpoints: bool,
    /// May be restarted from scratch.
    pub restartable: bool,
    /// Address space dumpable.
    pub core_dumpable: bool,
    /// Redundant incarnations exist elsewhere.
    pub redundant: bool,
    /// Memory footprint, MB.
    pub mem_mb: u32,
}

impl Codec for ResidentTask {
    fn encode(&self, enc: &mut Encoder) {
        self.key.encode(enc);
        self.unit.encode(enc);
        enc.put_f64(self.remaining_mops);
        enc.put_bool(self.checkpoints);
        enc.put_bool(self.restartable);
        enc.put_bool(self.core_dumpable);
        enc.put_bool(self.redundant);
        enc.put_u32(self.mem_mb);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(ResidentTask {
            key: InstanceKey::decode(dec)?,
            unit: String::decode(dec)?,
            remaining_mops: dec.get_f64()?,
            checkpoints: dec.get_bool()?,
            restartable: dec.get_bool()?,
            core_dumpable: dec.get_bool()?,
            redundant: dec.get_bool()?,
            mem_mb: dec.get_u32()?,
        })
    }
}

/// A machine's disclosed state.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonStatus {
    /// The machine.
    pub node: NodeId,
    /// Its class.
    pub class: MachineClass,
    /// Instantaneous load (VCE jobs + owner activity).
    pub load: f64,
    /// Owner (background) component of the load — drives eviction and
    /// migration decisions.
    pub background: f64,
    /// Nominal speed, Mops/s.
    pub speed_mops: f64,
    /// Physical memory, MB.
    pub mem_mb: u32,
    /// Willing to host remote work right now (authorized and not
    /// excessively loaded — §5's bid condition).
    pub willing: bool,
    /// Resident VCE tasks.
    pub tasks: Vec<ResidentTask>,
    /// Program units with locally staged binaries (anticipatory
    /// compilation's placement signal, §4.5).
    pub binaries: Vec<String>,
}

impl Codec for DaemonStatus {
    fn encode(&self, enc: &mut Encoder) {
        self.node.encode(enc);
        self.class.encode(enc);
        enc.put_f64(self.load);
        enc.put_f64(self.background);
        enc.put_f64(self.speed_mops);
        enc.put_u32(self.mem_mb);
        enc.put_bool(self.willing);
        self.tasks.encode(enc);
        self.binaries.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(DaemonStatus {
            node: NodeId::decode(dec)?,
            class: MachineClass::decode(dec)?,
            load: dec.get_f64()?,
            background: dec.get_f64()?,
            speed_mops: dec.get_f64()?,
            mem_mb: dec.get_u32()?,
            willing: dec.get_bool()?,
            tasks: Vec::<ResidentTask>::decode(dec)?,
            binaries: Vec::<String>::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::AppId;

    #[test]
    fn status_round_trips() {
        let s = DaemonStatus {
            node: NodeId(3),
            class: MachineClass::Mimd,
            load: 2.5,
            background: 1.5,
            speed_mops: 800.0,
            mem_mb: 256,
            willing: true,
            tasks: vec![ResidentTask {
                key: InstanceKey {
                    app: AppId(1),
                    task: 0,
                    instance: 1,
                },
                unit: "collector".into(),
                remaining_mops: 42.0,
                checkpoints: true,
                restartable: true,
                core_dumpable: false,
                redundant: false,
                mem_mb: 32,
            }],
            binaries: vec!["collector".into()],
        };
        let bytes = vce_codec::to_bytes(&s);
        assert_eq!(vce_codec::from_bytes::<DaemonStatus>(&bytes).unwrap(), s);
    }
}
