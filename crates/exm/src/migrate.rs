//! The four process-migration techniques of §4.4 and the policy that
//! picks one.
//!
//! > "The execution layer should have several of these techniques in its
//! > repertoire. Which of these will be used for any particular migration
//! > will depend on the state of the system and the characteristics of the
//! > task(s) involved."

use vce_codec::impl_codec_for_enum;

use crate::status::ResidentTask;

/// §4.4's migration techniques, in the paper's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MigrationTechnique {
    /// "Process migration through redundant execution": kill the loaded
    /// incarnation; an already-running copy elsewhere continues. Lowest
    /// overhead — nothing moves.
    Redundant,
    /// "Process migration through checkpointing": kill and re-instantiate
    /// from the last checkpoint. Loses progress since the checkpoint; pays
    /// a compact state transfer; requires task cooperation.
    Checkpoint,
    /// "Process migration the old-fashioned way": dump the address space,
    /// copy it, resume exactly. No lost progress but a large transfer and
    /// **requires homogeneity** (same machine class).
    CoreDump,
    /// "Process migration through recompilation": restart on a different
    /// architecture from the last portable checkpoint (or from scratch),
    /// compiling the target binary if it is not cached. "Very expensive
    /// but may be very robust."
    Recompile,
    /// Not a paper technique, but the degenerate fallback it implies:
    /// kill and restart an idempotent task from scratch.
    Restart,
}

impl_codec_for_enum!(MigrationTechnique {
    MigrationTechnique::Redundant => 0,
    MigrationTechnique::Checkpoint => 1,
    MigrationTechnique::CoreDump => 2,
    MigrationTechnique::Recompile => 3,
    MigrationTechnique::Restart => 4,
});

/// State-transfer size model, KiB. Checkpoints are compact (a fraction of
/// the address space); core dumps move everything; redundant migration
/// moves nothing; restart/recompile move nothing (the binary is cached or
/// rebuilt at the target).
pub fn state_kib(technique: MigrationTechnique, mem_mb: u32) -> u64 {
    let mem_kib = u64::from(mem_mb) * 1024;
    match technique {
        MigrationTechnique::Redundant => 0,
        MigrationTechnique::Checkpoint => mem_kib / 8,
        MigrationTechnique::CoreDump => mem_kib,
        MigrationTechnique::Recompile => mem_kib / 8, // portable checkpoint
        MigrationTechnique::Restart => 0,
    }
}

/// Pick the technique for migrating `task` to a machine of the same or a
/// different class, per §4.4's decision inputs. `None` ⇒ unmigratable.
///
/// Preference order minimizes overhead: redundant (free) > checkpoint
/// (small transfer, bounded progress loss) > core dump (large transfer,
/// no loss, same class only) > restart (lose everything) > recompile
/// (cross-class, expensive).
pub fn choose_technique(task: &ResidentTask, same_class: bool) -> Option<MigrationTechnique> {
    if task.redundant {
        return Some(MigrationTechnique::Redundant);
    }
    if task.checkpoints && same_class {
        return Some(MigrationTechnique::Checkpoint);
    }
    if same_class && task.core_dumpable {
        return Some(MigrationTechnique::CoreDump);
    }
    if !same_class {
        // Crossing architectures requires recompilation; the task must at
        // least checkpoint portably or be restartable.
        if task.checkpoints || task.restartable {
            return Some(MigrationTechnique::Recompile);
        }
        return None;
    }
    if task.restartable {
        return Some(MigrationTechnique::Restart);
    }
    None
}

/// How much work survives the move: the Mops the *target* must run, given
/// total work, remaining work, and the technique's progress semantics.
/// `checkpointed_mops` is the remaining work as of the last checkpoint.
pub fn carried_remaining(
    technique: MigrationTechnique,
    remaining_mops: f64,
    checkpointed_remaining_mops: f64,
    total_mops: f64,
) -> f64 {
    match technique {
        // Exact state travels.
        MigrationTechnique::CoreDump => remaining_mops,
        // Roll back to the checkpoint.
        MigrationTechnique::Checkpoint | MigrationTechnique::Recompile => {
            checkpointed_remaining_mops
        }
        // A surviving copy keeps its own progress; the killed one carries
        // nothing (the caller doesn't restart it).
        MigrationTechnique::Redundant => 0.0,
        // From scratch.
        MigrationTechnique::Restart => total_mops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{AppId, InstanceKey};

    fn task(
        checkpoints: bool,
        restartable: bool,
        core_dumpable: bool,
        redundant: bool,
    ) -> ResidentTask {
        ResidentTask {
            key: InstanceKey {
                app: AppId(1),
                task: 0,
                instance: 0,
            },
            unit: "u".into(),
            remaining_mops: 100.0,
            checkpoints,
            restartable,
            core_dumpable,
            redundant,
            mem_mb: 64,
        }
    }

    #[test]
    fn redundancy_always_wins() {
        let t = task(true, true, true, true);
        assert_eq!(
            choose_technique(&t, true),
            Some(MigrationTechnique::Redundant)
        );
        assert_eq!(
            choose_technique(&t, false),
            Some(MigrationTechnique::Redundant)
        );
    }

    #[test]
    fn checkpoint_preferred_within_class() {
        let t = task(true, true, true, false);
        assert_eq!(
            choose_technique(&t, true),
            Some(MigrationTechnique::Checkpoint)
        );
    }

    #[test]
    fn core_dump_requires_homogeneity() {
        let t = task(false, false, true, false);
        assert_eq!(
            choose_technique(&t, true),
            Some(MigrationTechnique::CoreDump)
        );
        assert_eq!(choose_technique(&t, false), None, "no portable state");
    }

    #[test]
    fn cross_class_needs_recompilation() {
        let t = task(true, false, true, false);
        assert_eq!(
            choose_technique(&t, false),
            Some(MigrationTechnique::Recompile)
        );
        let t = task(false, true, false, false);
        assert_eq!(
            choose_technique(&t, false),
            Some(MigrationTechnique::Recompile)
        );
    }

    #[test]
    fn restart_is_last_resort_within_class() {
        let t = task(false, true, false, false);
        assert_eq!(
            choose_technique(&t, true),
            Some(MigrationTechnique::Restart)
        );
    }

    #[test]
    fn stubborn_task_is_unmigratable() {
        let t = task(false, false, false, false);
        assert_eq!(choose_technique(&t, true), None);
        assert_eq!(choose_technique(&t, false), None);
    }

    #[test]
    fn transfer_sizes_ordered_as_the_paper_argues() {
        let mem = 64;
        assert_eq!(state_kib(MigrationTechnique::Redundant, mem), 0);
        assert!(
            state_kib(MigrationTechnique::Checkpoint, mem)
                < state_kib(MigrationTechnique::CoreDump, mem)
        );
        assert_eq!(state_kib(MigrationTechnique::CoreDump, mem), 64 * 1024);
        assert_eq!(state_kib(MigrationTechnique::Restart, mem), 0);
    }

    #[test]
    fn carried_work_semantics() {
        // total 100, remaining 40, last checkpoint at remaining 55.
        assert_eq!(
            carried_remaining(MigrationTechnique::CoreDump, 40.0, 55.0, 100.0),
            40.0
        );
        assert_eq!(
            carried_remaining(MigrationTechnique::Checkpoint, 40.0, 55.0, 100.0),
            55.0
        );
        assert_eq!(
            carried_remaining(MigrationTechnique::Restart, 40.0, 55.0, 100.0),
            100.0
        );
        assert_eq!(
            carried_remaining(MigrationTechnique::Redundant, 40.0, 55.0, 100.0),
            0.0
        );
    }

    #[test]
    fn technique_codec_round_trip() {
        for t in [
            MigrationTechnique::Redundant,
            MigrationTechnique::Checkpoint,
            MigrationTechnique::CoreDump,
            MigrationTechnique::Recompile,
            MigrationTechnique::Restart,
        ] {
            let bytes = vce_codec::to_bytes(&t);
            assert_eq!(
                vce_codec::from_bytes::<MigrationTechnique>(&bytes).unwrap(),
                t
            );
        }
    }
}
