#![warn(missing_docs)]
//! # vce-exm — the Execution Module
//!
//! The runtime half of Fig. 1 and the whole of §5's prototype, rebuilt in
//! full:
//!
//! * **[`daemon::DaemonEndpoint`]** — "a scheduling/dispatching daemon that
//!   runs in each workstation authorized to host remote executions". One
//!   per machine; daemons of a machine class form an Isis process group
//!   (`vce-isis`), and the group coordinator plays the paper's **group
//!   leader**: it fields resource requests, broadcasts state-disclosure
//!   requests, collects load bids, sorts them, and allocates (Fig. 3 and
//!   the `groupLeader()` pseudocode). Daemons also run the dispatched
//!   tasks, checkpoint cooperative ones, evict redundant incarnations when
//!   the owner returns, and execute leader-ordered migrations.
//! * **[`executor::ExecutorEndpoint`]** — "an execution program that
//!   executes applications on behalf of a local user" (the `execute()`
//!   pseudocode): walks the task graph, requests resources per ready task,
//!   loads programs onto allocated machines, tracks completions and the
//!   dataflow frontier, runs `LOCAL` tasks on the user's workstation, and
//!   broadcasts termination.
//! * **[`policy`]** — §4.3's task-placement policies (utilization-first
//!   vs. best-platform) and overload filtering; **[`queue`]** — request
//!   queueing with priority aging so "a task ... will eventually be
//!   dispatched even if that results in a globally suboptimal schedule".
//! * **[`migrate`]** — §4.4's four migration techniques (redundant
//!   execution, checkpointing, address-space dump, recompilation) and the
//!   policy that picks one per migration from task traits + system state.
//!
//! Everything is an [`vce_net::Endpoint`] state machine: the same code runs
//! on the deterministic simulator (all experiments) and on the threaded
//! live driver.

mod backoff;
pub mod config;
pub mod daemon;
pub mod events;
pub mod executor;
pub mod migrate;
pub mod msg;
pub mod policy;
pub mod queue;
pub mod status;
pub mod wal;

pub use config::ExmConfig;
pub use daemon::DaemonEndpoint;
pub use events::{AppEvent, Timeline};
pub use executor::ExecutorEndpoint;
pub use migrate::MigrationTechnique;
pub use msg::{AppId, ExmMsg, InstanceKey, ReqId};
pub use policy::PlacementPolicy;
pub use status::DaemonStatus;
pub use wal::{DaemonWal, WalRecord, WalRecovery};
