//! The leader's request queue with priority aging (§4.3).
//!
//! "As a task waits to be dispatched its priority will be increased to
//! insure it will eventually be dispatched even if that results in a
//! globally suboptimal schedule. Authorized users will be able to modify
//! the priorities of particular applications."

use vce_net::{Addr, MachineClass};

use crate::msg::ReqId;
use crate::policy::Needs;

/// A queued resource request.
#[derive(Debug, Clone, PartialEq)]
pub struct QueuedRequest {
    /// Request identity.
    pub req: ReqId,
    /// Target class (the group it queued in).
    pub class: MachineClass,
    /// Requirements.
    pub needs: Needs,
    /// Authorized-user boost.
    pub priority_boost: i32,
    /// When it was first queued, µs.
    pub enqueued_at_us: u64,
    /// Who gets the allocation.
    pub reply_to: Addr,
}

/// Priority = boost + age in aging quanta. Older ⇒ higher.
pub fn priority(req: &QueuedRequest, now_us: u64, aging_quantum_us: u64) -> i64 {
    let age = now_us.saturating_sub(req.enqueued_at_us);
    i64::from(req.priority_boost) + (age / aging_quantum_us.max(1)) as i64
}

/// The aging queue.
#[derive(Debug, Default)]
pub struct RequestQueue {
    items: Vec<QueuedRequest>,
    /// Aging quantum, µs (one priority step per quantum waited).
    pub aging_quantum_us: u64,
}

impl RequestQueue {
    /// Queue with a given aging quantum.
    pub fn new(aging_quantum_us: u64) -> Self {
        Self {
            items: Vec::new(),
            aging_quantum_us,
        }
    }

    /// Add a request (idempotent by req id).
    pub fn push(&mut self, req: QueuedRequest) {
        if !self.items.iter().any(|q| q.req == req.req) {
            self.items.push(req);
        }
    }

    /// Remove a request by id.
    pub fn remove(&mut self, req: ReqId) -> Option<QueuedRequest> {
        let idx = self.items.iter().position(|q| q.req == req)?;
        Some(self.items.remove(idx))
    }

    /// Queue length.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Empty?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate in *service order*: highest current priority first, FIFO
    /// within equal priority (stable by enqueue time, then req id).
    pub fn service_order(&self, now_us: u64) -> Vec<QueuedRequest> {
        let mut v = self.items.clone();
        let quantum = self.aging_quantum_us;
        v.sort_by(|a, b| {
            priority(b, now_us, quantum)
                .cmp(&priority(a, now_us, quantum))
                .then(a.enqueued_at_us.cmp(&b.enqueued_at_us))
                .then(a.req.cmp(&b.req))
        });
        v
    }

    /// Requests (other than `except`) so restricted that only the given
    /// predicate-machines satisfy them — used to compute reservations.
    pub fn iter(&self) -> impl Iterator<Item = &QueuedRequest> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::AppId;
    use vce_net::NodeId;

    fn q(seq: u32, boost: i32, at: u64) -> QueuedRequest {
        QueuedRequest {
            req: ReqId { app: AppId(1), seq },
            class: MachineClass::Workstation,
            needs: Needs {
                mem_mb: 16,
                count_min: 1,
                count_max: 1,
                unit: "u".into(),
            },
            priority_boost: boost,
            enqueued_at_us: at,
            reply_to: Addr::executor(NodeId(0)),
        }
    }

    #[test]
    fn boost_orders_fresh_requests() {
        let mut rq = RequestQueue::new(1_000_000);
        rq.push(q(0, 0, 0));
        rq.push(q(1, 5, 0));
        let order = rq.service_order(0);
        assert_eq!(order[0].req.seq, 1);
        assert_eq!(order[1].req.seq, 0);
    }

    #[test]
    fn aging_overtakes_boost() {
        let mut rq = RequestQueue::new(1_000_000);
        rq.push(q(0, 0, 0)); // old, unboosted
        rq.push(q(1, 5, 9_000_000)); // new, boosted
                                     // At t=10s: req0 priority = 10, req1 priority = 5 + 1 = 6.
        let order = rq.service_order(10_000_000);
        assert_eq!(order[0].req.seq, 0, "starvation prevented by aging");
    }

    #[test]
    fn fifo_within_equal_priority() {
        let mut rq = RequestQueue::new(1_000_000);
        rq.push(q(2, 0, 500));
        rq.push(q(1, 0, 100));
        let order = rq.service_order(600);
        assert_eq!(order[0].req.seq, 1);
    }

    #[test]
    fn push_is_idempotent_and_remove_works() {
        let mut rq = RequestQueue::new(1);
        rq.push(q(0, 0, 0));
        rq.push(q(0, 0, 0));
        assert_eq!(rq.len(), 1);
        assert!(rq
            .remove(ReqId {
                app: AppId(1),
                seq: 0
            })
            .is_some());
        assert!(rq
            .remove(ReqId {
                app: AppId(1),
                seq: 0
            })
            .is_none());
        assert!(rq.is_empty());
    }

    #[test]
    fn priority_math() {
        let r = q(0, 3, 1_000);
        assert_eq!(priority(&r, 1_000, 1_000), 3);
        assert_eq!(priority(&r, 3_000, 1_000), 5);
        // Before enqueue time: age clamps to zero.
        assert_eq!(priority(&r, 0, 1_000), 3);
    }
}
