//! The daemon's write-ahead log over simulated stable storage.
//!
//! Every state change a daemon would need after a reboot is journaled as a
//! [`WalRecord`] before (or atomically with) the in-memory change: task
//! arrival, checkpoint snapshots, completion, kills, and — while leading —
//! allocation decisions. Records reuse the `vce_codec` wire format; the
//! storage layer frames each one with a CRC so a torn tail is detected and
//! truncated, never replayed.
//!
//! vce-lint P004 statically pairs the two halves of this contract: every
//! record variant journaled anywhere outside this file must have a replay
//! arm inside [`DaemonWal::recover`], and a replayed-but-never-journaled
//! variant is a dead record (see docs/LINT.md).
//!
//! Recovery ([`DaemonWal::recover`]) folds the committed prefix into the
//! last surviving state per instance. The bytes come back from storage,
//! which is as untrusted as the network: replay indexes nothing, and a
//! CRC-valid record that fails to decode stops replay at that point (the
//! same stance the codec takes on remote input).

use std::collections::{BTreeMap, BTreeSet};

use vce_codec::{Codec, CodecError, Decoder, Encoder, Result};
use vce_net::NodeId;
use vce_storage::{StableStore, StorageConfig, StorageFault};

use crate::msg::{InstanceKey, LoadProgram, ReqId};

const R_LOADED: u8 = 0;
const R_CHECKPOINT: u8 = 1;
const R_DONE: u8 = 2;
const R_KILLED: u8 = 3;
const R_ALLOCATED: u8 = 4;

/// One journaled daemon state change.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A program arrived (Load or MigrateIn) and is resident.
    Loaded(LoadProgram),
    /// Cooperative checkpoint: `remaining_mops` still to execute.
    Checkpoint {
        /// Which instance.
        key: InstanceKey,
        /// Work remaining at the checkpoint.
        remaining_mops: f64,
    },
    /// The instance completed here and the owner was told.
    Done {
        /// Which instance.
        key: InstanceKey,
    },
    /// The instance was killed/evicted/migrated away — not resident.
    Killed {
        /// Which instance.
        key: InstanceKey,
    },
    /// Leader decision: `req` was answered with `nodes`.
    Allocated {
        /// The request served.
        req: ReqId,
        /// Machines allocated.
        nodes: Vec<NodeId>,
    },
}

impl Codec for WalRecord {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            WalRecord::Loaded(lp) => {
                enc.put_u8(R_LOADED);
                lp.encode(enc);
            }
            WalRecord::Checkpoint {
                key,
                remaining_mops,
            } => {
                enc.put_u8(R_CHECKPOINT);
                key.encode(enc);
                enc.put_f64(*remaining_mops);
            }
            WalRecord::Done { key } => {
                enc.put_u8(R_DONE);
                key.encode(enc);
            }
            WalRecord::Killed { key } => {
                enc.put_u8(R_KILLED);
                key.encode(enc);
            }
            WalRecord::Allocated { req, nodes } => {
                enc.put_u8(R_ALLOCATED);
                req.encode(enc);
                nodes.encode(enc);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(match dec.get_u8()? {
            R_LOADED => WalRecord::Loaded(LoadProgram::decode(dec)?),
            R_CHECKPOINT => WalRecord::Checkpoint {
                key: InstanceKey::decode(dec)?,
                remaining_mops: dec.get_f64()?,
            },
            R_DONE => WalRecord::Done {
                key: InstanceKey::decode(dec)?,
            },
            R_KILLED => WalRecord::Killed {
                key: InstanceKey::decode(dec)?,
            },
            R_ALLOCATED => WalRecord::Allocated {
                req: ReqId::decode(dec)?,
                nodes: Vec::<NodeId>::decode(dec)?,
            },
            other => {
                return Err(CodecError::InvalidDiscriminant {
                    value: u64::from(other),
                    type_name: "WalRecord",
                })
            }
        })
    }
}

/// What replaying the committed log yields.
#[derive(Debug, Clone)]
pub struct WalRecovery {
    /// Instances resident at the last committed record, with the work each
    /// still owed (from its last checkpoint, or its full work if none).
    pub tasks: Vec<(LoadProgram, f64)>,
    /// Allocation decisions this daemon made while leading. Merged into
    /// live leader state only if the group elects it again — a recovered
    /// coordinator defers to whoever leads now.
    pub served: BTreeMap<ReqId, Vec<NodeId>>,
    /// Instances whose completion is in the committed prefix: these must
    /// never run again.
    pub committed_done: BTreeSet<InstanceKey>,
    /// Records appended since the previous recovery.
    pub appended: u64,
    /// Records replayed from the committed prefix.
    pub replayed: u64,
    /// True iff storage replay was a prefix of the journal mirror.
    pub prefix_ok: bool,
    /// Bytes truncated at the device tail.
    pub truncated_bytes: usize,
    /// Storage fault injected by the crash, if any.
    pub fault: Option<StorageFault>,
    /// Records lost to the crash.
    pub lost_records: u64,
}

/// The daemon's journal: a thin typed layer over one [`StableStore`].
#[derive(Debug)]
pub struct DaemonWal {
    store: StableStore,
    enabled: bool,
}

impl DaemonWal {
    /// A WAL over fresh storage. `enabled == false` models the pre-WAL
    /// daemon (pure amnesia on revive) for experiments.
    pub fn new(cfg: StorageConfig, enabled: bool) -> Self {
        DaemonWal {
            store: StableStore::new(cfg),
            enabled,
        }
    }

    /// Is journaling on? Callers on the allocation hot path check this
    /// before cloning state into a [`WalRecord`] — with the WAL off the
    /// record would be built only to be dropped at the `journal` gate.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append one record; returns when it becomes durable (diagnostics).
    pub fn journal(&mut self, now_us: u64, rec: &WalRecord) -> u64 {
        if !self.enabled {
            return now_us;
        }
        let mut enc = Encoder::with_capacity(96);
        rec.encode(&mut enc);
        self.store.append(now_us, &enc.finish_bytes())
    }

    /// The node crashed: settle which in-flight writes survived and draw
    /// the storage fault. `r1`/`r2` come from the node's seeded RNG.
    pub fn on_crash(&mut self, now_us: u64, r1: u64, r2: u64) {
        if self.enabled {
            self.store.crash(now_us, r1, r2);
        }
    }

    /// Replay the committed log. `None` on a first boot (nothing journaled,
    /// never crashed) or when the WAL is disabled — the caller starts empty.
    pub fn recover(&mut self) -> Option<WalRecovery> {
        if !self.enabled || (self.store.appended() == 0 && self.store.last_crash().is_none()) {
            return None;
        }
        let rec = self.store.recover();

        let mut live: BTreeMap<InstanceKey, (LoadProgram, f64)> = BTreeMap::new();
        let mut served: BTreeMap<ReqId, Vec<NodeId>> = BTreeMap::new();
        let mut committed_done: BTreeSet<InstanceKey> = BTreeSet::new();
        let mut replayed = 0u64;
        for payload in &rec.payloads {
            // A CRC-valid record that fails to decode means the journal
            // writer and reader disagree; stop at the last good record
            // rather than guess (storage bytes are untrusted input).
            let Ok(record) = vce_codec::from_bytes::<WalRecord>(payload) else {
                break;
            };
            replayed += 1;
            match record {
                WalRecord::Loaded(lp) => {
                    let work = lp.work_mops;
                    live.insert(lp.key, (lp, work));
                }
                WalRecord::Checkpoint {
                    key,
                    remaining_mops,
                } => {
                    if let Some((_, rem)) = live.get_mut(&key) {
                        *rem = remaining_mops;
                    }
                }
                WalRecord::Done { key } => {
                    live.remove(&key);
                    committed_done.insert(key);
                }
                WalRecord::Killed { key } => {
                    live.remove(&key);
                }
                WalRecord::Allocated { req, nodes } => {
                    served.insert(req, nodes);
                }
            }
        }

        Some(WalRecovery {
            tasks: live.into_values().collect(),
            served,
            committed_done,
            appended: rec.appended,
            replayed,
            prefix_ok: rec.prefix_ok,
            truncated_bytes: rec.truncated_bytes,
            fault: rec.fault,
            lost_records: rec.lost_records,
        })
    }

    /// One-line storage summary for chaos reports.
    pub fn summary(&self) -> String {
        if self.enabled {
            self.store.summary()
        } else {
            "wal-disabled".to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vce_net::Addr;

    fn key(task: u32) -> InstanceKey {
        InstanceKey {
            app: crate::msg::AppId(7),
            task,
            instance: 0,
        }
    }

    fn lp(task: u32, work: f64) -> LoadProgram {
        LoadProgram {
            key: key(task),
            unit: "u".into(),
            work_mops: work,
            mem_mb: 16,
            checkpoints: true,
            checkpoint_interval_us: 1_000_000,
            restartable: true,
            core_dumpable: false,
            redundant: false,
            input_files: vec![],
            reply_to: Addr::executor(NodeId(0)),
        }
    }

    fn wal() -> DaemonWal {
        DaemonWal::new(StorageConfig::default(), true)
    }

    #[test]
    fn first_boot_has_nothing_to_recover() {
        let mut w = wal();
        assert!(w.recover().is_none());
    }

    #[test]
    fn disabled_wal_recovers_nothing() {
        let mut w = DaemonWal::new(StorageConfig::default(), false);
        w.journal(0, &WalRecord::Loaded(lp(1, 100.0)));
        w.on_crash(1_000_000, 1, 2);
        assert!(w.recover().is_none());
        assert_eq!(w.summary(), "wal-disabled");
    }

    #[test]
    fn replay_folds_to_last_surviving_state() {
        let mut w = wal();
        let mut t = 0;
        t = w.journal(t, &WalRecord::Loaded(lp(1, 100.0)));
        t = w.journal(t, &WalRecord::Loaded(lp(2, 200.0)));
        t = w.journal(
            t,
            &WalRecord::Checkpoint {
                key: key(1),
                remaining_mops: 40.0,
            },
        );
        t = w.journal(t, &WalRecord::Done { key: key(2) });
        t = w.journal(
            t,
            &WalRecord::Allocated {
                req: ReqId {
                    app: crate::msg::AppId(7),
                    seq: 1,
                },
                nodes: vec![NodeId(3)],
            },
        );
        w.on_crash(t, 1, 2); // everything durable, clean crash
        let rec = w.recover().expect("crashed wal recovers");
        assert!(rec.prefix_ok);
        assert_eq!(rec.replayed, 5);
        assert_eq!(rec.tasks.len(), 1);
        let (ref lp1, rem) = rec.tasks.first().expect("task 1 survives").clone();
        assert_eq!(lp1.key, key(1));
        assert_eq!(rem, 40.0);
        assert!(rec.committed_done.contains(&key(2)));
        assert_eq!(
            rec.served.get(&ReqId {
                app: crate::msg::AppId(7),
                seq: 1
            }),
            Some(&vec![NodeId(3)])
        );
    }

    #[test]
    fn killed_tasks_stay_dead() {
        let mut w = wal();
        let mut t = 0;
        t = w.journal(t, &WalRecord::Loaded(lp(1, 100.0)));
        t = w.journal(t, &WalRecord::Killed { key: key(1) });
        w.on_crash(t, 1, 2);
        let rec = w.recover().expect("recovers");
        assert!(rec.tasks.is_empty());
        assert!(rec.committed_done.is_empty());
    }

    #[test]
    fn in_flight_checkpoint_is_lost_but_load_survives() {
        let mut w = wal();
        let t = w.journal(0, &WalRecord::Loaded(lp(1, 100.0)));
        // Checkpoint appended but crash hits before it is durable.
        w.journal(
            t,
            &WalRecord::Checkpoint {
                key: key(1),
                remaining_mops: 10.0,
            },
        );
        w.on_crash(t, 1, 2);
        let rec = w.recover().expect("recovers");
        assert_eq!(rec.lost_records, 1);
        let (_, rem) = rec.tasks.first().expect("task survives").clone();
        assert_eq!(rem, 100.0); // full work again: checkpoint never committed
    }

    #[test]
    fn wal_records_round_trip() {
        let records = vec![
            WalRecord::Loaded(lp(1, 123.0)),
            WalRecord::Checkpoint {
                key: key(2),
                remaining_mops: 4.5,
            },
            WalRecord::Done { key: key(3) },
            WalRecord::Killed { key: key(4) },
            WalRecord::Allocated {
                req: ReqId {
                    app: crate::msg::AppId(1),
                    seq: 9,
                },
                nodes: vec![NodeId(1), NodeId(2)],
            },
        ];
        for r in records {
            let bytes = vce_codec::to_bytes(&r);
            assert_eq!(
                vce_codec::from_bytes::<WalRecord>(&bytes).unwrap(),
                r,
                "{r:?}"
            );
        }
    }

    #[test]
    fn unknown_record_discriminant_rejected() {
        assert!(vce_codec::from_bytes::<WalRecord>(&[99]).is_err());
    }
}
